package imdist

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"testing"
)

// sketchBytes renders an oracle's on-disk sketch, the byte-identity yardstick
// of the incremental-builder contract.
func sketchBytes(t testing.TB, o *InfluenceOracle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := o.SaveSketch(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSketchBuilderMatchesOneShot pins the public incremental-build contract:
// a sketch grown batch by batch — at any worker count — is byte-identical on
// disk to the one-shot NewInfluenceOracle build of the same total and seed.
func TestSketchBuilderMatchesOneShot(t *testing.T) {
	ig := karateUC(t)
	oneShot, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 4000, Seed: 17, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := sketchBytes(t, oneShot)
	for _, workers := range []int{1, 4} {
		b, err := ig.NewSketchBuilder(OracleOptions{Seed: 17, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []int{100, 900, 3000} {
			if err := b.AppendBatch(m); err != nil {
				t.Fatal(err)
			}
		}
		if b.NumRRSets() != 4000 {
			t.Fatalf("workers=%d: builder has %d sets, want 4000", workers, b.NumRRSets())
		}
		o, err := b.Oracle()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sketchBytes(t, o), want) {
			t.Errorf("workers=%d: incremental sketch not byte-identical to one-shot build", workers)
		}
	}
}

// TestSketchBuilderCheckpointResume snapshots a build mid-flight through the
// public Checkpoint/ResumeSketchBuilder pair and checks the finished resumed
// sketch is byte-identical to the uninterrupted one.
func TestSketchBuilderCheckpointResume(t *testing.T) {
	ig := karateUC(t)
	b, err := ig.NewSketchBuilder(OracleOptions{Seed: 23, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AppendBatch(1200); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := b.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	resumed, err := ig.ResumeSketchBuilder(&ckpt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.NumRRSets() != 1200 {
		t.Fatalf("resumed at %d sets, want 1200", resumed.NumRRSets())
	}
	for _, bb := range []*SketchBuilder{b, resumed} {
		if err := bb.AppendBatch(1800); err != nil {
			t.Fatal(err)
		}
	}
	bo, err := b.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	ro, err := resumed.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sketchBytes(t, bo), sketchBytes(t, ro)) {
		t.Error("resumed sketch differs from uninterrupted build")
	}
}

// TestBuildSketchToTarget checks the adaptive entry point: the bound is met
// below the cap, and the error estimate shrinks as the sketch grows.
func TestBuildSketchToTarget(t *testing.T) {
	ig := karateUC(t)
	oracle, sum, err := ig.BuildSketchToTarget(OracleOptions{Seed: 7, Workers: -1}, 0.25, 0.01, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Converged || sum.Bound > 0.25 {
		t.Fatalf("summary = %+v, want converged with bound <= 0.25", sum)
	}
	if oracle.NumRRSets() != sum.RRSets || sum.RRSets >= 1<<20 {
		t.Errorf("oracle has %d sets, summary %d (cap 1<<20)", oracle.NumRRSets(), sum.RRSets)
	}

	// ErrorBound decreases with more sets.
	b, err := ig.NewSketchBuilder(OracleOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.ErrorBound(10, 0.01); !math.IsInf(got, 1) {
		t.Errorf("empty builder bound = %v, want +Inf", got)
	}
	if err := b.AppendBatch(1000); err != nil {
		t.Fatal(err)
	}
	at1k := b.ErrorBound(10, 0.01)
	if err := b.AppendBatch(15000); err != nil {
		t.Fatal(err)
	}
	if at16k := b.ErrorBound(10, 0.01); at16k >= at1k {
		t.Errorf("bound did not shrink: %v at 1k sets, %v at 16k", at1k, at16k)
	}
}

// TestBuildSketchWithCheckpointFile runs the file-backed checkpointed build
// and confirms the finished sketch loads and answers like a direct build.
func TestBuildSketchWithCheckpointFile(t *testing.T) {
	ig := karateUC(t)
	path := filepath.Join(t.TempDir(), "build.ckpt")
	var rounds int
	oracle, sum, err := ig.BuildSketchWithCheckpoint(context.Background(), path, OracleOptions{Seed: 31, Workers: 2},
		BuildOptions{MaxSets: 3000, Progress: func(BuildProgress) { rounds++ }})
	if err != nil {
		t.Fatal(err)
	}
	if sum.RRSets != 3000 || rounds == 0 {
		t.Fatalf("summary = %+v after %d rounds", sum, rounds)
	}
	direct, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 3000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sketchBytes(t, oracle), sketchBytes(t, direct)) {
		t.Error("checkpointed build sketch differs from direct build")
	}
	// The checkpoint file verifies cleanly and records every set.
	fi, err := InspectSketchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Corrupt || fi.RRSets != 3000 || fi.Version != 2 {
		t.Errorf("checkpoint inspect = %+v", fi)
	}
}

// TestBuildSketchWithCheckpointSpill runs the same checkpointed build in
// spill mode with a deliberately tiny memory budget and requires the result
// to be byte-identical to the in-memory build — the public face of the
// larger-than-RAM build pipeline.
func TestBuildSketchWithCheckpointSpill(t *testing.T) {
	ig := karateUC(t)
	path := filepath.Join(t.TempDir(), "build.spill")
	var spilled int64
	oracle, sum, err := ig.BuildSketchWithCheckpoint(context.Background(), path, OracleOptions{Seed: 31, Workers: 2},
		BuildOptions{
			MaxSets:   3000,
			Spill:     true,
			MemBudget: 4 << 10,
			Progress:  func(p BuildProgress) { spilled = p.SpillBytes },
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum.RRSets != 3000 {
		t.Fatalf("summary = %+v", sum)
	}
	if spilled <= 0 {
		t.Error("progress never reported spill bytes")
	}
	direct, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 3000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sketchBytes(t, oracle), sketchBytes(t, direct)) {
		t.Error("spill build sketch differs from in-memory build")
	}
	// The spill file is a valid v2 checkpoint of the full build.
	fi, err := InspectSketchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Corrupt || fi.RRSets != 3000 || fi.Version != 2 {
		t.Errorf("spill file inspect = %+v", fi)
	}
}
