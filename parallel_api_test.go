package imdist

import (
	"reflect"
	"testing"
)

// parallelTestNetwork returns a 400-vertex BA influence network with uniform
// IC probabilities, big enough that parallel Build genuinely interleaves.
func parallelTestNetwork(t testing.TB) *InfluenceNetwork {
	t.Helper()
	network, err := GenerateBA(400, 3, 2020)
	if err != nil {
		t.Fatal(err)
	}
	ig, err := network.AssignProbabilities("uc0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

// TestSelectSeedsParallelDeterminism is the acceptance check of the parallel
// engine at the API boundary: with a fixed seed, Workers: 4 produces
// byte-identical seed sets and exact merged cost totals across repeated runs,
// and the result is also independent of the parallel worker count.
func TestSelectSeedsParallelDeterminism(t *testing.T) {
	ig := parallelTestNetwork(t)
	cases := []struct {
		approach Approach
		samples  int
	}{
		{Oneshot, 32},
		{Snapshot, 64},
		{RIS, 4096},
	}
	for _, c := range cases {
		opt := SeedOptions{
			Approach:     c.approach,
			SeedSize:     4,
			SampleNumber: c.samples,
			Seed:         99,
			Workers:      4,
		}
		ref, err := ig.SelectSeeds(opt)
		if err != nil {
			t.Fatalf("%s: %v", c.approach, err)
		}
		for run := 0; run < 2; run++ {
			got, err := ig.SelectSeeds(opt)
			if err != nil {
				t.Fatalf("%s run %d: %v", c.approach, run, err)
			}
			if !reflect.DeepEqual(got.Seeds, ref.Seeds) {
				t.Errorf("%s run %d: seeds %v != %v", c.approach, run, got.Seeds, ref.Seeds)
			}
			if got.Cost != ref.Cost {
				t.Errorf("%s run %d: cost %+v != %+v", c.approach, run, got.Cost, ref.Cost)
			}
		}
		for _, workers := range []int{2, -1} {
			opt.Workers = workers
			got, err := ig.SelectSeeds(opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.approach, workers, err)
			}
			if !reflect.DeepEqual(got.Seeds, ref.Seeds) {
				t.Errorf("%s workers=%d: seeds %v != Workers=4 seeds %v", c.approach, workers, got.Seeds, ref.Seeds)
			}
			if got.Cost != ref.Cost {
				t.Errorf("%s workers=%d: cost %+v != Workers=4 cost %+v", c.approach, workers, got.Cost, ref.Cost)
			}
		}
	}
}

// TestSelectSeedsSerialUnchangedByKnob pins backward compatibility: leaving
// Workers at its zero value must reproduce exactly what Workers: 1 produces
// (the pre-knob serial algorithms).
func TestSelectSeedsSerialUnchangedByKnob(t *testing.T) {
	ig := parallelTestNetwork(t)
	opt := SeedOptions{Approach: Snapshot, SeedSize: 3, SampleNumber: 32, Seed: 5}
	ref, err := ig.SelectSeeds(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 1
	got, err := ig.SelectSeeds(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Seeds, ref.Seeds) || got.Cost != ref.Cost {
		t.Errorf("Workers=1 result %+v differs from zero-value result %+v", got, ref)
	}
}

// TestStudyDistributionParallelDeterminism checks the study harness: a
// parallel study reproduces identical entropies, per-trial influences and
// mean costs across repeated runs.
func TestStudyDistributionParallelDeterminism(t *testing.T) {
	ig := parallelTestNetwork(t)
	oracle, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 20000, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	opt := StudyOptions{
		Approach:     RIS,
		SeedSize:     3,
		SampleNumber: 1024,
		Trials:       8,
		Seed:         7,
		Oracle:       oracle,
		Workers:      4,
	}
	ref, err := ig.StudyDistribution(opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ig.StudyDistribution(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("repeated parallel study differs:\n got %+v\nwant %+v", got, ref)
	}
}

// TestOracleParallelDeterminism checks that an oracle build is byte-identical
// across runs and across every worker count — serial (0, 1) included, since
// each RR set draws from its own per-sample stream regardless of mode — as
// observed through its influence estimates.
func TestOracleParallelDeterminism(t *testing.T) {
	ig := parallelTestNetwork(t)
	probe := []int{0, 1, 2, 3, 50, 100}
	build := func(workers int) []float64 {
		oracle, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 30000, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 0, len(probe)+1)
		for _, v := range probe {
			out = append(out, mustInfluence(t, oracle, []int{v}))
		}
		return append(out, mustInfluence(t, oracle, probe))
	}
	ref := build(4)
	for _, workers := range []int{4, 2, -1, 0, 1} {
		if got := build(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: oracle estimates %v != %v", workers, got, ref)
		}
	}
}

// TestSelectSeedsParallelLT exercises the parallel engine under the Linear
// Threshold model through the public API.
func TestSelectSeedsParallelLT(t *testing.T) {
	network, err := GenerateBA(200, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// iwc assigns in-degree-normalized weights, which are valid LT weights.
	ig, err := network.AssignProbabilities("iwc", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, approach := range Approaches() {
		opt := SeedOptions{
			Approach:     approach,
			SeedSize:     3,
			SampleNumber: 64,
			Seed:         21,
			Model:        LT,
			Workers:      4,
		}
		ref, err := ig.SelectSeeds(opt)
		if err != nil {
			t.Fatalf("%s: %v", approach, err)
		}
		got, err := ig.SelectSeeds(opt)
		if err != nil {
			t.Fatalf("%s: %v", approach, err)
		}
		if !reflect.DeepEqual(got.Seeds, ref.Seeds) || got.Cost != ref.Cost {
			t.Errorf("%s: repeated parallel LT run differs: %+v vs %+v", approach, got, ref)
		}
	}
}
