module imdist

go 1.24
