module imdist

go 1.24

// imvet is the project's own static-analysis suite (see docs/ANALYSIS.md);
// the tool directive makes `go tool imvet ./...` work out of the box.
// Third-party lint tools (staticcheck, govulncheck) are pinned in the
// separate tools/ module so this module keeps zero external dependencies
// and builds fully offline.
tool imdist/cmd/imvet
