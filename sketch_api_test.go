package imdist

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSketchRoundTrip checks the public build-once / serve-many contract: a
// sketch saved with SaveSketch and loaded with LoadSketch answers every query
// byte-identically to the oracle it came from.
func TestSketchRoundTrip(t *testing.T) {
	ig := karateUC(t)
	oracle, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 20000, Seed: 17, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := oracle.SaveSketch(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.NumVertices() != oracle.NumVertices() || loaded.NumRRSets() != oracle.NumRRSets() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			loaded.NumVertices(), loaded.NumRRSets(), oracle.NumVertices(), oracle.NumRRSets())
	}
	if loaded.Model() != IC || loaded.BuildSeed() != 17 {
		t.Errorf("metadata: model=%s seed=%d", loaded.Model(), loaded.BuildSeed())
	}
	for _, k := range []int{1, 2, 4} {
		if !reflect.DeepEqual(loaded.GreedySeeds(k), oracle.GreedySeeds(k)) {
			t.Fatalf("GreedySeeds(%d) diverged after round trip", k)
		}
	}
	for _, seeds := range [][]int{{0}, {0, 33}, {1, 2, 3, 4}} {
		if got, want := mustInfluence(t, loaded, seeds), mustInfluence(t, oracle, seeds); got != want {
			t.Errorf("Influence(%v) = %v, want %v", seeds, got, want)
		}
	}
	if loaded.ConfidenceHalfWidth99() != oracle.ConfidenceHalfWidth99() {
		t.Error("confidence half-width diverged after round trip")
	}
}

func TestSketchFileRoundTrip(t *testing.T) {
	ig := karateUC(t)
	oracle, err := ig.NewInfluenceOracle(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "karate.sketch")
	if err := oracle.SaveSketchFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSketchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.GreedySeeds(4), oracle.GreedySeeds(4)) {
		t.Error("GreedySeeds diverged after file round trip")
	}
}

func TestInfluenceRejectsOutOfRange(t *testing.T) {
	ig := karateUC(t)
	oracle, err := ig.NewInfluenceOracle(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, seeds := range [][]int{{-1}, {34}, {0, 1 << 40}} {
		if _, err := oracle.Influence(seeds); err == nil {
			t.Errorf("Influence(%v) accepted out-of-range seeds", seeds)
		}
	}
}

// TestOpenSketchFile checks the zero-copy facade: an opened sketch answers
// byte-identically to the oracle it was saved from, and the refcounted Close
// contract holds (Acquire defers the unmap, Close blocks new references).
func TestOpenSketchFile(t *testing.T) {
	ig := karateUC(t)
	oracle, err := ig.NewInfluenceOracle(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "karate.sketch")
	if err := oracle.SaveSketchFile(path); err != nil {
		t.Fatal(err)
	}
	sketch, err := OpenSketchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded := sketch.Oracle()
	if !reflect.DeepEqual(loaded.GreedySeeds(4), oracle.GreedySeeds(4)) {
		t.Error("GreedySeeds diverged after mapped load")
	}
	want, err := oracle.Influence([]int{0, 33})
	if err != nil {
		t.Fatal(err)
	}
	if !sketch.Acquire() {
		t.Fatal("Acquire before Close failed")
	}
	sketch.Close()
	// The held reference keeps the mapping valid across Close.
	got, err := loaded.Influence([]int{0, 33})
	if err != nil || got != want {
		t.Errorf("Influence after Close with reference = %v, %v; want %v", got, err, want)
	}
	if sketch.Acquire() {
		t.Error("Acquire after Close succeeded")
	}
	sketch.Release()

	if _, err := OpenSketchFile(filepath.Join(t.TempDir(), "missing.sketch")); err == nil {
		t.Error("missing sketch file accepted")
	}
}
