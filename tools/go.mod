// Module imdist/tools pins the third-party build-time tools the CI lint job
// runs (Go 1.24 tool directives), replacing the old `go install tool@version`
// at run time. It is a separate module on purpose: the main imdist module has
// zero external dependencies and must build fully offline, while these tools
// pull in large dependency trees.
//
// go.sum is intentionally not committed: it cannot be produced in the
// offline development environment. Versions are pinned below; CI runs
// `go mod tidy` in this directory first, which resolves the transitive
// graph and verifies every download against the Go checksum database
// (sum.golang.org), then installs with `go install <pkg>` at exactly the
// pinned versions. See .github/workflows/ci.yml and docs/ANALYSIS.md.
module imdist/tools

go 1.24

tool (
	golang.org/x/vuln/cmd/govulncheck
	honnef.co/go/tools/cmd/staticcheck
)

require (
	golang.org/x/vuln v1.1.4
	honnef.co/go/tools v0.6.1
)
