package imdist

import (
	"strings"
	"testing"
)

func batchTestOracle(t *testing.T) *InfluenceOracle {
	t.Helper()
	network, err := LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := network.AssignProbabilities("iwc", 5)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ig.NewInfluenceOracleWithOptions(OracleOptions{RRSets: 20000, Seed: 5, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	return oracle
}

// TestBatchInfluenceMatchesLoopedInfluence pins the public API's batch
// guarantee: for every worker count, BatchInfluence equals a loop of
// Influence calls bit for bit.
func TestBatchInfluenceMatchesLoopedInfluence(t *testing.T) {
	oracle := batchTestOracle(t)
	queries := [][]int{{0}, {33}, {0, 33}, {1, 2, 3}, {5, 11, 17, 23, 29}, {33, 33, 0}}
	want := make([]float64, len(queries))
	for i, seeds := range queries {
		inf, err := oracle.Influence(seeds)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = inf
	}
	for _, workers := range []int{0, 1, 2, -1} {
		values, errs := oracle.BatchInfluence(queries, workers)
		for i := range queries {
			if errs[i] != nil {
				t.Fatalf("workers=%d query %d: %v", workers, i, errs[i])
			}
			if values[i] != want[i] {
				t.Errorf("workers=%d query %d = %v, want %v", workers, i, values[i], want[i])
			}
		}
	}
}

// TestBatchInfluencePerItemErrors checks the public API's per-item error
// semantics, including the pre-conversion range check for huge ids.
func TestBatchInfluencePerItemErrors(t *testing.T) {
	oracle := batchTestOracle(t)
	queries := [][]int{
		{0, 1},
		{-1},
		{34},
		{1 << 40}, // must not wrap through the int32 conversion
		{33},
	}
	values, errs := oracle.BatchInfluence(queries, 2)
	for _, bad := range []int{1, 2, 3} {
		if errs[bad] == nil || !strings.Contains(errs[bad].Error(), "not in [0, 34)") {
			t.Errorf("errs[%d] = %v, want range error", bad, errs[bad])
		}
		if values[bad] != 0 {
			t.Errorf("values[%d] = %v, want 0", bad, values[bad])
		}
	}
	for _, good := range []int{0, 4} {
		if errs[good] != nil {
			t.Errorf("errs[%d] = %v, want nil", good, errs[good])
		}
		want, err := oracle.Influence(queries[good])
		if err != nil {
			t.Fatal(err)
		}
		if values[good] != want {
			t.Errorf("values[%d] = %v, want %v", good, values[good], want)
		}
	}
}
