package imdist

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// mustInfluence is Influence for seed sets the test knows are valid.
func mustInfluence(t testing.TB, o *InfluenceOracle, seeds []int) float64 {
	t.Helper()
	inf, err := o.Influence(seeds)
	if err != nil {
		t.Fatal(err)
	}
	return inf
}

func karateUC(t testing.TB) *InfluenceNetwork {
	t.Helper()
	n, err := LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := n.AssignProbabilities("uc0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func TestLoadDatasetAndStats(t *testing.T) {
	n, err := LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Vertices != 34 || s.Edges != 156 {
		t.Errorf("Karate stats = %+v", s)
	}
	if s.MaxOutDegree != 17 || s.MaxInDegree != 17 {
		t.Errorf("Karate max degrees = %d/%d", s.MaxOutDegree, s.MaxInDegree)
	}
	if _, err := LoadDataset("not-a-dataset"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if len(DatasetNames()) != 8 {
		t.Errorf("DatasetNames = %v", DatasetNames())
	}
}

func TestNewNetworkAndEdgeListRoundTrip(t *testing.T) {
	n, err := NewNetwork(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumVertices() != 3 || n.NumEdges() != 2 {
		t.Errorf("network size = %d,%d", n.NumVertices(), n.NumEdges())
	}
	var buf bytes.Buffer
	if err := n.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeList(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 2 {
		t.Errorf("round trip lost edges: %d", back.NumEdges())
	}
	if _, err := NewNetwork(2, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestGenerateBA(t *testing.T) {
	n, err := GenerateBA(1000, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumVertices() != 1000 || n.NumEdges() != 999 {
		t.Errorf("BA_s size = %d,%d", n.NumVertices(), n.NumEdges())
	}
	if _, err := GenerateBA(10, 0, 7); err == nil {
		t.Error("invalid BA parameters accepted")
	}
}

func TestAssignProbabilities(t *testing.T) {
	n, err := LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := n.AssignProbabilities("iwc", 0)
	if err != nil {
		t.Fatal(err)
	}
	// iwc: m̃ equals the number of vertices with in-edges (34 on Karate).
	if math.Abs(ig.SumProbabilities()-34) > 1e-9 {
		t.Errorf("iwc m~ = %v, want 34", ig.SumProbabilities())
	}
	if _, err := n.AssignProbabilities("bogus", 0); err == nil {
		t.Error("unknown model accepted")
	}
	uni, err := n.AssignUniform(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(uni.SumProbabilities()-78) > 1e-9 {
		t.Errorf("uniform 0.5 m~ = %v, want 78", uni.SumProbabilities())
	}
	if _, err := n.AssignUniform(0); err == nil {
		t.Error("p=0 accepted")
	}
	if ig.NumVertices() != 34 || ig.NumEdges() != 156 {
		t.Errorf("influence network size = %d,%d", ig.NumVertices(), ig.NumEdges())
	}
}

func TestSelectSeedsAllApproaches(t *testing.T) {
	ig := karateUC(t)
	oracle, err := ig.NewInfluenceOracle(50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	reference := mustInfluence(t, oracle, oracle.GreedySeeds(2))
	for _, a := range Approaches() {
		sampleNumber := 512
		if a == RIS {
			sampleNumber = 8192
		}
		res, err := ig.SelectSeeds(SeedOptions{
			Approach: a, SeedSize: 2, SampleNumber: sampleNumber, Seed: 11,
		})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(res.Seeds) != 2 {
			t.Fatalf("%s returned %v", a, res.Seeds)
		}
		inf := mustInfluence(t, oracle, res.Seeds)
		if inf < 0.9*reference {
			t.Errorf("%s seeds %v have influence %v, reference %v", a, res.Seeds, inf, reference)
		}
		if res.Cost.VerticesExamined <= 0 {
			t.Errorf("%s reported no traversal cost", a)
		}
	}
}

func TestSelectSeedsValidation(t *testing.T) {
	ig := karateUC(t)
	if _, err := ig.SelectSeeds(SeedOptions{Approach: "bogus", SeedSize: 1, SampleNumber: 1}); err == nil {
		t.Error("unknown approach accepted")
	}
	if _, err := ig.SelectSeeds(SeedOptions{Approach: RIS, SeedSize: 0, SampleNumber: 1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ig.SelectSeeds(SeedOptions{Approach: RIS, SeedSize: 1, SampleNumber: 0}); err == nil {
		t.Error("sample number 0 accepted")
	}
	var nilNet *InfluenceNetwork
	if _, err := nilNet.SelectSeeds(SeedOptions{Approach: RIS, SeedSize: 1, SampleNumber: 1}); err == nil {
		t.Error("nil network accepted")
	}
}

func TestSelectSeedsLazyAgreesWithEager(t *testing.T) {
	ig := karateUC(t)
	oracle, err := ig.NewInfluenceOracle(50000, 5)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := ig.SelectSeeds(SeedOptions{Approach: Snapshot, SeedSize: 3, SampleNumber: 256, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := ig.SelectSeeds(SeedOptions{Approach: Snapshot, SeedSize: 3, SampleNumber: 256, Seed: 9, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mustInfluence(t, oracle, eager.Seeds)-mustInfluence(t, oracle, lazy.Seeds)) > 1.0 {
		t.Errorf("lazy and eager seed quality differ: %v vs %v", eager.Seeds, lazy.Seeds)
	}
}

func TestInfluenceOracle(t *testing.T) {
	ig := karateUC(t)
	oracle, err := ig.NewInfluenceOracle(100000, 13)
	if err != nil {
		t.Fatal(err)
	}
	single := mustInfluence(t, oracle, []int{0})
	if single < 1 || single > 34 {
		t.Errorf("oracle influence of vertex 0 = %v", single)
	}
	pair := mustInfluence(t, oracle, []int{0, 33})
	if pair < single {
		t.Errorf("adding a seed decreased oracle influence: %v -> %v", single, pair)
	}
	vs, infs := oracle.TopVertices(3)
	if len(vs) != 3 || infs[0] < infs[2] {
		t.Errorf("TopVertices = %v %v", vs, infs)
	}
	if oracle.ConfidenceHalfWidth99() <= 0 {
		t.Error("confidence half width should be positive")
	}
	if _, err := ig.NewInfluenceOracle(0, 1); err == nil {
		t.Error("zero RR sets accepted")
	}
	var nilNet *InfluenceNetwork
	if _, err := nilNet.NewInfluenceOracle(10, 1); err == nil {
		t.Error("nil network accepted")
	}
}

func TestStudyDistribution(t *testing.T) {
	ig := karateUC(t)
	oracle, err := ig.NewInfluenceOracle(20000, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ig.StudyDistribution(StudyOptions{
		Approach: Snapshot, SeedSize: 1, SampleNumber: 4096, Trials: 30, Seed: 21, Oracle: oracle,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Finding 1: at a large sample number the distribution is (nearly)
	// degenerate — Karate uc0.1 has two near-tied top vertices, so allow at
	// most a rare flip.
	if res.Entropy > 0.5 || res.DistinctSeedSets > 2 || res.ModalCount < 27 {
		t.Errorf("converged study = %+v", res)
	}
	if len(res.Influences) != 30 {
		t.Errorf("influences recorded = %d", len(res.Influences))
	}
	if res.MeanInfluence <= 0 || res.MeanTraversalCost <= 0 || res.MeanSampleSize <= 0 {
		t.Errorf("study metrics = %+v", res)
	}
	// Tiny sample number -> diverse solutions.
	noisy, err := ig.StudyDistribution(StudyOptions{
		Approach: Oneshot, SeedSize: 1, SampleNumber: 1, Trials: 30, Seed: 23, Oracle: oracle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Entropy <= res.Entropy {
		t.Errorf("entropy at sample number 1 (%v) should exceed entropy at 256 (%v)", noisy.Entropy, res.Entropy)
	}
	// Validation paths.
	if _, err := ig.StudyDistribution(StudyOptions{Approach: Snapshot, SeedSize: 1, SampleNumber: 1, Trials: 1}); err == nil {
		t.Error("missing oracle accepted")
	}
	if _, err := ig.StudyDistribution(StudyOptions{Approach: "bogus", SeedSize: 1, SampleNumber: 1, Trials: 1, Oracle: oracle}); err == nil {
		t.Error("unknown approach accepted")
	}
	var nilNet *InfluenceNetwork
	if _, err := nilNet.StudyDistribution(StudyOptions{}); err == nil {
		t.Error("nil network accepted")
	}
}

func TestSimulateInfluence(t *testing.T) {
	// Star 0 -> {1,2,3,4} with p = 0.5: Inf({0}) = 3.
	n, err := NewNetwork(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	ig, err := n.AssignUniform(0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ig.SimulateInfluence([]int{0}, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 0.1 {
		t.Errorf("SimulateInfluence = %v, want approx 3", got)
	}
	if _, err := ig.SimulateInfluence([]int{0}, 0, 1); err == nil {
		t.Error("zero simulations accepted")
	}
	zero, err := ig.SimulateInfluence(nil, 10, 1)
	if err != nil || zero != 0 {
		t.Errorf("empty seed simulation = %v, %v", zero, err)
	}
	var nilNet *InfluenceNetwork
	if _, err := nilNet.SimulateInfluence([]int{0}, 1, 1); err == nil {
		t.Error("nil network accepted")
	}
}

func TestThreeApproachesConvergeToSameSolution(t *testing.T) {
	// The paper's Finding 1 exercised through the public API: at large sample
	// numbers the three approaches return the same seed set on Karate uc0.1.
	ig := karateUC(t)
	oracle, err := ig.NewInfluenceOracle(50000, 29)
	if err != nil {
		t.Fatal(err)
	}
	var first []int
	for _, a := range Approaches() {
		sampleNumber := 2048
		if a == RIS {
			sampleNumber = 65536
		}
		res, err := ig.SelectSeeds(SeedOptions{Approach: a, SeedSize: 1, SampleNumber: sampleNumber, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res.Seeds
			continue
		}
		if res.Seeds[0] != first[0] {
			t.Errorf("%s selected %v, earlier approach selected %v (oracle says %v is greedy)",
				a, res.Seeds, first, oracle.GreedySeeds(1))
		}
	}
}
