package imdist

// This file contains one benchmark per table and figure of the paper's
// evaluation section, plus micro-benchmarks of the public API. Each
// table/figure benchmark drives the same experiment harness cmd/imexp uses,
// at the unit preset so the whole suite completes in minutes; run cmd/imexp
// with -preset small or -preset paper to regenerate the artefacts at full
// fidelity (see EXPERIMENTS.md).

import (
	"bytes"
	"strings"
	"testing"

	"imdist/internal/experiment"
)

// benchmarkExperiment runs one registered experiment b.N times on a shared
// unit-preset environment (the environment caches graphs and oracles, so the
// steady-state iteration measures the sweep itself). It reports the number of
// output rows so regressions in coverage are visible alongside timing.
func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	env, err := experiment.NewEnv(experiment.Unit)
	if err != nil {
		b.Fatal(err)
	}
	rows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := experiment.Run(&buf, id, env); err != nil {
			b.Fatal(err)
		}
		rows = strings.Count(buf.String(), "\n")
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable3NetworkStats(b *testing.B)             { benchmarkExperiment(b, "table3") }
func BenchmarkTable4TopSingleVertexInfluence(b *testing.B) { benchmarkExperiment(b, "table4") }
func BenchmarkTable5LeastSampleNumber(b *testing.B)        { benchmarkExperiment(b, "table5") }
func BenchmarkTable6OneshotVsSnapshot(b *testing.B)        { benchmarkExperiment(b, "table6") }
func BenchmarkTable7RISVsSnapshot(b *testing.B)            { benchmarkExperiment(b, "table7") }
func BenchmarkTable8TraversalCost(b *testing.B)            { benchmarkExperiment(b, "table8") }
func BenchmarkTable9IdenticalAccuracyCost(b *testing.B)    { benchmarkExperiment(b, "table9") }
func BenchmarkFig1EntropyKarate(b *testing.B)              { benchmarkExperiment(b, "fig1") }
func BenchmarkFig2EntropyPlateau(b *testing.B)             { benchmarkExperiment(b, "fig2") }
func BenchmarkFig3EntropyByProbability(b *testing.B)       { benchmarkExperiment(b, "fig3") }
func BenchmarkFig4InfluenceBoxPlots(b *testing.B)          { benchmarkExperiment(b, "fig4") }
func BenchmarkFig5GrQcConvergence(b *testing.B)            { benchmarkExperiment(b, "fig5") }
func BenchmarkFig6MeanVsSpread(b *testing.B)               { benchmarkExperiment(b, "fig6") }
func BenchmarkFig7ComparableNumberRatio(b *testing.B)      { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8ComparableSizeRatio(b *testing.B)        { benchmarkExperiment(b, "fig8") }
func BenchmarkExactCheckCrossValidation(b *testing.B)      { benchmarkExperiment(b, "exactcheck") }
func BenchmarkHeuristicsQualityComparison(b *testing.B)    { benchmarkExperiment(b, "heuristics") }

// BenchmarkSelectSeeds measures the public API's seed selection for each
// approach on Karate (uc0.1, k=4) at a mid-range sample number.
func BenchmarkSelectSeeds(b *testing.B) {
	network, err := LoadDataset("Karate")
	if err != nil {
		b.Fatal(err)
	}
	ig, err := network.AssignProbabilities("uc0.1", 1)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		approach Approach
		samples  int
	}{
		{Oneshot, 256},
		{Snapshot, 256},
		{RIS, 16384},
	}
	for _, c := range cases {
		b.Run(string(c.approach), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ig.SelectSeeds(SeedOptions{
					Approach:     c.approach,
					SeedSize:     4,
					SampleNumber: c.samples,
					Seed:         uint64(i + 1),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInfluenceOracle measures oracle construction and queries.
func BenchmarkInfluenceOracle(b *testing.B) {
	network, err := LoadDataset("Karate")
	if err != nil {
		b.Fatal(err)
	}
	ig, err := network.AssignProbabilities("iwc", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Build100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ig.NewInfluenceOracle(100000, uint64(i+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	oracle, err := ig.NewInfluenceOracle(100000, 7)
	if err != nil {
		b.Fatal(err)
	}
	seeds := oracle.GreedySeeds(4)
	b.Run("Query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = oracle.Influence(seeds)
		}
	})
}

// BenchmarkStudyDistribution measures the core methodology primitive: T
// trials of one approach at one sample number.
func BenchmarkStudyDistribution(b *testing.B) {
	network, err := LoadDataset("Karate")
	if err != nil {
		b.Fatal(err)
	}
	ig, err := network.AssignProbabilities("uc0.1", 1)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := ig.NewInfluenceOracle(20000, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := ig.StudyDistribution(StudyOptions{
			Approach:     Snapshot,
			SeedSize:     4,
			SampleNumber: 64,
			Trials:       24,
			Seed:         uint64(i + 1),
			Oracle:       oracle,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
