package imdist

// This file contains one benchmark per table and figure of the paper's
// evaluation section, plus micro-benchmarks of the public API. Each
// table/figure benchmark drives the same experiment harness cmd/imexp uses,
// at the unit preset so the whole suite completes in minutes; run cmd/imexp
// with -preset small or -preset paper to regenerate the artefacts at full
// fidelity (see EXPERIMENTS.md).

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"imdist/internal/estimator"
	"imdist/internal/experiment"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// benchmarkExperiment runs one registered experiment b.N times on a shared
// unit-preset environment (the environment caches graphs and oracles, so the
// steady-state iteration measures the sweep itself). It reports the number of
// output rows so regressions in coverage are visible alongside timing.
func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	env, err := experiment.NewEnv(experiment.Unit)
	if err != nil {
		b.Fatal(err)
	}
	rows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := experiment.Run(&buf, id, env); err != nil {
			b.Fatal(err)
		}
		rows = strings.Count(buf.String(), "\n")
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable3NetworkStats(b *testing.B)             { benchmarkExperiment(b, "table3") }
func BenchmarkTable4TopSingleVertexInfluence(b *testing.B) { benchmarkExperiment(b, "table4") }
func BenchmarkTable5LeastSampleNumber(b *testing.B)        { benchmarkExperiment(b, "table5") }
func BenchmarkTable6OneshotVsSnapshot(b *testing.B)        { benchmarkExperiment(b, "table6") }
func BenchmarkTable7RISVsSnapshot(b *testing.B)            { benchmarkExperiment(b, "table7") }
func BenchmarkTable8TraversalCost(b *testing.B)            { benchmarkExperiment(b, "table8") }
func BenchmarkTable9IdenticalAccuracyCost(b *testing.B)    { benchmarkExperiment(b, "table9") }
func BenchmarkFig1EntropyKarate(b *testing.B)              { benchmarkExperiment(b, "fig1") }
func BenchmarkFig2EntropyPlateau(b *testing.B)             { benchmarkExperiment(b, "fig2") }
func BenchmarkFig3EntropyByProbability(b *testing.B)       { benchmarkExperiment(b, "fig3") }
func BenchmarkFig4InfluenceBoxPlots(b *testing.B)          { benchmarkExperiment(b, "fig4") }
func BenchmarkFig5GrQcConvergence(b *testing.B)            { benchmarkExperiment(b, "fig5") }
func BenchmarkFig6MeanVsSpread(b *testing.B)               { benchmarkExperiment(b, "fig6") }
func BenchmarkFig7ComparableNumberRatio(b *testing.B)      { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8ComparableSizeRatio(b *testing.B)        { benchmarkExperiment(b, "fig8") }
func BenchmarkExactCheckCrossValidation(b *testing.B)      { benchmarkExperiment(b, "exactcheck") }
func BenchmarkHeuristicsQualityComparison(b *testing.B)    { benchmarkExperiment(b, "heuristics") }

// benchmarkInfluenceGraph returns a dense-ish BA graph (n vertices, m
// attachments, uniform p) for the parallel-engine benchmarks.
func benchmarkInfluenceGraph(b *testing.B, n, m int, p float64) *graph.InfluenceGraph {
	b.Helper()
	network, err := GenerateBA(n, m, 7)
	if err != nil {
		b.Fatal(err)
	}
	in, err := network.AssignUniform(p)
	if err != nil {
		b.Fatal(err)
	}
	return in.ig
}

// BenchmarkParallelBuild measures the Build phase of the two pre-sampling
// approaches — Snapshot's τ live-edge graphs and RIS's θ RR sets — serially
// and on the worker pool, on a generated BA graph. The workers=4 rows should
// run at least ~2x faster than workers=1 on a 4-core machine.
func BenchmarkParallelBuild(b *testing.B) {
	ig := benchmarkInfluenceGraph(b, 20000, 8, 0.05)
	cases := []struct {
		approach estimator.Approach
		samples  int
	}{
		{estimator.Snapshot, 32},
		{estimator.RIS, 20000},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.approach, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := estimator.New(c.approach, estimator.Config{
						Graph:        ig,
						SampleNumber: c.samples,
						Source:       rng.NewXoshiro(uint64(i + 1)),
						Workers:      workers,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelOneshotEstimate measures one Oneshot estimate (β forward
// simulations) serially and on the worker pool.
func BenchmarkParallelOneshotEstimate(b *testing.B) {
	ig := benchmarkInfluenceGraph(b, 20000, 8, 0.05)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			est, err := estimator.New(estimator.Oneshot, estimator.Config{
				Graph:        ig,
				SampleNumber: 64,
				Source:       rng.NewXoshiro(1),
				Workers:      workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = est.Estimate(graph.VertexID(i % ig.NumVertices()))
			}
		})
	}
}

// BenchmarkParallelOracleBuild measures shared-oracle construction (the
// dominant fixed cost of every study) serially and on the worker pool.
func BenchmarkParallelOracleBuild(b *testing.B) {
	network, err := GenerateBA(20000, 8, 7)
	if err != nil {
		b.Fatal(err)
	}
	in, err := network.AssignUniform(0.05)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := in.NewInfluenceOracleWithOptions(OracleOptions{
					RRSets:  20000,
					Seed:    uint64(i + 1),
					Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectSeeds measures the public API's seed selection for each
// approach on Karate (uc0.1, k=4) at a mid-range sample number.
func BenchmarkSelectSeeds(b *testing.B) {
	network, err := LoadDataset("Karate")
	if err != nil {
		b.Fatal(err)
	}
	ig, err := network.AssignProbabilities("uc0.1", 1)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		approach Approach
		samples  int
	}{
		{Oneshot, 256},
		{Snapshot, 256},
		{RIS, 16384},
	}
	for _, c := range cases {
		b.Run(string(c.approach), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ig.SelectSeeds(SeedOptions{
					Approach:     c.approach,
					SeedSize:     4,
					SampleNumber: c.samples,
					Seed:         uint64(i + 1),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInfluenceOracle measures oracle construction and queries.
func BenchmarkInfluenceOracle(b *testing.B) {
	network, err := LoadDataset("Karate")
	if err != nil {
		b.Fatal(err)
	}
	ig, err := network.AssignProbabilities("iwc", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Build100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ig.NewInfluenceOracle(100000, uint64(i+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	oracle, err := ig.NewInfluenceOracle(100000, 7)
	if err != nil {
		b.Fatal(err)
	}
	seeds := oracle.GreedySeeds(4)
	b.Run("Query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := oracle.Influence(seeds); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStudyDistribution measures the core methodology primitive: T
// trials of one approach at one sample number.
func BenchmarkStudyDistribution(b *testing.B) {
	network, err := LoadDataset("Karate")
	if err != nil {
		b.Fatal(err)
	}
	ig, err := network.AssignProbabilities("uc0.1", 1)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := ig.NewInfluenceOracle(20000, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := ig.StudyDistribution(StudyOptions{
			Approach:     Snapshot,
			SeedSize:     4,
			SampleNumber: 64,
			Trials:       24,
			Seed:         uint64(i + 1),
			Oracle:       oracle,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
