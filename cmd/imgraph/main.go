// Command imgraph lists, materializes and describes the study's datasets.
//
// Usage:
//
//	imgraph -list
//	imgraph -dataset Karate -stats
//	imgraph -dataset BA_d -out ba_d.txt
//	imgraph -generate ba -n 1000 -m 11 -out ba.txt
//
// Generated files are directed edge lists readable by imseed -graph.
package main

import (
	"flag"
	"fmt"
	"os"

	"imdist"
	"imdist/internal/data"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imgraph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("imgraph", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list the named datasets and exit")
		dataset  = fs.String("dataset", "", "named dataset to load")
		generate = fs.String("generate", "", "generate a synthetic network: ba")
		n        = fs.Int("n", 1000, "vertices for -generate")
		m        = fs.Int("m", 1, "attachments per vertex for -generate ba")
		seed     = fs.Uint64("seed", 1, "random seed for -generate")
		stats    = fs.Bool("stats", false, "print Table-3 style statistics")
		out      = fs.String("out", "", "write the graph as an edge list to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Printf("%-12s %10s %10s %-9s %s\n", "name", "paper n", "paper m", "type", "generation")
		for _, info := range data.Catalog() {
			fmt.Printf("%-12s %10d %10d %-9s %s\n", info.Name, info.PaperN, info.PaperM, info.Type, info.Generation)
		}
		return nil
	}
	var (
		network *imdist.Network
		err     error
	)
	switch {
	case *dataset != "":
		network, err = imdist.LoadDataset(*dataset)
	case *generate == "ba":
		network, err = imdist.GenerateBA(*n, *m, *seed)
	case *generate != "":
		return fmt.Errorf("unknown generator %q (supported: ba)", *generate)
	default:
		return fmt.Errorf("nothing to do; use -list, -dataset or -generate")
	}
	if err != nil {
		return err
	}
	if *stats {
		s := network.Stats()
		fmt.Printf("n=%d m=%d max_out=%d max_in=%d clustering=%.3f avg_distance=%.2f\n",
			s.Vertices, s.Edges, s.MaxOutDegree, s.MaxInDegree, s.ClusteringCoefficient, s.AverageDistance)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := network.WriteEdgeList(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d vertices, %d edges to %s\n", network.NumVertices(), network.NumEdges(), *out)
	}
	if !*stats && *out == "" {
		fmt.Printf("n=%d m=%d\n", network.NumVertices(), network.NumEdges())
	}
	return nil
}
