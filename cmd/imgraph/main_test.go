package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"imdist/internal/graph"
)

// TestGenerateDeterministic pins the CLI's generation contract: equal seeds
// write byte-identical edge lists, different seeds different ones.
func TestGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	gen := func(name string, seed string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := run([]string{"-generate", "ba", "-n", "300", "-m", "2", "-seed", seed, "-out", path}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a := gen("a.txt", "5")
	b := gen("b.txt", "5")
	c := gen("c.txt", "6")
	if !bytes.Equal(a, b) {
		t.Error("same seed generated different edge lists")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds generated identical edge lists")
	}
}

// degreeSequences returns the sorted out- and in-degree sequences of g —
// the relabeling-invariant shape of a directed graph. ReadEdgeList compacts
// vertex ids by first appearance, so a round trip may permute labels; the
// degree sequences (and the counts) must survive unchanged.
func degreeSequences(g *graph.Graph) (out, in []int) {
	n := g.NumVertices()
	out = make([]int, n)
	in = make([]int, n)
	for v := 0; v < n; v++ {
		neigh := g.OutNeighbors(graph.VertexID(v))
		out[v] = len(neigh)
		for _, u := range neigh {
			in[u]++
		}
	}
	sort.Ints(out)
	sort.Ints(in)
	return out, in
}

// TestEdgeListRoundTrip writes a generated graph and a named dataset with the
// CLI and round-trips each through graph.ReadEdgeList/WriteEdgeList: vertex
// and edge counts and the degree sequences must survive, and the cycle must
// be deterministic (equal bytes on every re-serialization of the same parse).
func TestEdgeListRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"generated", []string{"-generate", "ba", "-n", "200", "-m", "3", "-seed", "9"}},
		{"dataset", []string{"-dataset", "Karate"}},
	} {
		path := filepath.Join(dir, tc.name+".txt")
		if err := run(append(tc.args, "-out", path)); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.ReadEdgeList(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: ReadEdgeList: %v", tc.name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph round-tripped (n=%d m=%d)", tc.name, g.NumVertices(), g.NumEdges())
		}
		var w1 bytes.Buffer
		if err := graph.WriteEdgeList(&w1, g); err != nil {
			t.Fatal(err)
		}
		g2, err := graph.ReadEdgeList(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("%s: reparse: %v", tc.name, err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Errorf("%s: round trip changed shape: (%d, %d) != (%d, %d)",
				tc.name, g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		out1, in1 := degreeSequences(g)
		out2, in2 := degreeSequences(g2)
		if !reflect.DeepEqual(out1, out2) || !reflect.DeepEqual(in1, in2) {
			t.Errorf("%s: round trip changed the degree sequences", tc.name)
		}
		// Serialization of one parse is deterministic, byte for byte.
		var w1b bytes.Buffer
		if err := graph.WriteEdgeList(&w1b, g); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w1b.Bytes()) {
			t.Errorf("%s: WriteEdgeList not deterministic", tc.name)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no action accepted")
	}
	if err := run([]string{"-generate", "nope"}); err == nil {
		t.Error("unknown generator accepted")
	}
	if err := run([]string{"-dataset", "NoSuchDataset"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("-list failed: %v", err)
	}
	if err := run([]string{"-dataset", "Karate", "-stats"}); err != nil {
		t.Errorf("-stats failed: %v", err)
	}
}
