// Command imseed selects influence-maximization seeds on a graph using one of
// the three algorithmic approaches.
//
// Usage:
//
//	imseed -dataset Karate -prob uc0.1 -algo RIS -k 4 -samples 100000
//	imseed -graph edges.txt -prob iwc -algo Snapshot -k 10 -samples 200
//
// The tool prints the selected seed set, its estimated influence spread (via
// an RR-set oracle) and the traversal cost and sample size of the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"imdist"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imseed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("imseed", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to a directed edge-list file")
		dataset   = fs.String("dataset", "", "named dataset (alternative to -graph); see imgraph -list")
		prob      = fs.String("prob", "iwc", "edge probability model: uc0.1, uc0.01, iwc, owc, tv")
		algo      = fs.String("algo", "RIS", "approach: Oneshot, Snapshot or RIS")
		k         = fs.Int("k", 4, "seed set size")
		samples   = fs.Int("samples", 10000, "sample number (beta/tau/theta)")
		oracleRR  = fs.Int("oracle", 200000, "RR sets backing the influence oracle")
		seed      = fs.Uint64("seed", 1, "random seed")
		lazy      = fs.Bool("lazy", false, "use CELF lazy greedy")
		workers   = fs.Int("workers", 1, "sampling parallelism: 1 = serial, >1 = that many workers, -1 = all CPUs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		network *imdist.Network
		err     error
	)
	switch {
	case *graphPath != "":
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		network, err = imdist.LoadEdgeList(f)
	case *dataset != "":
		network, err = imdist.LoadDataset(*dataset)
	default:
		return fmt.Errorf("either -graph or -dataset is required")
	}
	if err != nil {
		return err
	}
	ig, err := network.AssignProbabilities(*prob, *seed)
	if err != nil {
		return err
	}
	res, err := ig.SelectSeeds(imdist.SeedOptions{
		Approach:     *algo,
		SeedSize:     *k,
		SampleNumber: *samples,
		Seed:         *seed,
		Lazy:         *lazy,
		Workers:      *workers,
	})
	if err != nil {
		return err
	}
	oracle, err := ig.NewInfluenceOracleWithOptions(imdist.OracleOptions{
		RRSets:  *oracleRR,
		Seed:    *seed + 1,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("network: n=%d m=%d (m~=%.1f, prob=%s)\n",
		ig.NumVertices(), ig.NumEdges(), ig.SumProbabilities(), *prob)
	fmt.Printf("algorithm: %s, sample number %d, k=%d\n", *algo, *samples, *k)
	fmt.Printf("seeds: %v\n", res.Seeds)
	influence, err := oracle.Influence(res.Seeds)
	if err != nil {
		return err
	}
	fmt.Printf("estimated influence: %.3f (+/- %.3f at 99%%)\n",
		influence, oracle.ConfidenceHalfWidth99())
	fmt.Printf("traversal cost: %d vertices, %d edges\n",
		res.Cost.VerticesExamined, res.Cost.EdgesExamined)
	fmt.Printf("sample size: %d vertices, %d edges\n",
		res.Cost.SampleVertices, res.Cost.SampleEdges)
	return nil
}
