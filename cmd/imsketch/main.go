// Command imsketch builds an RR-sketch file from a network — the expensive,
// offline half of the build-once / serve-many pipeline. The resulting sketch
// is a self-contained influence oracle that imserve (or any process using
// imdist.LoadSketchFile) can load and query without rebuilding.
//
// Usage:
//
//	imsketch -dataset Karate -prob uc0.1 -rr 200000 -seed 7 -out karate.sketch
//	imsketch -graph edges.txt -prob iwc -model LT -rr 1000000 -workers -1 -out g.sketch
//	imsketch -info karate.sketch
//
// The pipeline end to end:
//
//	imgraph -generate ba -n 10000 -m 3 -out ba.txt
//	imsketch -graph ba.txt -prob iwc -rr 1000000 -workers -1 -out ba.sketch
//	imserve -sketch ba.sketch -addr :8080
package main

import (
	"flag"
	"fmt"
	"os"

	"imdist"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imsketch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("imsketch", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to a directed edge-list file")
		dataset   = fs.String("dataset", "", "named dataset (alternative to -graph); see imgraph -list")
		prob      = fs.String("prob", "iwc", "edge probability model: uc0.1, uc0.01, iwc, owc, tv")
		model     = fs.String("model", "IC", "diffusion model: IC or LT")
		rr        = fs.Int("rr", 200000, "number of reverse-reachable sets in the sketch")
		seed      = fs.Uint64("seed", 1, "random seed (recorded in the sketch)")
		workers   = fs.Int("workers", -1, "build parallelism: 1 = serial, >1 = that many workers, -1 = all CPUs")
		out       = fs.String("out", "", "output sketch path (required for a build)")
		info      = fs.String("info", "", "print the metadata of an existing sketch and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *info != "" {
		return describe(*info)
	}
	if *out == "" {
		return fmt.Errorf("-out is required (or use -info to inspect a sketch)")
	}
	var (
		network *imdist.Network
		err     error
	)
	switch {
	case *graphPath != "":
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		network, err = imdist.LoadEdgeList(f)
	case *dataset != "":
		network, err = imdist.LoadDataset(*dataset)
	default:
		return fmt.Errorf("either -graph or -dataset is required")
	}
	if err != nil {
		return err
	}
	ig, err := network.AssignProbabilities(*prob, *seed)
	if err != nil {
		return err
	}
	oracle, err := ig.NewInfluenceOracleWithOptions(imdist.OracleOptions{
		Model:   *model,
		RRSets:  *rr,
		Seed:    *seed,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	if err := oracle.SaveSketchFile(*out); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("sketch: n=%d rr_sets=%d model=%s seed=%d (99%% CI +/- %.3f)\n",
		oracle.NumVertices(), oracle.NumRRSets(), oracle.Model(), oracle.BuildSeed(),
		oracle.ConfidenceHalfWidth99())
	fmt.Printf("wrote %d bytes to %s\n", fi.Size(), *out)
	return nil
}

func describe(path string) error {
	oracle, err := imdist.LoadSketchFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("sketch: n=%d rr_sets=%d model=%s seed=%d (99%% CI +/- %.3f)\n",
		oracle.NumVertices(), oracle.NumRRSets(), oracle.Model(), oracle.BuildSeed(),
		oracle.ConfidenceHalfWidth99())
	return nil
}
