// Command imsketch builds an RR-sketch file from a network — the expensive,
// offline half of the build-once / serve-many pipeline. The resulting sketch
// is a self-contained influence oracle that imserve (or any process using
// imdist.LoadSketchFile) can load and query without rebuilding.
//
// Builds run on the incremental sketch builder: fixed-size by default (-rr),
// or adaptive with -target-eps, which keeps generating RR sets until the
// sketch's relative-error estimate reaches the target (capped by -rr). Long
// builds can checkpoint batch by batch to an append-only file (-checkpoint)
// and continue after a crash or restart (-resume); the finished sketch is
// byte-identical to an uninterrupted build either way.
//
// Builds larger than RAM run with -spill: every batch streams to the
// checkpoint file as it is generated and only a -mem-budget working set of
// decoded RR sets stays in memory, so peak RSS is bounded by the budget plus
// one in-flight batch rather than the full sketch. Spill output is
// byte-identical to the in-memory build of the same seed.
//
// Usage:
//
//	imsketch -dataset Karate -prob uc0.1 -rr 200000 -seed 7 -out karate.sketch
//	imsketch -graph edges.txt -prob iwc -model LT -rr 1000000 -workers -1 -out g.sketch
//	imsketch -dataset Karate -target-eps 0.05 -rr 5000000 -progress -out karate.sketch
//	imsketch -graph big.txt -rr 100000000 -checkpoint big.ckpt -out big.sketch
//	imsketch -graph big.txt -rr 100000000 -checkpoint big.ckpt -resume -out big.sketch
//	imsketch -graph big.txt -rr 100000000 -spill -mem-budget 256MiB -out big.sketch
//	imsketch -info karate.sketch
//	imsketch -split 4 big.sketch
//
// -split N partitions an existing sketch into N shard files
// (<sketch>.shard<i>-of-<N>, or -out as the prefix) along the batch engine's
// 64Ki-set block boundaries. Each shard is a complete sketch over a
// contiguous slice of the RR-set pool and records its shard lineage, so a
// fleet of imserve processes — one per shard, fronted by
// imserve -coordinator — serves the original sketch's answers byte for byte.
//
// The pipeline end to end:
//
//	imgraph -generate ba -n 10000 -m 3 -out ba.txt
//	imsketch -graph ba.txt -prob iwc -rr 1000000 -workers -1 -out ba.sketch
//	imserve -sketch ba.sketch -addr :8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"imdist"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imsketch:", err)
		os.Exit(1)
	}
}

// buildReport is the JSON document -report writes: the per-build data point
// of the build-pipeline perf trajectory (sets generated, wall time, achieved
// bound).
type buildReport struct {
	Dataset    string  `json:"dataset,omitempty"`
	Graph      string  `json:"graph,omitempty"`
	Prob       string  `json:"prob"`
	Model      string  `json:"model"`
	Vertices   int     `json:"vertices"`
	Seed       uint64  `json:"seed"`
	Workers    int     `json:"workers"`
	TargetEps  float64 `json:"target_eps,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	K          int     `json:"k,omitempty"`
	MaxSets    int     `json:"max_sets"`
	Sets       int     `json:"sets"`
	Converged  bool    `json:"converged"`
	Bound      float64 `json:"achieved_bound,omitempty"`
	Resumed    int     `json:"resumed_from_sets,omitempty"`
	WallMillis int64   `json:"wall_ms"`
	Bytes      int64   `json:"sketch_bytes"`
	// Spill builds additionally record the disk/memory split: the spill
	// file's final size, the configured working-set budget, and the process
	// peak RSS (0 where the platform cannot report it).
	Spill          bool  `json:"spill,omitempty"`
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
	SpillBytes     int64 `json:"spill_bytes,omitempty"`
	PeakRSSBytes   int64 `json:"peak_rss_bytes,omitempty"`
}

// parseByteSize parses a human byte count: a plain integer is bytes, and the
// binary suffixes K/KB/KiB, M/MB/MiB, G/GB/GiB scale by 2^10/2^20/2^30. A
// negative value means "unbounded" to -mem-budget.
func parseByteSize(s string) (int64, error) {
	num, mult := strings.TrimSpace(s), int64(1)
	upper := strings.ToUpper(num)
	for _, suf := range []struct {
		name string
		mul  int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mul
			num = strings.TrimSpace(num[:len(num)-len(suf.name)])
			break
		}
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 1048576, 256KiB, 64M)", s)
	}
	return n * mult, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("imsketch", flag.ContinueOnError)
	var (
		graphPath  = fs.String("graph", "", "path to a directed edge-list file")
		dataset    = fs.String("dataset", "", "named dataset (alternative to -graph); see imgraph -list")
		prob       = fs.String("prob", "iwc", "edge probability model: uc0.1, uc0.01, iwc, owc, tv")
		model      = fs.String("model", "IC", "diffusion model: IC or LT")
		rr         = fs.Int("rr", 200000, "number of reverse-reachable sets (the cap, for -target-eps builds)")
		seed       = fs.Uint64("seed", 1, "random seed (recorded in the sketch)")
		workers    = fs.Int("workers", -1, "build parallelism: 1 = serial, >1 = that many workers, -1 = all CPUs")
		kernel     = fs.String("kernel", "auto", "coverage kernel for the build's error-bound evaluations: auto, epoch or bitpack (sketch bytes are identical either way)")
		out        = fs.String("out", "", "output sketch path (required for a build)")
		info       = fs.String("info", "", "verify an existing sketch or checkpoint section by section and exit")
		split      = fs.Int("split", 0, "split the sketch file given as the positional argument into this many shard files and exit (-out sets the shard-name prefix)")
		targetEps  = fs.Float64("target-eps", 0, "build adaptively to this relative error (0 = fixed -rr build)")
		delta      = fs.Float64("delta", 0.01, "failure probability of the -target-eps error bound")
		boundK     = fs.Int("k", 10, "seed-set size the -target-eps error bound targets")
		checkpoint = fs.String("checkpoint", "", "append-only build checkpoint file, durably extended every batch")
		resume     = fs.Bool("resume", false, "continue the build from an existing -checkpoint file")
		spill      = fs.Bool("spill", false, "stream RR sets to the checkpoint file as they are built (default <out>.spill) and keep only -mem-budget bytes decoded in memory")
		memBudget  = fs.String("mem-budget", "64MiB", "spill working-set budget, e.g. 256KiB or 1G (negative = unbounded; only with -spill)")
		progress   = fs.Bool("progress", false, "log build rounds to stderr")
		report     = fs.String("report", "", "write a JSON build report (sets, wall time, achieved bound) to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *info != "" {
		return describe(*info)
	}
	if *split != 0 {
		if fs.NArg() != 1 {
			return fmt.Errorf("-split expects exactly one sketch path argument, got %d", fs.NArg())
		}
		return splitSketch(fs.Arg(0), *out, *split)
	}
	if *out == "" {
		return fmt.Errorf("-out is required (or use -info to inspect a sketch)")
	}
	var budget int64
	if *spill {
		var perr error
		if budget, perr = parseByteSize(*memBudget); perr != nil {
			return fmt.Errorf("-mem-budget: %w", perr)
		}
	}
	// A spill build without an explicit checkpoint keeps its scratch file next
	// to the sketch and removes it once the sketch is durable; an explicit
	// -checkpoint is the user's file and stays.
	autoSpill := false
	if *spill && *checkpoint == "" {
		*checkpoint = *out + ".spill"
		autoSpill = true
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *checkpoint != "" {
		// An existing checkpoint is only continued deliberately: without
		// -resume a leftover file from another run would otherwise be
		// silently extended.
		if st, err := os.Stat(*checkpoint); err == nil && st.Size() > 0 && !*resume {
			return fmt.Errorf("checkpoint %s already exists; pass -resume to continue it or remove it first", *checkpoint)
		} else if os.IsNotExist(err) && *resume {
			return fmt.Errorf("-resume: checkpoint %s does not exist", *checkpoint)
		}
	}
	var (
		network *imdist.Network
		err     error
	)
	switch {
	case *graphPath != "":
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		network, err = imdist.LoadEdgeList(f)
	case *dataset != "":
		network, err = imdist.LoadDataset(*dataset)
	default:
		return fmt.Errorf("either -graph or -dataset is required")
	}
	if err != nil {
		return err
	}
	ig, err := network.AssignProbabilities(*prob, *seed)
	if err != nil {
		return err
	}

	opt := imdist.OracleOptions{Model: *model, Seed: *seed, Workers: *workers, Kernel: *kernel}
	bopt := imdist.BuildOptions{
		TargetEps: *targetEps,
		Delta:     *delta,
		K:         *boundK,
		MaxSets:   *rr,
		Spill:     *spill,
		MemBudget: budget,
	}
	// The first progress report of a resumed build carries the durable set
	// count with nothing appended yet; capture it for the report instead of
	// paying a separate decode pass over the checkpoint.
	resumedFrom := 0
	sawFirst := false
	var spillBytes int64
	bopt.Progress = func(p imdist.BuildProgress) {
		if !sawFirst {
			resumedFrom = p.RRSets - p.Appended
			sawFirst = true
		}
		spillBytes = p.SpillBytes
		if !*progress {
			return
		}
		if math.IsInf(p.Bound, 1) {
			fmt.Fprintf(os.Stderr, "imsketch: %d/%d sets (%.0f%%)\n", p.RRSets, *rr, 100*p.Fraction)
		} else {
			fmt.Fprintf(os.Stderr, "imsketch: %d sets, bound %.4f (target %.4f, %.0f%%)\n",
				p.RRSets, p.Bound, *targetEps, 100*p.Fraction)
		}
	}

	start := time.Now()
	var (
		oracle *imdist.InfluenceOracle
		sum    imdist.BuildSummary
	)
	if *checkpoint != "" {
		oracle, sum, err = ig.BuildSketchWithCheckpoint(context.Background(), *checkpoint, opt, bopt)
	} else {
		builder, berr := ig.NewSketchBuilder(opt)
		if berr != nil {
			return berr
		}
		if sum, err = builder.Build(context.Background(), bopt); err == nil {
			oracle, err = builder.Oracle()
		}
	}
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if err := oracle.SaveSketchFile(*out); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	if autoSpill {
		// The sketch is durable; the scratch spill file has served its
		// purpose. (The oracle stays readable: its working set is in memory
		// and unix unlink keeps the mapped file alive until close.)
		os.Remove(*checkpoint)
	}
	if *spill {
		fmt.Printf("spill build: %d bytes streamed to disk, working-set budget %s, peak RSS %d MiB\n",
			spillBytes, *memBudget, peakRSS()>>20)
	}
	fmt.Printf("sketch: n=%d rr_sets=%d model=%s seed=%d (99%% CI +/- %.3f)\n",
		oracle.NumVertices(), oracle.NumRRSets(), oracle.Model(), oracle.BuildSeed(),
		oracle.ConfidenceHalfWidth99())
	if *targetEps > 0 {
		status := "converged"
		if !sum.Converged {
			status = fmt.Sprintf("capped at -rr %d", *rr)
		}
		fmt.Printf("adaptive build: bound %.4f vs target %.4f (%s) in %v\n", sum.Bound, *targetEps, status, wall.Round(time.Millisecond))
	}
	fmt.Printf("wrote %d bytes to %s\n", fi.Size(), *out)

	if *report != "" {
		r := buildReport{
			Dataset:    *dataset,
			Graph:      *graphPath,
			Prob:       *prob,
			Model:      string(oracle.Model()),
			Vertices:   oracle.NumVertices(),
			Seed:       *seed,
			Workers:    *workers,
			TargetEps:  *targetEps,
			K:          *boundK,
			MaxSets:    *rr,
			Sets:       sum.RRSets,
			Converged:  sum.Converged,
			Resumed:    resumedFrom,
			WallMillis: wall.Milliseconds(),
			Bytes:      fi.Size(),
		}
		if *spill {
			r.Spill = true
			r.MemBudgetBytes = budget
			r.SpillBytes = spillBytes
			r.PeakRSSBytes = peakRSS()
		}
		if *targetEps > 0 {
			r.Delta = *delta
		}
		if !math.IsInf(sum.Bound, 1) {
			r.Bound = sum.Bound
		}
		raw, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*report, append(raw, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// splitSketch partitions an existing sketch file into shard files, reporting
// each written shard's path and slice.
func splitSketch(in, outPrefix string, shards int) error {
	if outPrefix == "" {
		outPrefix = in
	}
	start := time.Now()
	paths, err := imdist.SplitSketchFile(in, outPrefix, shards)
	if err != nil {
		return err
	}
	for _, p := range paths {
		fi, err := imdist.InspectSketchFile(p)
		if err != nil {
			return fmt.Errorf("verifying %s: %w", p, err)
		}
		fmt.Printf("shard %d/%d: %s (%d of %d rr_sets, %d bytes)\n",
			fi.ShardIndex, fi.ShardCount, p, fi.RRSets, fi.TotalSets, fi.Size)
	}
	fmt.Printf("split %s into %d shards in %v\n", in, len(paths), time.Since(start).Round(time.Millisecond))
	return nil
}

// describe verifies every section of a sketch or checkpoint file — structure
// and CRC-32C — and prints per-section extents. A corrupt file is reported
// section by section and returned as an error (nonzero exit).
func describe(path string) error {
	fi, err := imdist.InspectSketchFile(path)
	if err != nil {
		return err
	}
	kind := "sketch"
	if fi.Version == 2 {
		kind = "checkpoint"
	}
	fmt.Printf("%s: v%d n=%d rr_sets=%d model=%s seed=%d size=%d\n",
		kind, fi.Version, fi.Vertices, fi.RRSets, fi.Model, fi.BuildSeed, fi.Size)
	if fi.ShardCount > 0 {
		fmt.Printf("shard %d of %d, fleet total %d rr_sets\n", fi.ShardIndex, fi.ShardCount, fi.TotalSets)
	}
	fmt.Printf("%-12s %10s %12s %10s %10s %s\n", "section", "offset", "size", "rr_sets", "crc32c", "status")
	for _, s := range fi.Sections {
		status := "ok"
		if !s.OK {
			status = "CORRUPT: " + s.Detail
		}
		crc := "-"
		if s.CRC != 0 || s.Name == "checksum" {
			crc = fmt.Sprintf("%08x", s.CRC)
		}
		fmt.Printf("%-12s %10d %12d %10d %10s %s\n", s.Name, s.Offset, s.Size, s.RRSets, crc, status)
	}
	if fi.Corrupt {
		return fmt.Errorf("%s failed verification", path)
	}
	return nil
}
