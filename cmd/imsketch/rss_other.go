//go:build !linux

package main

// peakRSS is unavailable off Linux; reports omit the field.
func peakRSS() int64 { return 0 }
