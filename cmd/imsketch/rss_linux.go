//go:build linux

package main

import "syscall"

// peakRSS reports the process's peak resident set size in bytes — the memory
// headline a spill build exists to bound.
func peakRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024 // ru_maxrss is KiB on Linux
}
