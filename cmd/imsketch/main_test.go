package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"imdist"
	"imdist/internal/sketchio"
)

// TestPipelineSketchMatchesInMemoryOracle runs the imsketch CLI end to end
// and loads the artifact exactly the way imserve does (sketchio.ReadFile):
// the loaded sketch must return byte-identical GreedySeeds and Influence to
// an in-memory oracle built with the same parameters.
func TestPipelineSketchMatchesInMemoryOracle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "karate.sketch")
	err := run([]string{
		"-dataset", "Karate", "-prob", "uc0.1",
		"-rr", "20000", "-seed", "7", "-workers", "2",
		"-out", path,
	})
	if err != nil {
		t.Fatal(err)
	}

	network, err := imdist.LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := network.AssignProbabilities("uc0.1", 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ig.NewInfluenceOracleWithOptions(imdist.OracleOptions{RRSets: 20000, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	got, err := sketchio.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4, 8} {
		gotSeeds := make([]int, 0, k)
		for _, v := range got.GreedySeeds(k) {
			gotSeeds = append(gotSeeds, int(v))
		}
		if !reflect.DeepEqual(gotSeeds, want.GreedySeeds(k)) {
			t.Fatalf("GreedySeeds(%d): sketch %v != in-memory %v", k, gotSeeds, want.GreedySeeds(k))
		}
	}
	wantInf, err := want.Influence([]int{0, 33})
	if err != nil {
		t.Fatal(err)
	}
	gotInf, err := got.Influence([]int32{0, 33})
	if err != nil {
		t.Fatal(err)
	}
	if gotInf != wantInf {
		t.Errorf("Influence({0,33}): sketch %v != in-memory %v", gotInf, wantInf)
	}

	if err := run([]string{"-info", path}); err != nil {
		t.Errorf("-info failed: %v", err)
	}
}

func TestRunRejectsMissingFlags(t *testing.T) {
	if err := run([]string{"-dataset", "Karate"}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-out", "x.sketch"}); err == nil {
		t.Error("missing -graph/-dataset accepted")
	}
	if err := run([]string{"-dataset", "Karate", "-out", "x.sketch", "-resume"}); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
	missing := filepath.Join(t.TempDir(), "none.ckpt")
	if err := run([]string{"-dataset", "Karate", "-out", "x.sketch", "-checkpoint", missing, "-resume"}); err == nil {
		t.Error("-resume with nonexistent checkpoint accepted")
	}
}

// TestAdaptiveBuildWithReport drives a -target-eps build through the CLI and
// checks the sketch converged below the cap and the JSON report records the
// build trajectory data point.
func TestAdaptiveBuildWithReport(t *testing.T) {
	dir := t.TempDir()
	sketch := filepath.Join(dir, "karate.sketch")
	report := filepath.Join(dir, "build.json")
	err := run([]string{
		"-dataset", "Karate", "-prob", "iwc", "-seed", "7", "-workers", "2",
		"-target-eps", "0.2", "-k", "4", "-rr", "2000000",
		"-out", sketch, "-report", report,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := imdist.LoadSketchFile(sketch)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.NumRRSets() >= 2000000 {
		t.Errorf("adaptive build burned the whole cap: %d sets", oracle.NumRRSets())
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep buildReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Sets != oracle.NumRRSets() || rep.Bound <= 0 || rep.Bound > 0.2 {
		t.Errorf("report = %+v, want converged at %d sets with bound in (0, 0.2]", rep, oracle.NumRRSets())
	}
	if rep.Bytes == 0 || rep.Vertices != 34 {
		t.Errorf("report metadata = %+v", rep)
	}
}

// TestCheckpointResumeBuildsIdenticalSketch runs the same fixed-size build
// three ways — straight, checkpointed, and checkpointed-in-two-runs (the
// first capped short, then resumed to full size) — and requires all three
// sketch files to be byte-identical.
func TestCheckpointResumeBuildsIdenticalSketch(t *testing.T) {
	dir := t.TempDir()
	straight := filepath.Join(dir, "straight.sketch")
	common := []string{"-dataset", "Karate", "-prob", "uc0.1", "-seed", "5", "-workers", "2", "-rr", "8000"}
	if err := run(append(common, "-out", straight)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(straight)
	if err != nil {
		t.Fatal(err)
	}

	// One checkpointed run.
	oneGo := filepath.Join(dir, "onego.sketch")
	if err := run(append(common, "-out", oneGo, "-checkpoint", filepath.Join(dir, "onego.ckpt"))); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(oneGo); !bytes.Equal(got, want) {
		t.Error("checkpointed build differs from straight build")
	}

	// Interrupted run: cap at 3000 first, then resume to the full 8000.
	ckpt := filepath.Join(dir, "resumed.ckpt")
	partial := filepath.Join(dir, "partial.sketch")
	first := []string{"-dataset", "Karate", "-prob", "uc0.1", "-seed", "5", "-workers", "1", "-rr", "3000",
		"-out", partial, "-checkpoint", ckpt}
	if err := run(first); err != nil {
		t.Fatal(err)
	}
	// Re-running without -resume must refuse to touch the existing file.
	resumed := filepath.Join(dir, "resumed.sketch")
	if err := run(append(common, "-out", resumed, "-checkpoint", ckpt)); err == nil {
		t.Fatal("existing checkpoint extended without -resume")
	}
	if err := run(append(common, "-out", resumed, "-checkpoint", ckpt, "-resume", "-progress")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(resumed); !bytes.Equal(got, want) {
		t.Error("resumed build differs from straight build")
	}
	// The checkpoint itself must verify cleanly under -info.
	if err := run([]string{"-info", ckpt}); err != nil {
		t.Errorf("-info on checkpoint: %v", err)
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"1048576", 1 << 20, true},
		{"256KiB", 256 << 10, true},
		{"64MiB", 64 << 20, true},
		{"64M", 64 << 20, true},
		{"2g", 2 << 30, true},
		{" 1 GB ", 1 << 30, true},
		{"-1", -1, true},
		{"", 0, false},
		{"MiB", 0, false},
		{"12XB", 0, false},
	}
	for _, tc := range cases {
		got, err := parseByteSize(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("parseByteSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseByteSize(%q) accepted", tc.in)
		}
	}
}

// TestSpillBuildMatchesStraight runs the same fixed-size build straight and
// with -spill under a tiny budget: the sketches must be byte-identical, the
// report must record the spill footprint, and the scratch spill file must be
// gone once the sketch is written.
func TestSpillBuildMatchesStraight(t *testing.T) {
	dir := t.TempDir()
	straight := filepath.Join(dir, "straight.sketch")
	common := []string{"-dataset", "Karate", "-prob", "iwc", "-seed", "9", "-workers", "2", "-rr", "6000"}
	if err := run(append(common, "-out", straight)); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(straight)
	if err != nil {
		t.Fatal(err)
	}

	spilled := filepath.Join(dir, "spilled.sketch")
	report := filepath.Join(dir, "spill.json")
	if err := run(append(common, "-out", spilled, "-spill", "-mem-budget", "4KiB", "-report", report)); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(spilled); !bytes.Equal(got, want) {
		t.Error("spill build differs from straight build")
	}
	if _, err := os.Stat(spilled + ".spill"); !os.IsNotExist(err) {
		t.Errorf("auto spill file not cleaned up: stat err = %v", err)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep buildReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Spill || rep.MemBudgetBytes != 4<<10 || rep.SpillBytes <= 0 {
		t.Errorf("report spill fields = %+v", rep)
	}
	if rep.Sets != 6000 {
		t.Errorf("report sets = %d, want 6000", rep.Sets)
	}

	// An explicit -checkpoint is the user's file: it survives the build and
	// verifies as a full checkpoint of every set.
	kept := filepath.Join(dir, "kept.spill")
	keptOut := filepath.Join(dir, "kept.sketch")
	if err := run(append(common, "-out", keptOut, "-spill", "-checkpoint", kept)); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(keptOut); !bytes.Equal(got, want) {
		t.Error("spill build with explicit checkpoint differs from straight build")
	}
	if err := run([]string{"-info", kept}); err != nil {
		t.Errorf("-info on kept spill file: %v", err)
	}
	// Bad budgets are rejected up front.
	if err := run(append(common, "-out", spilled, "-spill", "-mem-budget", "lots")); err == nil {
		t.Error("bad -mem-budget accepted")
	}
}

// TestInfoDetectsCorruption flips one payload byte of a valid sketch and
// requires -info to verify section CRCs and fail loudly.
func TestInfoDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "karate.sketch")
	if err := run([]string{"-dataset", "Karate", "-rr", "5000", "-seed", "3", "-out", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", path}); err != nil {
		t.Fatalf("-info on intact sketch: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-40] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", path}); err == nil {
		t.Error("-info accepted a corrupt sketch")
	}
}
