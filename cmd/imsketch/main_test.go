package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"imdist"
	"imdist/internal/sketchio"
)

// TestPipelineSketchMatchesInMemoryOracle runs the imsketch CLI end to end
// and loads the artifact exactly the way imserve does (sketchio.ReadFile):
// the loaded sketch must return byte-identical GreedySeeds and Influence to
// an in-memory oracle built with the same parameters.
func TestPipelineSketchMatchesInMemoryOracle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "karate.sketch")
	err := run([]string{
		"-dataset", "Karate", "-prob", "uc0.1",
		"-rr", "20000", "-seed", "7", "-workers", "2",
		"-out", path,
	})
	if err != nil {
		t.Fatal(err)
	}

	network, err := imdist.LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := network.AssignProbabilities("uc0.1", 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ig.NewInfluenceOracleWithOptions(imdist.OracleOptions{RRSets: 20000, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	got, err := sketchio.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4, 8} {
		gotSeeds := make([]int, 0, k)
		for _, v := range got.GreedySeeds(k) {
			gotSeeds = append(gotSeeds, int(v))
		}
		if !reflect.DeepEqual(gotSeeds, want.GreedySeeds(k)) {
			t.Fatalf("GreedySeeds(%d): sketch %v != in-memory %v", k, gotSeeds, want.GreedySeeds(k))
		}
	}
	wantInf, err := want.Influence([]int{0, 33})
	if err != nil {
		t.Fatal(err)
	}
	gotInf, err := got.Influence([]int32{0, 33})
	if err != nil {
		t.Fatal(err)
	}
	if gotInf != wantInf {
		t.Errorf("Influence({0,33}): sketch %v != in-memory %v", gotInf, wantInf)
	}

	if err := run([]string{"-info", path}); err != nil {
		t.Errorf("-info failed: %v", err)
	}
}

func TestRunRejectsMissingFlags(t *testing.T) {
	if err := run([]string{"-dataset", "Karate"}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-out", "x.sketch"}); err == nil {
		t.Error("missing -graph/-dataset accepted")
	}
}
