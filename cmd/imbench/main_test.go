package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"imdist"
)

func karateSketchForModel(t *testing.T, model string, rrSets int, seed uint64) string {
	t.Helper()
	network, err := imdist.LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := network.AssignProbabilities("iwc", seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ig.NewInfluenceOracleWithOptions(imdist.OracleOptions{Model: model, RRSets: rrSets, Seed: seed, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "karate.sketch")
	if err := oracle.SaveSketchFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func karateSketch(t *testing.T) string {
	return karateSketchForModel(t, "IC", 20000, 7)
}

// TestBenchBothModes drives imbench end to end against an in-process Karate
// server and checks the structure of the JSON report: both modes ran, every
// query was answered without error, and the speedup field is populated.
func TestBenchBothModes(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-sketch", karateSketch(t),
		"-mix", "hotspot",
		"-queries", "64",
		"-batch", "16",
		"-mode", "both",
		"-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Vertices != 34 || rep.RRSets != 20000 {
		t.Errorf("report sketch metadata = %d vertices / %d rr_sets", rep.Vertices, rep.RRSets)
	}
	if rep.Single == nil || rep.Batch == nil {
		t.Fatalf("mode both must fill single and batch: %+v", rep)
	}
	if rep.Single.Requests != 64 || rep.Single.Queries != 64 {
		t.Errorf("single mode = %d requests / %d queries, want 64/64", rep.Single.Requests, rep.Single.Queries)
	}
	if rep.Batch.Requests != 4 || rep.Batch.Queries != 64 {
		t.Errorf("batch mode = %d requests / %d queries, want 4/64", rep.Batch.Requests, rep.Batch.Queries)
	}
	if rep.Single.Errors != 0 || rep.Batch.Errors != 0 {
		t.Errorf("errors: single %d, batch %d, want 0/0", rep.Single.Errors, rep.Batch.Errors)
	}
	if rep.BatchSpeedup <= 0 {
		t.Errorf("batch speedup = %v, want > 0", rep.BatchSpeedup)
	}
	if rep.Single.Latency.P99Ms < rep.Single.Latency.P50Ms {
		t.Errorf("latency quantiles out of order: %+v", rep.Single.Latency)
	}
}

// TestBenchSingleModeToFile checks -mode single and -out.
func TestBenchSingleModeToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{
		"-sketch", karateSketch(t),
		"-queries", "16",
		"-mode", "single",
		"-out", out,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Single == nil || rep.Batch != nil || rep.BatchSpeedup != 0 {
		t.Errorf("single mode report = %+v", rep)
	}
}

// TestBenchMultiSketchMix drives the multi-sketch path end to end: one
// in-process server loads an IC and an LT Karate sketch, and a weighted
// 2:1 mix replays against the per-sketch registry routes in both modes.
func TestBenchMultiSketchMix(t *testing.T) {
	ic := karateSketchForModel(t, "IC", 20000, 7)
	lt := karateSketchForModel(t, "LT", 10000, 11)
	var buf bytes.Buffer
	err := run([]string{
		"-sketch", "ic=" + ic + ",lt=" + lt,
		"-sketches", "ic:2,lt:1",
		"-mix", "hotspot",
		"-queries", "60",
		"-batch", "16",
		"-mode", "both",
		"-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(rep.Sketches) != 2 {
		t.Fatalf("sketches = %+v, want 2 entries", rep.Sketches)
	}
	byName := map[string]sketchMixReport{}
	for _, s := range rep.Sketches {
		byName[s.Name] = s
	}
	if got := byName["ic"]; got.Queries != 40 || got.Weight != 2 || got.RRSets != 20000 {
		t.Errorf("ic share = %+v, want 40 queries at weight 2 over 20000 rr_sets", got)
	}
	if got := byName["lt"]; got.Queries != 20 || got.Weight != 1 || got.RRSets != 10000 {
		t.Errorf("lt share = %+v, want 20 queries at weight 1 over 10000 rr_sets", got)
	}
	if rep.Single == nil || rep.Batch == nil {
		t.Fatalf("mode both must fill single and batch: %+v", rep)
	}
	if rep.Single.Requests != 60 || rep.Single.Queries != 60 {
		t.Errorf("single mode = %d requests / %d queries, want 60/60", rep.Single.Requests, rep.Single.Queries)
	}
	// Batches never span sketches: ceil(40/16) + ceil(20/16) = 3 + 2.
	if rep.Batch.Requests != 5 || rep.Batch.Queries != 60 {
		t.Errorf("batch mode = %d requests / %d queries, want 5/60", rep.Batch.Requests, rep.Batch.Queries)
	}
	if rep.Single.Errors != 0 || rep.Batch.Errors != 0 {
		t.Errorf("errors: single %d, batch %d, want 0/0", rep.Single.Errors, rep.Batch.Errors)
	}
}

func TestBenchRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{},                                 // neither -addr nor -sketch
		{"-addr", "x", "-sketch", "y"},     // both
		{"-addr", "x", "-mix", "bogus"},    // unknown mix
		{"-addr", "x", "-queries", "0"},    // bad queries
		{"-addr", "x", "-batch", "0"},      // bad batch
		{"-addr", "x", "-mode", "bogus"},   // bad mode
		{"-addr", "x", "-sketches", "a:0"}, // bad target weight
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestBenchUnknownTargetSketch checks the driver fails with a clear error
// when -sketches names a sketch the server does not hold.
func TestBenchUnknownTargetSketch(t *testing.T) {
	err := run([]string{
		"-sketch", karateSketch(t),
		"-sketches", "nope",
		"-queries", "4",
	}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), `"nope" not loaded`) {
		t.Errorf("err = %v, want unknown-sketch error", err)
	}
}
