package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"imdist"
)

func karateSketch(t *testing.T) string {
	t.Helper()
	network, err := imdist.LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := network.AssignProbabilities("iwc", 7)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ig.NewInfluenceOracleWithOptions(imdist.OracleOptions{RRSets: 20000, Seed: 7, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "karate.sketch")
	if err := oracle.SaveSketchFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchBothModes drives imbench end to end against an in-process Karate
// server and checks the structure of the JSON report: both modes ran, every
// query was answered without error, and the speedup field is populated.
func TestBenchBothModes(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-sketch", karateSketch(t),
		"-mix", "hotspot",
		"-queries", "64",
		"-batch", "16",
		"-mode", "both",
		"-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Vertices != 34 || rep.RRSets != 20000 {
		t.Errorf("report sketch metadata = %d vertices / %d rr_sets", rep.Vertices, rep.RRSets)
	}
	if rep.Single == nil || rep.Batch == nil {
		t.Fatalf("mode both must fill single and batch: %+v", rep)
	}
	if rep.Single.Requests != 64 || rep.Single.Queries != 64 {
		t.Errorf("single mode = %d requests / %d queries, want 64/64", rep.Single.Requests, rep.Single.Queries)
	}
	if rep.Batch.Requests != 4 || rep.Batch.Queries != 64 {
		t.Errorf("batch mode = %d requests / %d queries, want 4/64", rep.Batch.Requests, rep.Batch.Queries)
	}
	if rep.Single.Errors != 0 || rep.Batch.Errors != 0 {
		t.Errorf("errors: single %d, batch %d, want 0/0", rep.Single.Errors, rep.Batch.Errors)
	}
	if rep.BatchSpeedup <= 0 {
		t.Errorf("batch speedup = %v, want > 0", rep.BatchSpeedup)
	}
	if rep.Single.Latency.P99Ms < rep.Single.Latency.P50Ms {
		t.Errorf("latency quantiles out of order: %+v", rep.Single.Latency)
	}
}

// TestBenchSingleModeToFile checks -mode single and -out.
func TestBenchSingleModeToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	err := run([]string{
		"-sketch", karateSketch(t),
		"-queries", "16",
		"-mode", "single",
		"-out", out,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Single == nil || rep.Batch != nil || rep.BatchSpeedup != 0 {
		t.Errorf("single mode report = %+v", rep)
	}
}

func TestBenchRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{},                               // neither -addr nor -sketch
		{"-addr", "x", "-sketch", "y"},   // both
		{"-addr", "x", "-mix", "bogus"},  // unknown mix
		{"-addr", "x", "-queries", "0"},  // bad queries
		{"-addr", "x", "-batch", "0"},    // bad batch
		{"-addr", "x", "-mode", "bogus"}, // bad mode
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
