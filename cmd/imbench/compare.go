package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"imdist/internal/core"
	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/server"
	"imdist/internal/sketchio"
	"imdist/internal/workload"
)

// kernelRunReport is one kernel's half of a -compare-kernels run: the wall
// time and throughput of replaying the workload single-query and batched,
// plus a greedy seed selection, all measured directly against the oracle
// (no HTTP, no caches).
type kernelRunReport struct {
	Kernel string `json:"kernel"`
	// PackMs is the one-time cost of building the packed bit matrix,
	// measured outside the query timings (0 for the epoch kernel, which has
	// no index to build).
	PackMs          float64 `json:"pack_ms,omitempty"`
	SingleSeconds   float64 `json:"single_seconds"`
	SingleQPS       float64 `json:"single_qps"`
	BatchSeconds    float64 `json:"batch_seconds"`
	BatchQPS        float64 `json:"batch_qps"`
	GreedySeconds   float64 `json:"greedy_seconds"`
	GreedySeedsUsed int     `json:"greedy_k"`
}

// kernelCompareReport is the JSON document -compare-kernels emits (the
// BENCH_kernel.json artifact of bench-smoke CI).
type kernelCompareReport struct {
	Sketch    string `json:"sketch"`
	Vertices  int    `json:"vertices"`
	RRSets    int    `json:"rr_sets"`
	Model     string `json:"model"`
	Mix       string `json:"mix"`
	Queries   int    `json:"queries"`
	MaxSeeds  int    `json:"max_seeds"`
	BatchSize int    `json:"batch_size"`
	Repeat    int    `json:"repeat"`
	Seed      uint64 `json:"seed"`
	// AutoKernel is what the auto policy picks for this sketch's shape;
	// PackedIndexBytes is the bit matrix's memory cost.
	AutoKernel       string `json:"auto_kernel"`
	PackedIndexBytes int64  `json:"packed_index_bytes"`
	// Identical reports the equivalence check: every influence value, batch
	// value and greedy seed set bitwise-equal across kernels. A false value
	// fails the run before the report is written, so a persisted report
	// always carries true — the field documents that the check ran.
	Identical bool               `json:"identical"`
	Epoch     kernelRunReport    `json:"epoch"`
	Bitpack   kernelRunReport    `json:"bitpack"`
	Speedups  map[string]float64 `json:"speedups"`
}

// runCompareKernels benchmarks the epoch and bitpack coverage kernels head to
// head on one sketch: the same reproducible workload is replayed through
// Oracle.Influence, Oracle.BatchInfluence and Oracle.GreedySeeds under each
// kernel, every answer is asserted bitwise-identical across the two, and the
// per-mode speedups land in the JSON report. Queries go straight to the
// oracle — no HTTP, no result caches — so the numbers isolate the kernels.
func runCompareKernels(spec string, m workload.Mix, queries, maxSeeds, batch, repeat int, seed uint64, out string, stdout io.Writer) error {
	_, path, err := server.ParseSketchSpec(spec)
	if err != nil {
		return err
	}
	oracle, err := sketchio.ReadFile(path)
	if err != nil {
		return fmt.Errorf("loading sketch %s: %w", path, err)
	}
	seedSets, err := workload.SeedSets(m, oracle.NumVertices(), queries, maxSeeds, rng.NewXoshiro(seed))
	if err != nil {
		return err
	}
	const greedyK = 10

	rep := kernelCompareReport{
		Sketch:           path,
		Vertices:         oracle.NumVertices(),
		RRSets:           oracle.NumSets(),
		Model:            oracle.Model().String(),
		Mix:              m.String(),
		Queries:          queries,
		MaxSeeds:         maxSeeds,
		BatchSize:        batch,
		Repeat:           repeat,
		Seed:             seed,
		AutoKernel:       string(oracle.KernelResolved()),
		PackedIndexBytes: core.PackedIndexBytes(oracle.NumVertices(), oracle.NumSets()),
	}

	epoch, epochVals, epochSeeds, err := measureKernel(oracle, core.KernelEpoch, seedSets, batch, repeat, greedyK)
	if err != nil {
		return err
	}
	bitpack, bitVals, bitSeeds, err := measureKernel(oracle, core.KernelBitpack, seedSets, batch, repeat, greedyK)
	if err != nil {
		return err
	}
	for i := range epochVals {
		if math.Float64bits(epochVals[i]) != math.Float64bits(bitVals[i]) {
			return fmt.Errorf("kernel mismatch: query %d evaluates to %v under epoch but %v under bitpack", i%queries, epochVals[i], bitVals[i])
		}
	}
	if len(epochSeeds) != len(bitSeeds) {
		return fmt.Errorf("kernel mismatch: greedy returned %d seeds under epoch but %d under bitpack", len(epochSeeds), len(bitSeeds))
	}
	for i := range epochSeeds {
		if epochSeeds[i] != bitSeeds[i] {
			return fmt.Errorf("kernel mismatch: greedy seed %d is %d under epoch but %d under bitpack", i, epochSeeds[i], bitSeeds[i])
		}
	}
	rep.Identical = true
	rep.Epoch = epoch
	rep.Bitpack = bitpack
	rep.Speedups = map[string]float64{}
	if bitpack.SingleSeconds > 0 {
		rep.Speedups["single"] = epoch.SingleSeconds / bitpack.SingleSeconds
	}
	if bitpack.BatchSeconds > 0 {
		rep.Speedups["batch"] = epoch.BatchSeconds / bitpack.BatchSeconds
	}
	if bitpack.GreedySeconds > 0 {
		rep.Speedups["greedy"] = epoch.GreedySeconds / bitpack.GreedySeconds
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out != "" {
		return os.WriteFile(out, enc, 0o644)
	}
	_, err = stdout.Write(enc)
	return err
}

// measureKernel replays the workload repeat times under one kernel and
// returns the timing report, the last pass's influence values (single pass
// concatenated with batch pass, for the bitwise equivalence check) and the
// greedy seed set.
func measureKernel(oracle *core.Oracle, k core.Kernel, seedSets [][]graph.VertexID, batch, repeat, greedyK int) (kernelRunReport, []float64, []graph.VertexID, error) {
	rep := kernelRunReport{Kernel: string(k), GreedySeedsUsed: greedyK}
	if err := oracle.SetKernel(k); err != nil {
		return rep, nil, nil, err
	}
	// Force the packed index build outside the query timings so PackMs
	// reports the one-time cost and the replay numbers are steady-state. The
	// warmup query needs at least two seeds: single-seed queries take the
	// membership fast path under every kernel and would never trigger the
	// build.
	if n := oracle.NumVertices(); n >= 2 {
		t0 := time.Now()
		if _, err := oracle.Influence([]graph.VertexID{0, 1}); err != nil {
			return rep, nil, nil, err
		}
		if k == core.KernelBitpack {
			rep.PackMs = float64(time.Since(t0).Nanoseconds()) / 1e6
		}
	}

	vals := make([]float64, 0, 2*len(seedSets))
	t0 := time.Now()
	for r := 0; r < repeat; r++ {
		for i, seeds := range seedSets {
			v, err := oracle.Influence(seeds)
			if err != nil {
				return rep, nil, nil, fmt.Errorf("query %d: %w", i, err)
			}
			if r == repeat-1 {
				vals = append(vals, v)
			}
		}
	}
	rep.SingleSeconds = time.Since(t0).Seconds()

	t0 = time.Now()
	for r := 0; r < repeat; r++ {
		for start := 0; start < len(seedSets); start += batch {
			end := min(start+batch, len(seedSets))
			values, errs := oracle.BatchInfluence(seedSets[start:end], -1)
			for i, err := range errs {
				if err != nil {
					return rep, nil, nil, fmt.Errorf("batch query %d: %w", start+i, err)
				}
			}
			if r == repeat-1 {
				vals = append(vals, values...)
			}
		}
	}
	rep.BatchSeconds = time.Since(t0).Seconds()

	t0 = time.Now()
	greedy := oracle.GreedySeeds(greedyK)
	rep.GreedySeconds = time.Since(t0).Seconds()

	total := float64(repeat * len(seedSets))
	if rep.SingleSeconds > 0 {
		rep.SingleQPS = total / rep.SingleSeconds
	}
	if rep.BatchSeconds > 0 {
		rep.BatchQPS = total / rep.BatchSeconds
	}
	return rep, vals, greedy, nil
}
