// Command imbench is a closed-loop load driver for the influence server: it
// generates a reproducible seed-set workload (internal/workload mixes),
// replays it against a running imserve instance — or against an in-process
// server loaded from sketch files — and reports throughput and latency
// quantiles as a JSON document suitable for trend tracking in CI.
//
// The driver is closed-loop: each of -concurrency clients issues its next
// request only after the previous one completes, so reported latencies are
// uncontaminated by client-side queueing.
//
// Usage:
//
//	imbench -addr http://localhost:8080 -mix hotspot -queries 1024 -batch 64
//	imbench -sketch karate.sketch -mode both -out report.json
//	imbench -sketch ic=karate-ic.sketch,lt=karate-lt.sketch \
//	        -sketches ic:2,lt:1 -mode both -out report.json
//
// With -sketches the query stream is spread across the named sketches of a
// multi-sketch server in weighted round-robin order ("ic:2,lt:1" sends two
// queries to ic for every one to lt), exercising the per-sketch registry
// routes /v1/sketches/{name}/influence[...:batch]; without it the stream
// targets the unnamed legacy routes (the server's default sketch). The
// -sketch flag accepts a comma-separated list of name=path entries (a bare
// path derives the name from the file name) and serves them all from one
// in-process server, so CI can measure heterogeneous multi-sketch traffic
// without orchestrating a second process.
//
// With -mode both, the same query stream is replayed twice — once as
// sequential POST .../influence requests and once as POST .../influence:batch
// requests of -batch queries each — and the report includes the batch speedup
// (single-mode duration / batch-mode duration). The in-process server
// (-sketch) runs with its LRU caches disabled so the report measures the
// query engines rather than cache lookups. Against an external server
// (-addr) the cache is whatever the server was started with; the single pass
// runs first, so a warm cache there inflates the batch numbers — disable the
// server's cache (imserve -cache -1) for an engine-to-engine comparison.
//
// With -targets the same workload is replayed against several servers in
// turn — typically a single-process baseline and imserve -coordinator fronts
// over growing shard fleets — and the report records each target's
// throughput plus its scaling relative to the first target:
//
//	imbench -targets http://localhost:9080,http://localhost:9090 \
//	        -mix hotspot -queries 4096 -out BENCH_cluster.json
//
// Before any timing, every target must answer a probe slice of the workload
// byte-identically to the first target; a diverging fleet fails the run.
// All modes drive the server through one shared HTTP transport whose
// connection pool is sized to -concurrency, so workers reuse keep-alive
// connections instead of churning through ephemeral ports.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"imdist/internal/core"
	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/server"
	"imdist/internal/sketchio"
	"imdist/internal/stats"
	"imdist/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "imbench:", err)
		os.Exit(1)
	}
}

// latencyReport summarizes per-request latencies in milliseconds.
type latencyReport struct {
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// modeReport is the outcome of replaying the workload in one request mode.
type modeReport struct {
	Requests          int           `json:"requests"`
	Queries           int           `json:"queries"`
	Errors            int           `json:"errors"`
	DurationSeconds   float64       `json:"duration_seconds"`
	RequestsPerSecond float64       `json:"requests_per_second"`
	QueriesPerSecond  float64       `json:"queries_per_second"`
	Latency           latencyReport `json:"latency"`
}

// sketchMixReport describes one sketch of a multi-sketch run: its share of
// the query stream and the sketch's shape.
type sketchMixReport struct {
	Name     string `json:"name"`
	Weight   int    `json:"weight"`
	Vertices int    `json:"vertices"`
	RRSets   int    `json:"rr_sets"`
	Queries  int    `json:"queries"`
}

// report is the JSON document imbench emits.
type report struct {
	Target       string            `json:"target"`
	Mix          string            `json:"mix"`
	Queries      int               `json:"queries"`
	MaxSeeds     int               `json:"max_seeds"`
	BatchSize    int               `json:"batch_size"`
	Concurrency  int               `json:"concurrency"`
	Seed         uint64            `json:"seed"`
	Vertices     int               `json:"vertices"`
	RRSets       int               `json:"rr_sets"`
	Sketches     []sketchMixReport `json:"sketches,omitempty"`
	Single       *modeReport       `json:"single,omitempty"`
	Batch        *modeReport       `json:"batch,omitempty"`
	BatchSpeedup float64           `json:"batch_speedup,omitempty"`
}

// benchRequest is one pre-encoded HTTP request of the replay: its target
// URL, body, and the number of workload queries it carries.
type benchRequest struct {
	url     string
	body    []byte
	queries int
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("imbench", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "", "base URL of a running imserve (e.g. http://localhost:8080)")
		multi       = fs.String("targets", "", "comma-separated base URLs to bench head to head with the identical workload (e.g. a single server and shard-fleet coordinators); asserts byte-identical answers and reports per-target scaling")
		sketch      = fs.String("sketch", "", "serve these sketches in-process (comma-separated name=path or bare-path entries; alternative to -addr)")
		sketchMix   = fs.String("sketches", "", "spread queries across named sketches, weighted round-robin (e.g. ic:2,lt:1); empty targets the default sketch")
		mix         = fs.String("mix", "uniform", "seed-set mix: uniform, hotspot or singleton")
		queries     = fs.Int("queries", 256, "number of seed-set queries in the workload")
		maxSeeds    = fs.Int("max-seeds", 8, "maximum seeds per query")
		batch       = fs.Int("batch", 64, "queries per influence:batch request")
		concurrency = fs.Int("concurrency", 1, "closed-loop client goroutines")
		mode        = fs.String("mode", "both", "request mode: single, batch or both")
		seed        = fs.Uint64("seed", 1, "workload generation seed (equal seeds replay identical query streams)")
		out         = fs.String("out", "", "write the JSON report to this file (default stdout)")
		kernel      = fs.String("kernel", "auto", "coverage kernel of the in-process server (-sketch runs): auto, epoch or bitpack")
		compare     = fs.Bool("compare-kernels", false, "benchmark the epoch and bitpack kernels head to head on the -sketch oracle (no HTTP), assert byte-identical answers, and report the speedup")
		repeat      = fs.Int("repeat", 8, "workload passes per kernel in -compare-kernels mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := workload.ParseMix(*mix)
	if err != nil {
		return err
	}
	if *queries < 1 {
		return fmt.Errorf("-queries must be >= 1, got %d", *queries)
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", *batch)
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1, got %d", *concurrency)
	}
	if *mode != "single" && *mode != "batch" && *mode != "both" {
		return fmt.Errorf("-mode must be single, batch or both, got %q", *mode)
	}
	var targets []workload.Target
	if *sketchMix != "" {
		if targets, err = workload.ParseTargets(*sketchMix); err != nil {
			return err
		}
	}
	if *compare {
		if *sketch == "" {
			return fmt.Errorf("-compare-kernels requires -sketch (it benchmarks the oracle directly, without HTTP)")
		}
		if *repeat < 1 {
			return fmt.Errorf("-repeat must be >= 1, got %d", *repeat)
		}
		return runCompareKernels(*sketch, m, *queries, *maxSeeds, *batch, *repeat, *seed, *out, stdout)
	}
	if *multi != "" {
		if *addr != "" || *sketch != "" || *sketchMix != "" {
			return fmt.Errorf("-targets is mutually exclusive with -addr, -sketch and -sketches")
		}
		var bases []string
		for _, t := range strings.Split(*multi, ",") {
			if t = strings.TrimSpace(t); t != "" {
				bases = append(bases, strings.TrimSuffix(t, "/"))
			}
		}
		if len(bases) < 2 {
			return fmt.Errorf("-targets needs at least two base URLs, got %d", len(bases))
		}
		return runMultiTarget(bases, m, *queries, *maxSeeds, *batch, *concurrency, *mode, *seed, *out, stdout)
	}

	base := strings.TrimSuffix(*addr, "/")
	switch {
	case *sketch != "" && *addr != "":
		return fmt.Errorf("-addr and -sketch are mutually exclusive")
	case *sketch != "":
		stop, inproc, err := startInProcess(*sketch, *kernel)
		if err != nil {
			return err
		}
		defer stop()
		base = inproc
	case *addr == "":
		return fmt.Errorf("either -addr or -sketch is required")
	}

	client := newBenchClient(*concurrency)
	health, err := fetchHealth(client, base)
	if err != nil {
		return fmt.Errorf("probing %s/healthz: %w", base, err)
	}

	rep := report{
		Target:      base,
		Mix:         m.String(),
		Queries:     *queries,
		MaxSeeds:    *maxSeeds,
		BatchSize:   *batch,
		Concurrency: *concurrency,
		Seed:        *seed,
		Vertices:    health.Vertices,
		RRSets:      health.RRSets,
	}

	var single, batched []benchRequest
	if targets == nil {
		if health.Vertices < 1 {
			return fmt.Errorf("server reports %d vertices", health.Vertices)
		}
		seedSets, err := workload.SeedSets(m, health.Vertices, *queries, *maxSeeds, rng.NewXoshiro(*seed))
		if err != nil {
			return err
		}
		single = encodeSingleRequests(base+"/v1/influence", seedSets)
		if batched, err = encodeBatchRequests(base+"/v1/influence:batch", seedSets, *batch); err != nil {
			return err
		}
	} else {
		single, batched, rep.Sketches, err = encodeTargetedRequests(client, base, targets, m, *queries, *maxSeeds, *batch, *seed)
		if err != nil {
			return err
		}
	}

	if *mode == "single" || *mode == "both" {
		r := replay(client, single, *concurrency)
		rep.Single = &r
	}
	if *mode == "batch" || *mode == "both" {
		r := replay(client, batched, *concurrency)
		rep.Batch = &r
	}
	if rep.Single != nil && rep.Batch != nil && rep.Batch.DurationSeconds > 0 {
		rep.BatchSpeedup = rep.Single.DurationSeconds / rep.Batch.DurationSeconds
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		return os.WriteFile(*out, enc, 0o644)
	}
	_, err = stdout.Write(enc)
	return err
}

// startInProcess loads one or more sketches and serves them from a loopback
// listener inside this process, so CI can benchmark the full HTTP path —
// including multi-sketch registry routing — without orchestrating a second
// process. The spec is a comma-separated list of name=path or bare-path
// entries; the first entry becomes the default sketch. The LRU caches are
// disabled: with them on, the first replay pass would warm them and later
// passes would measure cache lookups instead of the query engines. It
// returns a shutdown func and the server's base URL. kernel selects the
// coverage kernel of every served sketch (auto, epoch or bitpack).
func startInProcess(spec, kernel string) (func(), string, error) {
	sketches := make(map[string]*core.Oracle)
	defaultName := ""
	for _, entry := range strings.Split(spec, ",") {
		name, path, err := server.ParseSketchSpec(strings.TrimSpace(entry))
		if err != nil {
			return nil, "", err
		}
		oracle, err := sketchio.ReadFile(path)
		if err != nil {
			return nil, "", fmt.Errorf("loading sketch %s: %w", path, err)
		}
		if _, dup := sketches[name]; dup {
			return nil, "", fmt.Errorf("duplicate sketch name %q in -sketch", name)
		}
		sketches[name] = oracle
		if defaultName == "" {
			defaultName = name
		}
	}
	srv, err := server.New(server.Config{Sketches: sketches, DefaultSketch: defaultName, CacheSize: -1, Kernel: kernel})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	// srv.Close stops the build-service runner goroutines the Server starts;
	// Handler-only embedders own that lifecycle.
	stop := func() { _ = hs.Close(); srv.Close() }
	return stop, "http://" + ln.Addr().String(), nil
}

// newBenchClient builds the one HTTP client every replay worker shares. The
// default transport keeps only 2 idle connections per host, so a closed-loop
// run at higher -concurrency would churn through ephemeral connections and
// measure TCP setup instead of the server; sizing the pool to the worker
// count gives each worker a persistent connection, and MaxConnsPerHost caps
// the client at exactly that many (a closed-loop driver never needs more).
func newBenchClient(concurrency int) *http.Client {
	return &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency,
			MaxIdleConnsPerHost: concurrency,
			MaxConnsPerHost:     concurrency,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

type healthInfo struct {
	Vertices int `json:"vertices"`
	RRSets   int `json:"rr_sets"`
	// Shards is non-zero when the target is an imserve -coordinator; its
	// healthz reports the fleet size.
	Shards int `json:"shards"`
}

func fetchHealth(client *http.Client, base string) (healthInfo, error) {
	var h healthInfo
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, err
	}
	return h, nil
}

// fetchSketchInfos asks GET /v1/sketches for the server's loaded sketches,
// keyed by name (the multi-sketch workload needs each target's vertex count).
func fetchSketchInfos(client *http.Client, base string) (map[string]healthInfo, error) {
	resp, err := client.Get(base + "/v1/sketches")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var list struct {
		Sketches []struct {
			Name     string `json:"name"`
			Vertices int    `json:"vertices"`
			RRSets   int    `json:"rr_sets"`
		} `json:"sketches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, err
	}
	infos := make(map[string]healthInfo, len(list.Sketches))
	for _, s := range list.Sketches {
		infos[s.Name] = healthInfo{Vertices: s.Vertices, RRSets: s.RRSets}
	}
	return infos, nil
}

type influenceRequest struct {
	Seeds []int `json:"seeds"`
}

func toRequest(seeds []graph.VertexID) influenceRequest {
	out := make([]int, len(seeds))
	for i, v := range seeds {
		out[i] = int(v)
	}
	return influenceRequest{Seeds: out}
}

// encodeSingleRequests pre-marshals one influence request per query, so the
// replay loop measures the server, not the client's JSON encoder.
func encodeSingleRequests(url string, seedSets [][]graph.VertexID) []benchRequest {
	reqs := make([]benchRequest, len(seedSets))
	for i, seeds := range seedSets {
		body, _ := json.Marshal(toRequest(seeds))
		reqs[i] = benchRequest{url: url, body: body, queries: 1}
	}
	return reqs
}

// encodeBatchRequests chunks the query stream into influence:batch bodies of
// up to batch queries each.
func encodeBatchRequests(url string, seedSets [][]graph.VertexID, batch int) ([]benchRequest, error) {
	var reqs []benchRequest
	for start := 0; start < len(seedSets); start += batch {
		end := min(start+batch, len(seedSets))
		items := make([]influenceRequest, 0, end-start)
		for _, seeds := range seedSets[start:end] {
			items = append(items, toRequest(seeds))
		}
		body, err := json.Marshal(items)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, benchRequest{url: url, body: body, queries: end - start})
	}
	return reqs, nil
}

// encodeTargetedRequests builds the multi-sketch workload: the query stream
// is assigned to sketch names in weighted round-robin order (deterministic
// for a fixed -sketches and -queries), each target's share is generated from
// its own derived rng stream against its own vertex space, and requests for
// a target go to its /v1/sketches/{name}/... routes. Batch requests never
// span sketches — each batch body targets exactly one sketch endpoint.
func encodeTargetedRequests(client *http.Client, base string, targets []workload.Target, m workload.Mix, queries, maxSeeds, batch int, seed uint64) (single, batched []benchRequest, mixRep []sketchMixReport, err error) {
	infos, err := fetchSketchInfos(client, base)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("probing %s/v1/sketches: %w", base, err)
	}
	seq, err := workload.TargetSequence(targets, queries)
	if err != nil {
		return nil, nil, nil, err
	}
	perTarget := make(map[string]int, len(targets))
	for _, name := range seq {
		perTarget[name]++
	}
	single = make([]benchRequest, 0, queries)
	cursor := make(map[string][][]graph.VertexID, len(targets))
	for ti, t := range targets {
		info, ok := infos[t.Name]
		if !ok {
			available := make([]string, 0, len(infos))
			for name := range infos {
				available = append(available, name)
			}
			sort.Strings(available)
			return nil, nil, nil, fmt.Errorf("sketch %q not loaded on %s (loaded: %s)", t.Name, base, strings.Join(available, ", "))
		}
		// Each target draws from its own stream derived from the master
		// seed, so changing one target's weight never perturbs another's
		// seed sets.
		sets, err := workload.SeedSets(m, info.Vertices, perTarget[t.Name], maxSeeds, rng.NewXoshiro(seed+uint64(ti)))
		if err != nil {
			return nil, nil, nil, err
		}
		cursor[t.Name] = sets
		targetBatches, err := encodeBatchRequests(base+"/v1/sketches/"+t.Name+"/influence:batch", sets, batch)
		if err != nil {
			return nil, nil, nil, err
		}
		batched = append(batched, targetBatches...)
		mixRep = append(mixRep, sketchMixReport{
			Name:     t.Name,
			Weight:   t.Weight,
			Vertices: info.Vertices,
			RRSets:   info.RRSets,
			Queries:  perTarget[t.Name],
		})
	}
	// Single-mode requests follow the interleaved order clients would issue.
	for _, name := range seq {
		sets := cursor[name]
		seeds := sets[0]
		cursor[name] = sets[1:]
		body, _ := json.Marshal(toRequest(seeds))
		single = append(single, benchRequest{url: base + "/v1/sketches/" + name + "/influence", body: body, queries: 1})
	}
	return single, batched, mixRep, nil
}

// targetBenchReport is one target's slice of a -targets run.
type targetBenchReport struct {
	Target string `json:"target"`
	// Shards is the fleet size behind the target (1 for a plain server).
	Shards int         `json:"shards"`
	Single *modeReport `json:"single,omitempty"`
	Batch  *modeReport `json:"batch,omitempty"`
	// SingleScaling and BatchScaling are this target's queries/s divided by
	// the first target's — the near-linear-scaling evidence a shard fleet is
	// expected to produce in batch mode.
	SingleScaling float64 `json:"single_scaling,omitempty"`
	BatchScaling  float64 `json:"batch_scaling,omitempty"`
}

// clusterReport is the JSON document a -targets run emits (BENCH_cluster.json
// in CI).
type clusterReport struct {
	Mix         string `json:"mix"`
	Queries     int    `json:"queries"`
	MaxSeeds    int    `json:"max_seeds"`
	BatchSize   int    `json:"batch_size"`
	Concurrency int    `json:"concurrency"`
	Seed        uint64 `json:"seed"`
	Vertices    int    `json:"vertices"`
	RRSets      int    `json:"rr_sets"`
	// ProbeQueries is how many workload queries (plus one batch of them) every
	// target answered byte-identically before any timing ran.
	ProbeQueries int                 `json:"probe_queries"`
	Targets      []targetBenchReport `json:"targets"`
}

// fetchRaw posts one body and returns the status and raw response bytes.
func fetchRaw(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// runMultiTarget replays the identical workload against every target in turn
// and reports per-target throughput plus scaling relative to the first. The
// probe phase doubles as a correctness gate and a connection warm-up: every
// target must answer the probe queries byte-identically to the first target,
// which is what makes the later throughput numbers comparable at all — a
// fleet that answers differently is misassembled, not fast.
func runMultiTarget(bases []string, m workload.Mix, queries, maxSeeds, batch, concurrency int, mode string, seed uint64, out string, stdout io.Writer) error {
	client := newBenchClient(concurrency)
	healths := make([]healthInfo, len(bases))
	for i, base := range bases {
		h, err := fetchHealth(client, base)
		if err != nil {
			return fmt.Errorf("probing %s/healthz: %w", base, err)
		}
		if i > 0 && (h.Vertices != healths[0].Vertices || h.RRSets != healths[0].RRSets) {
			return fmt.Errorf("target %s serves %d vertices / %d rr_sets, %s serves %d / %d — not the same sketch",
				base, h.Vertices, h.RRSets, bases[0], healths[0].Vertices, healths[0].RRSets)
		}
		healths[i] = h
	}
	if healths[0].Vertices < 1 {
		return fmt.Errorf("target %s reports %d vertices", bases[0], healths[0].Vertices)
	}
	seedSets, err := workload.SeedSets(m, healths[0].Vertices, queries, maxSeeds, rng.NewXoshiro(seed))
	if err != nil {
		return err
	}

	// Probe gate: a slice of the workload, singly and batched, must come back
	// byte-identical from every target.
	probeN := min(8, len(seedSets))
	probeBodies := make([][]byte, 0, probeN+1)
	for _, seeds := range seedSets[:probeN] {
		body, _ := json.Marshal(toRequest(seeds))
		probeBodies = append(probeBodies, body)
	}
	batchItems := make([]influenceRequest, probeN)
	for i, seeds := range seedSets[:probeN] {
		batchItems[i] = toRequest(seeds)
	}
	batchBody, err := json.Marshal(batchItems)
	if err != nil {
		return err
	}
	probeBodies = append(probeBodies, batchBody)
	var want [][]byte
	for ti, base := range bases {
		got := make([][]byte, len(probeBodies))
		for pi, body := range probeBodies {
			url := base + "/v1/influence"
			if pi == len(probeBodies)-1 {
				url = base + "/v1/influence:batch"
			}
			status, raw, err := fetchRaw(client, url, body)
			if err != nil {
				return fmt.Errorf("probing %s: %w", url, err)
			}
			if status != http.StatusOK {
				return fmt.Errorf("probing %s: status %d: %s", url, status, raw)
			}
			got[pi] = raw
		}
		if ti == 0 {
			want = got
			continue
		}
		for pi := range got {
			if !bytes.Equal(got[pi], want[pi]) {
				return fmt.Errorf("target %s diverges from %s on probe query %d:\n %s\n vs\n %s",
					base, bases[0], pi, got[pi], want[pi])
			}
		}
	}

	rep := clusterReport{
		Mix:          m.String(),
		Queries:      queries,
		MaxSeeds:     maxSeeds,
		BatchSize:    batch,
		Concurrency:  concurrency,
		Seed:         seed,
		Vertices:     healths[0].Vertices,
		RRSets:       healths[0].RRSets,
		ProbeQueries: probeN,
	}
	for i, base := range bases {
		tr := targetBenchReport{Target: base, Shards: max(healths[i].Shards, 1)}
		if mode == "single" || mode == "both" {
			r := replay(client, encodeSingleRequests(base+"/v1/influence", seedSets), concurrency)
			tr.Single = &r
		}
		if mode == "batch" || mode == "both" {
			batched, err := encodeBatchRequests(base+"/v1/influence:batch", seedSets, batch)
			if err != nil {
				return err
			}
			r := replay(client, batched, concurrency)
			tr.Batch = &r
		}
		if base0 := rep.Targets; len(base0) > 0 {
			if tr.Single != nil && base0[0].Single != nil && base0[0].Single.QueriesPerSecond > 0 {
				tr.SingleScaling = tr.Single.QueriesPerSecond / base0[0].Single.QueriesPerSecond
			}
			if tr.Batch != nil && base0[0].Batch != nil && base0[0].Batch.QueriesPerSecond > 0 {
				tr.BatchScaling = tr.Batch.QueriesPerSecond / base0[0].Batch.QueriesPerSecond
			}
		} else {
			if tr.Single != nil {
				tr.SingleScaling = 1
			}
			if tr.Batch != nil {
				tr.BatchScaling = 1
			}
		}
		rep.Targets = append(rep.Targets, tr)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out != "" {
		return os.WriteFile(out, enc, 0o644)
	}
	_, err = stdout.Write(enc)
	return err
}

// replay issues every request from concurrency closed-loop clients, pulling
// work from a shared counter, and aggregates latencies and errors. A request
// errs when the transport fails, the status is not 200, or (batch mode) any
// item in the response carries a per-item error. Failed requests count only
// toward Errors: the latency quantiles and the throughput rates aggregate
// successful requests exclusively, so a run that hits errors shows degraded
// numbers plus a non-zero Errors field rather than fast-failing its way to
// an apparent improvement.
func replay(client *http.Client, reqs []benchRequest, concurrency int) modeReport {
	latencies := make([]float64, len(reqs))
	oks := make([]bool, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				t0 := time.Now()
				oks[i] = issue(client, reqs[i].url, reqs[i].body)
				latencies[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	okRequests, okQueries, totalQueries := 0, 0, 0
	okLatencies := make([]float64, 0, len(reqs))
	for i, ok := range oks {
		totalQueries += reqs[i].queries
		if !ok {
			continue
		}
		okRequests++
		okQueries += reqs[i].queries
		okLatencies = append(okLatencies, latencies[i])
	}
	rep := modeReport{
		Requests:        len(reqs),
		Queries:         totalQueries,
		Errors:          len(reqs) - okRequests,
		DurationSeconds: elapsed,
	}
	if elapsed > 0 {
		rep.RequestsPerSecond = float64(okRequests) / elapsed
		rep.QueriesPerSecond = float64(okQueries) / elapsed
	}
	if len(okLatencies) > 0 {
		sort.Float64s(okLatencies)
		rep.Latency = latencyReport{
			MeanMs: stats.Mean(okLatencies),
			P50Ms:  stats.Percentile(okLatencies, 50),
			P90Ms:  stats.Percentile(okLatencies, 90),
			P99Ms:  stats.Percentile(okLatencies, 99),
			MaxMs:  okLatencies[len(okLatencies)-1],
		}
	}
	return rep
}

// issue posts one body and reports whether the request fully succeeded,
// scanning batch responses for per-item errors.
func issue(client *http.Client, url string, body []byte) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	if bytes.HasPrefix(bytes.TrimSpace(raw), []byte("[")) {
		var items []struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &items); err != nil {
			return false
		}
		for _, item := range items {
			if item.Error != "" {
				return false
			}
		}
	}
	return true
}
