// Command imbench is a closed-loop load driver for the influence server: it
// generates a reproducible seed-set workload (internal/workload mixes),
// replays it against a running imserve instance — or against an in-process
// server loaded from a sketch file — and reports throughput and latency
// quantiles as a JSON document suitable for trend tracking in CI.
//
// The driver is closed-loop: each of -concurrency clients issues its next
// request only after the previous one completes, so reported latencies are
// uncontaminated by client-side queueing.
//
// Usage:
//
//	imbench -addr http://localhost:8080 -mix hotspot -queries 1024 -batch 64
//	imbench -sketch karate.sketch -mode both -out report.json
//
// With -mode both, the same query stream is replayed twice — once as
// sequential POST /v1/influence requests and once as POST /v1/influence:batch
// requests of -batch queries each — and the report includes the batch speedup
// (single-mode duration / batch-mode duration). The in-process server
// (-sketch) runs with its LRU cache disabled so the report measures the
// query engines rather than cache lookups. Against an external server
// (-addr) the cache is whatever the server was started with; the single pass
// runs first, so a warm cache there inflates the batch numbers — disable the
// server's cache (imserve -cache -1) for an engine-to-engine comparison.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/server"
	"imdist/internal/sketchio"
	"imdist/internal/stats"
	"imdist/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "imbench:", err)
		os.Exit(1)
	}
}

// latencyReport summarizes per-request latencies in milliseconds.
type latencyReport struct {
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// modeReport is the outcome of replaying the workload in one request mode.
type modeReport struct {
	Requests          int           `json:"requests"`
	Queries           int           `json:"queries"`
	Errors            int           `json:"errors"`
	DurationSeconds   float64       `json:"duration_seconds"`
	RequestsPerSecond float64       `json:"requests_per_second"`
	QueriesPerSecond  float64       `json:"queries_per_second"`
	Latency           latencyReport `json:"latency"`
}

// report is the JSON document imbench emits.
type report struct {
	Target       string      `json:"target"`
	Mix          string      `json:"mix"`
	Queries      int         `json:"queries"`
	MaxSeeds     int         `json:"max_seeds"`
	BatchSize    int         `json:"batch_size"`
	Concurrency  int         `json:"concurrency"`
	Seed         uint64      `json:"seed"`
	Vertices     int         `json:"vertices"`
	RRSets       int         `json:"rr_sets"`
	Single       *modeReport `json:"single,omitempty"`
	Batch        *modeReport `json:"batch,omitempty"`
	BatchSpeedup float64     `json:"batch_speedup,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("imbench", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "", "base URL of a running imserve (e.g. http://localhost:8080)")
		sketch      = fs.String("sketch", "", "drive an in-process server loaded from this sketch file (alternative to -addr)")
		mix         = fs.String("mix", "uniform", "seed-set mix: uniform, hotspot or singleton")
		queries     = fs.Int("queries", 256, "number of seed-set queries in the workload")
		maxSeeds    = fs.Int("max-seeds", 8, "maximum seeds per query")
		batch       = fs.Int("batch", 64, "queries per /v1/influence:batch request")
		concurrency = fs.Int("concurrency", 1, "closed-loop client goroutines")
		mode        = fs.String("mode", "both", "request mode: single, batch or both")
		seed        = fs.Uint64("seed", 1, "workload generation seed (equal seeds replay identical query streams)")
		out         = fs.String("out", "", "write the JSON report to this file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := workload.ParseMix(*mix)
	if err != nil {
		return err
	}
	if *queries < 1 {
		return fmt.Errorf("-queries must be >= 1, got %d", *queries)
	}
	if *batch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", *batch)
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1, got %d", *concurrency)
	}
	if *mode != "single" && *mode != "batch" && *mode != "both" {
		return fmt.Errorf("-mode must be single, batch or both, got %q", *mode)
	}

	base := strings.TrimSuffix(*addr, "/")
	switch {
	case *sketch != "" && *addr != "":
		return fmt.Errorf("-addr and -sketch are mutually exclusive")
	case *sketch != "":
		stop, inproc, err := startInProcess(*sketch)
		if err != nil {
			return err
		}
		defer stop()
		base = inproc
	case *addr == "":
		return fmt.Errorf("either -addr or -sketch is required")
	}

	client := &http.Client{Timeout: 60 * time.Second}
	health, err := fetchHealth(client, base)
	if err != nil {
		return fmt.Errorf("probing %s/healthz: %w", base, err)
	}

	seedSets, err := workload.SeedSets(m, health.Vertices, *queries, *maxSeeds, rng.NewXoshiro(*seed))
	if err != nil {
		return err
	}
	bodies := encodeSingleBodies(seedSets)
	batchBodies, batchCounts, err := encodeBatchBodies(seedSets, *batch)
	if err != nil {
		return err
	}

	rep := report{
		Target:      base,
		Mix:         m.String(),
		Queries:     *queries,
		MaxSeeds:    *maxSeeds,
		BatchSize:   *batch,
		Concurrency: *concurrency,
		Seed:        *seed,
		Vertices:    health.Vertices,
		RRSets:      health.RRSets,
	}
	if *mode == "single" || *mode == "both" {
		r := replay(client, base+"/v1/influence", bodies, nil, *concurrency)
		rep.Single = &r
	}
	if *mode == "batch" || *mode == "both" {
		r := replay(client, base+"/v1/influence:batch", batchBodies, batchCounts, *concurrency)
		rep.Batch = &r
	}
	if rep.Single != nil && rep.Batch != nil && rep.Batch.DurationSeconds > 0 {
		rep.BatchSpeedup = rep.Single.DurationSeconds / rep.Batch.DurationSeconds
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		return os.WriteFile(*out, enc, 0o644)
	}
	_, err = stdout.Write(enc)
	return err
}

// startInProcess loads a sketch and serves it from a loopback listener inside
// this process, so CI can benchmark the full HTTP path without orchestrating
// a second process. The LRU cache is disabled: with it on, the first replay
// pass would warm it and later passes would measure cache lookups instead of
// the query engines. It returns a shutdown func and the server's base URL.
func startInProcess(path string) (func(), string, error) {
	oracle, err := sketchio.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("loading sketch %s: %w", path, err)
	}
	srv, err := server.New(server.Config{Oracle: oracle, CacheSize: -1})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() { _ = hs.Close() }
	return stop, "http://" + ln.Addr().String(), nil
}

type healthInfo struct {
	Vertices int `json:"vertices"`
	RRSets   int `json:"rr_sets"`
}

func fetchHealth(client *http.Client, base string) (healthInfo, error) {
	var h healthInfo
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, err
	}
	if h.Vertices < 1 {
		return h, fmt.Errorf("server reports %d vertices", h.Vertices)
	}
	return h, nil
}

type influenceRequest struct {
	Seeds []int `json:"seeds"`
}

func toRequest(seeds []graph.VertexID) influenceRequest {
	out := make([]int, len(seeds))
	for i, v := range seeds {
		out[i] = int(v)
	}
	return influenceRequest{Seeds: out}
}

// encodeSingleBodies pre-marshals one /v1/influence body per query, so the
// replay loop measures the server, not the client's JSON encoder.
func encodeSingleBodies(seedSets [][]graph.VertexID) [][]byte {
	bodies := make([][]byte, len(seedSets))
	for i, seeds := range seedSets {
		bodies[i], _ = json.Marshal(toRequest(seeds))
	}
	return bodies
}

// encodeBatchBodies chunks the query stream into /v1/influence:batch bodies
// of up to batch queries each, returning the bodies and per-body query counts.
func encodeBatchBodies(seedSets [][]graph.VertexID, batch int) ([][]byte, []int, error) {
	var bodies [][]byte
	var counts []int
	for start := 0; start < len(seedSets); start += batch {
		end := start + batch
		if end > len(seedSets) {
			end = len(seedSets)
		}
		reqs := make([]influenceRequest, 0, end-start)
		for _, seeds := range seedSets[start:end] {
			reqs = append(reqs, toRequest(seeds))
		}
		body, err := json.Marshal(reqs)
		if err != nil {
			return nil, nil, err
		}
		bodies = append(bodies, body)
		counts = append(counts, end-start)
	}
	return bodies, counts, nil
}

// replay issues every body against url from concurrency closed-loop clients,
// pulling work from a shared counter, and aggregates latencies and errors. A
// request errs when the transport fails, the status is not 200, or (batch
// mode) any item in the response carries a per-item error. Failed requests
// count only toward Errors: the latency quantiles and the throughput rates
// aggregate successful requests exclusively, so a run that hits errors shows
// degraded numbers plus a non-zero Errors field rather than fast-failing its
// way to an apparent improvement. queryCounts gives the number of queries
// each body carries; nil means one query per body (single mode).
func replay(client *http.Client, url string, bodies [][]byte, queryCounts []int, concurrency int) modeReport {
	latencies := make([]float64, len(bodies))
	oks := make([]bool, len(bodies))
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				t0 := time.Now()
				oks[i] = issue(client, url, bodies[i])
				latencies[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	okRequests, okQueries := 0, 0
	okLatencies := make([]float64, 0, len(bodies))
	for i, ok := range oks {
		if !ok {
			continue
		}
		okRequests++
		if queryCounts != nil {
			okQueries += queryCounts[i]
		} else {
			okQueries++
		}
		okLatencies = append(okLatencies, latencies[i])
	}
	totalQueries := len(bodies)
	if queryCounts != nil {
		totalQueries = 0
		for _, c := range queryCounts {
			totalQueries += c
		}
	}
	rep := modeReport{
		Requests:        len(bodies),
		Queries:         totalQueries,
		Errors:          len(bodies) - okRequests,
		DurationSeconds: elapsed,
	}
	if elapsed > 0 {
		rep.RequestsPerSecond = float64(okRequests) / elapsed
		rep.QueriesPerSecond = float64(okQueries) / elapsed
	}
	if len(okLatencies) > 0 {
		sort.Float64s(okLatencies)
		rep.Latency = latencyReport{
			MeanMs: stats.Mean(okLatencies),
			P50Ms:  stats.Percentile(okLatencies, 50),
			P90Ms:  stats.Percentile(okLatencies, 90),
			P99Ms:  stats.Percentile(okLatencies, 99),
			MaxMs:  okLatencies[len(okLatencies)-1],
		}
	}
	return rep
}

// issue posts one body and reports whether the request fully succeeded,
// scanning batch responses for per-item errors.
func issue(client *http.Client, url string, body []byte) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	if bytes.HasPrefix(bytes.TrimSpace(raw), []byte("[")) {
		var items []struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &items); err != nil {
			return false
		}
		for _, item := range items {
			if item.Error != "" {
				return false
			}
		}
	}
	return true
}
