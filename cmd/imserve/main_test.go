package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"imdist"
	"imdist/internal/server"
)

func TestParseSketchSpec(t *testing.T) {
	cases := []struct {
		spec, name, path string
		wantErr          bool
	}{
		{spec: "ic=/tmp/a.sketch", name: "ic", path: "/tmp/a.sketch"},
		{spec: "/var/sketches/karate.sketch", name: "karate", path: "/var/sketches/karate.sketch"},
		{spec: "karate.sketch", name: "karate", path: "karate.sketch"},
		{spec: "=x", wantErr: true},
		{spec: "x=", wantErr: true},
		{spec: "", wantErr: true},
	}
	for _, c := range cases {
		name, path, err := server.ParseSketchSpec(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSketchSpec(%q) accepted", c.spec)
			}
			continue
		}
		if err != nil || name != c.name || path != c.path {
			t.Errorf("ParseSketchSpec(%q) = %q, %q, %v; want %q, %q", c.spec, name, path, err, c.name, c.path)
		}
	}
}

func writeTestSketch(t *testing.T, dir, name string, rrSets int, seed uint64) string {
	t.Helper()
	network, err := imdist.LoadDataset("Karate")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := network.AssignProbabilities("iwc", seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := ig.NewInfluenceOracleWithOptions(imdist.OracleOptions{RRSets: rrSets, Seed: seed, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := oracle.SaveSketchFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScanSketchDir drives the SIGHUP rescan logic directly: new files are
// loaded under their base names, corrupt files are skipped without failing
// the scan, flag-pinned names are never replaced, and unchanged files are
// not reloaded on a rescan.
func TestScanSketchDir(t *testing.T) {
	dir := t.TempDir()
	writeTestSketch(t, dir, "a.sketch", 2000, 1)
	writeTestSketch(t, dir, "b.sketch", 2000, 2)
	if err := os.WriteFile(filepath.Join(dir, "corrupt.sketch"), []byte("not a sketch"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := server.NewRegistry(16)
	loaded, err := scanSketchDir(reg, dir, map[string]bool{"b": true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, unwanted := range []string{"b", "corrupt", "ignored"} {
		if _, ok := loaded[unwanted]; ok {
			t.Errorf("loaded %q, want only a (got %v)", unwanted, loaded)
		}
	}
	if _, ok := loaded["a"]; !ok {
		t.Errorf("loaded = %v, want a", loaded)
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "a" {
		t.Errorf("registry names = %v, want [a]", names)
	}

	// A second unpinned scan picks up b; the unchanged a is kept as loaded
	// (its stamp carries over) rather than reloaded.
	rescanned, err := scanSketchDir(reg, dir, nil, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if rescanned["a"] != loaded["a"] {
		t.Errorf("unchanged sketch restamped: %v vs %v", rescanned["a"], loaded["a"])
	}
	if names := reg.Names(); len(names) != 2 {
		t.Errorf("registry names after unpinned scan = %v, want [a b]", names)
	}

	// Touching a file's mtime invalidates its stamp, forcing a reload.
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "a.sketch"), future, future); err != nil {
		t.Fatal(err)
	}
	touched, err := scanSketchDir(reg, dir, nil, rescanned)
	if err != nil {
		t.Fatal(err)
	}
	if touched["a"] == rescanned["a"] {
		t.Error("touched sketch kept its old stamp (was not reloaded)")
	}

	if _, err := scanSketchDir(reg, filepath.Join(dir, "missing"), nil, nil); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestRunRejectsMissingSketches(t *testing.T) {
	if err := run([]string{"-addr", ":0"}); err == nil {
		t.Error("run without -sketch or -sketch-dir accepted")
	}
	if err := run([]string{"-sketch", "=bad"}); err == nil {
		t.Error("run with malformed -sketch accepted")
	}
}
