// Command imserve serves influence queries from a prebuilt RR-sketch file —
// the cheap, online half of the build-once / serve-many pipeline. It loads
// the sketch once (memory-mapped where the platform supports it) and answers
// any number of concurrent HTTP queries from it; the expensive sketch build
// stays offline in imsketch.
//
// Usage:
//
//	imserve -sketch karate.sketch -addr :8080
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/influence -d '{"seeds":[0,33]}'
//	curl -s -X POST localhost:8080/v1/influence:batch -d '[{"seeds":[0]},{"seeds":[33]}]'
//	curl -s -X POST localhost:8080/v1/seeds -d '{"k":4}'
//	curl -s 'localhost:8080/v1/top?k=10'
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imdist/internal/server"
	"imdist/internal/sketchio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("imserve", flag.ContinueOnError)
	var (
		sketch   = fs.String("sketch", "", "path to a sketch built by imsketch (required)")
		addr     = fs.String("addr", ":8080", "listen address")
		cache    = fs.Int("cache", server.DefaultCacheSize, "LRU query-cache entries (negative disables)")
		maxBody  = fs.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body size in bytes")
		maxSeeds = fs.Int("max-seeds", server.DefaultMaxSeeds, "maximum seed-set size per /v1/influence request")
		maxK     = fs.Int("max-k", server.DefaultMaxK, "maximum k for /v1/seeds and /v1/top")
		maxBatch = fs.Int("max-batch", server.DefaultMaxBatchQueries, "maximum queries per /v1/influence:batch request")
		batchW   = fs.Int("batch-workers", -1, "batch evaluation parallelism: 1 = request goroutine, -1 = all CPUs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sketch == "" {
		return fmt.Errorf("-sketch is required")
	}

	start := time.Now()
	oracle, err := sketchio.ReadFile(*sketch)
	if err != nil {
		return fmt.Errorf("loading sketch %s: %w", *sketch, err)
	}
	log.Printf("loaded %s in %v: n=%d rr_sets=%d model=%s seed=%d",
		*sketch, time.Since(start).Round(time.Millisecond),
		oracle.NumVertices(), oracle.NumSets(), oracle.Model(), oracle.BuildSeed())

	srv, err := server.New(server.Config{
		Oracle:          oracle,
		CacheSize:       *cache,
		MaxBodyBytes:    *maxBody,
		MaxSeeds:        *maxSeeds,
		MaxK:            *maxK,
		MaxBatchQueries: *maxBatch,
		BatchWorkers:    *batchW,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shut down cleanly")
	return nil
}
