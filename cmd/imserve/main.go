// Command imserve serves influence queries from prebuilt RR-sketch files —
// the cheap, online half of the build-once / serve-many pipeline. One
// process holds a registry of named sketches (many graphs, many diffusion
// models) and answers any number of concurrent HTTP queries from them; the
// expensive sketch builds stay offline in imsketch.
//
// Usage:
//
//	imserve -sketch karate.sketch -addr :8080
//	imserve -sketch ic=karate-ic.sketch -sketch lt=karate-lt.sketch -default ic
//	imserve -sketch-dir /var/sketches -addr :8080
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/sketches
//	curl -s -X POST localhost:8080/v1/influence -d '{"seeds":[0,33]}'
//	curl -s -X POST localhost:8080/v1/sketches/lt/influence -d '{"seeds":[0,33]}'
//	curl -s -X POST localhost:8080/v1/sketches/ic/influence:batch -d '[{"seeds":[0]},{"seeds":[33]}]'
//	curl -s -X POST localhost:8080/v1/admin/sketches -d '{"name":"new","path":"/var/sketches/new.sketch"}'
//	curl -s -X DELETE localhost:8080/v1/admin/sketches/new
//
// Each -sketch flag names one sketch as name=path (a bare path derives the
// name from the file name); -sketch-dir loads every *.sketch file in a
// directory under its base name. Sending SIGHUP re-scans the directory and
// hot-reloads its sketches copy-on-swap: in-flight queries finish on the
// oracle they started with, new requests see the new one, and memory-mapped
// files are unmapped only after their last query finishes. The unnamed
// legacy routes (/v1/influence, ...) alias the -default sketch (first
// loaded when unset).
//
// Coordinator mode fronts a fleet of imserve processes each serving one
// shard of a sketch split by imsketch -split:
//
//	imserve -sketch big.sketch.shard0-of-2 -addr :8081
//	imserve -sketch big.sketch.shard1-of-2 -addr :8082
//	imserve -coordinator -shard-target http://localhost:8081 \
//	        -shard-target http://localhost:8082 -addr :8080
//
// The coordinator serves the same public /v1 query API, byte-identical to a
// single process on the unsplit sketch, by scatter-gathering integer RR-set
// counts over the fleet (see internal/cluster). Shards hot-reload through
// their own admin APIs; the coordinator verifies fleet assembly on every
// query and answers 503 naming the missing target while a shard is down.
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"imdist/internal/cluster"
	"imdist/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "imserve:", err)
		os.Exit(1)
	}
}

// sketchFlags accumulates repeated -sketch values, each a comma-separated
// list of name=path or bare-path entries.
type sketchFlags []string

func (s *sketchFlags) String() string { return strings.Join(*s, ",") }

func (s *sketchFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// sketchStamp records the file identity a sketch was loaded from, so a
// SIGHUP rescan can skip files that have not changed since the last load.
type sketchStamp struct {
	path  string
	size  int64
	mtime time.Time
}

func run(args []string) error {
	fs := flag.NewFlagSet("imserve", flag.ContinueOnError)
	var sketches sketchFlags
	fs.Var(&sketches, "sketch", "sketch to serve, as name=path or a bare path (repeatable, comma-separable)")
	var shardTargets sketchFlags
	fs.Var(&shardTargets, "shard-target", "shard server base URL for -coordinator mode (repeatable, comma-separable)")
	var (
		coordinator  = fs.Bool("coordinator", false, "front a fleet of -shard-target servers instead of serving sketches directly")
		coordSketch  = fs.String("coordinator-sketch", "", "sketch name the coordinator's unnamed routes query on the shard servers (default: each shard's default sketch)")
		greedyBatch  = fs.Int("greedy-batch", cluster.DefaultGreedyBatch, "stale candidates re-evaluated per scatter round of distributed /v1/seeds")
		sketchDir    = fs.String("sketch-dir", "", "directory of *.sketch files to serve under their base names; SIGHUP re-scans it")
		defaultName  = fs.String("default", "", "sketch name aliased by the unnamed legacy routes (default: first sketch loaded)")
		addr         = fs.String("addr", ":8080", "listen address")
		cache        = fs.Int("cache", server.DefaultCacheSize, "per-sketch LRU query-cache entries (negative disables)")
		maxBody      = fs.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body size in bytes")
		maxSeeds     = fs.Int("max-seeds", server.DefaultMaxSeeds, "maximum seed-set size per /v1/influence request")
		maxK         = fs.Int("max-k", server.DefaultMaxK, "maximum k for /v1/seeds and /v1/top")
		maxBatch     = fs.Int("max-batch", server.DefaultMaxBatchQueries, "maximum queries per /v1/influence:batch request")
		batchW       = fs.Int("batch-workers", -1, "batch evaluation parallelism: 1 = request goroutine, -1 = all CPUs")
		kernel       = fs.String("kernel", "auto", "coverage kernel for every served sketch: auto, epoch or bitpack (answers are identical; only speed differs)")
		readTimeout  = fs.Duration("read-timeout", server.DefaultReadTimeout, "HTTP request read timeout (0 disables)")
		writeTimeout = fs.Duration("write-timeout", server.DefaultWriteTimeout, "HTTP response write timeout (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator {
		if len(sketches) != 0 || *sketchDir != "" {
			return fmt.Errorf("-coordinator serves a shard fleet; it takes -shard-target, not -sketch/-sketch-dir")
		}
		var targets []string
		for _, group := range shardTargets {
			for _, t := range strings.Split(group, ",") {
				if t = strings.TrimSpace(t); t != "" {
					targets = append(targets, t)
				}
			}
		}
		return runCoordinator(cluster.Config{
			Targets:         targets,
			Sketch:          *coordSketch,
			MaxBodyBytes:    *maxBody,
			MaxSeeds:        *maxSeeds,
			MaxK:            *maxK,
			MaxBatchQueries: *maxBatch,
			GreedyBatch:     *greedyBatch,
		}, *addr)
	}
	if len(shardTargets) != 0 {
		return fmt.Errorf("-shard-target requires -coordinator")
	}
	if len(sketches) == 0 && *sketchDir == "" {
		return fmt.Errorf("at least one -sketch or a -sketch-dir is required")
	}

	// 0 means "disabled" on the flag but "default" in server.Config; map it
	// to the config's negative-disables convention.
	toConfigTimeout := func(d time.Duration) time.Duration {
		if d == 0 {
			return -1
		}
		return d
	}
	srv, err := server.New(server.Config{
		AllowEmpty:      true,
		DefaultSketch:   *defaultName,
		CacheSize:       *cache,
		MaxBodyBytes:    *maxBody,
		MaxSeeds:        *maxSeeds,
		MaxK:            *maxK,
		MaxBatchQueries: *maxBatch,
		BatchWorkers:    *batchW,
		Kernel:          *kernel,
		ReadTimeout:     toConfigTimeout(*readTimeout),
		WriteTimeout:    toConfigTimeout(*writeTimeout),
	})
	if err != nil {
		return err
	}
	reg := srv.Registry()

	// Explicit -sketch flags load first and are never unloaded by rescans.
	flagNames := make(map[string]bool)
	for _, group := range sketches {
		for _, spec := range strings.Split(group, ",") {
			name, path, err := server.ParseSketchSpec(strings.TrimSpace(spec))
			if err != nil {
				return err
			}
			if err := loadAndLog(reg, name, path); err != nil {
				return err
			}
			flagNames[name] = true
		}
	}
	dirStamps := make(map[string]sketchStamp)
	if *sketchDir != "" {
		var err error
		if dirStamps, err = scanSketchDir(reg, *sketchDir, flagNames, nil); err != nil {
			return err
		}
	}
	if reg.Len() == 0 {
		return fmt.Errorf("no sketches loaded from -sketch flags or %s", *sketchDir)
	}
	log.Printf("serving %d sketch(es) %v, default %q", reg.Len(), reg.Names(), reg.DefaultName())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *sketchDir != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
					log.Printf("SIGHUP: re-scanning %s", *sketchDir)
					scanned, err := scanSketchDir(reg, *sketchDir, flagNames, dirStamps)
					if err != nil {
						log.Printf("rescan failed, keeping current sketches: %v", err)
						continue
					}
					// Unload sketches whose files disappeared (but never
					// ones pinned by -sketch flags).
					for name := range dirStamps {
						if _, still := scanned[name]; !still && !flagNames[name] {
							if err := reg.Unload(name); err == nil {
								log.Printf("unloaded %s (file removed)", name)
							}
						}
					}
					dirStamps = scanned
					log.Printf("serving %d sketch(es) %v, default %q", reg.Len(), reg.Names(), reg.DefaultName())
				}
			}
		}()
	}

	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shut down cleanly")
	return nil
}

// runCoordinator serves the public query API over a shard fleet until
// SIGINT/SIGTERM.
func runCoordinator(cfg cluster.Config, addr string) error {
	coord, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("coordinating %d shard target(s) %v", len(cfg.Targets), cfg.Targets)
	log.Printf("serving on %s", addr)
	if err := coord.ListenAndServe(ctx, addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("shut down cleanly")
	return nil
}

// scanSketchDir loads every *.sketch file in dir under its base name
// (copy-on-swap replacing any sketch already held under that name) and
// returns the stamp of every name now backed by a dir file. Files whose
// (path, size, mtime) match their stamp in prev are left as loaded —
// a rescan only pays for sketches that actually changed, and their warm
// caches survive. Files that fail to load are skipped with a log line —
// one corrupt sketch must not take down a rescan — and names pinned by
// -sketch flags are reported, not silently replaced.
func scanSketchDir(reg *server.Registry, dir string, flagNames map[string]bool, prev map[string]sketchStamp) (map[string]sketchStamp, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	stampByName := make(map[string]sketchStamp, len(entries))
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".sketch") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			log.Printf("skipping %s: %v", ent.Name(), err)
			continue
		}
		name := server.SketchNameForFile(ent.Name())
		names = append(names, name)
		stampByName[name] = sketchStamp{
			path:  filepath.Join(dir, ent.Name()),
			size:  info.Size(),
			mtime: info.ModTime(),
		}
	}
	sort.Strings(names)
	loaded := make(map[string]sketchStamp, len(names))
	for _, name := range names {
		stamp := stampByName[name]
		if flagNames[name] {
			log.Printf("skipping %s: name %q is pinned by a -sketch flag", stamp.path, name)
			continue
		}
		if stamp == prev[name] {
			loaded[name] = stamp // unchanged since last load; keep as is
			continue
		}
		if err := loadAndLog(reg, name, stamp.path); err != nil {
			log.Printf("skipping %s: %v", stamp.path, err)
			continue
		}
		loaded[name] = stamp
	}
	return loaded, nil
}

func loadAndLog(reg *server.Registry, name, path string) error {
	start := time.Now()
	if err := reg.LoadFile(name, path); err != nil {
		return err
	}
	log.Printf("loaded %q from %s in %v", name, path, time.Since(start).Round(time.Millisecond))
	return nil
}
