package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"table3", "table9", "fig1", "fig8"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "table3", "-preset", "unit"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Karate") {
		t.Errorf("table3 output missing Karate row:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"-exp", "bogus", "-preset", "unit"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-exp", "table3", "-preset", "huge"}, &buf); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSeedOverride(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-exp", "table4", "-preset", "unit", "-seed", "123"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "table4", "-preset", "unit", "-seed", "123"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different experiment output")
	}
}
