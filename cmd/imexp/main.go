// Command imexp regenerates the tables and figures of the paper's evaluation
// section.
//
// Usage:
//
//	imexp -list
//	imexp -exp table5 [-preset unit|small|paper] [-seed N] [-workers W]
//	imexp -all [-preset small]
//
// Each experiment prints the same rows or series the paper reports; the
// preset controls the number of trials, the sample-number sweep and the
// oracle size (see DESIGN.md and EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"imdist/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "imexp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("imexp", flag.ContinueOnError)
	var (
		expID   = fs.String("exp", "", "experiment id to run (see -list)")
		preset  = fs.String("preset", string(experiment.Small), "scale preset: unit, small or paper")
		seed    = fs.Uint64("seed", 0, "master seed override (0 keeps the default)")
		workers = fs.Int("workers", 1, "sampling parallelism: 1 = serial (paper-exact), >1 = that many workers, -1 = all CPUs")
		list    = fs.Bool("list", false, "list available experiments and exit")
		all     = fs.Bool("all", false, "run every experiment in paper order")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintf(out, "%-12s %-10s %s\n", "id", "artefact", "title")
		for _, e := range experiment.Registry() {
			fmt.Fprintf(out, "%-12s %-10s %s\n", e.ID, e.Artefact, e.Title)
		}
		return nil
	}
	env, err := experiment.NewEnv(experiment.Preset(*preset))
	if err != nil {
		return err
	}
	if *seed != 0 {
		env.MasterSeed = *seed
	}
	env.Workers = *workers
	if *all {
		for _, e := range experiment.Registry() {
			if err := experiment.Run(out, e.ID, env); err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	if *expID == "" {
		return fmt.Errorf("no experiment selected; use -exp <id>, -all or -list")
	}
	return experiment.Run(out, *expID, env)
}
