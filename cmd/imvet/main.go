// Command imvet runs imdist's project-specific static-analysis suite: the
// determinism and resource-safety contracts the compiler cannot check.
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation is
//
//	go build -o bin/imvet ./cmd/imvet
//	go vet -vettool=bin/imvet ./...
//
// and it also runs standalone over go list patterns (`go tool imvet ./...`).
// See docs/ANALYSIS.md for the analyzers and the //imvet:allow directive.
package main

import (
	"imdist/internal/analysis"
	"imdist/internal/analysis/suite"
)

func main() {
	analysis.VetMain(suite.Analyzers()...)
}
