package imdist

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownLinkRE matches inline markdown links: [text](target).
var markdownLinkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinksResolve scans every tracked markdown file for relative links
// and fails on any whose target file does not exist, so the README and the
// docs/ references cannot silently rot as files move. External URLs and
// in-page anchors are out of scope.
func TestDocsLinksResolve(t *testing.T) {
	var files []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) < 3 {
		t.Fatalf("found only %d markdown files (%v) — glob broken?", len(files), files)
	}

	checked := 0
	for _, file := range files {
		if filepath.Base(file) == "SNIPPETS.md" {
			continue // quotes external repos verbatim; its links target those repos
		}
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range markdownLinkRE.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve: %v", file, m[1], err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found in any markdown file — regexp broken?")
	}
}
