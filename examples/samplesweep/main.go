// Sample-number selection: the paper's Table 5 shows that the sample number
// required for near-optimal solutions varies by orders of magnitude across
// instances, so fixing it blindly (as older benchmarks did) is unsafe. This
// example reproduces that analysis on a single instance through the public
// API: it sweeps the sample number of each approach and reports the smallest
// one whose solutions are near-optimal (>= 95% of the reference) in at least
// 99% of trials.
//
// Run with:
//
//	go run ./examples/samplesweep
package main

import (
	"fmt"
	"log"

	"imdist"
)

func main() {
	network, err := imdist.LoadDataset("Karate")
	if err != nil {
		log.Fatal(err)
	}
	ig, err := network.AssignProbabilities("iwc", 1)
	if err != nil {
		log.Fatal(err)
	}
	// Build the shared oracle with all CPUs; the sweep below is a long serial
	// chain of studies, so each study also fans its sampling out (Workers).
	oracle, err := ig.NewInfluenceOracleWithOptions(imdist.OracleOptions{
		RRSets:  300000,
		Seed:    5,
		Workers: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	const (
		k        = 4
		trials   = 100
		fraction = 0.95
		prob     = 0.99
	)
	reference, err := oracle.Influence(oracle.GreedySeeds(k))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: Karate (iwc, k=%d); reference influence %.2f\n", k, reference)
	fmt.Printf("criterion: influence >= %.0f%% of reference in >= %.0f%% of %d trials\n\n",
		fraction*100, prob*100, trials)

	approaches := []struct {
		name   imdist.Approach
		levels []int
	}{
		{imdist.Oneshot, []int{1, 4, 16, 64, 256, 1024}},
		{imdist.Snapshot, []int{1, 4, 16, 64, 256, 1024}},
		{imdist.RIS, []int{16, 64, 256, 1024, 4096, 16384, 65536}},
	}
	fmt.Printf("%-9s %12s %10s %14s\n", "approach", "samples*", "entropy", "mean influence")
	for _, a := range approaches {
		found := false
		for _, samples := range a.levels {
			study, err := ig.StudyDistribution(imdist.StudyOptions{
				Approach:     a.name,
				SeedSize:     k,
				SampleNumber: samples,
				Trials:       trials,
				Seed:         2718,
				Oracle:       oracle,
				Workers:      -1,
			})
			if err != nil {
				log.Fatal(err)
			}
			nearOptimal := 0
			for _, inf := range study.Influences {
				if inf >= fraction*reference {
					nearOptimal++
				}
			}
			if float64(nearOptimal)/float64(trials) >= prob {
				fmt.Printf("%-9s %12d %10.2f %14.2f\n", a.name, samples, study.Entropy, study.MeanInfluence)
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-9s %12s\n", a.name, "> swept range")
		}
	}
	fmt.Println("\nOneshot and Snapshot need only tens-to-hundreds of samples here, while RIS")
	fmt.Println("needs thousands of (much smaller) RR sets — the asymmetry behind the")
	fmt.Println("paper's Tables 5-7.")
}
