// Outbreak detection scenario: place k monitoring stations in a contact
// network so that an infection starting anywhere is likely to reach a station
// (the classic dual of influence maximization, cf. CELF's water-network and
// blog cascades). Because monitoring should catch outbreaks travelling
// *towards* the stations, the example works on the transposed influence
// direction by construction of the contact network.
//
// The example also demonstrates the paper's core methodological point: with
// too few samples the selected stations vary wildly between runs, and the
// run-to-run diversity (Shannon entropy) only vanishes once the sample number
// is large enough.
//
// Run with:
//
//	go run ./examples/outbreakdetection
package main

import (
	"fmt"
	"log"

	"imdist"
)

func main() {
	// A small-world contact network: 500 individuals, each in touch with a
	// handful of neighbours, with occasional long-range contacts.
	network, err := imdist.GenerateBA(500, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Uniform 5% transmission probability per contact.
	contacts, err := network.AssignUniform(0.05)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := contacts.NewInfluenceOracle(200000, 3)
	if err != nil {
		log.Fatal(err)
	}

	const k = 5
	fmt.Printf("contact network: %d people, %d directed contacts\n", contacts.NumVertices(), contacts.NumEdges())
	fmt.Printf("placing %d monitoring stations with Snapshot\n\n", k)

	// Sweep the sample number and watch the solution distribution settle.
	fmt.Printf("%10s %10s %14s %14s %12s\n", "samples", "entropy", "distinct sets", "mean coverage", "modal count")
	for _, samples := range []int{1, 4, 16, 64, 256} {
		study, err := contacts.StudyDistribution(imdist.StudyOptions{
			Approach:     imdist.Snapshot,
			SeedSize:     k,
			SampleNumber: samples,
			Trials:       50,
			Seed:         99,
			Oracle:       oracle,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %10.2f %14d %14.1f %12d\n",
			samples, study.Entropy, study.DistinctSeedSets, study.MeanInfluence, study.ModalCount)
	}

	// Final placement with a comfortable sample number.
	res, err := contacts.SelectSeeds(imdist.SeedOptions{
		Approach:     imdist.Snapshot,
		SeedSize:     k,
		SampleNumber: 512,
		Seed:         123,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal station placement: %v\n", res.Seeds)
	reach, err := oracle.Influence(res.Seeds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected number of people within reach of a station: %.1f\n", reach)
	fmt.Println("\nWith one snapshot the placement changes on every run; by a few hundred")
	fmt.Println("snapshots every run agrees — the entropy collapse of the paper's Figure 1.")
}
