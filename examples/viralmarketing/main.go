// Viral marketing scenario: a brand can give free samples to k customers in a
// who-influences-whom network and wants to maximize word-of-mouth adoption.
// The example compares the three algorithmic approaches (Oneshot, Snapshot,
// RIS) on the same budget of "identical accuracy" rather than identical
// sample number — the central message of the paper's Section 6 — and reports
// the traversal cost each approach pays for that accuracy.
//
// Run with:
//
//	go run ./examples/viralmarketing
package main

import (
	"fmt"
	"log"

	"imdist"
)

func main() {
	// A scale-free customer network (Barabási–Albert, 500 customers) with
	// in-degree-weighted influence probabilities: being recommended by
	// someone with few other recommenders is more persuasive.
	network, err := imdist.GenerateBA(500, 3, 2024)
	if err != nil {
		log.Fatal(err)
	}
	ig, err := network.AssignProbabilities("iwc", 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customer network: %d vertices, %d edges, expected live edges %.0f\n",
		ig.NumVertices(), ig.NumEdges(), ig.SumProbabilities())

	oracle, err := ig.NewInfluenceOracle(300000, 7)
	if err != nil {
		log.Fatal(err)
	}
	const k = 5
	reference, err := oracle.Influence(oracle.GreedySeeds(k))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference (oracle greedy) adoption for k=%d: %.1f customers\n\n", k, reference)

	// Sample numbers chosen per approach so that all three reach about the
	// same solution quality (the "comparable sample number" idea): Snapshot
	// needs the fewest samples, Oneshot a few times more, RIS many more but
	// far smaller ones.
	budgets := []struct {
		approach imdist.Approach
		samples  int
	}{
		{imdist.Oneshot, 800},
		{imdist.Snapshot, 300},
		{imdist.RIS, 100000},
	}
	fmt.Printf("%-9s %10s %14s %16s %16s\n", "approach", "samples", "adoption", "traversal cost", "sample size")
	for _, b := range budgets {
		res, err := ig.SelectSeeds(imdist.SeedOptions{
			Approach:     b.approach,
			SeedSize:     k,
			SampleNumber: b.samples,
			Seed:         11,
			Lazy:         b.approach != imdist.Oneshot, // CELF is safe for submodular estimators
			Workers:      4,                            // parallel sampling; deterministic for fixed Seed
		})
		if err != nil {
			log.Fatal(err)
		}
		adoption, err := oracle.Influence(res.Seeds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %10d %14.1f %16d %16d\n",
			b.approach, b.samples, adoption,
			res.Cost.VerticesExamined+res.Cost.EdgesExamined,
			res.Cost.SampleVertices+res.Cost.SampleEdges)
	}
	fmt.Println("\nNote how RIS pays the smallest traversal cost for the same adoption, and")
	fmt.Println("Oneshot stores nothing but has to redo its simulations at every estimate —")
	fmt.Println("exactly the trade-off the paper's Tables 8 and 9 quantify.")
}
