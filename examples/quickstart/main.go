// Quickstart: load the Karate club network, attach uniform influence
// probabilities, select seeds with Reverse Influence Sampling and report the
// estimated influence spread.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"imdist"
)

func main() {
	// 1. Load a network. Karate is bundled; LoadEdgeList reads SNAP-style
	//    files and GenerateBA builds synthetic scale-free networks.
	network, err := imdist.LoadDataset("Karate")
	if err != nil {
		log.Fatal(err)
	}
	stats := network.Stats()
	fmt.Printf("network: %d vertices, %d edges, clustering %.2f\n",
		stats.Vertices, stats.Edges, stats.ClusteringCoefficient)

	// 2. Attach influence probabilities. "uc0.1" assigns p = 0.1 to every
	//    edge; "iwc"/"owc" weight by degree.
	ig, err := network.AssignProbabilities("uc0.1", 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Select k = 4 seeds with RIS using 100,000 reverse-reachable sets,
	//    generated in parallel on all CPUs (Workers: -1). Parallel runs stay
	//    deterministic: the same Seed gives the same seeds and cost whatever
	//    the worker count.
	result, err := ig.SelectSeeds(imdist.SeedOptions{
		Approach:     imdist.RIS,
		SeedSize:     4,
		SampleNumber: 100000,
		Seed:         42,
		Workers:      -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected seeds: %v\n", result.Seeds)
	fmt.Printf("traversal cost: %d vertices, %d edges examined\n",
		result.Cost.VerticesExamined, result.Cost.EdgesExamined)

	// 4. Estimate the influence spread of the selected seeds with a reusable
	//    RR-set oracle (build once, evaluate any number of seed sets).
	oracle, err := ig.NewInfluenceOracle(200000, 7)
	if err != nil {
		log.Fatal(err)
	}
	influence, err := oracle.Influence(result.Seeds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated influence spread: %.2f of %d vertices (99%% CI +/- %.2f)\n",
		influence, ig.NumVertices(), oracle.ConfidenceHalfWidth99())

	// 5. Compare against the single most influential vertices.
	top, infs := oracle.TopVertices(3)
	for i := range top {
		fmt.Printf("top-%d single vertex: %d with influence %.2f\n", i+1, top[i], infs[i])
	}
}
