// Package imdist is a Go library for influence maximization under the
// Independent Cascade model and for studying the solution distribution of its
// three classic algorithmic approaches — Oneshot (Monte-Carlo simulation),
// Snapshot (pre-sampled live-edge graphs) and Reverse Influence Sampling
// (RIS) — reproducing the experimental methodology of:
//
//	Naoto Ohsaka. "The Solution Distribution of Influence Maximization: A
//	High-level Experimental Study on Three Algorithmic Approaches."
//	SIGMOD 2020.
//
// The package exposes a small high-level API:
//
//   - Load or generate a network (LoadEdgeList, LoadDataset, GenerateBA, ...)
//   - Attach edge probabilities (AssignProbabilities with "uc0.1", "uc0.01",
//     "iwc", "owc", "tv")
//   - Select seeds with any of the three approaches (SelectSeeds)
//   - Estimate influence spread with a reusable RR-set oracle
//     (NewInfluenceOracle)
//   - Study the distribution of random solutions over many trials
//     (StudyDistribution), the core of the paper's methodology
//
// The full experiment harness that regenerates every table and figure lives
// in cmd/imexp; the lower-level building blocks are in the internal packages.
package imdist

import (
	"context"
	"errors"
	"fmt"
	"io"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/estimator"
	"imdist/internal/gen"
	"imdist/internal/graph"
	"imdist/internal/greedy"
	"imdist/internal/rng"
	"imdist/internal/sketchio"
	"imdist/internal/workload"
)

// Network is a directed graph.
type Network struct {
	g *graph.Graph
}

// InfluenceNetwork is a directed graph with an influence probability on every
// edge.
type InfluenceNetwork struct {
	ig *graph.InfluenceGraph
}

// NumVertices returns the number of vertices.
func (n *Network) NumVertices() int { return n.g.NumVertices() }

// NumEdges returns the number of directed edges.
func (n *Network) NumEdges() int { return n.g.NumEdges() }

// NumVertices returns the number of vertices.
func (n *InfluenceNetwork) NumVertices() int { return n.ig.NumVertices() }

// NumEdges returns the number of directed edges.
func (n *InfluenceNetwork) NumEdges() int { return n.ig.NumEdges() }

// SumProbabilities returns m̃ = Σ_e p(e), the expected number of live edges.
func (n *InfluenceNetwork) SumProbabilities() float64 { return n.ig.SumProbabilities() }

// Stats summarizes the structure of a network (Table 3 of the paper).
type Stats struct {
	Vertices              int
	Edges                 int
	MaxOutDegree          int
	MaxInDegree           int
	ClusteringCoefficient float64
	AverageDistance       float64
}

// Stats computes structural statistics of the network.
func (n *Network) Stats() Stats {
	s := graph.ComputeStats(n.g, 64)
	return Stats{
		Vertices:              s.Vertices,
		Edges:                 s.Edges,
		MaxOutDegree:          s.MaxOutDegree,
		MaxInDegree:           s.MaxInDegree,
		ClusteringCoefficient: s.ClusteringCoefficient,
		AverageDistance:       s.AverageDistance,
	}
}

// LoadEdgeList parses a whitespace-separated directed edge list (SNAP/KONECT
// style, '#' and '%' comments allowed). Vertex ids are compacted to 0..n-1.
func LoadEdgeList(r io.Reader) (*Network, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// WriteEdgeList writes the network as a directed edge list readable by
// LoadEdgeList.
func (n *Network) WriteEdgeList(w io.Writer) error { return graph.WriteEdgeList(w, n.g) }

// LoadDataset materializes one of the study's named datasets ("Karate",
// "Physicians", "ca-GrQc", "Wiki-Vote", "com-Youtube", "soc-Pokec", "BA_s",
// "BA_d"). Datasets other than Karate and the BA networks are deterministic
// synthetic surrogates; see DESIGN.md.
func LoadDataset(name string) (*Network, error) {
	ds, err := data.Parse(name)
	if err != nil {
		return nil, err
	}
	g, err := data.Load(ds, data.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// DatasetNames returns the names accepted by LoadDataset.
func DatasetNames() []string {
	names := data.Names()
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = string(n)
	}
	return out
}

// GenerateBA generates a Barabási–Albert graph with n vertices and m
// attachments per new vertex, assigning each edge a random direction; this is
// how the paper builds BA_s (m=1) and BA_d (m=11).
func GenerateBA(n, m int, seed uint64) (*Network, error) {
	g, err := gen.BarabasiAlbert(n, m, rng.NewXoshiro(seed))
	if err != nil {
		return nil, err
	}
	return &Network{g: g}, nil
}

// NewNetwork builds a network with n vertices from a list of directed edges
// given as [from, to] pairs.
func NewNetwork(n int, edges [][2]int) (*Network, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1])); err != nil {
			return nil, err
		}
	}
	return &Network{g: b.Build()}, nil
}

// AssignProbabilities attaches influence probabilities to the network using
// one of the paper's models: "uc0.1", "uc0.01", "iwc", "owc" or "tv"
// (trivalency). The seed is only used by randomized models.
func (n *Network) AssignProbabilities(model string, seed uint64) (*InfluenceNetwork, error) {
	m, err := workload.ParseModel(model)
	if err != nil {
		return nil, err
	}
	ig, err := workload.Assign(n.g, m, rng.NewXoshiro(seed))
	if err != nil {
		return nil, err
	}
	return &InfluenceNetwork{ig: ig}, nil
}

// AssignUniform attaches the same probability p to every edge.
func (n *Network) AssignUniform(p float64) (*InfluenceNetwork, error) {
	ig, err := graph.NewInfluenceGraph(n.g, func(_, _ graph.VertexID) float64 { return p })
	if err != nil {
		return nil, err
	}
	return &InfluenceNetwork{ig: ig}, nil
}

// Approach names one of the three algorithmic approaches.
type Approach = string

// The three approaches accepted by SelectSeeds and StudyDistribution.
const (
	Oneshot  Approach = "Oneshot"
	Snapshot Approach = "Snapshot"
	RIS      Approach = "RIS"
)

// Approaches returns the three approach names in the paper's order.
func Approaches() []Approach { return []Approach{Oneshot, Snapshot, RIS} }

// DiffusionModel names a network diffusion model for SeedOptions and
// NewInfluenceOracleForModel: "IC" (Independent Cascade, the paper's model and
// the default) or "LT" (Linear Threshold, provided as an extension — edge
// probabilities are then interpreted as LT weights and must sum to at most 1
// over each vertex's in-edges).
type DiffusionModel = string

// The supported diffusion models.
const (
	IC DiffusionModel = "IC"
	LT DiffusionModel = "LT"
)

// SeedOptions configures seed selection.
type SeedOptions struct {
	// Approach is "Oneshot", "Snapshot" or "RIS".
	Approach Approach
	// SeedSize is the number of seeds k to select.
	SeedSize int
	// SampleNumber is β (Oneshot: simulations per estimate), τ (Snapshot:
	// live-edge graphs) or θ (RIS: reverse-reachable sets).
	SampleNumber int
	// Seed drives all randomness of the run; equal seeds reproduce the run.
	Seed uint64
	// Lazy selects CELF lazy greedy instead of the exhaustive greedy scan.
	Lazy bool
	// Model is the diffusion model; empty means IC.
	Model DiffusionModel
	// Workers is the sampling parallelism. 0 and 1 sample on the calling
	// goroutine; values greater than 1 fan the sampling work — Snapshot's τ
	// live-edge graphs, RIS's θ reverse-reachable sets, Oneshot's β
	// simulations per estimate — out over that many worker goroutines;
	// negative values use one worker per available CPU. Parallel runs are
	// deterministic: with a fixed Seed the selected seed set and the reported
	// Cost are byte-identical across repeated runs and across any parallel
	// worker count (each sample draws from its own rng stream derived from
	// Seed, and per-worker cost accumulators are merged exactly after the
	// join). RIS derives per-sample streams at every worker count, so its
	// runs are byte-identical across all Workers values; for Oneshot and
	// Snapshot only the serial/parallel mode switch changes which random
	// numbers a run sees.
	Workers int
}

func parseModel(m DiffusionModel) (diffusion.Model, error) {
	if m == "" {
		return diffusion.IC, nil
	}
	return diffusion.ParseModel(string(m))
}

// Cost reports the work a seed selection performed, in the paper's
// implementation-independent units.
type Cost struct {
	// VerticesExamined and EdgesExamined are the traversal cost
	// (proportional to running time).
	VerticesExamined int64
	EdgesExamined    int64
	// SampleVertices and SampleEdges are the sample size stored in memory
	// (proportional to memory usage).
	SampleVertices int64
	SampleEdges    int64
}

// SeedResult is the outcome of SelectSeeds.
type SeedResult struct {
	// Seeds is the selected seed set in selection order.
	Seeds []int
	// Cost is the traversal cost and sample size of the run.
	Cost Cost
}

var errNilNetwork = errors.New("imdist: nil influence network")

// SelectSeeds runs the chosen approach inside the paper's greedy framework
// and returns the selected seed set.
func (n *InfluenceNetwork) SelectSeeds(opt SeedOptions) (*SeedResult, error) {
	if n == nil || n.ig == nil {
		return nil, errNilNetwork
	}
	a, err := estimator.ParseApproach(string(opt.Approach))
	if err != nil {
		return nil, err
	}
	model, err := parseModel(opt.Model)
	if err != nil {
		return nil, err
	}
	est, err := estimator.New(a, estimator.Config{
		Graph:        n.ig,
		SampleNumber: opt.SampleNumber,
		Source:       rng.Split(rng.Xoshiro, opt.Seed, 1),
		Model:        model,
		Workers:      opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	var seeds []graph.VertexID
	shuffle := rng.Split(rng.Xoshiro, opt.Seed, 2)
	if opt.Lazy {
		seeds, err = greedy.RunLazy(est, n.ig.NumVertices(), opt.SeedSize, shuffle)
	} else {
		seeds, err = greedy.Run(est, n.ig.NumVertices(), opt.SeedSize, shuffle)
	}
	if err != nil {
		return nil, err
	}
	c := est.Cost()
	return &SeedResult{
		Seeds: toInts(seeds),
		Cost: Cost{
			VerticesExamined: c.VerticesExamined,
			EdgesExamined:    c.EdgesExamined,
			SampleVertices:   c.SampleVertices,
			SampleEdges:      c.SampleEdges,
		},
	}, nil
}

// InfluenceOracle estimates the influence spread of arbitrary seed sets from
// a fixed pool of reverse-reachable sets, following Section 5.2 of the paper:
// build it once per influence network and reuse it so identical seed sets
// always receive identical estimates.
type InfluenceOracle struct {
	o *core.Oracle
}

// NewInfluenceOracle builds an IC oracle backed by rrSets reverse-reachable
// sets. The paper uses 10^7; 10^5–10^6 is usually enough for small networks.
func (n *InfluenceNetwork) NewInfluenceOracle(rrSets int, seed uint64) (*InfluenceOracle, error) {
	return n.NewInfluenceOracleForModel(IC, rrSets, seed)
}

// NewInfluenceOracleForModel builds an influence oracle under the given
// diffusion model ("IC" or "LT").
func (n *InfluenceNetwork) NewInfluenceOracleForModel(model DiffusionModel, rrSets int, seed uint64) (*InfluenceOracle, error) {
	return n.NewInfluenceOracleWithOptions(OracleOptions{Model: model, RRSets: rrSets, Seed: seed})
}

// OracleOptions configures NewInfluenceOracleWithOptions.
type OracleOptions struct {
	// Model is the diffusion model; empty means IC.
	Model DiffusionModel
	// RRSets is the number of reverse-reachable sets backing the oracle.
	RRSets int
	// Seed drives all randomness of the build.
	Seed uint64
	// Workers is the build parallelism, with the same semantics as
	// SeedOptions.Workers: 0 and 1 generate the RR sets on the calling
	// goroutine, larger values generate them on that many goroutines, and
	// negative values use all CPUs. Every RR set draws from its own rng
	// stream derived from Seed, so every worker count — serial included —
	// yields a byte-identical oracle for a fixed Seed.
	Workers int
	// Kernel selects the coverage kernel the oracle answers queries with:
	// "epoch" (the reference epoch-mark kernel), "bitpack" (the popcount
	// kernel over a packed RR-set × vertex bit matrix), or "auto" / ""
	// (pick bitpack when the sketch is dense enough that the packed index
	// pays for itself, epoch otherwise). The kernel changes only query
	// speed, never answers: both return byte-identical results.
	Kernel string
}

// NewInfluenceOracleWithOptions builds an influence oracle with full control
// over the diffusion model, RR-set count, seed and build parallelism.
func (n *InfluenceNetwork) NewInfluenceOracleWithOptions(opt OracleOptions) (*InfluenceOracle, error) {
	if n == nil || n.ig == nil {
		return nil, errNilNetwork
	}
	m, err := parseModel(opt.Model)
	if err != nil {
		return nil, err
	}
	o, err := core.NewOracleParallelSeeded(n.ig, m, opt.RRSets, opt.Workers, opt.Seed)
	if err != nil {
		return nil, err
	}
	out := &InfluenceOracle{o: o}
	if err := out.SetKernel(opt.Kernel); err != nil {
		return nil, err
	}
	return out, nil
}

// Influence returns the oracle estimate of the influence spread of seeds.
// Every seed must lie in [0, NumVertices()); out-of-range seeds return an
// error, so the oracle can be fed untrusted input (see cmd/imserve). The
// range check happens before the internal int32 conversion, so ids beyond
// 2^31 cannot wrap into valid vertices.
func (o *InfluenceOracle) Influence(seeds []int) (float64, error) {
	n := o.o.NumVertices()
	for _, v := range seeds {
		if v < 0 || v >= n {
			return 0, fmt.Errorf("imdist: seed vertex %d not in [0, %d)", v, n)
		}
	}
	return o.o.Influence(toVertexIDs(seeds))
}

// BatchInfluence evaluates many seed sets in one pass over the oracle's RR
// sets using the sharded batch query engine: the RR-set index space is split
// into cache-friendly shards and the shards × queries grid is fanned out over
// workers goroutines (0 and 1 evaluate on the calling goroutine, larger
// values use that many workers, negative values one per CPU). The returned
// values are byte-identical to calling Influence on each seed set in a loop,
// for any worker count.
//
// Both returned slices have len(seedSets) entries. errs[i] is non-nil when
// seedSets[i] contains a vertex outside [0, NumVertices()); values[i] is then
// 0 and the other items are unaffected, so one bad query never fails a batch.
func (o *InfluenceOracle) BatchInfluence(seedSets [][]int, workers int) (values []float64, errs []error) {
	n := o.o.NumVertices()
	values = make([]float64, len(seedSets))
	errs = make([]error, len(seedSets))
	converted := make([][]graph.VertexID, len(seedSets))
	for i, seeds := range seedSets {
		// Range-check before the int32 conversion, exactly as Influence does,
		// so ids beyond 2^31 cannot wrap into valid vertices.
		for _, v := range seeds {
			if v < 0 || v >= n {
				errs[i] = fmt.Errorf("imdist: seed set %d: seed vertex %d not in [0, %d)", i, v, n)
				break
			}
		}
		if errs[i] == nil {
			converted[i] = toVertexIDs(seeds)
		}
	}
	batchValues, batchErrs := o.o.BatchInfluence(converted, workers)
	for i := range seedSets {
		if errs[i] != nil {
			continue
		}
		values[i], errs[i] = batchValues[i], batchErrs[i]
	}
	return values, errs
}

// GreedySeeds returns the greedy maximum-coverage solution computed directly
// on the oracle's RR sets; it is the reference ("Exact Greedy") solution the
// three approaches converge to as their sample number grows.
func (o *InfluenceOracle) GreedySeeds(k int) []int { return toInts(o.o.GreedySeeds(k)) }

// TopVertices returns the topK vertices ranked by single-vertex influence
// together with their influence estimates.
func (o *InfluenceOracle) TopVertices(topK int) ([]int, []float64) {
	vs, infs := o.o.TopSingleVertices(topK)
	return toInts(vs), infs
}

// SetKernel selects the coverage kernel the oracle answers queries with:
// "epoch", "bitpack", or "auto" (the default; "" means auto). Kernels change
// only query speed, never answers — every query is byte-identical under
// either kernel — so switching is safe at any time, including on a loaded
// sketch and concurrently with running queries. An unknown name returns an
// error and leaves the oracle unchanged.
func (o *InfluenceOracle) SetKernel(kernel string) error {
	k, err := core.ParseKernel(kernel)
	if err != nil {
		return err
	}
	return o.o.SetKernel(k)
}

// Kernel reports the kernel actually answering queries: "epoch" or
// "bitpack", with a configured "auto" resolved to its choice.
func (o *InfluenceOracle) Kernel() string { return string(o.o.KernelResolved()) }

// ConfidenceHalfWidth99 returns the half-width of the 99% confidence interval
// of the oracle's influence estimates.
func (o *InfluenceOracle) ConfidenceHalfWidth99() float64 { return o.o.ConfidenceHalfWidth(2.576) }

// NumVertices returns the number of vertices of the oracle's graph.
func (o *InfluenceOracle) NumVertices() int { return o.o.NumVertices() }

// NumRRSets returns the number of reverse-reachable sets backing the oracle.
func (o *InfluenceOracle) NumRRSets() int { return o.o.NumSets() }

// Model returns the diffusion model the oracle was built under.
func (o *InfluenceOracle) Model() DiffusionModel { return DiffusionModel(o.o.Model().String()) }

// BuildSeed returns the master seed the oracle was built from.
func (o *InfluenceOracle) BuildSeed() uint64 { return o.o.BuildSeed() }

// SaveSketch serializes the oracle — its RR-set index plus build metadata —
// to w in the versioned, checksummed binary sketch format of
// internal/sketchio. A sketch loaded back with LoadSketch answers every
// query byte-identically to this oracle, which is the foundation of the
// build-once / serve-many pipeline (imsketch builds and saves, imserve loads
// and serves).
func (o *InfluenceOracle) SaveSketch(w io.Writer) error {
	return sketchio.Encode(w, o.o)
}

// SaveSketchFile writes the oracle's sketch to path atomically (temp file +
// rename), so a concurrently starting server never loads a partial sketch.
func (o *InfluenceOracle) SaveSketchFile(path string) error {
	return sketchio.WriteFile(path, o.o)
}

// LoadSketch reads a sketch previously written by SaveSketch. Decoding is
// strict: version, checksum and every vertex id are validated, so corrupted
// or truncated sketches return errors rather than building a broken oracle.
func LoadSketch(r io.Reader) (*InfluenceOracle, error) {
	o, err := sketchio.Decode(r)
	if err != nil {
		return nil, err
	}
	return &InfluenceOracle{o: o}, nil
}

// LoadSketchFile loads a sketch from path, memory-mapping the file on
// platforms that support it.
func LoadSketchFile(path string) (*InfluenceOracle, error) {
	o, err := sketchio.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &InfluenceOracle{o: o}, nil
}

// MappedSketch is a sketch whose oracle may serve queries directly out of a
// memory-mapped file (zero-copy: the RR sets alias the mapping, so loads are
// near-instant and the page cache is shared between processes serving the
// same sketch). The mapping's lifetime is reference-counted: Close drops the
// owner reference, and the file is unmapped only after every reference taken
// with Acquire has been released — the mechanism imserve's hot reload uses
// to let in-flight queries drain on a replaced sketch.
type MappedSketch struct {
	m      *sketchio.MappedSketch
	oracle *InfluenceOracle
}

// OpenSketchFile opens the sketch at path as a MappedSketch. On platforms
// (or byte orders) without zero-copy support the sketch is decoded onto the
// heap and the same API degrades to no-ops. The caller must Close the sketch
// when done; queries that may run concurrently with Close must be bracketed
// by Acquire/Release.
func OpenSketchFile(path string) (*MappedSketch, error) {
	m, err := sketchio.OpenMapped(path)
	if err != nil {
		return nil, err
	}
	return &MappedSketch{m: m, oracle: &InfluenceOracle{o: m.Oracle()}}, nil
}

// Oracle returns the sketch's influence oracle. When Mapped reports true its
// queries read the mapped file, so they must complete before Close — or hold
// an Acquire/Release reference.
func (s *MappedSketch) Oracle() *InfluenceOracle { return s.oracle }

// Mapped reports whether the oracle serves queries zero-copy out of the
// live file mapping.
func (s *MappedSketch) Mapped() bool { return s.m.ZeroCopy() }

// Acquire takes a query reference that keeps the mapping alive across a
// concurrent Close; it returns false once Close has been called.
func (s *MappedSketch) Acquire() bool { return s.m.Acquire() }

// Release drops a reference taken by Acquire; the last release after Close
// unmaps the file.
func (s *MappedSketch) Release() { s.m.Release() }

// Close drops the owner reference. The file is unmapped immediately when no
// Acquire references are outstanding, otherwise when the last is released.
func (s *MappedSketch) Close() { s.m.Close() }

// SketchBuilder grows an RR-set sketch incrementally instead of committing
// to a fixed RR-set count up front: AppendBatch adds more sets, ErrorBound
// reports the sketch's current relative-error estimate, and BuildToTarget
// loops append→check until a target error or a hard cap is reached. The
// RR-set sequence is pinned by the build seed — a sketch grown in any batch
// schedule, at any worker count, or across checkpoint/resume is
// byte-identical on disk to the one-shot build of the same total — so
// incremental building costs nothing in reproducibility.
//
// A SketchBuilder is not safe for concurrent use; each batch parallelizes
// internally across the configured workers.
type SketchBuilder struct {
	b *core.SketchBuilder
}

// NewSketchBuilder returns an empty incremental sketch builder over the
// network. opt.Model, opt.Seed and opt.Workers have their
// NewInfluenceOracleWithOptions meaning; opt.RRSets is ignored — the builder
// grows on demand.
func (n *InfluenceNetwork) NewSketchBuilder(opt OracleOptions) (*SketchBuilder, error) {
	if n == nil || n.ig == nil {
		return nil, errNilNetwork
	}
	m, err := parseModel(opt.Model)
	if err != nil {
		return nil, err
	}
	b, err := core.NewSketchBuilder(n.ig, m, opt.Workers, opt.Seed)
	if err != nil {
		return nil, err
	}
	if err := applyBuilderKernel(b, opt.Kernel); err != nil {
		return nil, err
	}
	return &SketchBuilder{b: b}, nil
}

// applyBuilderKernel parses and installs an OracleOptions.Kernel selection on
// a core builder, so the oracles it finalizes (and its internal ErrorBound
// greedy) use the requested kernel.
func applyBuilderKernel(b *core.SketchBuilder, kernel string) error {
	k, err := core.ParseKernel(kernel)
	if err != nil {
		return err
	}
	return b.SetKernel(k)
}

// ResumeSketchBuilder reconstructs a builder from a checkpoint stream
// previously written by SketchBuilder.Checkpoint. The checkpoint must have
// been built over this same influence network; generation continues exactly
// where it stopped.
func (n *InfluenceNetwork) ResumeSketchBuilder(r io.Reader, workers int) (*SketchBuilder, error) {
	if n == nil || n.ig == nil {
		return nil, errNilNetwork
	}
	b, err := sketchio.ResumeBuilder(r, n.ig, workers)
	if err != nil {
		return nil, err
	}
	return &SketchBuilder{b: b}, nil
}

// AppendBatch generates m more RR sets.
func (b *SketchBuilder) AppendBatch(m int) error { return b.b.AppendBatch(m) }

// NumRRSets returns the number of RR sets generated so far.
func (b *SketchBuilder) NumRRSets() int { return b.b.NumSets() }

// ErrorBound estimates the sketch's current relative error for seed sets of
// size k at confidence 1-delta (the adaptive stopping quantity; +Inf while
// the sketch is empty). Non-positive k and out-of-range delta select the
// defaults (k=10, delta=0.01).
func (b *SketchBuilder) ErrorBound(k int, delta float64) float64 {
	return b.b.ErrorBound(k, delta)
}

// Checkpoint writes a snapshot of the build to w in the append-only v2
// checkpoint format; ResumeSketchBuilder continues from it later. For an
// on-disk checkpoint that grows batch by batch during a long build, see
// BuildSketchWithCheckpoint.
func (b *SketchBuilder) Checkpoint(w io.Writer) error {
	return sketchio.WriteCheckpoint(w, b.b)
}

// Oracle finalizes the current sketch into a queryable influence oracle (a
// snapshot: the builder can keep growing afterwards).
func (b *SketchBuilder) Oracle() (*InfluenceOracle, error) {
	o, err := b.b.Oracle()
	if err != nil {
		return nil, err
	}
	return &InfluenceOracle{o: o}, nil
}

// BuildSummary reports how a target build ended.
type BuildSummary struct {
	// RRSets is the final sketch size.
	RRSets int
	// Bound is the final ErrorBound (+Inf when it was never computed, i.e. a
	// fixed-size build).
	Bound float64
	// Converged reports whether the error target was met (false when the
	// cap stopped the build first).
	Converged bool
}

// BuildProgress is the per-round state handed to BuildOptions.Progress.
type BuildProgress struct {
	// RRSets is the current sketch size; Appended is how many sets the round
	// just finished added.
	RRSets   int
	Appended int
	// Bound is the current ErrorBound (+Inf until enough sets exist to
	// estimate one, or for fixed-size builds).
	Bound float64
	// Fraction estimates overall completion in [0, 1].
	Fraction float64
	// SpillBytes is the build's durable on-disk footprint — the spill file's
	// size for spill builds, 0 for in-memory builds.
	SpillBytes int64
}

// BuildOptions configures SketchBuilder.Build and BuildSketchWithCheckpoint.
type BuildOptions struct {
	// TargetEps is the target relative error; <= 0 disables the accuracy
	// stop and builds straight to MaxSets.
	TargetEps float64
	// Delta is the bound's failure probability (default 0.01) and K the
	// seed-set size it targets (default 10).
	Delta float64
	K     int
	// MaxSets caps the sketch size. Required.
	MaxSets int
	// Progress, when non-nil, observes every build round.
	Progress func(BuildProgress)
	// Spill makes BuildSketchWithCheckpoint stream every generated batch to
	// the checkpoint file as it is produced and keep only a bounded working
	// set of decoded RR sets in memory, so sketches far larger than RAM build
	// within a fixed budget. The on-disk bytes are the ordinary v2 checkpoint
	// format, so interruption and resume work exactly as without Spill — and
	// the finished sketch is byte-identical to an in-memory build.
	Spill bool
	// MemBudget bounds the spill working set in bytes: 0 selects the default
	// (64 MiB), negative means unbounded. Ignored unless Spill is set.
	MemBudget int64
}

func (opt BuildOptions) coreTarget() core.BuildTarget {
	t := core.BuildTarget{
		Eps:     opt.TargetEps,
		Delta:   opt.Delta,
		K:       opt.K,
		MaxSets: opt.MaxSets,
	}
	if opt.Progress != nil {
		t.Progress = func(p core.BuildProgress) error {
			opt.Progress(BuildProgress{
				RRSets:     p.Sets,
				Appended:   p.Appended,
				Bound:      p.Bound,
				Fraction:   p.Fraction,
				SpillBytes: p.SpillBytes,
			})
			return nil
		}
	}
	return t
}

func toSummary(res core.BuildResult) BuildSummary {
	return BuildSummary{RRSets: res.Sets, Bound: res.Bound, Converged: res.Converged}
}

// Build grows the sketch in geometrically increasing rounds until the error
// target or the cap is reached. Cancelling ctx stops it between rounds with
// ctx's error; the builder stays valid (checkpoint it, or call Build again).
func (b *SketchBuilder) Build(ctx context.Context, opt BuildOptions) (BuildSummary, error) {
	res, err := b.b.BuildToTarget(ctx, opt.coreTarget())
	return toSummary(res), err
}

// BuildToTarget grows the sketch until its ErrorBound (at the default k and
// the given delta) reaches eps, or maxSets is hit. It is Build with the
// common knobs inline.
func (b *SketchBuilder) BuildToTarget(eps, delta float64, maxSets int) (BuildSummary, error) {
	return b.Build(context.Background(), BuildOptions{TargetEps: eps, Delta: delta, MaxSets: maxSets})
}

// BuildSketchToTarget builds an influence oracle adaptively: RR sets are
// generated until the relative-error estimate reaches eps (or maxSets caps
// the build), instead of guessing the count up front as NewInfluenceOracle
// does. It returns the finished oracle together with the build summary.
func (n *InfluenceNetwork) BuildSketchToTarget(opt OracleOptions, eps, delta float64, maxSets int) (*InfluenceOracle, BuildSummary, error) {
	b, err := n.NewSketchBuilder(opt)
	if err != nil {
		return nil, BuildSummary{}, err
	}
	sum, err := b.BuildToTarget(eps, delta, maxSets)
	if err != nil {
		return nil, sum, err
	}
	o, err := b.Oracle()
	if err != nil {
		return nil, sum, err
	}
	return o, sum, nil
}

// BuildSketchWithCheckpoint runs a checkpointed build end to end: it opens
// (or resumes) the append-only checkpoint file at path, continues the build
// from the RR sets already durable there, and appends each round's new sets
// as a CRC-framed segment before reporting progress. Interrupt it at any
// point — crash included — and the same call continues where the checkpoint
// left off, ultimately producing a sketch byte-identical to the
// uninterrupted build. The checkpoint file is left in place on success;
// remove it once the final sketch is saved.
//
// With bopt.Spill set the checkpoint file is also the build's primary
// storage: batches stream to it as they are generated and only a working set
// bounded by bopt.MemBudget stays decoded on the heap, so the build's memory
// use is independent of the sketch's size. The returned oracle then serves
// reads through the open spill file, which stays open for the life of the
// process; save the sketch (SaveSketchFile) and delete the spill file once
// done.
func (n *InfluenceNetwork) BuildSketchWithCheckpoint(ctx context.Context, path string, opt OracleOptions, bopt BuildOptions) (*InfluenceOracle, BuildSummary, error) {
	if n == nil || n.ig == nil {
		return nil, BuildSummary{}, errNilNetwork
	}
	m, err := parseModel(opt.Model)
	if err != nil {
		return nil, BuildSummary{}, err
	}
	if bopt.Spill {
		b, store, res, err := sketchio.BuildSpill(ctx, path, n.ig, m, opt.Workers, opt.Seed, bopt.MemBudget, bopt.coreTarget())
		if err != nil {
			if store != nil {
				_ = store.Close()
			}
			return nil, toSummary(res), err
		}
		if err := applyBuilderKernel(b, opt.Kernel); err != nil {
			_ = store.Close()
			return nil, toSummary(res), err
		}
		o, err := b.Oracle()
		if err != nil {
			_ = store.Close()
			return nil, toSummary(res), err
		}
		return &InfluenceOracle{o: o}, toSummary(res), nil
	}
	b, res, err := sketchio.BuildWithCheckpoint(ctx, path, n.ig, m, opt.Workers, opt.Seed, bopt.coreTarget())
	if err != nil {
		return nil, toSummary(res), err
	}
	if err := applyBuilderKernel(b, opt.Kernel); err != nil {
		return nil, toSummary(res), err
	}
	o, err := b.Oracle()
	if err != nil {
		return nil, toSummary(res), err
	}
	return &InfluenceOracle{o: o}, toSummary(res), nil
}

// SketchFileInfo describes a sketch or checkpoint file section by section —
// what imsketch -info prints. Every section's CRC-32C is verified against the
// bytes on disk.
type SketchFileInfo struct {
	// Path, Size and Version identify the file (version 1 = sketch,
	// 2 = build checkpoint).
	Path    string
	Size    int64
	Version int
	// Model, BuildSeed and Vertices are the recorded build identity;
	// RRSets is the total across intact sections.
	Model     DiffusionModel
	BuildSeed uint64
	Vertices  int
	RRSets    int
	// ShardIndex, ShardCount and TotalSets are the shard lineage of a sketch
	// produced by SplitSketchFile (imsketch -split): which slice of which
	// fleet this file is. ShardCount is 0 for an unsharded sketch.
	ShardIndex int
	ShardCount int
	TotalSets  int
	// Sections lists the file's physical sections in order; Corrupt reports
	// whether any failed its structure or checksum checks.
	Sections []SketchSection
	Corrupt  bool
}

// SketchSection is one verified section of a sketch file.
type SketchSection struct {
	Name   string
	Offset int64
	Size   int64
	// RRSets is the number of RR-set records the section carries.
	RRSets int
	// CRC is the stored CRC-32C guarding the section (0 when it has none).
	CRC uint32
	// OK reports whether the section passed verification; Detail explains a
	// failure.
	OK     bool
	Detail string
}

// InspectSketchFile verifies the sketch or checkpoint file at path section by
// section (structure and CRC-32C) without loading it into an oracle. Damage
// is reported per section in the result; only an unreadable or unclassifiable
// file returns an error.
func InspectSketchFile(path string) (*SketchFileInfo, error) {
	fi, err := sketchio.Inspect(path)
	if err != nil {
		return nil, err
	}
	out := &SketchFileInfo{
		Path:      fi.Path,
		Size:      fi.Size,
		Version:   fi.Version,
		Model:     DiffusionModel(fi.Meta.Model.String()),
		BuildSeed: fi.Meta.Seed,
		Vertices:  fi.Meta.N,
		RRSets:    fi.NumSets,
		Corrupt:   fi.Corrupt,
	}
	if fi.Shard.Sharded() {
		out.ShardIndex = fi.Shard.Index
		out.ShardCount = fi.Shard.Count
		out.TotalSets = fi.Shard.TotalSets
	}
	out.Sections = make([]SketchSection, len(fi.Sections))
	for i, s := range fi.Sections {
		out.Sections[i] = SketchSection{
			Name:   s.Name,
			Offset: s.Offset,
			Size:   s.Size,
			RRSets: s.Sets,
			CRC:    s.CRC,
			OK:     s.OK,
			Detail: s.Detail,
		}
	}
	return out, nil
}

// SplitSketchFile partitions the sketch file at path into shards files along
// the batch engine's internal 64Ki-set block boundaries (imsketch -split).
// Each output — written next to outPrefix as
// "<outPrefix>.shard<i>-of-<shards>" — is a complete, independently loadable
// sketch over a contiguous slice of the RR-set pool, carrying shard lineage
// (index, fleet size, fleet-wide set total) that imserve surfaces and the
// cluster coordinator verifies on every query. The input is fully validated
// (structure and CRC-32C) before any shard is written; payload bytes are
// copied verbatim, so decoded shards reproduce the original's RR sets
// record for record. Splitting an already-split shard is rejected.
func SplitSketchFile(path, outPrefix string, shards int) ([]string, error) {
	return sketchio.SplitSketch(path, outPrefix, shards)
}

// StudyOptions configures a solution-distribution study (the paper's core
// methodology): run one approach T times at a fixed sample number and look at
// the distribution of the random seed sets and their influences.
type StudyOptions struct {
	Approach     Approach
	SeedSize     int
	SampleNumber int
	Trials       int
	Seed         uint64
	// Oracle evaluates every produced seed set; it must come from the same
	// influence network.
	Oracle *InfluenceOracle
	// Workers is the per-trial sampling parallelism, with the same semantics
	// and determinism guarantee as SeedOptions.Workers. Trials themselves run
	// sequentially, so the study's per-trial rng streams are derived exactly
	// as in the serial harness.
	Workers int
}

// StudyResult summarizes the empirical solution distribution.
type StudyResult struct {
	// Entropy is the Shannon entropy (bits) of the seed-set distribution;
	// 0 means every trial returned the same seed set.
	Entropy float64
	// DistinctSeedSets is the number of different seed sets observed.
	DistinctSeedSets int
	// ModalSeeds is the most frequent seed set and ModalCount its frequency.
	ModalSeeds []int
	ModalCount int
	// MeanInfluence, StdDevInfluence, Percentile1, Median and Percentile99
	// summarize the influence distribution.
	MeanInfluence   float64
	StdDevInfluence float64
	Percentile1     float64
	Median          float64
	Percentile99    float64
	// MeanTraversalCost and MeanSampleSize are per-trial averages of the
	// paper's efficiency metrics.
	MeanTraversalCost float64
	MeanSampleSize    float64
	// Influences lists the per-trial oracle influences in trial order.
	Influences []float64
}

// StudyDistribution runs opt.Trials independent seed selections and returns
// the empirical distribution summary.
func (n *InfluenceNetwork) StudyDistribution(opt StudyOptions) (*StudyResult, error) {
	if n == nil || n.ig == nil {
		return nil, errNilNetwork
	}
	if opt.Oracle == nil {
		return nil, errors.New("imdist: StudyDistribution requires an oracle (see NewInfluenceOracle)")
	}
	a, err := estimator.ParseApproach(string(opt.Approach))
	if err != nil {
		return nil, err
	}
	d, err := core.RunDistribution(core.RunConfig{
		Graph:        n.ig,
		Approach:     a,
		SampleNumber: opt.SampleNumber,
		SeedSize:     opt.SeedSize,
		Trials:       opt.Trials,
		MasterSeed:   opt.Seed,
		Oracle:       opt.Oracle.o,
		Workers:      opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	modal, count := d.ModalSeedSet()
	box := d.BoxPlot()
	mc := d.MeanCost()
	return &StudyResult{
		Entropy:           d.Entropy(),
		DistinctSeedSets:  d.DistinctSeedSets(),
		ModalSeeds:        toInts(modal),
		ModalCount:        count,
		MeanInfluence:     box.Mean,
		StdDevInfluence:   box.StdDev,
		Percentile1:       box.Percentile1,
		Median:            box.Median,
		Percentile99:      box.Percentile99,
		MeanTraversalCost: mc.Traversal(),
		MeanSampleSize:    mc.SampleSize(),
		Influences:        d.Influences(),
	}, nil
}

// SimulateInfluence estimates Inf(seeds) with plain forward Monte-Carlo
// simulation (the Oneshot estimator applied once), which is useful as an
// oracle-free spot check.
func (n *InfluenceNetwork) SimulateInfluence(seeds []int, simulations int, seed uint64) (float64, error) {
	if n == nil || n.ig == nil {
		return 0, errNilNetwork
	}
	if simulations < 1 {
		return 0, fmt.Errorf("imdist: simulations must be >= 1, got %d", simulations)
	}
	est, err := estimator.New(estimator.Oneshot, estimator.Config{
		Graph:        n.ig,
		SampleNumber: simulations,
		Source:       rng.NewXoshiro(seed),
	})
	if err != nil {
		return 0, err
	}
	ids := toVertexIDs(seeds)
	if len(ids) == 0 {
		return 0, nil
	}
	// Estimate(v) evaluates Inf(S + v); commit all but the last seed first.
	for _, v := range ids[:len(ids)-1] {
		est.Update(v)
	}
	return est.Estimate(ids[len(ids)-1]), nil
}

func toInts(vs []graph.VertexID) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}

func toVertexIDs(vs []int) []graph.VertexID {
	out := make([]graph.VertexID, len(vs))
	for i, v := range vs {
		out[i] = graph.VertexID(v)
	}
	return out
}
