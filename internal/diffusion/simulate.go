package diffusion

import (
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// Simulator runs forward IC Monte-Carlo simulations on an influence graph.
// It owns the scratch buffers needed by a single goroutine, so one Simulator
// must not be shared between goroutines.
type Simulator struct {
	g *graph.InfluenceGraph

	// visited holds an epoch per vertex; a vertex is active in the current
	// simulation iff visited[v] == epoch. Epochs avoid clearing the whole
	// slice between simulations.
	visited []uint32
	epoch   uint32
	queue   []graph.VertexID
}

// NewSimulator returns a Simulator for g.
func NewSimulator(g *graph.InfluenceGraph) *Simulator {
	return &Simulator{
		g:       g,
		visited: make([]uint32, g.NumVertices()),
		queue:   make([]graph.VertexID, 0, 64),
	}
}

// Run performs one forward IC simulation from the given seed set and returns
// the number of activated vertices (including the seeds themselves, with
// duplicate seeds counted once). Each examined edge consumes one uniform
// random number from src, matching the Oneshot PRNG discipline of §4.1.
// Traversal cost is accumulated into cost when non-nil: every activated
// vertex is one vertex examination and every outgoing edge of an activated
// vertex is one edge examination.
func (s *Simulator) Run(seeds []graph.VertexID, src rng.Source, cost *Cost) int {
	s.epoch++
	if s.epoch == 0 { // wrapped around: clear and restart epochs
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	activated := 0
	for _, v := range seeds {
		if s.visited[v] == s.epoch {
			continue
		}
		s.visited[v] = s.epoch
		s.queue = append(s.queue, v)
		activated++
	}
	var verticesExamined, edgesExamined int64
	for head := 0; head < len(s.queue); head++ {
		v := s.queue[head]
		verticesExamined++
		neighbors := s.g.OutNeighbors(v)
		probs := s.g.OutProbabilities(v)
		for i, w := range neighbors {
			edgesExamined++
			if s.visited[w] == s.epoch {
				// Already active; the activation trial is still performed in
				// the process definition but cannot change the outcome, and
				// the naive implementation skips the coin toss.
				continue
			}
			if src.Float64() < probs[i] {
				s.visited[w] = s.epoch
				s.queue = append(s.queue, w)
				activated++
			}
		}
	}
	if cost != nil {
		cost.VerticesExamined += verticesExamined
		cost.EdgesExamined += edgesExamined
	}
	return activated
}

// EstimateInfluence runs count simulations from seeds and returns the average
// number of activated vertices, the Monte-Carlo estimate of Inf(seeds).
func (s *Simulator) EstimateInfluence(seeds []graph.VertexID, count int, src rng.Source, cost *Cost) float64 {
	if count <= 0 {
		return 0
	}
	total := 0
	for i := 0; i < count; i++ {
		total += s.Run(seeds, src, cost)
	}
	return float64(total) / float64(count)
}
