package diffusion

import (
	"math"
	"testing"

	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/workload"
)

// lineGraph returns the influence graph 0 -> 1 -> 2 with probability p on
// every edge.
func lineGraph(t *testing.T, p float64) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return p })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

// completeBipartiteSourceGraph returns a star: vertex 0 points to vertices
// 1..n-1 with probability p.
func starGraph(t *testing.T, n int, p float64) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return p })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func TestSimulateCertainPropagation(t *testing.T) {
	ig := lineGraph(t, 1.0)
	sim := NewSimulator(ig)
	src := rng.NewXoshiro(1)
	var cost Cost
	got := sim.Run([]graph.VertexID{0}, src, &cost)
	if got != 3 {
		t.Errorf("activation with p=1 from 0 = %d, want 3", got)
	}
	// Traversal: all three vertices examined, both edges examined.
	if cost.VerticesExamined != 3 || cost.EdgesExamined != 2 {
		t.Errorf("cost = %+v, want 3 vertices and 2 edges", cost)
	}
}

func TestSimulateSeedOnlyWhenImpossible(t *testing.T) {
	// Probability must be in (0,1]; use a tiny probability and a seed whose
	// first draws exceed it to show the seed is always counted.
	ig := lineGraph(t, 1e-12)
	sim := NewSimulator(ig)
	src := rng.NewXoshiro(3)
	if got := sim.Run([]graph.VertexID{2}, src, nil); got != 1 {
		t.Errorf("activation from sink = %d, want 1", got)
	}
}

func TestSimulateDuplicateSeeds(t *testing.T) {
	ig := lineGraph(t, 1.0)
	sim := NewSimulator(ig)
	got := sim.Run([]graph.VertexID{0, 0, 0}, rng.NewXoshiro(1), nil)
	if got != 3 {
		t.Errorf("duplicate seeds changed the count: %d, want 3", got)
	}
}

func TestEstimateInfluenceStarUnbiased(t *testing.T) {
	// Star with 10 leaves and p = 0.3: Inf({0}) = 1 + 10*0.3 = 4.
	ig := starGraph(t, 11, 0.3)
	sim := NewSimulator(ig)
	src := rng.NewXoshiro(7)
	got := sim.EstimateInfluence([]graph.VertexID{0}, 20000, src, nil)
	if math.Abs(got-4.0) > 0.1 {
		t.Errorf("estimated influence = %v, want approx 4.0", got)
	}
}

func TestEstimateInfluenceLine(t *testing.T) {
	// Line 0->1->2 with p=0.5: Inf({0}) = 1 + 0.5 + 0.25 = 1.75.
	ig := lineGraph(t, 0.5)
	sim := NewSimulator(ig)
	got := sim.EstimateInfluence([]graph.VertexID{0}, 40000, rng.NewXoshiro(11), nil)
	if math.Abs(got-1.75) > 0.05 {
		t.Errorf("estimated influence = %v, want approx 1.75", got)
	}
	if sim.EstimateInfluence([]graph.VertexID{0}, 0, rng.NewXoshiro(1), nil) != 0 {
		t.Error("zero simulations should estimate 0")
	}
}

func TestSimulatorEpochWraparound(t *testing.T) {
	ig := lineGraph(t, 1.0)
	sim := NewSimulator(ig)
	sim.epoch = ^uint32(0) - 1 // two steps from wraparound
	src := rng.NewXoshiro(5)
	for i := 0; i < 4; i++ {
		if got := sim.Run([]graph.VertexID{0}, src, nil); got != 3 {
			t.Fatalf("run %d after near-wraparound = %d, want 3", i, got)
		}
	}
}

func TestSampleSnapshotExtremes(t *testing.T) {
	igAll := lineGraph(t, 1.0)
	snap := SampleSnapshot(igAll, rng.NewXoshiro(1), nil)
	if snap.NumLiveEdges() != 2 {
		t.Errorf("p=1 snapshot has %d live edges, want 2", snap.NumLiveEdges())
	}
	igFew := lineGraph(t, 1e-12)
	snap = SampleSnapshot(igFew, rng.NewXoshiro(1), nil)
	if snap.NumLiveEdges() != 0 {
		t.Errorf("p~=0 snapshot has %d live edges, want 0", snap.NumLiveEdges())
	}
}

func TestSampleSnapshotLiveEdgeFraction(t *testing.T) {
	// On Karate-like uniform graphs the expected number of live edges is
	// p * m; check the empirical average over many snapshots.
	b := graph.NewBuilder(50)
	for u := 0; u < 50; u++ {
		for d := 1; d <= 4; d++ {
			if err := b.AddEdge(graph.VertexID(u), graph.VertexID((u+d)%50)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ig, err := workload.Assign(b.Build(), workload.UC01, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXoshiro(9)
	total := 0
	const reps = 2000
	for i := 0; i < reps; i++ {
		total += SampleSnapshot(ig, src, nil).NumLiveEdges()
	}
	avg := float64(total) / reps
	want := 0.1 * float64(ig.NumEdges())
	if math.Abs(avg-want) > want*0.1 {
		t.Errorf("average live edges = %v, want approx %v", avg, want)
	}
}

func TestSnapshotSampleSizeAccounting(t *testing.T) {
	ig := lineGraph(t, 1.0)
	var cost Cost
	_ = SampleSnapshot(ig, rng.NewXoshiro(1), &cost)
	if cost.SampleVertices != 3 {
		t.Errorf("SampleVertices = %d, want 3", cost.SampleVertices)
	}
	if cost.SampleEdges != 2 {
		t.Errorf("SampleEdges = %d, want 2 (all live at p=1)", cost.SampleEdges)
	}
	if cost.VerticesExamined != 0 || cost.EdgesExamined != 0 {
		t.Errorf("snapshot generation should not charge traversal: %+v", cost)
	}
}

func TestSnapshotReachable(t *testing.T) {
	ig := lineGraph(t, 1.0)
	snap := SampleSnapshot(ig, rng.NewXoshiro(1), nil)
	visited := make([]uint32, 3)
	queue := make([]graph.VertexID, 0, 3)
	var cost Cost
	got := snap.Reachable([]graph.VertexID{0}, nil, nil, visited, 1, queue, &cost)
	if got != 3 {
		t.Errorf("reachable from 0 = %d, want 3", got)
	}
	if cost.VerticesExamined != 3 || cost.EdgesExamined != 2 {
		t.Errorf("reachability cost = %+v", cost)
	}
}

func TestSnapshotReachableBlocked(t *testing.T) {
	ig := lineGraph(t, 1.0)
	snap := SampleSnapshot(ig, rng.NewXoshiro(1), nil)
	visited := make([]uint32, 3)
	queue := make([]graph.VertexID, 0, 3)
	blocked := func(v graph.VertexID) bool { return v == 1 }
	got := snap.Reachable([]graph.VertexID{0}, blocked, nil, visited, 1, queue, nil)
	if got != 1 {
		t.Errorf("reachable with vertex 1 blocked = %d, want 1", got)
	}
}

func TestSnapshotReachableVisitCallback(t *testing.T) {
	ig := lineGraph(t, 1.0)
	snap := SampleSnapshot(ig, rng.NewXoshiro(1), nil)
	visited := make([]uint32, 3)
	queue := make([]graph.VertexID, 0, 3)
	var seen []graph.VertexID
	snap.Reachable([]graph.VertexID{0}, nil, func(v graph.VertexID) { seen = append(seen, v) },
		visited, 1, queue, nil)
	if len(seen) != 3 {
		t.Errorf("visit callback saw %v, want all three vertices", seen)
	}
}

func TestRRSetCertainLine(t *testing.T) {
	// With p=1 the RR set of any target in 0->1->2 is the set of its
	// ancestors plus itself.
	ig := lineGraph(t, 1.0)
	sampler := NewRRSampler(ig)
	src := rng.NewXoshiro(1)
	set := sampler.SampleFor(2, src, nil)
	if len(set) != 3 {
		t.Errorf("RR set of vertex 2 with p=1 = %v, want all 3 vertices", set)
	}
	set = sampler.SampleFor(0, src, nil)
	if len(set) != 1 || set[0] != 0 {
		t.Errorf("RR set of source vertex = %v, want [0]", set)
	}
}

func TestRRSetMembershipProbabilityMatchesInfluence(t *testing.T) {
	// Observation 3.2 of Borgs et al.: Pr[v in R] = Inf(v)/n. For the star
	// graph with p=0.3 and 11 vertices, Inf(0) = 4, so vertex 0 should appear
	// in an RR set with probability 4/11.
	ig := starGraph(t, 11, 0.3)
	sampler := NewRRSampler(ig)
	targetSrc := rng.NewXoshiro(21)
	edgeSrc := rng.NewXoshiro(22)
	const reps = 60000
	hits := 0
	for i := 0; i < reps; i++ {
		for _, v := range sampler.Sample(targetSrc, edgeSrc, nil) {
			if v == 0 {
				hits++
				break
			}
		}
	}
	got := float64(hits) / reps
	want := 4.0 / 11.0
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Pr[0 in RR] = %v, want approx %v", got, want)
	}
}

func TestRRSetCostAccounting(t *testing.T) {
	ig := lineGraph(t, 1.0)
	sampler := NewRRSampler(ig)
	var cost Cost
	set := sampler.SampleFor(2, rng.NewXoshiro(1), &cost)
	if cost.SampleVertices != int64(len(set)) {
		t.Errorf("SampleVertices = %d, want %d", cost.SampleVertices, len(set))
	}
	// Weight w(R) = sum of in-degrees of members = 0 + 1 + 1 = 2 edges examined.
	if cost.EdgesExamined != 2 {
		t.Errorf("EdgesExamined = %d, want 2", cost.EdgesExamined)
	}
	if cost.VerticesExamined != 3 {
		t.Errorf("VerticesExamined = %d, want 3", cost.VerticesExamined)
	}
}

func TestRRSamplerEmptyGraph(t *testing.T) {
	ig, err := graph.NewInfluenceGraph(graph.NewBuilder(0).Build(), func(_, _ graph.VertexID) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewRRSampler(ig)
	if set := sampler.Sample(rng.NewXoshiro(1), rng.NewXoshiro(2), nil); set != nil {
		t.Errorf("RR set on empty graph = %v, want nil", set)
	}
}

func TestRRSamplerEpochWraparound(t *testing.T) {
	ig := lineGraph(t, 1.0)
	sampler := NewRRSampler(ig)
	sampler.epoch = ^uint32(0) - 1
	src := rng.NewXoshiro(5)
	for i := 0; i < 4; i++ {
		if set := sampler.SampleFor(2, src, nil); len(set) != 3 {
			t.Fatalf("RR set after near-wraparound = %v", set)
		}
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{VerticesExamined: 1, EdgesExamined: 2, SampleVertices: 3, SampleEdges: 4}
	b := Cost{VerticesExamined: 10, EdgesExamined: 20, SampleVertices: 30, SampleEdges: 40}
	a.Add(b)
	if a.VerticesExamined != 11 || a.EdgesExamined != 22 || a.SampleVertices != 33 || a.SampleEdges != 44 {
		t.Errorf("Add result = %+v", a)
	}
	if a.Traversal() != 33 {
		t.Errorf("Traversal = %d, want 33", a.Traversal())
	}
	if a.SampleSize() != 77 {
		t.Errorf("SampleSize = %d, want 77", a.SampleSize())
	}
	a.Reset()
	if a != (Cost{}) {
		t.Errorf("Reset left %+v", a)
	}
}

func BenchmarkSimulateKarateLike(b *testing.B) {
	builder := graph.NewBuilder(200)
	for u := 0; u < 200; u++ {
		for d := 1; d <= 5; d++ {
			_ = builder.AddEdge(graph.VertexID(u), graph.VertexID((u+d)%200))
		}
	}
	ig, err := workload.Assign(builder.Build(), workload.UC01, nil)
	if err != nil {
		b.Fatal(err)
	}
	sim := NewSimulator(ig)
	src := rng.NewXoshiro(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run([]graph.VertexID{0}, src, nil)
	}
}

func BenchmarkRRSet(b *testing.B) {
	builder := graph.NewBuilder(200)
	for u := 0; u < 200; u++ {
		for d := 1; d <= 5; d++ {
			_ = builder.AddEdge(graph.VertexID(u), graph.VertexID((u+d)%200))
		}
	}
	ig, err := workload.Assign(builder.Build(), workload.IWC, nil)
	if err != nil {
		b.Fatal(err)
	}
	sampler := NewRRSampler(ig)
	t1, t2 := rng.NewXoshiro(1), rng.NewXoshiro(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.Sample(t1, t2, nil)
	}
}
