// Package diffusion implements the Independent Cascade (IC) substrate the
// three algorithmic approaches are built on: forward Monte-Carlo simulation
// (Oneshot), live-edge snapshot sampling and reachability (Snapshot), and
// reverse-reachable set generation (RIS). Every primitive accounts for its
// traversal cost — the number of vertices and edges examined — because the
// paper uses traversal cost, not wall-clock time, as its implementation-
// independent efficiency metric (Section 3.2).
package diffusion

// Cost accumulates the work performed by diffusion primitives.
//
// VerticesExamined and EdgesExamined correspond to the paper's vertex and
// edge traversal cost: how many times a vertex or edge was touched, counting
// repetitions. SampleVertices and SampleEdges correspond to the paper's
// sample size: how many vertices and edges are stored in memory as
// approach-specific samples (live-edge graphs for Snapshot, RR sets for RIS;
// Oneshot stores nothing).
type Cost struct {
	VerticesExamined int64
	EdgesExamined    int64
	SampleVertices   int64
	SampleEdges      int64
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.VerticesExamined += other.VerticesExamined
	c.EdgesExamined += other.EdgesExamined
	c.SampleVertices += other.SampleVertices
	c.SampleEdges += other.SampleEdges
}

// Traversal returns the total traversal cost (vertices + edges examined),
// the quantity Tables 8 and 9 aggregate.
func (c Cost) Traversal() int64 { return c.VerticesExamined + c.EdgesExamined }

// SampleSize returns the total sample size (vertices + edges stored), the
// quantity Table 1 and Figure 8 call "sample size".
func (c Cost) SampleSize() int64 { return c.SampleVertices + c.SampleEdges }

// Reset zeroes all counters.
func (c *Cost) Reset() { *c = Cost{} }
