package diffusion

import (
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// RRSampler generates reverse-reachable (RR) sets: for a random target z, the
// set of vertices that can reach z in a live-edge graph G ~ G (Definition
// 3.1). Generation is by reverse breadth-first search with lazy coin flips on
// incoming edges, the standard technique of Borgs et al. and IMM.
//
// An RRSampler owns scratch buffers and must not be shared between
// goroutines.
type RRSampler struct {
	g *graph.InfluenceGraph

	visited []uint32
	epoch   uint32
	queue   []graph.VertexID
}

// NewRRSampler returns an RRSampler for ig.
func NewRRSampler(ig *graph.InfluenceGraph) *RRSampler {
	return &RRSampler{
		g:       ig,
		visited: make([]uint32, ig.NumVertices()),
		queue:   make([]graph.VertexID, 0, 64),
	}
}

// Sample generates one RR set for a uniformly random target. Per §4.1 two
// random streams are used: targetSrc chooses the target vertex and edgeSrc
// supplies one uniform per examined incoming edge. The returned slice is
// freshly allocated and owned by the caller.
//
// Traversal cost: one vertex examination per vertex added to the RR set and
// one edge examination per incoming edge scanned (the weight w(R) of the
// paper is the sum of in-degrees of the RR set's members, which is exactly
// the number of scanned incoming edges). Sample size: the vertices stored.
func (r *RRSampler) Sample(targetSrc, edgeSrc rng.Source, cost *Cost) []graph.VertexID {
	n := r.g.NumVertices()
	if n == 0 {
		return nil
	}
	target := graph.VertexID(targetSrc.Intn(n))
	return r.SampleFor(target, edgeSrc, cost)
}

// SampleFor generates one RR set for the given target vertex.
func (r *RRSampler) SampleFor(target graph.VertexID, edgeSrc rng.Source, cost *Cost) []graph.VertexID {
	r.epoch++
	if r.epoch == 0 {
		for i := range r.visited {
			r.visited[i] = 0
		}
		r.epoch = 1
	}
	r.queue = r.queue[:0]
	r.visited[target] = r.epoch
	r.queue = append(r.queue, target)

	var verticesExamined, edgesExamined int64
	for head := 0; head < len(r.queue); head++ {
		v := r.queue[head]
		verticesExamined++
		neighbors := r.g.InNeighbors(v)
		probs := r.g.InProbabilities(v)
		for i, u := range neighbors {
			edgesExamined++
			if r.visited[u] == r.epoch {
				continue
			}
			if edgeSrc.Float64() < probs[i] {
				r.visited[u] = r.epoch
				r.queue = append(r.queue, u)
			}
		}
	}
	set := make([]graph.VertexID, len(r.queue))
	copy(set, r.queue)
	if cost != nil {
		cost.VerticesExamined += verticesExamined
		cost.EdgesExamined += edgesExamined
		cost.SampleVertices += int64(len(set))
	}
	return set
}
