package diffusion

import (
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// Snapshot is one live-edge random graph G(i) ~ G sampled from an influence
// graph: every edge of the original graph is kept independently with its
// influence probability. Only the forward adjacency of live edges is stored,
// in CSR form, because Snapshot-type algorithms only ever traverse forward.
type Snapshot struct {
	n      int
	outIdx []int32
	outAdj []graph.VertexID
}

// NumVertices returns the number of vertices.
func (s *Snapshot) NumVertices() int { return s.n }

// NumLiveEdges returns the number of edges kept in this snapshot.
func (s *Snapshot) NumLiveEdges() int { return len(s.outAdj) }

// OutNeighbors returns the live out-neighbours of v. The returned slice
// aliases internal storage and must not be modified.
func (s *Snapshot) OutNeighbors(v graph.VertexID) []graph.VertexID {
	return s.outAdj[s.outIdx[v]:s.outIdx[v+1]]
}

// SampleSnapshot draws one live-edge graph from ig. Every edge consumes one
// uniform random number from src (the Snapshot PRNG discipline of §4.1).
// When cost is non-nil the stored vertices and edges are added to the sample
// size counters; generating a snapshot touches every edge once, which the
// paper notes "does not dominate the whole time complexity" and is therefore
// not charged to the traversal counters.
func SampleSnapshot(ig *graph.InfluenceGraph, src rng.Source, cost *Cost) *Snapshot {
	n := ig.NumVertices()
	s := &Snapshot{
		n:      n,
		outIdx: make([]int32, n+1),
	}
	// First pass: flip one coin per edge and remember outcomes compactly.
	live := make([]bool, ig.NumEdges())
	liveCount := 0
	pos := 0
	for v := 0; v < n; v++ {
		probs := ig.OutProbabilities(graph.VertexID(v))
		for i := range probs {
			if src.Float64() < probs[i] {
				live[pos+i] = true
				liveCount++
			}
		}
		pos += len(probs)
	}
	s.outAdj = make([]graph.VertexID, 0, liveCount)
	pos = 0
	for v := 0; v < n; v++ {
		neighbors := ig.OutNeighbors(graph.VertexID(v))
		for i, w := range neighbors {
			if live[pos+i] {
				s.outAdj = append(s.outAdj, w)
			}
		}
		pos += len(neighbors)
		s.outIdx[v+1] = int32(len(s.outAdj))
	}
	if cost != nil {
		cost.SampleVertices += int64(n)
		cost.SampleEdges += int64(liveCount)
	}
	return s
}

// Reachable performs a breadth-first search in the snapshot from the frontier
// seeds, skipping vertices for which blocked returns true, and returns the
// number of newly reached vertices (including the unblocked seeds). visit is
// called for every newly reached vertex. Traversal cost is charged one vertex
// per reached vertex and one edge per scanned outgoing live edge, matching
// the Estimate cost model of Algorithm 3.3.
//
// The scratch slices visited and queue must have length ≥ n and are reset by
// the caller via the epoch value: a vertex counts as already visited when
// visited[v] == epoch.
func (s *Snapshot) Reachable(seeds []graph.VertexID, blocked func(graph.VertexID) bool,
	visit func(graph.VertexID), visited []uint32, epoch uint32, queue []graph.VertexID, cost *Cost) int {

	queue = queue[:0]
	reached := 0
	for _, v := range seeds {
		if visited[v] == epoch || (blocked != nil && blocked(v)) {
			continue
		}
		visited[v] = epoch
		queue = append(queue, v)
		reached++
		if visit != nil {
			visit(v)
		}
	}
	var verticesExamined, edgesExamined int64
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		verticesExamined++
		for _, w := range s.OutNeighbors(v) {
			edgesExamined++
			if visited[w] == epoch || (blocked != nil && blocked(w)) {
				continue
			}
			visited[w] = epoch
			queue = append(queue, w)
			reached++
			if visit != nil {
				visit(w)
			}
		}
	}
	if cost != nil {
		cost.VerticesExamined += verticesExamined
		cost.EdgesExamined += edgesExamined
	}
	return reached
}
