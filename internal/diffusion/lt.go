package diffusion

import (
	"errors"
	"fmt"

	"imdist/internal/graph"
	"imdist/internal/rng"
)

// ErrInvalidLTWeights reports in-edge weights summing to more than 1 for some
// vertex, which the Linear Threshold model does not allow.
var ErrInvalidLTWeights = errors.New("diffusion: LT in-edge weights exceed 1")

// ltWeightTolerance absorbs floating-point rounding when in-edge weights are
// constructed to sum to exactly 1 (the iwc workload).
const ltWeightTolerance = 1e-9

// ValidateLTWeights checks that the influence graph's edge probabilities are
// valid Linear Threshold weights: for every vertex, the incoming weights sum
// to at most 1.
func ValidateLTWeights(ig *graph.InfluenceGraph) error {
	for v := 0; v < ig.NumVertices(); v++ {
		sum := 0.0
		for _, w := range ig.InProbabilities(graph.VertexID(v)) {
			sum += w
		}
		if sum > 1+ltWeightTolerance {
			return fmt.Errorf("%w: vertex %d has incoming weight %v", ErrInvalidLTWeights, v, sum)
		}
	}
	return nil
}

// LTSimulator runs forward Linear Threshold simulations: every vertex draws a
// uniform threshold lazily on first contact and activates once the weight of
// its active in-neighbours reaches the threshold. One LTSimulator must not be
// shared between goroutines.
type LTSimulator struct {
	g *graph.InfluenceGraph

	// epoch-tagged per-vertex state; valid when stamp[v] == epoch.
	stamp     []uint32
	epoch     uint32
	threshold []float64
	accum     []float64
	active    []bool
	queue     []graph.VertexID
}

// NewLTSimulator returns an LTSimulator for ig. It does not validate weights;
// call ValidateLTWeights when the input is untrusted.
func NewLTSimulator(ig *graph.InfluenceGraph) *LTSimulator {
	n := ig.NumVertices()
	return &LTSimulator{
		g:         ig,
		stamp:     make([]uint32, n),
		threshold: make([]float64, n),
		accum:     make([]float64, n),
		active:    make([]bool, n),
		queue:     make([]graph.VertexID, 0, 64),
	}
}

func (s *LTSimulator) touch(v graph.VertexID, src rng.Source) {
	if s.stamp[v] == s.epoch {
		return
	}
	s.stamp[v] = s.epoch
	s.threshold[v] = src.Float64()
	s.accum[v] = 0
	s.active[v] = false
}

// Run performs one LT simulation from the seed set and returns the number of
// activated vertices. Traversal cost: one vertex examination per activated
// vertex and one edge examination per outgoing edge scanned from an activated
// vertex, mirroring the IC accounting.
func (s *LTSimulator) Run(seeds []graph.VertexID, src rng.Source, cost *Cost) int {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.queue = s.queue[:0]
	activated := 0
	for _, v := range seeds {
		s.touch(v, src)
		if s.active[v] {
			continue
		}
		s.active[v] = true
		s.queue = append(s.queue, v)
		activated++
	}
	var verticesExamined, edgesExamined int64
	for head := 0; head < len(s.queue); head++ {
		v := s.queue[head]
		verticesExamined++
		neighbors := s.g.OutNeighbors(v)
		weights := s.g.OutProbabilities(v)
		for i, w := range neighbors {
			edgesExamined++
			s.touch(w, src)
			if s.active[w] {
				continue
			}
			s.accum[w] += weights[i]
			if s.accum[w] >= s.threshold[w] {
				s.active[w] = true
				s.queue = append(s.queue, w)
				activated++
			}
		}
	}
	if cost != nil {
		cost.VerticesExamined += verticesExamined
		cost.EdgesExamined += edgesExamined
	}
	return activated
}

// EstimateInfluence runs count simulations from seeds and returns the average
// activation count.
func (s *LTSimulator) EstimateInfluence(seeds []graph.VertexID, count int, src rng.Source, cost *Cost) float64 {
	if count <= 0 {
		return 0
	}
	total := 0
	for i := 0; i < count; i++ {
		total += s.Run(seeds, src, cost)
	}
	return float64(total) / float64(count)
}

// SampleLTSnapshot draws one live-edge graph under the Linear Threshold
// model's random-graph characterization (Kempe et al.): every vertex keeps at
// most one incoming edge, choosing in-edge (u, v) with probability w(u, v) and
// no edge with the remaining probability. Reachability in such a graph is
// distributed exactly as LT activation, so the Snapshot approach carries over
// unchanged.
func SampleLTSnapshot(ig *graph.InfluenceGraph, src rng.Source, cost *Cost) *Snapshot {
	n := ig.NumVertices()
	s := &Snapshot{
		n:      n,
		outIdx: make([]int32, n+1),
	}
	// chosen[v] is the selected in-neighbour of v, or -1.
	chosen := make([]graph.VertexID, n)
	liveCount := 0
	for v := 0; v < n; v++ {
		chosen[v] = -1
		ins := ig.InNeighbors(graph.VertexID(v))
		weights := ig.InProbabilities(graph.VertexID(v))
		if len(ins) == 0 {
			continue
		}
		x := src.Float64()
		acc := 0.0
		for i, u := range ins {
			acc += weights[i]
			if x < acc {
				chosen[v] = u
				liveCount++
				break
			}
		}
	}
	// Convert the chosen in-edges into forward CSR.
	counts := make([]int32, n+1)
	for v := 0; v < n; v++ {
		if chosen[v] >= 0 {
			counts[chosen[v]+1]++
		}
	}
	for v := 0; v < n; v++ {
		counts[v+1] += counts[v]
	}
	s.outIdx = counts
	s.outAdj = make([]graph.VertexID, liveCount)
	cursor := make([]int32, n)
	for v := 0; v < n; v++ {
		u := chosen[v]
		if u < 0 {
			continue
		}
		s.outAdj[s.outIdx[u]+cursor[u]] = graph.VertexID(v)
		cursor[u]++
	}
	if cost != nil {
		cost.SampleVertices += int64(n)
		cost.SampleEdges += int64(liveCount)
	}
	return s
}

// LTRRSampler generates reverse-reachable sets under the Linear Threshold
// model: starting from a target, repeatedly select at most one in-edge of the
// current vertex (edge (u, v) with probability w(u, v)) and walk backwards
// until no edge is selected or a cycle is closed. The resulting RR "set" is a
// reverse path, and PrR[R ∩ S ≠ ∅] = Inf_LT(S)/n exactly as in the IC case.
type LTRRSampler struct {
	g       *graph.InfluenceGraph
	visited []uint32
	epoch   uint32
	path    []graph.VertexID
}

// NewLTRRSampler returns an LTRRSampler for ig.
func NewLTRRSampler(ig *graph.InfluenceGraph) *LTRRSampler {
	return &LTRRSampler{
		g:       ig,
		visited: make([]uint32, ig.NumVertices()),
		path:    make([]graph.VertexID, 0, 32),
	}
}

// Sample generates one LT RR set for a uniformly random target.
func (r *LTRRSampler) Sample(targetSrc, edgeSrc rng.Source, cost *Cost) []graph.VertexID {
	n := r.g.NumVertices()
	if n == 0 {
		return nil
	}
	return r.SampleFor(graph.VertexID(targetSrc.Intn(n)), edgeSrc, cost)
}

// SampleFor generates one LT RR set for the given target.
func (r *LTRRSampler) SampleFor(target graph.VertexID, edgeSrc rng.Source, cost *Cost) []graph.VertexID {
	r.epoch++
	if r.epoch == 0 {
		for i := range r.visited {
			r.visited[i] = 0
		}
		r.epoch = 1
	}
	r.path = r.path[:0]
	var verticesExamined, edgesExamined int64
	current := target
	for {
		if r.visited[current] == r.epoch {
			break // closed a cycle; stop as Kempe et al.'s construction does
		}
		r.visited[current] = r.epoch
		r.path = append(r.path, current)
		verticesExamined++

		ins := r.g.InNeighbors(current)
		weights := r.g.InProbabilities(current)
		if len(ins) == 0 {
			break
		}
		x := edgeSrc.Float64()
		acc := 0.0
		next := graph.VertexID(-1)
		for i, u := range ins {
			edgesExamined++
			acc += weights[i]
			if x < acc {
				next = u
				break
			}
		}
		if next < 0 {
			break
		}
		current = next
	}
	set := make([]graph.VertexID, len(r.path))
	copy(set, r.path)
	if cost != nil {
		cost.VerticesExamined += verticesExamined
		cost.EdgesExamined += edgesExamined
		cost.SampleVertices += int64(len(set))
	}
	return set
}
