package diffusion

import (
	"errors"
	"math"
	"testing"

	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/workload"
)

// ltLine returns 0 -> 1 -> 2 with weight w on each edge (each vertex has at
// most one in-edge, so any w in (0,1] is a valid LT weighting).
func ltLine(t *testing.T, w float64) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return w })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

// karateLT returns the Karate-sized test graph under iwc weights, which are
// valid LT weights (they sum to exactly 1 per vertex).
func smallIWC(t *testing.T) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(20)
	for u := 0; u < 20; u++ {
		for d := 1; d <= 3; d++ {
			if err := b.AddEdge(graph.VertexID(u), graph.VertexID((u+d)%20)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ig, err := workload.Assign(b.Build(), workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func TestModelStringAndParse(t *testing.T) {
	if IC.String() != "IC" || LT.String() != "LT" || Model(9).String() != "unknown" {
		t.Error("Model.String mismatch")
	}
	for _, s := range []string{"IC", "ic"} {
		if m, err := ParseModel(s); err != nil || m != IC {
			t.Errorf("ParseModel(%q) = %v, %v", s, m, err)
		}
	}
	for _, s := range []string{"LT", "lt"} {
		if m, err := ParseModel(s); err != nil || m != LT {
			t.Errorf("ParseModel(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := ParseModel("bogus"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("ParseModel(bogus) err = %v", err)
	}
}

func TestValidateLTWeights(t *testing.T) {
	if err := ValidateLTWeights(smallIWC(t)); err != nil {
		t.Errorf("iwc weights rejected: %v", err)
	}
	// uc0.9 on a vertex with 3 in-edges sums to 2.7 > 1.
	b := graph.NewBuilder(4)
	for u := 0; u < 3; u++ {
		if err := b.AddEdge(graph.VertexID(u), 3); err != nil {
			t.Fatal(err)
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return 0.9 })
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateLTWeights(ig); !errors.Is(err, ErrInvalidLTWeights) {
		t.Errorf("invalid weights accepted: %v", err)
	}
}

func TestLTSimulatorCertainChain(t *testing.T) {
	// Weight 1 on each edge: the single in-neighbour always meets any
	// threshold in [0,1) once active, so the whole chain activates.
	ig := ltLine(t, 1.0)
	sim := NewLTSimulator(ig)
	var cost Cost
	got := sim.Run([]graph.VertexID{0}, rng.NewXoshiro(1), &cost)
	if got != 3 {
		t.Errorf("LT chain activation = %d, want 3", got)
	}
	if cost.VerticesExamined != 3 || cost.EdgesExamined != 2 {
		t.Errorf("LT cost = %+v", cost)
	}
}

func TestLTSimulatorExpectedSpreadOnLine(t *testing.T) {
	// For a single in-edge with weight w, activation probability is exactly w
	// (threshold uniform). Inf_LT({0}) on the line = 1 + w + w^2.
	w := 0.6
	ig := ltLine(t, w)
	sim := NewLTSimulator(ig)
	got := sim.EstimateInfluence([]graph.VertexID{0}, 60000, rng.NewXoshiro(3), nil)
	want := 1 + w + w*w
	if math.Abs(got-want) > 0.03 {
		t.Errorf("LT spread = %v, want approx %v", got, want)
	}
	if sim.EstimateInfluence([]graph.VertexID{0}, 0, rng.NewXoshiro(1), nil) != 0 {
		t.Error("zero simulations should estimate 0")
	}
}

func TestLTSimulatorDuplicateSeedsAndWraparound(t *testing.T) {
	ig := ltLine(t, 1.0)
	sim := NewLTSimulator(ig)
	sim.epoch = ^uint32(0) - 1
	for i := 0; i < 4; i++ {
		if got := sim.Run([]graph.VertexID{0, 0}, rng.NewXoshiro(uint64(i+1)), nil); got != 3 {
			t.Fatalf("run %d = %d, want 3", i, got)
		}
	}
}

func TestSampleLTSnapshotAtMostOneInEdge(t *testing.T) {
	ig := smallIWC(t)
	src := rng.NewXoshiro(7)
	for rep := 0; rep < 50; rep++ {
		snap := SampleLTSnapshot(ig, src, nil)
		inDeg := make([]int, ig.NumVertices())
		for v := 0; v < snap.NumVertices(); v++ {
			for _, w := range snap.OutNeighbors(graph.VertexID(v)) {
				inDeg[w]++
			}
		}
		for v, d := range inDeg {
			if d > 1 {
				t.Fatalf("vertex %d has %d live in-edges in an LT snapshot", v, d)
			}
		}
	}
}

func TestSampleLTSnapshotSelectionProbability(t *testing.T) {
	// Vertex 2 has in-edges from 0 (weight 0.3) and 1 (weight 0.5); edge
	// (0,2) must be selected with probability 0.3 and no edge with 0.2.
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(u, _ graph.VertexID) float64 {
		if u == 0 {
			return 0.3
		}
		return 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.NewXoshiro(11)
	const reps = 40000
	from0, from1, none := 0, 0, 0
	for i := 0; i < reps; i++ {
		snap := SampleLTSnapshot(ig, src, nil)
		switch {
		case len(snap.OutNeighbors(0)) == 1:
			from0++
		case len(snap.OutNeighbors(1)) == 1:
			from1++
		default:
			none++
		}
	}
	if math.Abs(float64(from0)/reps-0.3) > 0.01 {
		t.Errorf("edge (0,2) selected with frequency %v, want 0.3", float64(from0)/reps)
	}
	if math.Abs(float64(from1)/reps-0.5) > 0.01 {
		t.Errorf("edge (1,2) selected with frequency %v, want 0.5", float64(from1)/reps)
	}
	if math.Abs(float64(none)/reps-0.2) > 0.01 {
		t.Errorf("no-edge frequency %v, want 0.2", float64(none)/reps)
	}
}

func TestSampleLTSnapshotCostAccounting(t *testing.T) {
	ig := ltLine(t, 1.0)
	var cost Cost
	snap := SampleLTSnapshot(ig, rng.NewXoshiro(1), &cost)
	if cost.SampleVertices != 3 || cost.SampleEdges != int64(snap.NumLiveEdges()) {
		t.Errorf("LT snapshot cost = %+v with %d live edges", cost, snap.NumLiveEdges())
	}
}

func TestLTSnapshotReachabilityMatchesSimulation(t *testing.T) {
	// The live-edge characterization: average reachability from a seed over
	// LT snapshots equals the LT simulation estimate.
	ig := smallIWC(t)
	seeds := []graph.VertexID{0}
	src := rng.NewXoshiro(5)
	const reps = 30000
	total := 0
	visited := make([]uint32, ig.NumVertices())
	queue := make([]graph.VertexID, 0, ig.NumVertices())
	for i := 0; i < reps; i++ {
		snap := SampleLTSnapshot(ig, src, nil)
		total += snap.Reachable(seeds, nil, nil, visited, uint32(i+1), queue, nil)
	}
	bySnapshot := float64(total) / reps
	sim := NewLTSimulator(ig)
	bySimulation := sim.EstimateInfluence(seeds, reps, rng.NewXoshiro(9), nil)
	if math.Abs(bySnapshot-bySimulation) > 0.05*bySimulation+0.05 {
		t.Errorf("LT snapshot estimate %v != simulation estimate %v", bySnapshot, bySimulation)
	}
}

func TestLTRRSamplerIsReversePath(t *testing.T) {
	ig := smallIWC(t)
	sampler := NewLTRRSampler(ig)
	t1, t2 := rng.NewXoshiro(1), rng.NewXoshiro(2)
	for i := 0; i < 200; i++ {
		set := sampler.Sample(t1, t2, nil)
		if len(set) == 0 {
			t.Fatal("empty LT RR set")
		}
		seen := map[graph.VertexID]bool{}
		for _, v := range set {
			if seen[v] {
				t.Fatalf("LT RR set revisits vertex %d: %v", v, set)
			}
			seen[v] = true
		}
	}
}

func TestLTRRMembershipMatchesInfluence(t *testing.T) {
	// Pr[v in RR] = Inf_LT(v)/n, checked on the weighted line graph where the
	// exact LT influence of the source is 1 + w + w^2.
	w := 0.5
	ig := ltLine(t, w)
	sampler := NewLTRRSampler(ig)
	t1, t2 := rng.NewXoshiro(21), rng.NewXoshiro(22)
	const reps = 60000
	hits := 0
	for i := 0; i < reps; i++ {
		for _, v := range sampler.Sample(t1, t2, nil) {
			if v == 0 {
				hits++
				break
			}
		}
	}
	got := 3 * float64(hits) / reps
	want := 1 + w + w*w
	if math.Abs(got-want) > 0.05 {
		t.Errorf("n*Pr[0 in RR] = %v, want %v", got, want)
	}
}

func TestLTRRSamplerEmptyGraphAndCost(t *testing.T) {
	empty, err := graph.NewInfluenceGraph(graph.NewBuilder(0).Build(), func(_, _ graph.VertexID) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if set := NewLTRRSampler(empty).Sample(rng.NewXoshiro(1), rng.NewXoshiro(2), nil); set != nil {
		t.Errorf("LT RR set on empty graph = %v", set)
	}
	ig := ltLine(t, 1.0)
	var cost Cost
	set := NewLTRRSampler(ig).SampleFor(2, rng.NewXoshiro(1), &cost)
	if cost.SampleVertices != int64(len(set)) || cost.VerticesExamined != int64(len(set)) {
		t.Errorf("LT RR cost = %+v for set %v", cost, set)
	}
}

func BenchmarkLTSimulate(b *testing.B) {
	builder := graph.NewBuilder(200)
	for u := 0; u < 200; u++ {
		for d := 1; d <= 5; d++ {
			_ = builder.AddEdge(graph.VertexID(u), graph.VertexID((u+d)%200))
		}
	}
	ig, err := workload.Assign(builder.Build(), workload.IWC, nil)
	if err != nil {
		b.Fatal(err)
	}
	sim := NewLTSimulator(ig)
	src := rng.NewXoshiro(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run([]graph.VertexID{0}, src, nil)
	}
}
