package diffusion

import (
	"errors"
	"fmt"
)

// Model identifies a network diffusion model. The paper's experiments use the
// Independent Cascade model; the Linear Threshold model of Granovetter and
// Kempe et al. is provided as an extension because every approach (Oneshot,
// Snapshot, RIS) carries over to it through its own live-edge
// characterization.
type Model int

const (
	// IC is the Independent Cascade model: each newly activated vertex gets
	// one independent chance to activate each inactive out-neighbour with the
	// edge's probability.
	IC Model = iota
	// LT is the Linear Threshold model: vertex v activates once the total
	// incoming weight from active neighbours exceeds a uniformly random
	// threshold; edge probabilities are interpreted as weights and must sum
	// to at most 1 over each vertex's in-edges.
	LT
)

// ErrUnknownModel reports an unrecognised diffusion model.
var ErrUnknownModel = errors.New("diffusion: unknown model")

// String returns the conventional abbreviation of the model.
func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return "unknown"
	}
}

// ParseModel converts "IC"/"LT" (case-exact) into a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "IC", "ic":
		return IC, nil
	case "LT", "lt":
		return LT, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownModel, s)
	}
}
