// Package lostclose implements the imvet analyzer that enforces resource
// hygiene on the sketch/checkpoint/spill file paths.
//
// Two failure modes have bitten (or nearly bitten) this codebase:
//
//   - A silently dropped error from Close/Sync/Flush. On the write paths a
//     deferred close is too late to matter, but a *bare* `f.Close()` or
//     `w.Flush()` in normal control flow swallows exactly the I/O error that
//     tells you a sketch or checkpoint is torn. The analyzer flags every
//     bare call statement to a niladic Close/Sync/Flush method returning
//     error; `_ = f.Close()` states the drop explicitly (typical on
//     already-failing error paths) and is accepted, as is `defer f.Close()`.
//
//   - A closeable handle (os.File, MappedSketch, SpillStore, ...) that is
//     opened, used, and simply forgotten — never closed, never returned,
//     never handed to anything that could close it. The analyzer flags a
//     locally created value whose type has a Close() error method when it
//     neither escapes the function nor reaches a release call.
package lostclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"imdist/internal/analysis"
	"imdist/internal/analysis/dataflow"
)

// Analyzer is the lostclose pass.
var Analyzer = &analysis.Analyzer{
	Name: "lostclose",
	Doc: "flag dropped errors from Close/Sync/Flush calls and closeable handles that are " +
		"neither closed nor escape; use `_ = f.Close()` for deliberate drops on error paths",
	Run: run,
}

// droppedNames are the methods whose bare-statement error drop is flagged.
var droppedNames = map[string]bool{"Close": true, "Sync": true, "Flush": true}

// releaseNames are method calls that count as releasing a tracked handle.
var releaseNames = map[string]bool{
	"Close": true, "Release": true, "Unmap": true, "Shutdown": true, "Stop": true, "Cleanup": true,
}

func run(pass *analysis.Pass) error {
	info := dataflow.PackageInfo(pass)
	info.Inspect(func(_ *dataflow.Func, n ast.Node) bool {
		if stmt, ok := n.(*ast.ExprStmt); ok {
			checkDropped(pass, stmt)
		}
		return true
	})
	for _, fn := range info.Funcs {
		checkLeaks(pass, fn.Decl.Body)
	}
	return nil
}

// checkDropped flags `x.Close()` (or Sync/Flush) as a bare statement: the
// error result vanishes without even an explicit discard.
func checkDropped(pass *analysis.Pass, stmt *ast.ExprStmt) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !droppedNames[fn.Name()] || !isNiladicErrorMethod(fn) {
		return
	}
	pass.Reportf(call.Pos(), "error from %s is dropped; on the sketch/checkpoint/spill paths this hides torn writes — handle it, or write `_ = %s` to drop it explicitly", callLabel(call, fn), callLabel(call, fn))
}

// isNiladicErrorMethod reports whether fn is a method of the shape
// `func() error`.
func isNiladicErrorMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}

// callLabel renders "f.Close()" for diagnostics.
func callLabel(call *ast.CallExpr, fn *types.Func) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return id.Name + "." + fn.Name() + "()"
		}
	}
	return fn.Name() + "()"
}

// handle tracks one closeable local between its creation and the end of the
// enclosing function body.
type handle struct {
	name     string
	pos      token.Pos
	released bool
	escapes  bool
}

// checkLeaks runs the never-closed-never-escapes analysis over one function
// body. The classification is deliberately conservative: any use that is not
// a plain method call counts as an escape, so only handles that demonstrably
// go nowhere are reported.
func checkLeaks(pass *analysis.Pass, body *ast.BlockStmt) {
	handles := map[types.Object]*handle{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		if _, ok := asg.Rhs[0].(*ast.CallExpr); !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				continue
			}
			if hasCloseMethod(obj.Type()) {
				handles[obj] = &handle{name: id.Name, pos: id.Pos()}
			}
		}
		return true
	})
	if len(handles) == 0 {
		return
	}

	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		h := handles[obj]
		if h == nil {
			return true
		}
		switch classifyUse(stack) {
		case useRelease:
			h.released = true
		case useEscape:
			h.escapes = true
		}
		return true
	})

	for _, h := range handles {
		if !h.released && !h.escapes {
			pass.Reportf(h.pos, "%s is never closed and never escapes this function; close it (or defer its release) so file handles and mappings are not leaked", h.name)
		}
	}
}

type useKind int

const (
	usePlain useKind = iota
	useRelease
	useEscape
)

// classifyUse inspects the parent chain of an identifier occurrence (the
// identifier is stack's last element).
func classifyUse(stack []ast.Node) useKind {
	if len(stack) < 2 {
		return useEscape
	}
	parent := stack[len(stack)-2]
	sel, ok := parent.(*ast.SelectorExpr)
	if !ok || sel.X != stack[len(stack)-1] {
		// Return statements, call arguments, composite literals, sends,
		// address-taking, assignments into other places: the handle reaches
		// code that may close it.
		return useEscape
	}
	if len(stack) >= 3 {
		if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
			if releaseNames[sel.Sel.Name] {
				return useRelease
			}
			return usePlain
		}
	}
	// Field access or method value: ambiguous, assume it escapes.
	return useEscape
}

// hasCloseMethod reports whether t (or *t) has a Close() error method.
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}
