package lostclose_test

import (
	"testing"

	"imdist/internal/analysis/analysistest"
	"imdist/internal/analysis/lostclose"
)

// TestLostclose proves the analyzer flags bare Close/Sync/Flush error drops
// and never-closed never-escaping handles, while accepting checked closes,
// deferred closes, explicit `_ =` drops and handles that escape.
func TestLostclose(t *testing.T) {
	analysistest.Run(t, lostclose.Analyzer, "lostclose")
}
