package analysis_test

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"

	"imdist/internal/analysis"
	"imdist/internal/analysis/suite"
)

// TestRepositoryIsClean runs the full imvet suite over every package in the
// module and requires zero diagnostics: the same gate CI applies through
// `go vet -vettool`, enforced here so a plain `go test ./...` catches a new
// contract violation even before the lint job runs. testdata fixtures are
// outside ./... by construction, so the deliberate violations stay invisible.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	cmd := exec.Command("go", "list", "-f", "{{.Dir}}", "imdist")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("locating module root: %v\n%s", err, stderr.String())
	}
	root := strings.TrimSpace(stdout.String())

	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := analysis.RunSuite(pkgs, suite.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
	}
}
