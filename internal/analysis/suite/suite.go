// Package suite aggregates the imvet analyzers. It exists so the cmd/imvet
// driver, the clean-tree test and any future tooling agree on exactly which
// passes constitute "imvet" without import cycles into the framework.
package suite

import (
	"imdist/internal/analysis"
	"imdist/internal/analysis/lockscope"
	"imdist/internal/analysis/lostclose"
	"imdist/internal/analysis/nodet"
	"imdist/internal/analysis/rngstream"
)

// Analyzers returns the imvet analyzer suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodet.Analyzer,
		rngstream.Analyzer,
		lostclose.Analyzer,
		lockscope.Analyzer,
	}
}
