// Package suite aggregates the imvet analyzers. It exists so the cmd/imvet
// driver, the clean-tree test and any future tooling agree on exactly which
// passes constitute "imvet" without import cycles into the framework.
package suite

import (
	"imdist/internal/analysis"
	"imdist/internal/analysis/ctxflow"
	"imdist/internal/analysis/lockorder"
	"imdist/internal/analysis/lockscope"
	"imdist/internal/analysis/lostclose"
	"imdist/internal/analysis/nodet"
	"imdist/internal/analysis/rngstream"
	"imdist/internal/analysis/taintlen"
)

// Analyzers returns the imvet analyzer suite in reporting order: the four
// syntactic passes of PR 8, then the three dataflow-powered passes built on
// internal/analysis/dataflow (docs/ANALYSIS.md#the-dataflow-layer).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nodet.Analyzer,
		rngstream.Analyzer,
		lostclose.Analyzer,
		lockscope.Analyzer,
		taintlen.Analyzer,
		ctxflow.Analyzer,
		lockorder.Analyzer,
	}
}
