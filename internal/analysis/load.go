package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"imdist/internal/parallel"
)

// A Package is one loaded, parsed and type-checked package, ready for
// RunAnalyzers. It is produced either by Load (standalone driver, tests) or
// by the unitchecker driver from a `go vet` unit config.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load loads the packages matching the given `go list` patterns, resolved
// relative to dir, and type-checks them from source. Imports are satisfied
// from compiler export data produced by `go list -export`, so loading works
// offline and never re-type-checks dependencies.
//
// This is a miniature, project-local stand-in for go/packages: the go
// command does pattern expansion, build-tag filtering and export-data
// generation, and the loader only parses and checks the matched packages
// themselves.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadTags(dir, nil, patterns...)
}

// LoadTags is Load with additional build tags applied, used by the
// analysistest harness for tag-gated fixture files.
func LoadTags(dir string, tags []string, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-json", "-deps"}
	if len(tags) > 0 {
		args = append(args, "-tags", strings.Join(tags, ","))
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path → export data file
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			target := p
			targets = append(targets, &target)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	// Parse and type-check the matched packages in parallel: each one checks
	// against its dependencies' export data only, so the units are
	// independent. Results land in index-order slots, keeping the returned
	// slice (and so every downstream diagnostic ordering) deterministic.
	pkgs := make([]*Package, len(targets))
	errs := make([]error, len(targets))
	parallel.For(parallel.Resolve(-1, len(targets)), len(targets), func(_, i int) {
		pkgs[i], errs[i] = checkPackage(targets[i], exports)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one listed package against the export
// data of its dependencies.
func checkPackage(p *listedPackage, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	tpkg, info, err := typeCheck(fset, p.ImportPath, files, func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{PkgPath: p.ImportPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// typeCheck runs go/types over the parsed files, importing dependencies as
// compiler export data through lookup. It is shared with the unitchecker
// driver, whose lookup reads the export files named in the vet unit config.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, lookup func(string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
