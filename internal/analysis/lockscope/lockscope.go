// Package lockscope implements the imvet analyzer that polices the lock
// hygiene of imdist's mutex-guarded containers.
//
// This is the exact bug class PR 6 fixed in SketchBuilder.Sets(): an
// exported method on a mutex-holding type returned its internal slice, so
// every caller held a live alias into state the next Append mutated — the
// mutex protected the method body and nothing else. The analyzer flags an
// exported method on a struct with a sync.Mutex/RWMutex field whose return
// statement hands back a slice- or map-typed field (or an element of one)
// reached directly from the receiver. Legitimate zero-copy accessors whose
// ownership contract is documented (MemStore.Set, the RRStore read path)
// carry an //imvet:allow lockscope annotation with the justification.
package lockscope

import (
	"go/ast"
	"go/types"

	"imdist/internal/analysis"
	"imdist/internal/analysis/dataflow"
)

// Analyzer is the lockscope pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "flag exported methods on mutex-holding types that return internal slices/maps " +
		"(aliasing guarded state); return a copy, or document the ownership contract and " +
		"annotate with //imvet:allow lockscope",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, fn := range dataflow.PackageInfo(pass).Funcs {
		fd := fn.Decl
		if fd.Recv == nil || !fd.Name.IsExported() {
			continue
		}
		recv := receiverVar(pass.TypesInfo, fd)
		if recv == nil || !dataflow.HoldsMutex(recv.Type()) {
			continue
		}
		checkMethod(pass, fd, recv)
	}
	return nil
}

// receiverVar returns the receiver variable of a method declaration, or nil
// for anonymous receivers.
func receiverVar(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// checkMethod flags return statements that alias guarded state.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, recv *types.Var) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure returned or stored by the method is a different
			// (harder) leak; returns inside it are not the method's returns.
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if expr, field := aliasesReceiverField(pass.TypesInfo, recv, res); expr != nil {
				t := pass.TypesInfo.Types[expr].Type
				if t == nil {
					continue
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(ret.Pos(), "%s returns internal %s %s of mutex-guarded %s: callers keep an alias into state the lock no longer protects; return a copy or annotate the documented ownership contract with //imvet:allow lockscope", fd.Name.Name, typeKind(t), field, recvTypeName(recv))
				}
			}
		}
		return true
	})
}

// aliasesReceiverField matches `recv.f` and `recv.f[i]` result expressions,
// returning the aliasing expression and a printable field path. A deeper
// chain (recv.a.b) is matched through its leftmost selector; calls and
// slicing expressions (which copy headers but are usually deliberate, e.g.
// append-copies) are not matched.
func aliasesReceiverField(info *types.Info, recv *types.Var, e ast.Expr) (ast.Expr, string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if rootIs(info, x, recv) {
			return x, fieldPath(x)
		}
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok && rootIs(info, sel, recv) {
			return x, fieldPath(sel) + "[...]"
		}
	}
	return nil, ""
}

// rootIs reports whether the selector chain is rooted at the receiver
// variable and every hop is a field access (not a method call result).
func rootIs(info *types.Info, sel *ast.SelectorExpr, recv *types.Var) bool {
	for {
		if s := info.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
			return false
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			return info.Uses[x] == recv
		case *ast.SelectorExpr:
			sel = x
		default:
			return false
		}
	}
}

// fieldPath renders recv.a.b as "a.b" for diagnostics.
func fieldPath(sel *ast.SelectorExpr) string {
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		return fieldPath(inner) + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}

// typeKind names the aliased kind for the diagnostic message.
func typeKind(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}

// recvTypeName names the receiver type for diagnostics.
func recvTypeName(recv *types.Var) string {
	if name := dataflow.NamedTypeName(recv.Type()); name != "" {
		return name
	}
	return recv.Type().String()
}
