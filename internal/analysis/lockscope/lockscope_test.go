package lockscope_test

import (
	"testing"

	"imdist/internal/analysis/analysistest"
	"imdist/internal/analysis/lockscope"
)

// TestLockscope proves the analyzer reproduces the historical PR 6 finding —
// SketchBuilder.Sets() returning the internal slice of a mutex-guarded type —
// plus the element-aliasing and guarded-map variants, while accepting
// copies, unexported helpers, scalar accessors, mutex-free types and the
// annotated zero-copy contract.
func TestLockscope(t *testing.T) {
	analysistest.Run(t, lockscope.Analyzer, "lockscope")
}
