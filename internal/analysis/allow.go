package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces every imvet comment directive.
const directivePrefix = "//imvet:"

// An //imvet:allow directive suppresses diagnostics from named analyzers:
//
//	data := s.hot // two deterministic sources merged below
//	//imvet:allow nodet — keys are sorted before the slice is returned
//	for k := range data { out = append(out, k) }
//
// Forms:
//
//	//imvet:allow <name>[,<name>...] [justification]
//	//imvet:allow all [justification]
//
// The directive covers its own source line and the line immediately below it,
// so it works both as an end-of-line comment on the offending statement and
// as a standalone comment above it. A justification is not parsed but is
// expected by review convention: an allow without a why does not pass review.
type directiveIndex map[string]map[int][]string

// indexDirectives scans every file's comments for //imvet:allow directives
// and returns a filename → line → allowed-analyzer-names index.
func indexDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := directiveIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, directivePrefix+"allow")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				posn := fset.Position(c.Pos())
				byLine := idx[posn.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[posn.Filename] = byLine
				}
				for _, line := range []int{posn.Line, posn.Line + 1} {
					byLine[line] = append(byLine[line], names...)
				}
			}
		}
	}
	return idx
}

// allows reports whether a diagnostic from the named analyzer at
// filename:line is suppressed.
func (idx directiveIndex) allows(filename string, line int, analyzer string) bool {
	for _, name := range idx[filename][line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}
