package nodet_test

import (
	"testing"

	"imdist/internal/analysis/analysistest"
	"imdist/internal/analysis/nodet"
)

// TestNodet proves the analyzer fires on every nondeterminism source in a
// package marked //imvet:deterministic.
func TestNodet(t *testing.T) {
	analysistest.Run(t, nodet.Analyzer, "nodet")
}

// TestNodetIgnoresUnmarkedPackages proves packages outside the deterministic
// set are untouched even when they use every forbidden source.
func TestNodetIgnoresUnmarkedPackages(t *testing.T) {
	analysistest.Run(t, nodet.Analyzer, "notdet")
}

// TestAllowDirective proves //imvet:allow nodet suppresses a diagnostic in
// both end-of-line and standalone-comment form, that a directive naming a
// different analyzer does not, and that unannotated lines still fire.
func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, nodet.Analyzer, "nodetallow")
}
