// Package nodet implements the imvet analyzer that forbids nondeterminism
// sources inside imdist's deterministic packages.
//
// The determinism contract (docs/ARCHITECTURE.md) promises byte-identical
// sketches and answers given (graph, model, seed) — across worker counts,
// batch schedules, kernels and spill budgets. That only holds if the
// deterministic core never consults ambient state: wall clocks, process
// environment, globally-seeded generators, or Go's randomized map iteration
// order. The compiler cannot check any of this; nodet does.
package nodet

import (
	"go/ast"
	"go/types"
	"strings"

	"imdist/internal/analysis"
	"imdist/internal/analysis/dataflow"
)

// deterministicPackages lists the import paths bound by the determinism
// contract. A package outside this list can opt in with a
// //imvet:deterministic comment directive in any of its files.
var deterministicPackages = []string{
	"imdist/internal/core",
	"imdist/internal/rng",
	"imdist/internal/diffusion",
	"imdist/internal/estimator",
	"imdist/internal/coverage",
	"imdist/internal/greedy",
	"imdist/internal/sketchio",
}

// forbiddenImports are packages whose mere presence in a deterministic
// package means randomness or ambient state is being drawn outside the
// rng.Splitter discipline.
var forbiddenImports = map[string]string{
	"math/rand":    "globally-seeded randomness",
	"math/rand/v2": "globally-seeded randomness",
	"crypto/rand":  "nondeterministic randomness",
}

// forbiddenCalls are package-level functions that read ambient state.
var forbiddenCalls = map[string][]string{
	"time": {"Now", "Since", "Until"},
	"os":   {"Getenv", "LookupEnv", "Environ"},
}

// Analyzer is the nodet pass.
var Analyzer = &analysis.Analyzer{
	Name: "nodet",
	Doc: "forbid nondeterminism sources (time.Now, math/rand, os.Getenv, map-iteration " +
		"accumulation) in the deterministic packages; //imvet:deterministic opts a package in, " +
		"//imvet:allow nodet exempts a vetted line",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !deterministic(pass) {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, ok := forbiddenImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s (%s) in deterministic package %s; use imdist/internal/rng streams", path, why, pass.Pkg.Path())
			}
		}
	}
	dataflow.PackageInfo(pass).Inspect(func(_ *dataflow.Func, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		}
		return true
	})
	return nil
}

// deterministic reports whether the package under analysis is bound by the
// determinism contract, by import path or by explicit directive.
func deterministic(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	for _, p := range deterministicPackages {
		if path == p {
			return true
		}
	}
	return pass.HasPackageDirective("deterministic")
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	for _, name := range forbiddenCalls[fn.Pkg().Path()] {
		if fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "call to %s.%s in deterministic package %s reads ambient state; results must depend only on (graph, model, seed)", fn.Pkg().Path(), name, pass.Pkg.Path())
		}
	}
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// appends to a slice declared outside the loop: the append order then
// inherits Go's randomized map iteration order, which is exactly how a
// "deterministic" result silently becomes schedule-dependent. Iterating a
// sorted key slice (or sorting afterwards, with an //imvet:allow nodet
// justification) keeps the contract.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		dst, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[dst]
		if obj == nil || (rng.Pos() <= obj.Pos() && obj.Pos() <= rng.End()) {
			return true
		}
		pass.Reportf(asg.Pos(), "append to %s inside range over map: iteration order is randomized, so the accumulated slice is nondeterministic; iterate sorted keys instead", dst.Name)
		return true
	})
}
