package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the driver side of `go vet -vettool`: the go command
// builds each package, writes a JSON "unit config" describing it (files,
// import map, export-data locations), and invokes the tool as
//
//	imvet -V=full              # reported once, for the build cache key
//	imvet -flags               # flag inventory, for vet flag validation
//	imvet <unit>.cfg           # one analysis unit
//
// x/tools ships this as go/analysis/unitchecker; imdist re-implements the
// protocol on the stdlib so the module stays dependency-free. Facts are not
// supported — every imvet analyzer is single-package — which lets dependency
// units (VetxOnly) return immediately instead of re-type-checking the world.

// unitConfig mirrors the JSON unit config written by the go command
// (cmd/go/internal/work's vet config). Unused fields are accepted and
// ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain is the entry point of a vettool built from this framework. It
// handles the go vet protocol when invoked with a *.cfg argument and
// otherwise behaves as a standalone checker over `go list` patterns
// (`imvet ./...`), which is the form used for local runs and debugging.
func VetMain(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]
	exit := func(code int) { os.Exit(code) }

	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion(progname)
			exit(0)
		case args[0] == "-V":
			fmt.Printf("%s version devel\n", progname)
			exit(0)
		case args[0] == "-flags":
			printFlagDefs()
			exit(0)
		case args[0] == "help", args[0] == "-h", args[0] == "-help", args[0] == "--help":
			printHelp(progname, analyzers)
			exit(0)
		}
	}
	// -json is the one vet flag imvet accepts (declared in the -flags
	// inventory, so `go vet -json -vettool=…` passes it through). It may
	// precede the unit config or the go list patterns.
	jsonOut := false
	rest := args[:0:0]
	for _, a := range args {
		switch a {
		case "-json", "--json", "-json=true", "--json=true":
			jsonOut = true
		case "-json=false", "--json=false":
			// explicit default
		default:
			rest = append(rest, a)
		}
	}
	args = rest

	if len(args) == 0 {
		printHelp(progname, analyzers)
		exit(2)
	}

	// Unit-config mode: `go vet -vettool` passes exactly one *.cfg path.
	if strings.HasSuffix(args[0], ".cfg") {
		code, err := runUnit(args[0], analyzers, jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			exit(1)
		}
		exit(code)
	}

	// Standalone mode: treat the arguments as go list patterns and fan the
	// suite out per package (RunSuite keeps the output order deterministic).
	pkgs, err := Load(".", args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		exit(1)
	}
	diags, err := RunSuite(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		exit(1)
	}
	if jsonOut {
		// JSON mode follows the `go vet -json` convention: findings are
		// data on stdout, not an error exit.
		if err := WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			exit(1)
		}
		exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Position, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		exit(1)
	}
	exit(0)
}

// runUnit analyzes one go vet unit. The returned exit code follows the
// unitchecker convention: 0 clean, 2 diagnostics reported — except in JSON
// mode, where findings are data and the unit always exits 0.
func runUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// Dependency units exist only to propagate facts, which imvet does not
	// use; test-variant units re-present the same production files plus
	// _test.go files the contracts deliberately exempt. Both produce an
	// empty facts file and succeed immediately.
	if cfg.VetxOnly || strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0, writeVetx(cfg.VetxOutput)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx(cfg.VetxOutput)
			}
			return 0, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q in unit %s", path, cfg.ImportPath)
		}
		return os.Open(file)
	}
	tpkg, info, err := typeCheck(fset, cfg.ImportPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(cfg.VetxOutput)
		}
		return 0, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	pkg := &Package{PkgPath: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	if err := writeVetx(cfg.VetxOutput); err != nil {
		return 0, err
	}
	if jsonOut {
		var suiteDiags []SuiteDiagnostic
		for _, d := range diags {
			suiteDiags = append(suiteDiags, SuiteDiagnostic{
				Package: cfg.ImportPath, Position: fset.Position(d.Pos), Diagnostic: d,
			})
		}
		return 0, WriteJSON(os.Stdout, suiteDiags)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// writeVetx writes the (empty — imvet has no facts) serialized-facts file
// the go command expects every unit to produce for its action cache.
func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte{}, 0o666)
}

// printVersion responds to `-V=full`, which the go command runs once to key
// its build cache on the tool's identity. The expected shape is
// "<name> version <semver-or-devel> ... buildID=<content id>"; hashing the
// executable makes rebuilt tools invalidate stale vet results.
func printVersion(progname string) {
	var id string
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h := sha256.Sum256(data)
			id = fmt.Sprintf("%x", h[:12])
		}
	}
	if id == "" {
		id = "unknown"
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, id)
}

// printFlagDefs responds to `-flags`: a JSON inventory the go command uses
// to validate pass-through vet flags. imvet exposes exactly one, -json, so
// `go vet -json -vettool=bin/imvet` forwards it to each unit invocation.
func printFlagDefs() {
	fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit analysis diagnostics (and errors) in JSON form"}]`)
}

func printHelp(progname string, analyzers []*Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: imdist's project-specific static-analysis suite\n\n", progname)
	fmt.Fprintf(os.Stderr, "usage:\n")
	fmt.Fprintf(os.Stderr, "  go vet -vettool=$(command -v %s) ./...   # as a vet tool\n", progname)
	fmt.Fprintf(os.Stderr, "  %s ./...                                 # standalone\n\n", progname)
	fmt.Fprintf(os.Stderr, "analyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
}
