package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"

	"imdist/internal/parallel"
)

// A SuiteDiagnostic is one finding from a whole-module suite run, with its
// package and resolved position attached so drivers (standalone imvet,
// TestRepositoryIsClean, the -json writer) can print or serialize it without
// holding the package's FileSet.
type SuiteDiagnostic struct {
	Package  string
	Position token.Position
	Diagnostic
}

// RunSuite runs the analyzer suite over every package with per-package
// fan-out via internal/parallel: packages share nothing mutable (each has
// its own FileSet and type info, and RunAnalyzers keeps its shared-result
// cache per invocation), so package-level parallelism is safe and keeps
// standalone imvet and TestRepositoryIsClean fast as the suite grows.
//
// Ordering is deterministic regardless of scheduling: results land in
// index-addressed slots, so diagnostics come back grouped by package in
// `go list` order and position-sorted within each package (RunAnalyzers
// sorts them). The first package whose run fails determines the error.
func RunSuite(pkgs []*Package, analyzers []*Analyzer) ([]SuiteDiagnostic, error) {
	results := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	parallel.For(parallel.Resolve(-1, len(pkgs)), len(pkgs), func(_, i int) {
		results[i], errs[i] = RunAnalyzers(pkgs[i], analyzers)
	})
	var out []SuiteDiagnostic
	for i, pkg := range pkgs {
		if errs[i] != nil {
			return nil, fmt.Errorf("running suite on %s: %w", pkg.PkgPath, errs[i])
		}
		for _, d := range results[i] {
			out = append(out, SuiteDiagnostic{
				Package:    pkg.PkgPath,
				Position:   pkg.Fset.Position(d.Pos),
				Diagnostic: d,
			})
		}
	}
	return out, nil
}

// jsonDiagnostic is the per-finding JSON shape, matching the x/tools
// unitchecker convention (`go vet -json`): a "posn" string and a message.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// WriteJSON serializes suite diagnostics as the `go vet -json` object shape:
// package import path → analyzer name → findings. Map keys marshal sorted
// and findings stay in slice (position) order, so the output is
// deterministic and diffable.
func WriteJSON(w io.Writer, diags []SuiteDiagnostic) error {
	out := map[string]map[string][]jsonDiagnostic{}
	for _, d := range diags {
		byAnalyzer := out[d.Package]
		if byAnalyzer == nil {
			byAnalyzer = map[string][]jsonDiagnostic{}
			out[d.Package] = byAnalyzer
		}
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
			Posn:    d.Position.String(),
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}
