// Package analysis is imdist's project-specific static-analysis framework:
// a deliberately small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that the imvet analyzer suite is
// written against.
//
// The repo's correctness story rests on application-level contracts the Go
// compiler cannot see — byte-identical answers across worker counts, kernels,
// batch schedules and spill budgets, and strict resource hygiene on the
// sketch/checkpoint/spill files. The analyzers in the subpackages (nodet,
// rngstream, lostclose, lockscope) verify those contracts at vet time; this
// package gives them the Analyzer/Pass/Diagnostic vocabulary, the
// //imvet:allow suppression directive, and a `go list -export`-driven package
// loader used by the standalone driver and the analysistest harness. The
// `go vet -vettool` integration lives in unitchecker.go.
//
// The framework is stdlib-only on purpose: the module has no third-party
// dependencies, and the analyzers need nothing beyond go/ast and go/types.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one named invariant check. Unlike
// golang.org/x/tools/go/analysis there is no Requires/Facts machinery: every
// imvet analyzer is a self-contained single-package pass, which is exactly
// what lets the unitchecker driver skip dependency units entirely.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //imvet:allow
	// directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by `imvet help`.
	Doc string
	// Run inspects the package and reports diagnostics through the Pass.
	Run func(*Pass) error
}

// A Pass presents one package to an Analyzer.Run and collects its
// diagnostics. Diagnostics reported on lines covered by a matching
// //imvet:allow directive are dropped here, so individual analyzers never
// need to know about suppression.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allow  directiveIndex
	diags  *[]Diagnostic
	shared map[any]any
}

// Shared returns the package-scoped value for key, computing and caching it
// on first use. The cache lives for one RunAnalyzers call over one package
// and is shared by every analyzer in the suite: the dataflow layer
// (internal/analysis/dataflow) stores its function index, CFGs and call graph
// under a private key here, so seven analyzers pay for one construction.
// Analyzers run sequentially over a package, so no locking is needed.
func (p *Pass) Shared(key any, compute func() any) any {
	if v, ok := p.shared[key]; ok {
		return v
	}
	v := compute()
	p.shared[key] = v
	return v
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that reported it.
	Analyzer string
	// Pos locates the violation.
	Pos token.Pos
	// Message states the violation. By convention it names the offending
	// symbol and the contract it breaks.
	Message string
}

// Reportf reports a diagnostic at pos unless an //imvet:allow directive for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	posn := p.Fset.Position(pos)
	if p.allow.allows(posn.Filename, posn.Line, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SourceFiles returns the package files that are not test files. Every imvet
// analyzer checks production code only: the determinism and resource
// contracts are serving-path contracts, and tests legitimately use wall
// clocks, throwaway files and dropped errors.
func (p *Pass) SourceFiles() []*ast.File {
	files := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// Preorder calls fn for every node in every non-test file, in depth-first
// order. It is the traversal every analyzer starts from.
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// HasPackageDirective reports whether any file in the package carries the
// given //imvet:<name> package-level directive (for example
// //imvet:deterministic, which opts a package into the nodet contract
// regardless of its import path).
func (p *Pass) HasPackageDirective(name string) bool {
	want := directivePrefix + name
	for _, f := range p.SourceFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if text == want || strings.HasPrefix(text, want+" ") {
					return true
				}
			}
		}
	}
	return false
}

// RunAnalyzers type-checks nothing and loads nothing: it simply runs each
// analyzer over an already-loaded package and returns the surviving
// diagnostics sorted by position. It is the single execution path shared by
// the unitchecker driver, the standalone driver and the analysistest harness,
// so suppression and ordering behave identically everywhere.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allow := indexDirectives(pkg.Fset, pkg.Files)
	shared := map[any]any{}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			allow:     allow,
			diags:     &diags,
			shared:    shared,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// TypeName reports whether t (after pointer indirection) is the named type
// pkgPath.name. It is the shared type test the analyzers use to recognize
// rng.Source, rand.Rand and friends.
func TypeName(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IsPkgFunc reports whether the call expression invokes the package-level
// function pkgPath.name (for example time.Now).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// CalleeFunc returns the *types.Func a call statically resolves to, or nil
// for calls through function values, conversions and built-ins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
