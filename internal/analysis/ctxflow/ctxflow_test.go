package ctxflow_test

import (
	"testing"

	"imdist/internal/analysis/analysistest"
	"imdist/internal/analysis/ctxflow"
)

// TestCtxflow proves fresh root contexts fire in handlers, in ctx-carrying
// functions and transitively via the call graph (with the entry point
// named), that unbounded loops without a ctx poll fire, and that the clean
// file's threaded/polled/bounded shapes stay silent.
func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "ctxflow")
}

// TestCtxflowAllow proves //imvet:allow ctxflow suppresses a documented
// deliberate detachment while an unannotated line still fires.
func TestCtxflowAllow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "ctxflowallow")
}
