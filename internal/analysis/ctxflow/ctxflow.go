// Package ctxflow implements the imvet analyzer that enforces context
// threading on the serving and build paths.
//
// Cancellation is load-bearing in imdist: an HTTP client that disconnects,
// a DELETE on a build job, or server shutdown must actually stop the work —
// a batch influence query fans out per-seed-set work, and an adaptive build
// appends millions of RR sets in a loop. Both die only if ctx reaches them.
// The analyzer uses the dataflow layer's intra-package call graph to find
// every function on such a path and reports:
//
//   - calls to context.Background() or context.TODO() inside a function
//     that has a ctx parameter, is an HTTP handler (use r.Context()), or is
//     call-graph-reachable from one — a fresh root context silently detaches
//     the work from its caller's lifetime. Deliberate detachment (a build
//     job that must outlive its submit request, a shutdown drain that must
//     outlive the cancelled serve context) carries an //imvet:allow with
//     the justification.
//   - condition-only loops (`for {` / `for cond {`) in a ctx-carrying
//     function whose body makes calls but never mentions ctx: unbounded
//     batch/append loops must poll ctx.Err() or select on ctx.Done() each
//     iteration. Range and three-clause loops are bounded by construction
//     and exempt.
//
// The call graph is intra-package and static (see package dataflow): a path
// that crosses a package boundary is checked in the callee's package by the
// same rules, provided the callee takes a ctx — which is exactly what the
// first rule forces.
package ctxflow

import (
	"go/ast"
	"go/types"

	"imdist/internal/analysis"
	"imdist/internal/analysis/dataflow"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background/TODO downstream of HTTP handler or build-job entry points, and " +
		"condition-only loops in ctx-carrying functions that never poll ctx.Err()/ctx.Done()",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := dataflow.PackageInfo(pass)

	var roots []*dataflow.Func
	for _, fn := range info.Funcs {
		if ctxParam(pass.TypesInfo, fn) != nil || isHandler(pass.TypesInfo, fn) {
			roots = append(roots, fn)
		}
	}
	reachable := info.ReachableFrom(roots)

	for _, fn := range info.Funcs {
		root, onPath := reachable[fn]
		if onPath {
			checkFreshContext(pass, fn, root)
		}
		if ctx := ctxParam(pass.TypesInfo, fn); ctx != nil {
			checkLoops(pass, fn, ctx)
		}
	}
	return nil
}

// ctxParam returns the function's context.Context parameter object, or nil.
// A blank-named ctx counts for reachability but not for the loop rule.
func ctxParam(info *types.Info, fn *dataflow.Func) types.Object {
	sig := fn.Obj.Type().(*types.Signature)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if analysis.TypeName(params.At(i).Type(), "context", "Context") {
			return params.At(i)
		}
	}
	return nil
}

// isHandler reports the net/http handler shape:
// func (w http.ResponseWriter, r *http.Request).
func isHandler(info *types.Info, fn *dataflow.Func) bool {
	sig := fn.Obj.Type().(*types.Signature)
	params := sig.Params()
	if params.Len() != 2 {
		return false
	}
	return analysis.TypeName(params.At(0).Type(), "net/http", "ResponseWriter") &&
		analysis.TypeName(params.At(1).Type(), "net/http", "Request")
}

// checkFreshContext reports context.Background/TODO calls anywhere in fn
// (closures included: they run on fn's path or under its lifetime).
func checkFreshContext(pass *analysis.Pass, fn *dataflow.Func, root *dataflow.Func) {
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch {
		case analysis.IsPkgFunc(pass.TypesInfo, call, "context", "Background"):
			name = "context.Background"
		case analysis.IsPkgFunc(pass.TypesInfo, call, "context", "TODO"):
			name = "context.TODO"
		default:
			return true
		}
		switch {
		case ctxParam(pass.TypesInfo, fn) != nil:
			pass.Reportf(call.Pos(), "%s calls %s but has ctx in scope: derive from ctx so cancellation propagates, or annotate the deliberate detachment with //imvet:allow ctxflow", fn.Name(), name)
		case isHandler(pass.TypesInfo, fn):
			pass.Reportf(call.Pos(), "HTTP handler %s calls %s: use r.Context() so client disconnects and server shutdown stop the work", fn.Name(), name)
		default:
			pass.Reportf(call.Pos(), "%s calls %s on a request/build path (reachable from %s): thread ctx through so cancellation propagates", fn.Name(), name, root.Name())
		}
		return true
	})
}

// checkLoops reports condition-only loops in fn that make calls but never
// reference fn's ctx parameter.
func checkLoops(pass *analysis.Pass, fn *dataflow.Func, ctx types.Object) {
	if ctx.Name() == "_" || ctx.Name() == "" {
		return
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if loop.Init != nil || loop.Post != nil {
			return true // three-clause loops are bounded by construction
		}
		usesCtx := false
		makesCalls := false
		ast.Inspect(loop, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.Ident:
				if pass.TypesInfo.Uses[c] == ctx {
					usesCtx = true
				}
			case *ast.CallExpr:
				makesCalls = true
			}
			return true
		})
		if makesCalls && !usesCtx {
			pass.Reportf(loop.Pos(), "unbounded loop in %s never polls ctx: check ctx.Err() (or select on ctx.Done()) each iteration so cancellation can stop the work", fn.Name())
		}
		return true
	})
}
