// Package lockorder implements the imvet analyzer that derives the
// mutex-acquisition graph of a package and polices it.
//
// imdist's serving path crosses several guarded containers — the
// server.Registry (RWMutex over the sketch table), the buildManager and its
// per-job mutexes, and the RRStore implementations (MemStore, SpillStore).
// A deadlock needs only two of them acquired in opposite orders on two
// goroutines, or one of them held across a blocking operation that waits on
// a goroutine that wants it. Both shapes are invisible to tests (they need
// the right interleaving) and to syntactic checks (they are path
// properties); lockorder runs a flow-sensitive must-hold analysis over the
// dataflow layer's CFGs instead.
//
// Per function, the held-lock set is propagated over the CFG (join =
// intersection, so only locks held on *every* path count; `defer Unlock`
// holds to function end by construction). From it the analyzer derives:
//
//   - the acquisition graph: an edge A → B for every point where B is
//     locked (directly, or transitively via an in-package call) while A is
//     held. Any edge lying on a cycle is reported — two such edges are a
//     deadlock waiting for its interleaving.
//   - recursive acquisition: locking a mutex already held (sync mutexes do
//     not reenter), directly or via a call.
//   - blocking-while-held: a channel send/receive, a select without
//     default, a range over a channel, or a known blocking call
//     (time.Sleep, WaitGroup/Cond.Wait, exec, net, http.Client) — direct
//     or via an in-package callee — executed with a mutex held.
//
// Identity is (named type, field): every *buildJob's mu is one lock in the
// graph, which is the right granularity for order invariants. The graph is
// intra-package (see package dataflow); calls into other packages are
// assumed lock-free, which is sound for the repo's layering (core and
// sketchio never call back up into server).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"imdist/internal/analysis"
	"imdist/internal/analysis/dataflow"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "derive the package's mutex-acquisition graph and flag acquisition-order cycles, " +
		"recursive acquisition, and locks held across blocking operations",
	Run: run,
}

// A lockID names one mutex in the acquisition graph: the field of a named
// type ("Registry.mu"), or a bare variable.
type lockID struct {
	typeName string
	name     string
}

func (id lockID) String() string {
	if id.typeName == "" {
		return id.name
	}
	if id.name == "" {
		return id.typeName + ".Mutex"
	}
	return id.typeName + "." + id.name
}

// An edge records "to was acquired while from was held", with the first
// program point that did it.
type edge struct {
	from, to lockID
	pos      token.Pos
	fn       string // function containing the acquisition
	via      string // callee name when the edge comes from a call summary
}

type checker struct {
	pass *analysis.Pass
	info *dataflow.Info
	// acquires is the transitive may-acquire summary per function.
	acquires map[*dataflow.Func]map[lockID]bool
	// blocking marks functions that may block (directly or via callees).
	blocking map[*dataflow.Func]bool
	// comm holds every select communication statement: its channel op is
	// the select's choice, not an unconditional block.
	comm map[ast.Stmt]bool

	edges    []edge
	edgeSeen map[[2]lockID]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		info:     dataflow.PackageInfo(pass),
		acquires: map[*dataflow.Func]map[lockID]bool{},
		blocking: map[*dataflow.Func]bool{},
		comm:     map[ast.Stmt]bool{},
		edgeSeen: map[[2]lockID]bool{},
	}
	c.collectComm()
	c.buildSummaries()
	for _, fn := range c.info.Funcs {
		c.checkFunc(fn)
	}
	c.reportCycles()
	return nil
}

// collectComm indexes the comm statements of every select in the package.
func (c *checker) collectComm() {
	for _, fn := range c.info.Funcs {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, cl := range sel.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						c.comm[cc.Comm] = true
					}
				}
			}
			return true
		})
	}
}

// buildSummaries computes, to a fixed point, which locks each function may
// acquire and whether it may block. Closure bodies count (they may run on
// the function's path); `go` statements do not (their effects land on a
// different goroutine); deferred calls do not (they run at exit, after the
// body's critical sections).
func (c *checker) buildSummaries() {
	direct := map[*dataflow.Func]map[lockID]bool{}
	directBlock := map[*dataflow.Func]bool{}
	for _, fn := range c.info.Funcs {
		acq := map[lockID]bool{}
		blocks := false
		c.walkEffective(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, _, isAcquire, ok := c.lockCall(n); ok {
					if isAcquire {
						acq[id] = true
					}
					return true
				}
				if _, ok := c.blockingCall(n); ok {
					blocks = true
				}
			case *ast.SelectStmt:
				if !hasDefault(n) {
					blocks = true
				}
			case *ast.SendStmt:
				if !c.comm[n] {
					blocks = true
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocks = true
				}
			case *ast.RangeStmt:
				if isChan(c.pass.TypesInfo, n.X) {
					blocks = true
				}
			}
			return true
		})
		direct[fn] = acq
		directBlock[fn] = blocks
	}
	for _, fn := range c.info.Funcs {
		c.acquires[fn] = cloneLocks(direct[fn])
		c.blocking[fn] = directBlock[fn]
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range c.info.Funcs {
			for _, callee := range c.info.Callees(fn) {
				for id := range c.acquires[callee] {
					if !c.acquires[fn][id] {
						c.acquires[fn][id] = true
						changed = true
					}
				}
				if c.blocking[callee] && !c.blocking[fn] {
					c.blocking[fn] = true
					changed = true
				}
			}
		}
	}
}

// walkEffective walks n's subtree skipping go statements, deferred calls,
// and the channel operand of select comm clauses (handled at the select).
func (c *checker) walkEffective(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			return false
		case ast.Stmt:
			if c.comm[x] {
				fn(x)
				return false
			}
		}
		if x == nil {
			return false
		}
		return fn(x)
	})
}

// held is the per-program-point state: lock → write-held.
type held map[lockID]bool

// checkFunc runs the must-hold analysis over fn's CFG and reports.
func (c *checker) checkFunc(fn *dataflow.Func) {
	g := c.info.CFG(fn)
	in := make([]held, len(g.Blocks))
	in[g.Entry.Index] = held{}
	work := []*dataflow.Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		st := cloneLocks(in[blk.Index])
		for _, n := range blk.Nodes {
			c.transfer(fn, n, st, nil)
		}
		for _, succ := range blk.Succs {
			if in[succ.Index] == nil {
				in[succ.Index] = cloneLocks(st)
				work = append(work, succ)
			} else if intersectInto(in[succ.Index], st) {
				work = append(work, succ)
			}
		}
	}
	var reports []report
	for _, blk := range g.Blocks {
		if in[blk.Index] == nil {
			continue
		}
		st := cloneLocks(in[blk.Index])
		for _, n := range blk.Nodes {
			c.transfer(fn, n, st, &reports)
		}
	}
	sort.SliceStable(reports, func(i, j int) bool { return reports[i].pos < reports[j].pos })
	for _, r := range reports {
		c.pass.Reportf(r.pos, "%s", r.msg)
	}
}

type report struct {
	pos token.Pos
	msg string
}

// transfer applies one block node to the held set; with reports non-nil it
// also collects diagnostics and acquisition edges (the replay pass).
func (c *checker) transfer(fn *dataflow.Func, n ast.Node, st held, reports *[]report) {
	switch n := n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred unlocks keep the lock held to function end; goroutine
		// bodies run on another stack.
		return
	case *ast.SelectStmt:
		if reports != nil && len(st) > 0 && !hasDefault(n) {
			c.blockReport(fn, n.Pos(), st, "select without a default case", reports)
		}
		return
	case *ast.RangeStmt:
		if reports != nil && len(st) > 0 && isChan(c.pass.TypesInfo, n.X) {
			c.blockReport(fn, n.Pos(), st, "range over a channel", reports)
		}
		return
	}
	isComm := false
	if stmt, ok := n.(ast.Stmt); ok {
		isComm = c.comm[stmt]
	}
	dataflow.ShallowNodes(n, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.CallExpr:
			c.transferCall(fn, x, st, reports)
		case *ast.SendStmt:
			if reports != nil && len(st) > 0 && !isComm {
				c.blockReport(fn, x.Pos(), st, "channel send", reports)
			}
		case *ast.UnaryExpr:
			if reports != nil && len(st) > 0 && x.Op == token.ARROW && !isComm {
				c.blockReport(fn, x.Pos(), st, "channel receive", reports)
			}
		}
	})
}

func (c *checker) transferCall(fn *dataflow.Func, call *ast.CallExpr, st held, reports *[]report) {
	if id, write, isAcquire, ok := c.lockCall(call); ok {
		if !isAcquire {
			delete(st, id)
			return
		}
		if priorWrite, already := st[id]; already && reports != nil && (write || priorWrite) {
			*reports = append(*reports, report{call.Pos(), fmt.Sprintf(
				"%s acquires %s while already holding it: sync mutexes do not reenter (self-deadlock)",
				fn.Name(), id)})
		}
		if reports != nil {
			for _, h := range sortedLocks(st) {
				if h != id {
					c.addEdge(edge{from: h, to: id, pos: call.Pos(), fn: fn.Name()})
				}
			}
		}
		st[id] = write || st[id]
		return
	}
	if obj := analysis.CalleeFunc(c.pass.TypesInfo, call); obj != nil {
		if callee, ok := c.info.ByObj[obj]; ok {
			if reports != nil && len(st) > 0 {
				for _, a := range sortedLocks(c.acquires[callee]) {
					for _, h := range sortedLocks(st) {
						if a == h {
							*reports = append(*reports, report{call.Pos(), fmt.Sprintf(
								"%s calls %s while holding %s, and %s acquires %s again: sync mutexes do not reenter (self-deadlock)",
								fn.Name(), callee.Name(), h, callee.Name(), a)})
						} else {
							c.addEdge(edge{from: h, to: a, pos: call.Pos(), fn: fn.Name(), via: callee.Name()})
						}
					}
				}
				if c.blocking[callee] {
					c.blockReport(fn, call.Pos(), st, fmt.Sprintf("call to %s, which may block", callee.Name()), reports)
				}
			}
			return
		}
	}
	if reports != nil && len(st) > 0 {
		if name, ok := c.blockingCall(call); ok {
			c.blockReport(fn, call.Pos(), st, "call to "+name, reports)
		}
	}
}

func (c *checker) blockReport(fn *dataflow.Func, pos token.Pos, st held, what string, reports *[]report) {
	*reports = append(*reports, report{pos, fmt.Sprintf(
		"%s holds %s across a blocking operation (%s): the lock is unavailable for as long as the wait lasts",
		fn.Name(), lockList(st), what)})
}

// lockCall recognizes sync.(RW)Mutex Lock/RLock/Unlock/RUnlock calls and
// identifies the mutex.
func (c *checker) lockCall(call *ast.CallExpr) (id lockID, write, isAcquire, ok bool) {
	obj := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return id, false, false, false
	}
	switch obj.Name() {
	case "Lock":
		write, isAcquire = true, true
	case "RLock":
		isAcquire = true
	case "Unlock", "RUnlock":
	default:
		return id, false, false, false
	}
	sig, sigOK := obj.Type().(*types.Signature)
	if !sigOK || sig.Recv() == nil {
		return id, false, false, false
	}
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return id, false, false, false
	}
	id, ok = c.lockIDOf(sel.X)
	return id, write, isAcquire, ok
}

// lockIDOf names the mutex expression: s.mu → {type of s, "mu"}, a bare or
// package-qualified variable by name, an embedded mutex by its owner type.
func (c *checker) lockIDOf(e ast.Expr) (lockID, bool) {
	info := c.pass.TypesInfo
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return lockID{name: x.Sel.Name}, true
			}
		}
		if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
			if tn := dataflow.NamedTypeName(tv.Type); tn != "" {
				return lockID{typeName: tn, name: x.Sel.Name}, true
			}
		}
		if s := dataflow.ExprString(x); s != "" {
			return lockID{name: s}, true
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return lockID{}, false
		}
		if dataflow.IsMutexType(obj.Type()) {
			return lockID{name: x.Name}, true
		}
		// Receiver/value with an embedded mutex: identify by owner type.
		if tn := dataflow.NamedTypeName(obj.Type()); tn != "" {
			return lockID{typeName: tn}, true
		}
	}
	return lockID{}, false
}

// blockingCall recognizes well-known blocking calls outside the package.
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	obj := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	name := obj.Name()
	switch obj.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		if name == "Wait" {
			return "sync." + recvName(obj) + ".Wait", true
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return "exec.Cmd." + name, true
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "net/http." + name, true
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "Accept":
			return "net." + name, true
		}
	}
	return "", false
}

func recvName(obj *types.Func) string {
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if tn := dataflow.NamedTypeName(sig.Recv().Type()); tn != "" {
			return tn
		}
	}
	return "Locker"
}

func (c *checker) addEdge(e edge) {
	key := [2]lockID{e.from, e.to}
	if c.edgeSeen[key] {
		return
	}
	c.edgeSeen[key] = true
	c.edges = append(c.edges, e)
}

// reportCycles reports every acquisition edge that lies on a cycle of the
// package's lock-order graph.
func (c *checker) reportCycles() {
	succs := map[lockID][]lockID{}
	for _, e := range c.edges {
		succs[e.from] = append(succs[e.from], e.to)
	}
	reaches := func(from, to lockID) bool {
		seen := map[lockID]bool{from: true}
		queue := []lockID{from}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range succs[cur] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		return false
	}
	for _, e := range c.edges {
		if !reaches(e.to, e.from) {
			continue
		}
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (via call to %s)", e.via)
		}
		c.pass.Reportf(e.pos, "%s acquires %s while holding %s%s, but elsewhere in the package %s is acquired first: lock-order cycle (deadlock risk)",
			e.fn, e.to, e.from, via, e.to)
	}
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChan(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func cloneLocks(m held) held {
	out := make(held, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// intersectInto keeps in dst only locks also held in src (must-hold meet),
// reporting whether dst changed.
func intersectInto(dst, src held) bool {
	changed := false
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
			changed = true
		}
	}
	return changed
}

func sortedLocks(m held) []lockID {
	out := make([]lockID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func lockList(m held) string {
	ids := sortedLocks(m)
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = id.String()
	}
	return strings.Join(names, ", ")
}
