package lockorder_test

import (
	"testing"

	"imdist/internal/analysis/analysistest"
	"imdist/internal/analysis/lockorder"
)

// TestLockorder proves the two-mutex cycle fires (directly and via call
// summaries), recursive acquisition fires (directly and via a callee),
// blocking-under-lock fires for channel ops, selects, sleeps and blocking
// callees — and that consistent hierarchy order, select-with-default and
// unlock-before-block stay silent. The fixture spans three files plus a
// subpackage, exercising the harness's multi-file and multi-package
// loading.
func TestLockorder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lockorder")
}

// TestLockorderTagged proves tag-gated fixture files load (violation and
// want both) when the tag is passed — and, via TestLockorder above, stay
// invisible when it is not.
func TestLockorderTagged(t *testing.T) {
	analysistest.RunTags(t, lockorder.Analyzer, "lockorder", "lockordertag")
}

// TestLockorderAllow proves //imvet:allow lockorder suppresses a documented
// exception while an unannotated line still fires.
func TestLockorderAllow(t *testing.T) {
	analysistest.RunTags(t, lockorder.Analyzer, "lockorderallow")
}
