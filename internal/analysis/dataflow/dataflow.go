// Package dataflow is the shared flow-sensitive layer under the imvet
// analyzer suite: a per-function control-flow graph over go/ast, a forward
// taint-propagation engine over that CFG, and a conservative intra-package
// call graph, all built once per package and shared by every analyzer
// through analysis.Pass.Shared.
//
// The syntactic analyzers of PR 8 (nodet, rngstream, lostclose, lockscope)
// could pattern-match single statements; the invariants added on top of this
// layer — untrusted decoded lengths must be bounds-checked before they size
// an allocation (taintlen), request/build contexts must be threaded and
// polled (ctxflow), and mutexes must be acquired in a consistent order and
// never held across blocking calls (lockorder) — are properties of *paths*,
// not statements, and need the flow-sensitive machinery here.
//
// Precision contract (also documented in docs/ANALYSIS.md): the layer is
// deliberately conservative and intra-package.
//
//   - The call graph resolves static calls only (direct function and method
//     calls, via types.Info.Uses). Calls through interfaces, function values
//     and function fields are unresolved: analyzers must treat them as
//     "could do anything" or "does nothing", whichever direction is
//     conservative for their invariant.
//   - Function literals do not get their own CFG; their bodies are
//     attributed to the enclosing declaration for summary purposes (what a
//     function *may* acquire or call) but are not inlined into its CFG (when
//     a closure actually runs is unknown).
//   - Taint propagation is per-function, extended across in-package calls
//     only through per-result return summaries computed to a fixed point.
//     Taint entering a callee through an argument is not tracked.
package dataflow

import (
	"go/ast"
	"go/types"

	"imdist/internal/analysis"
)

// A Func is one function or method declaration with a body, the unit of
// dataflow analysis.
type Func struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// Name returns a diagnostic-friendly name: "Type.Method" for methods,
// "Func" otherwise.
func (f *Func) Name() string {
	if f.Decl.Recv != nil {
		if recv := f.Obj.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + f.Obj.Name()
			}
		}
	}
	return f.Obj.Name()
}

// Info is the dataflow view of one package: its function index, lazily built
// CFGs, and the conservative intra-package call graph.
type Info struct {
	Pass *analysis.Pass
	// Funcs lists every function and method declaration with a body from the
	// package's non-test files, in file/source order (deterministic).
	Funcs []*Func
	// ByObj maps the type-checker's object for a declaration back to it.
	ByObj map[*types.Func]*Func

	cfgs    map[*Func]*CFG
	callees map[*Func][]*Func
}

type infoKey struct{}

// PackageInfo returns the package's dataflow Info, building it on first use
// and caching it on the Pass so all analyzers in a suite run share one copy.
func PackageInfo(pass *analysis.Pass) *Info {
	return pass.Shared(infoKey{}, func() any {
		in := &Info{
			Pass:    pass,
			ByObj:   map[*types.Func]*Func{},
			cfgs:    map[*Func]*CFG{},
			callees: map[*Func][]*Func{},
		}
		for _, f := range pass.SourceFiles() {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &Func{Decl: fd, Obj: obj}
				in.Funcs = append(in.Funcs, fn)
				in.ByObj[obj] = fn
			}
		}
		return in
	}).(*Info)
}

// CFG returns fn's control-flow graph, built on first use.
func (in *Info) CFG(fn *Func) *CFG {
	g, ok := in.cfgs[fn]
	if !ok {
		g = NewCFG(fn.Decl.Body)
		in.cfgs[fn] = g
	}
	return g
}

// Callees returns the in-package functions fn may call, in first-call-site
// order, deduplicated. Calls made inside function literals declared in fn
// are attributed to fn (the closure may run under fn's locks or on fn's
// path; attributing them here is the conservative choice for summaries).
// Calls through function values and interfaces resolve to nothing.
func (in *Info) Callees(fn *Func) []*Func {
	if out, ok := in.callees[fn]; ok {
		return out
	}
	var out []*Func
	seen := map[*Func]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := analysis.CalleeFunc(in.Pass.TypesInfo, call)
		if obj == nil {
			return true
		}
		if callee, ok := in.ByObj[obj]; ok && !seen[callee] {
			seen[callee] = true
			out = append(out, callee)
		}
		return true
	})
	in.callees[fn] = out
	return out
}

// Inspect walks every function body in the index (in file/source order) and
// then every package-level non-function declaration (var/const initializers
// can hold function literals and calls), invoking visit as ast.Inspect does.
// It is the Preorder analog for analyzers ported onto the dataflow layer:
// the same traversal convention everywhere, plus attribution — fn is the
// enclosing declaration for body nodes and nil for package-level ones.
func (in *Info) Inspect(visit func(fn *Func, n ast.Node) bool) {
	for _, fn := range in.Funcs {
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool { return visit(fn, n) })
	}
	for _, f := range in.Pass.SourceFiles() {
		for _, decl := range f.Decls {
			if _, ok := decl.(*ast.FuncDecl); ok {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool { return visit(nil, n) })
		}
	}
}

// ReachableFrom computes the set of functions reachable from roots over the
// intra-package call graph (roots included). The returned map gives, for
// each reachable function, the root it was first reached from, following
// breadth-first order over the deterministic Funcs/Callees ordering — so
// diagnostics can name a concrete entry point.
func (in *Info) ReachableFrom(roots []*Func) map[*Func]*Func {
	from := map[*Func]*Func{}
	queue := make([]*Func, 0, len(roots))
	for _, r := range roots {
		if _, ok := from[r]; ok {
			continue
		}
		from[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range in.Callees(fn) {
			if _, ok := from[callee]; ok {
				continue
			}
			from[callee] = from[fn]
			queue = append(queue, callee)
		}
	}
	return from
}
