package dataflow

import (
	"go/ast"
	"go/types"

	"imdist/internal/analysis"
)

// RootIdent returns the leftmost identifier of a selector chain (the o of
// o.inner.src), unwrapping dereferences, or nil when the chain is rooted in
// a call or index expression. Shared by rngstream (capture roots), lockscope
// and lockorder (receiver-field paths).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ExprString renders a selector chain for diagnostics without dragging in a
// printer dependency; non-selector shapes fall back to the leaf name.
func ExprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if root := RootIdent(x); root != nil {
			if prefix := ExprString(x.X); prefix != "" {
				return prefix + "." + x.Sel.Name
			}
		}
		return x.Sel.Name
	default:
		return ""
	}
}

// IsMutexType reports whether t (after pointer indirection) is sync.Mutex or
// sync.RWMutex.
func IsMutexType(t types.Type) bool {
	return analysis.TypeName(t, "sync", "Mutex") || analysis.TypeName(t, "sync", "RWMutex")
}

// HoldsMutex reports whether t (after pointer indirection) is a struct type
// with a direct sync.Mutex or sync.RWMutex field. It is how lockscope and
// lockorder recognize the repo's guarded containers (Registry, buildManager,
// MemStore, SpillStore, …).
func HoldsMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if IsMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// NamedTypeName returns the bare name of e's named type after pointer
// indirection (e.g. "Registry" for a *server.Registry expression), or "".
func NamedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
