package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"imdist/internal/analysis"
)

// A TaintKey identifies one tainted storage location: a local or package
// variable, or (Field != "") one named field of a struct variable addressed
// through it.
type TaintKey struct {
	Obj   types.Object
	Field string
}

// A Taint is one configured forward taint propagation. The lattice per
// location is two-point (clean < tainted); the per-program-point state is
// the set of tainted TaintKeys, joined by union at control-flow merges.
// Taint is introduced by Sources, propagated through assignments and
// arithmetic, and killed when the value is *compared* — any appearance of a
// location (possibly under conversions) as an operand of ==, !=, <, <=, >,
// >= in a branch condition, switch tag or case expression sanitizes it on
// all outgoing paths. That matches the hostile-input idiom: a decoded count
// checked against a bound (in either direction, on either branch) has been
// looked at; one that never was has not.
type Taint struct {
	Info *types.Info
	// Sources reports, per result, whether call introduces taint
	// (nil: the call is not a source).
	Sources func(call *ast.CallExpr) []bool
	// Summaries maps in-package functions to per-result taint, letting taint
	// flow through `n := readCount(r)`-style helpers. Computed to a fixed
	// point by AnalyzeAll.
	Summaries map[*types.Func][]bool
}

// A TaintState is the set of tainted locations at one program point,
// presented to Analyze's visit callback.
type TaintState struct {
	t *Taint
	m map[TaintKey]bool
}

// Tainted reports whether expression e evaluates to a tainted value under
// this state.
func (s *TaintState) Tainted(e ast.Expr) bool { return s.t.tainted(e, s.m) }

// AnalyzeAll runs taint propagation over every function of in, computing
// cross-function return summaries to a fixed point, then replays each
// function once with visit (called for every block node with the state in
// effect *before* the node executes). The fixed point terminates because
// summaries only ever go from clean to tainted.
func (t *Taint) AnalyzeAll(in *Info, visit func(fn *Func, n ast.Node, s *TaintState)) {
	if t.Summaries == nil {
		t.Summaries = map[*types.Func][]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range in.Funcs {
			ret := t.Analyze(fn, in.CFG(fn), nil)
			if !equalBools(t.Summaries[fn.Obj], ret) {
				t.Summaries[fn.Obj] = ret
				changed = true
			}
		}
	}
	if visit != nil {
		for _, fn := range in.Funcs {
			t.Analyze(fn, in.CFG(fn), func(n ast.Node, s *TaintState) { visit(fn, n, s) })
		}
	}
}

// Analyze propagates taint over g to a fixed point and returns, per result
// of fn, whether any return statement may yield a tainted value. If visit is
// non-nil the stable solution is replayed once in block order, calling visit
// for each node with the state before its transfer.
func (t *Taint) Analyze(fn *Func, g *CFG, visit func(n ast.Node, s *TaintState)) []bool {
	in := make([]map[TaintKey]bool, len(g.Blocks))
	in[g.Entry.Index] = map[TaintKey]bool{}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		st := cloneTaint(in[blk.Index])
		for _, n := range blk.Nodes {
			t.transfer(n, st, g)
		}
		for _, succ := range blk.Succs {
			if in[succ.Index] == nil {
				in[succ.Index] = cloneTaint(st)
				work = append(work, succ)
			} else if unionInto(in[succ.Index], st) {
				work = append(work, succ)
			}
		}
	}

	retTaint := make([]bool, numResults(fn.Decl))
	for _, blk := range g.Blocks {
		if in[blk.Index] == nil {
			continue // unreachable
		}
		st := cloneTaint(in[blk.Index])
		for _, n := range blk.Nodes {
			if visit != nil {
				visit(n, &TaintState{t, st})
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				t.recordReturn(ret, fn.Decl, st, retTaint)
			}
			t.transfer(n, st, g)
		}
	}
	return retTaint
}

// transfer applies one node's effect to st.
func (t *Taint) transfer(n ast.Node, st map[TaintKey]bool, g *CFG) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(n, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				t.declAssign(vs, st)
			}
		}
	case *ast.RangeStmt:
		// Ranging over a tainted collection taints the iteration variables.
		if n.X != nil && t.tainted(n.X, st) {
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if lhs != nil {
					t.setLhs(lhs, true, st)
				}
			}
		}
	}
	if expr, ok := n.(ast.Expr); ok && g.IsCond(n) {
		t.sanitize(expr, st)
	}
}

func (t *Taint) assign(a *ast.AssignStmt, st map[TaintKey]bool) {
	switch {
	case len(a.Lhs) == len(a.Rhs):
		for i, lhs := range a.Lhs {
			t.setLhs(lhs, t.tainted(a.Rhs[i], st), st)
		}
	case len(a.Rhs) == 1:
		// Tuple assignment: a multi-result call, comma-ok map/assert/recv.
		results := t.tupleTaint(a.Rhs[0], len(a.Lhs), st)
		for i, lhs := range a.Lhs {
			t.setLhs(lhs, results[i], st)
		}
	}
}

func (t *Taint) declAssign(vs *ast.ValueSpec, st map[TaintKey]bool) {
	switch {
	case len(vs.Values) == len(vs.Names):
		for i, name := range vs.Names {
			t.setIdent(name, t.tainted(vs.Values[i], st), st)
		}
	case len(vs.Values) == 1 && len(vs.Names) > 1:
		results := t.tupleTaint(vs.Values[0], len(vs.Names), st)
		for i, name := range vs.Names {
			t.setIdent(name, results[i], st)
		}
	}
}

// tupleTaint evaluates a multi-value rhs (call, comma-ok) to per-lhs taint.
func (t *Taint) tupleTaint(rhs ast.Expr, n int, st map[TaintKey]bool) []bool {
	out := make([]bool, n)
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if res := t.callTaint(e, st); res != nil {
			copy(out, res)
		}
	case *ast.IndexExpr, *ast.TypeAssertExpr, *ast.UnaryExpr:
		// v, ok := m[k] / x.(T) / <-ch: value inherits the operand's taint.
		if n > 0 {
			out[0] = t.tainted(rhs, st)
		}
	}
	return out
}

func (t *Taint) setLhs(lhs ast.Expr, taint bool, st map[TaintKey]bool) {
	if key, ok := t.keyOf(lhs); ok {
		if taint {
			st[key] = true
		} else {
			delete(st, key)
		}
	}
	// Writes through indexes, pointers or deeper paths have no key:
	// conservatively dropped (documented imprecision).
}

func (t *Taint) setIdent(id *ast.Ident, taint bool, st map[TaintKey]bool) {
	if id.Name == "_" {
		return
	}
	if obj := t.Info.Defs[id]; obj != nil {
		if taint {
			st[TaintKey{Obj: obj}] = true
		} else {
			delete(st, TaintKey{Obj: obj})
		}
	}
}

// keyOf maps an addressable expression to its TaintKey: `x` or `x.f` (with
// x an identifier, possibly dereferenced).
func (t *Taint) keyOf(e ast.Expr) (TaintKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := t.objOf(e); obj != nil {
			return TaintKey{Obj: obj}, true
		}
	case *ast.SelectorExpr:
		x := ast.Unparen(e.X)
		if star, ok := x.(*ast.StarExpr); ok {
			x = ast.Unparen(star.X)
		}
		if id, ok := x.(*ast.Ident); ok {
			if obj := t.objOf(id); obj != nil {
				// Only field accesses get a key; method values do not.
				if sel := t.Info.Selections[e]; sel == nil || sel.Kind() == types.FieldVal {
					return TaintKey{Obj: obj, Field: e.Sel.Name}, true
				}
			}
		}
	}
	return TaintKey{}, false
}

func (t *Taint) objOf(id *ast.Ident) types.Object {
	if obj := t.Info.Uses[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
		return nil
	}
	if obj := t.Info.Defs[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	}
	return nil
}

// tainted reports whether e evaluates to a tainted value under st.
func (t *Taint) tainted(e ast.Expr, st map[TaintKey]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := t.objOf(e); obj != nil {
			return st[TaintKey{Obj: obj}]
		}
	case *ast.SelectorExpr:
		if key, ok := t.keyOf(e); ok {
			if st[key] {
				return true
			}
			// A fully tainted struct variable taints every field.
			return st[TaintKey{Obj: key.Obj}]
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return false // booleans are not length-taint carriers
		}
		return t.tainted(e.X, st) || t.tainted(e.Y, st)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return false
		}
		return t.tainted(e.X, st)
	case *ast.StarExpr:
		return t.tainted(e.X, st)
	case *ast.IndexExpr:
		return t.tainted(e.X, st)
	case *ast.SliceExpr:
		return t.tainted(e.X, st)
	case *ast.TypeAssertExpr:
		return t.tainted(e.X, st)
	case *ast.CallExpr:
		// Conversion: taint passes through.
		if tv, ok := t.Info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return t.tainted(e.Args[0], st)
			}
			return false
		}
		// min/max sanitize unless every operand is tainted.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (id.Name == "min" || id.Name == "max") {
			if _, isBuiltin := t.Info.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range e.Args {
					if !t.tainted(arg, st) {
						return false
					}
				}
				return len(e.Args) > 0
			}
		}
		if res := t.callTaint(e, st); len(res) == 1 {
			return res[0]
		}
	}
	return false
}

// callTaint resolves a call's per-result taint through Sources and the
// in-package summaries.
func (t *Taint) callTaint(call *ast.CallExpr, st map[TaintKey]bool) []bool {
	if t.Sources != nil {
		if res := t.Sources(call); res != nil {
			return res
		}
	}
	if fn := analysis.CalleeFunc(t.Info, call); fn != nil {
		if res, ok := t.Summaries[fn]; ok {
			return res
		}
	}
	return nil
}

// sanitize kills the taint of every location compared in branch condition
// cond (and of a bare switch tag, which the case expressions compare).
func (t *Taint) sanitize(cond ast.Expr, st map[TaintKey]bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			t.killOperand(e.X, st)
			t.killOperand(e.Y, st)
		case token.LAND, token.LOR:
			t.sanitize(e.X, st)
			t.sanitize(e.Y, st)
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			t.sanitize(e.X, st)
		}
	default:
		// A switch tag or case expression: the value is being compared.
		t.killOperand(cond, st)
	}
}

// killOperand unwraps conversions, unary arithmetic and dereferences around
// a compared operand and clears its location's taint.
func (t *Taint) killOperand(e ast.Expr, st map[TaintKey]bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if tv, ok := t.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return
		case *ast.UnaryExpr:
			if x.Op == token.SUB || x.Op == token.ADD || x.Op == token.XOR {
				e = x.X
				continue
			}
			return
		case *ast.StarExpr:
			e = x.X
			continue
		default:
			if key, ok := t.keyOf(ast.Unparen(e)); ok {
				delete(st, key)
			}
			return
		}
	}
}

func (t *Taint) recordReturn(ret *ast.ReturnStmt, decl *ast.FuncDecl, st map[TaintKey]bool, retTaint []bool) {
	if len(ret.Results) == 0 {
		// Naked return: evaluate the named results.
		i := 0
		if decl.Type.Results == nil {
			return
		}
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				if i < len(retTaint) {
					if obj := t.Info.Defs[name]; obj != nil && st[TaintKey{Obj: obj}] {
						retTaint[i] = true
					}
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
		return
	}
	if len(ret.Results) == 1 && len(retTaint) > 1 {
		// return f() forwarding a tuple.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if res := t.callTaint(call, st); res != nil {
				for i := range retTaint {
					if i < len(res) && res[i] {
						retTaint[i] = true
					}
				}
			}
		}
		return
	}
	for i, res := range ret.Results {
		if i < len(retTaint) && t.tainted(res, st) {
			retTaint[i] = true
		}
	}
}

func numResults(decl *ast.FuncDecl) int {
	if decl.Type.Results == nil {
		return 0
	}
	n := 0
	for _, field := range decl.Type.Results.List {
		if len(field.Names) == 0 {
			n++
		} else {
			n += len(field.Names)
		}
	}
	return n
}

func cloneTaint(m map[TaintKey]bool) map[TaintKey]bool {
	out := make(map[TaintKey]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}

// unionInto merges src into dst, reporting whether dst grew.
func unionInto(dst, src map[TaintKey]bool) bool {
	changed := false
	for k, v := range src {
		if v && !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return changed
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
