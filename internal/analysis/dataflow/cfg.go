package dataflow

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: a maximal straight-line sequence of statements
// and branch conditions, executed in order, ending where control may split.
type Block struct {
	// Nodes are the statements and condition expressions executed in this
	// block, in source order. Composite statements whose bodies the CFG
	// splits into their own blocks (range and select) appear here as the
	// header node only; use ShallowNodes to walk a node without descending
	// into such bodies or into function literals.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to next.
	Succs []*Block
	// Index is the block's position in CFG.Blocks.
	Index int
}

// A CFG is the control-flow graph of one function body. It models
// structured control flow (if/for/range/switch/type switch/select,
// break/continue/goto/fallthrough, return); panics and runtime exits are not
// modeled. Function literals are opaque: their bodies are not part of the
// enclosing function's graph.
type CFG struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the synthetic block every return and the fall-off-the-end path
	// feed into. It holds no nodes.
	Exit *Block
	// Blocks lists every block, entry first, in construction order (which
	// follows source order closely enough for deterministic replays).
	Blocks []*Block

	conds map[ast.Node]bool
}

// IsCond reports whether n is recorded as a branch condition (an if or for
// condition, a switch tag, or a case expression): the program points where a
// comparison can sanitize a tainted value.
func (g *CFG) IsCond(n ast.Node) bool { return g.conds[n] }

// NewCFG builds the control-flow graph of body.
func NewCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{conds: map[ast.Node]bool{}}
	b := &cfgBuilder{g: g, gotos: map[string]*Block{}}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.exit = g.Exit
	b.cur = g.Entry
	b.stmt(body)
	b.link(b.cur, b.exit)
	return g
}

// ShallowNodes calls fn for n and each descendant that executes as part of
// n's basic-block slot. It does not descend into function literals (their
// bodies run elsewhere) nor into the bodies of range and select statements
// (the CFG gives those their own blocks).
func ShallowNodes(n ast.Node, fn func(ast.Node)) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		fn(n)
		if n.Key != nil {
			ShallowNodes(n.Key, fn)
		}
		if n.Value != nil {
			ShallowNodes(n.Value, fn)
		}
		ShallowNodes(n.X, fn)
		return
	case *ast.SelectStmt:
		fn(n)
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if lit, ok := c.(*ast.FuncLit); ok {
			fn(lit)
			return false
		}
		fn(c)
		return true
	})
}

// scope is one enclosing breakable statement (loop, switch or select) during
// construction; loops additionally carry a continue target.
type scope struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block
	exit   *Block
	scopes []scope
	gotos  map[string]*Block // label → landing block (created on demand)
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// startFrom creates a block with edges from each non-nil pred.
func (b *cfgBuilder) startFrom(preds ...*Block) *Block {
	blk := b.newBlock()
	for _, p := range preds {
		if p != nil {
			b.link(p, blk)
		}
	}
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) cond(e ast.Expr) {
	if e != nil {
		b.g.conds[e] = true
		b.cur.Nodes = append(b.cur.Nodes, e)
	}
}

// dead parks the builder on a fresh predecessor-less block, for the
// unreachable code after a return/break/continue/goto.
func (b *cfgBuilder) dead() { b.cur = b.newBlock() }

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.LabeledStmt:
		b.labeled(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.exit)
		b.dead()
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.EmptyStmt:
	default:
		// Assignments, declarations, expression/send/inc-dec/go/defer
		// statements: straight-line nodes.
		b.add(s)
	}
}

// labeled handles a labeled statement: it is a goto landing point, and if it
// wraps a breakable statement the label names that statement's scope.
func (b *cfgBuilder) labeled(s *ast.LabeledStmt) {
	landing := b.startFrom(b.cur)
	if placeholder, ok := b.gotos[s.Label.Name]; ok {
		b.link(placeholder, landing)
	}
	b.gotos[s.Label.Name] = landing
	b.cur = landing
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.stmt(s.Init)
	b.cond(s.Cond)
	condBlk := b.cur
	b.cur = b.startFrom(condBlk)
	b.stmt(s.Body)
	thenEnd := b.cur
	if s.Else != nil {
		b.cur = b.startFrom(condBlk)
		b.stmt(s.Else)
		b.cur = b.startFrom(thenEnd, b.cur)
	} else {
		b.cur = b.startFrom(thenEnd, condBlk)
	}
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	b.stmt(s.Init)
	head := b.startFrom(b.cur)
	b.cur = head
	b.cond(s.Cond)
	post := b.newBlock()
	join := b.newBlock()
	b.cur = b.startFrom(head)
	b.scopes = append(b.scopes, scope{label: label, breakTo: join, continueTo: post})
	b.stmt(s.Body)
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.link(b.cur, post)
	b.cur = post
	b.add(s.Post)
	b.link(post, head)
	if s.Cond != nil {
		b.link(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.startFrom(b.cur)
	b.cur = head
	// The RangeStmt node itself stands for the per-iteration step: evaluate
	// X (once, but modeled here), assign Key/Value. ShallowNodes keeps
	// clients out of its Body.
	b.add(s)
	join := b.newBlock()
	b.cur = b.startFrom(head)
	b.scopes = append(b.scopes, scope{label: label, breakTo: join, continueTo: head})
	b.stmt(s.Body)
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.link(b.cur, head)
	b.link(head, join)
	b.cur = join
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	b.stmt(s.Init)
	b.cond(s.Tag)
	b.caseClauses(s.Body, label, true)
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	b.stmt(s.Init)
	b.add(s.Assign)
	b.caseClauses(s.Body, label, false)
}

// caseClauses builds the clause blocks of a switch or type switch whose
// head is the current block. withFallthrough enables fallthrough edges
// (expression switches only).
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, label string, withFallthrough bool) {
	head := b.cur
	join := b.newBlock()
	bodies := make([]*Block, len(body.List))
	hasDefault := false
	for i := range body.List {
		bodies[i] = b.startFrom(head)
	}
	b.scopes = append(b.scopes, scope{label: label, breakTo: join})
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.cond(e)
		}
		stmts := cc.Body
		fallsThrough := false
		if withFallthrough && len(stmts) > 0 {
			if br, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:len(stmts)-1]
			}
		}
		for _, st := range stmts {
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(bodies) {
			b.link(b.cur, bodies[i+1])
		} else {
			b.link(b.cur, join)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	if !hasDefault {
		b.link(head, join)
	}
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	// The SelectStmt node is the blocking point; each comm clause gets its
	// own block holding the comm statement and body.
	b.add(s)
	head := b.cur
	join := b.newBlock()
	b.scopes = append(b.scopes, scope{label: label, breakTo: join})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		b.cur = b.startFrom(head)
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.link(b.cur, join)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = join
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK, token.CONTINUE:
		if target := b.branchTarget(s.Tok, label); target != nil {
			b.link(b.cur, target)
		}
		b.dead()
	case token.GOTO:
		target, ok := b.gotos[label]
		if !ok {
			// Forward goto: create a placeholder the label will adopt.
			target = b.newBlock()
			b.gotos[label] = target
		}
		b.link(b.cur, target)
		b.dead()
	case token.FALLTHROUGH:
		// Handled by caseClauses; one reaching stmt() directly (invalid
		// code) is ignored.
	}
}

func (b *cfgBuilder) branchTarget(tok token.Token, label string) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if label != "" && sc.label != label {
			continue
		}
		if tok == token.BREAK {
			return sc.breakTo
		}
		if sc.continueTo != nil {
			return sc.continueTo
		}
		if label != "" {
			return nil // labeled continue on a non-loop: invalid code
		}
	}
	return nil
}
