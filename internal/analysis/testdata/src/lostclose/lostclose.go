// Package lostclose is an imvet fixture for the resource-safety contract:
// dropped Close/Sync/Flush errors and handles that leak without a release
// path, next to the accepted idioms (checked close, deferred close,
// explicit `_ =` drop on an already-failing path, escape to a caller).
package lostclose

import (
	"bufio"
	"os"
)

// dropped swallows the close error on the failure path without saying so.
func dropped(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		f.Close() // want `error from f\.Close\(\) is dropped`
		return err
	}
	return f.Close()
}

// droppedSyncFlush loses the two errors that report torn writes.
func droppedSyncFlush(f *os.File) error {
	w := bufio.NewWriter(f)
	if _, err := w.WriteString("x"); err != nil {
		return err
	}
	w.Flush() // want `error from w\.Flush\(\) is dropped`
	f.Sync()  // want `error from f\.Sync\(\) is dropped`
	return nil
}

// explicitDrop is the accepted form on an error path that already returns
// the original error: the drop is visible in the code.
func explicitDrop(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// deferred is the idiomatic read-path shape.
func deferred(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 8)
	n, err := f.Read(buf)
	return buf[:n], err
}

// leak opens a file, reads it, and forgets it: no close, no escape.
func leak(path string) (byte, error) {
	f, err := os.Open(path) // want `f is never closed and never escapes this function`
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 1)
	if _, err := f.Read(buf); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// escapes hands the open handle to the caller, which owns closing it.
func escapes(path string) (*os.File, error) {
	f, err := os.Open(path)
	return f, err
}

// passedOn hands the handle to another function, which may close it.
func passedOn(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return consume(f)
}

func consume(f *os.File) error { return f.Close() }

// mapped mirrors sketchio.MappedSketch: a refcounted handle whose Close
// releases an mmap. Forgetting it pins the mapping for the process lifetime.
type mapped struct{}

func (m *mapped) Close() error { return nil }
func (m *mapped) At(i int) int { return i }
func openMapped() *mapped      { return &mapped{} }

// leakMapped uses the handle but never releases the mapping.
func leakMapped() int {
	m := openMapped() // want `m is never closed and never escapes this function`
	return m.At(3)
}

// releasedMapped closes on every path; a *deferred* close is accepted even
// though its error is unobservable — on the read paths that is the idiom.
func releasedMapped() int {
	m := openMapped()
	defer m.Close()
	return m.At(3)
}
