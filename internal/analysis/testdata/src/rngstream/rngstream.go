// Package rngstream is an imvet fixture violating the per-index rng stream
// discipline in the three ways the rngstream analyzer detects: a source
// captured by a goroutine closure, a source captured by a parallel worker
// body, and per-worker (rather than per-index) sources.
package rngstream

import (
	"imdist/internal/parallel"
	"imdist/internal/rng"
)

// captured shares one mutable generator across a spawned goroutine and a
// worker body — a race and a schedule dependency at once.
func captured(n int) uint64 {
	src := rng.New(rng.Xoshiro, 1)
	done := make(chan uint64, 1)
	go func() {
		done <- src.Uint64() // want `rng source src is captured by goroutine closure`
	}()
	parallel.For(4, n, func(worker, index int) {
		_ = src.Float64() // want `rng source src is captured by parallel worker body`
	})
	return <-done
}

// engine holds a source in a struct reached from inside the body.
type engine struct {
	src rng.Source
}

func (e *engine) run(n int) {
	parallel.For(4, n, func(worker, index int) {
		_ = e.src.Uint64() // want `rng source e\.src reaches into state captured by parallel worker body`
	})
}

// perWorker is race-free but schedule-dependent: which worker consumes which
// index varies run to run, so each generator's sequence does too.
func perWorker(split rng.Splitter, workers, n int) {
	srcs := make([]rng.Source, workers)
	for w := range srcs {
		srcs[w] = split.Stream(uint64(w))
	}
	parallel.For(workers, n, func(worker, index int) {
		_ = srcs[worker].Uint64() // want `rng source indexed by worker id worker`
	})
}

// perIndex is the contract-compliant shape: randomness derived from the work
// index alone, independent of worker count and scheduling.
func perIndex(split rng.Splitter, n int) {
	parallel.For(4, n, func(worker, index int) {
		src := split.Stream(uint64(index))
		_ = src.Uint64()
	})
}

// splitterCapture is fine: a Splitter is immutable and safe to share; only
// the Sources it derives are single-goroutine state.
func splitterCapture(split rng.Splitter, n int) {
	go func() {
		_ = split.Stream(0).Uint64()
	}()
}

// serial closures (not go statements, not parallel bodies) may use a shared
// source freely.
func serial(src rng.Source, xs []float64) {
	fill := func() {
		for i := range xs {
			xs[i] = src.Float64()
		}
	}
	fill()
}
