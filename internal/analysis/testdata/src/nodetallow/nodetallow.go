// Package nodetallow is an imvet fixture for the //imvet:allow directive:
// the same violations as the nodet fixture, suppressed — except one control
// line proving the analyzer still fires where no directive applies.
//
//imvet:deterministic
package nodetallow

import (
	"sort"
	"time"
)

// buildStamp is sketch metadata, not answer-affecting state: the canonical
// kind of vetted exception the directive exists for.
func buildStamp() int64 {
	return time.Now().Unix() //imvet:allow nodet — build metadata, not answer-affecting
}

// standalone-directive form: the comment covers the following line.
func buildStamp2() int64 {
	//imvet:allow nodet — build metadata, not answer-affecting
	return time.Now().Unix()
}

// wrongName shows that a directive for a different analyzer does not
// suppress nodet.
func wrongName() int64 {
	return time.Now().Unix() //imvet:allow lostclose // want `call to time.Now in deterministic package`
}

// control proves the analyzer runs in this package at all.
func control() int64 {
	return time.Now().Unix() // want `call to time.Now in deterministic package`
}

// sortedKeys documents the post-sort idiom: the append order is random but
// sorted away immediately after, which reviewers accept with a justification.
func sortedKeys(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k) //imvet:allow nodet — out is sorted before use below
	}
	sort.Ints(out)
	return out
}
