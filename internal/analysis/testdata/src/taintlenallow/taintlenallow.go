// Package taintlenallow is an imvet fixture for //imvet:allow taintlen: a
// documented unbounded decode is suppressed, and an unannotated control
// line still fires.
//
//imvet:hostileinput — fixture: parses attacker-controlled bytes
package taintlenallow

import "encoding/binary"

// trustedSideChannel decodes a length whose bound is enforced by the caller
// (the fixture's stand-in for a contract the analyzer cannot see).
func trustedSideChannel(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	return make([]byte, n) //imvet:allow taintlen — fixture: caller verified the segment CRC, length is trusted
}

// control proves the analyzer still fires where no directive applies.
func control(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	return make([]byte, n) // want `make sized by untrusted length n`
}
