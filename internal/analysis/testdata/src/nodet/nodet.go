// Package nodet is an imvet fixture: a package opted into the determinism
// contract through the directive below, violating it in every way the nodet
// analyzer knows about.
//
//imvet:deterministic
package nodet

import (
	"math/rand" // want `import of math/rand \(globally-seeded randomness\) in deterministic package`
	"os"
	"sort"
	"time"
)

// stamp reads the wall clock: results no longer depend only on the seed.
func stamp() int64 {
	return time.Now().UnixNano() // want `call to time.Now in deterministic package`
}

// elapsed embeds a wall-clock read through time.Since.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time.Since in deterministic package`
}

// jitter draws from the globally seeded generator; the import diagnostic
// above already covers the package's presence.
func jitter() float64 {
	return rand.Float64()
}

// fromEnv makes the answer depend on the process environment.
func fromEnv() string {
	if v, ok := os.LookupEnv("IMDIST_SEED"); ok { // want `call to os.LookupEnv in deterministic package`
		return v
	}
	return os.Getenv("HOME") // want `call to os.Getenv in deterministic package`
}

// keys accumulates in randomized map-iteration order.
func keys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `append to out inside range over map`
	}
	return out
}

// keysSorted is the compliant shape: collect, then sort, or iterate a sorted
// index. Sorting after a map-order append still needs the allow directive
// (see the nodetallow fixture); ranging over the sorted slice does not.
func keysSorted(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k) // want `append to out inside range over map`
	}
	sort.Ints(out)
	return out
}

// counts writes into a map while ranging over another: map writes keyed by
// the ranged keys are order-independent, so this is clean.
func counts(m map[int]string) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = len(v)
	}
	return out
}

// local appends accumulate inside the loop's own scope and are reset per
// iteration, so ordering cannot leak out.
func local(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}
