// Package lockscope is an imvet fixture reproducing the PR 6 bug class: an
// exported method on a mutex-holding type returning its internal slice, so
// callers keep a live alias into state the lock stops protecting the moment
// the method returns.
package lockscope

import "sync"

// builder mirrors the historical core.SketchBuilder shape whose Sets()
// handed out the internal top-level slice while AppendBatch kept growing it.
type builder struct {
	mu   sync.Mutex
	sets [][]int
	tags map[string]int
}

// Sets is the PR 6 bug, verbatim in miniature.
func (b *builder) Sets() [][]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sets // want `Sets returns internal slice sets of mutex-guarded builder`
}

// Set leaks an element of the guarded slice-of-slices: the top level is not
// returned, but the alias into shared backing arrays is just as live.
func (b *builder) Set(i int) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sets[i] // want `Set returns internal slice sets\[\.\.\.\] of mutex-guarded builder`
}

// Tags leaks a guarded map; the method not even locking makes it worse, and
// the analyzer flags it regardless.
func (b *builder) Tags() map[string]int {
	return b.tags // want `Tags returns internal map tags of mutex-guarded builder`
}

// SetsCopy is the fix PR 6 shipped: fresh top-level slice per call.
func (b *builder) SetsCopy() [][]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([][]int, len(b.sets))
	copy(out, b.sets)
	return out
}

// Peek documents a zero-copy read-only contract, the MemStore.Set idiom;
// the annotation records the justification where the aliasing happens.
func (b *builder) Peek() [][]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sets //imvet:allow lockscope — documented read-only snapshot, callers must not mutate
}

// sets0 is unexported: internal helpers may pass guarded state between
// methods of the same type; the exported API boundary is what is policed.
func (b *builder) sets0() [][]int { return b.sets }

// Count returns a scalar: nothing aliases.
func (b *builder) Count() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.sets)
}

// plain holds no mutex, so handing out its slice is not lockscope's
// business (ownership may still be documented, but no lock is subverted).
type plain struct{ xs []int }

// Xs returns the internal slice of an unguarded type.
func (p *plain) Xs() []int { return p.xs }
