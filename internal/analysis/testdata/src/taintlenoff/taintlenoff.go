// Package taintlenoff proves taintlen's scope gate: the same unbounded
// decode shapes as the firing fixture, but the package neither is
// imdist/internal/sketchio nor carries //imvet:hostileinput, so nothing is
// tainted and nothing fires.
package taintlenoff

import "encoding/binary"

func decodeV1Header(hdr []byte) [][]uint32 {
	numSets := binary.LittleEndian.Uint64(hdr[24:32])
	return make([][]uint32, numSets)
}

func vertexAt(payload []byte) byte {
	off := binary.LittleEndian.Uint32(payload)
	return payload[off]
}
