// Package notdet is an imvet fixture: it uses every nondeterminism source
// nodet knows about, but it is neither in the deterministic package list nor
// marked //imvet:deterministic — so nodet must stay silent.
package notdet

import (
	"math/rand"
	"os"
	"time"
)

func stamp() int64    { return time.Now().UnixNano() }
func jitter() float64 { return rand.Float64() }
func fromEnv() string { return os.Getenv("HOME") }
func keys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
