// Package ctxflow is an imvet fixture: fresh root contexts created on
// handler/build paths, and unbounded loops that never poll ctx.
package ctxflow

import (
	"context"
	"net/http"
)

// handler creates a fresh context instead of using the request's.
func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `HTTP handler handler calls context.Background`
	work(ctx)
	helper()
}

// helper is one hop from the handler: the reachability rule must carry the
// entry point's name into the diagnostic.
func helper() {
	deep()
}

// deep is two hops out.
func deep() {
	_ = context.TODO() // want `deep calls context.TODO on a request/build path \(reachable from handler\)`
}

// work has ctx in scope and discards it for a fresh root.
func work(ctx context.Context) {
	dctx := context.Background() // want `work calls context.Background but has ctx in scope`
	_ = dctx
	_ = ctx
}

// build drives an unbounded append loop without ever polling ctx.
func build(ctx context.Context, items []int) int {
	total := 0
	for len(items) > 0 { // want `unbounded loop in build never polls ctx`
		total += step(items)
		items = items[1:]
	}
	return total
}

// spin is the condition-less variant.
func spin(ctx context.Context, done *bool) {
	for { // want `unbounded loop in spin never polls ctx`
		if *done {
			return
		}
		step(nil)
	}
}

func step(items []int) int { return len(items) }
