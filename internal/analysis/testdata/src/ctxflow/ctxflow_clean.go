package ctxflow

import (
	"context"
	"net/http"
)

// The clean counterparts: threading r.Context, polling ctx.Err, selecting
// on ctx.Done, and loops that are bounded by construction.

func cleanHandler(w http.ResponseWriter, r *http.Request) {
	work2(r.Context())
}

func work2(ctx context.Context) error {
	items := []int{1, 2, 3}
	for len(items) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		items = items[1:]
		step(items)
	}
	return nil
}

func selectLoop(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += step([]int{v})
		}
	}
}

// boundedLoops: range and three-clause loops terminate with their
// collection/counter and are exempt.
func boundedLoops(ctx context.Context, items []int) int {
	total := 0
	for _, v := range items {
		total += step([]int{v})
	}
	for i := 0; i < len(items); i++ {
		total += step(items)
	}
	return total
}

// notOnPath is unreachable from any handler or ctx function: a fresh root
// context is fine here (main-style wiring).
func notOnPath() context.Context {
	return context.Background()
}
