package taintlen

import "encoding/binary"

// The clean counterparts live in a second file: the analyzer's taint state
// and summaries must span the whole package, not one file.

// decodeBounded compares the decoded count against a caller bound before
// allocating: the comparison sanitizes it on both branches.
func decodeBounded(hdr []byte, maxSets uint64) [][]uint32 {
	numSets := binary.LittleEndian.Uint64(hdr)
	if numSets > maxSets {
		return nil
	}
	return make([][]uint32, numSets)
}

// decodeRecords checks the count once and then uses it to size the result
// and drive the loop; derived loop indexes are clean.
func decodeRecords(payload []byte, n uint32) []uint32 {
	count := binary.LittleEndian.Uint32(payload)
	if count > n || 4+4*uint64(count) > uint64(len(payload)) {
		return nil
	}
	out := make([]uint32, 0, count)
	for i := uint32(0); i < count; i++ {
		out = append(out, binary.LittleEndian.Uint32(payload[4+4*i:]))
	}
	return out
}

// boundedViaHelper sanitizes a helper-returned count: the summary taints it,
// the comparison clears it.
func boundedViaHelper(b []byte) []uint32 {
	count := readCount(b)
	if count > 1<<20 {
		return nil
	}
	return make([]uint32, count)
}

// clampedByMin caps the decoded length with the min builtin, which bounds it
// by a trusted operand.
func clampedByMin(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	return make([]byte, min(n, len(b)))
}
