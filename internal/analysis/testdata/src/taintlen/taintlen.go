// Package taintlen is an imvet fixture: lengths and offsets decoded from
// untrusted bytes reaching allocation, index and copy sinks before any
// bounds comparison. The package opts into the hostile-input contract with
// the directive below, exactly as a future network decode path would.
//
//imvet:hostileinput — fixture: these functions parse attacker-controlled bytes
package taintlen

import (
	"encoding/binary"
	"io"
)

// decodeV1Header reproduces the historical v1-decoder shape the contract
// exists for: the header's set count flows straight into make, so a 16-byte
// hostile file requests a multi-gigabyte allocation.
func decodeV1Header(hdr []byte) [][]uint32 {
	numSets := binary.LittleEndian.Uint64(hdr[24:32])
	return make([][]uint32, numSets) // want `make sized by untrusted length numSets`
}

// vertexAt indexes the payload at a decoded offset without a range check.
func vertexAt(payload []byte) byte {
	off := binary.LittleEndian.Uint32(payload)
	return payload[off] // want `index off is untrusted input`
}

// record slices by a decoded varint length without a cap.
func record(payload []byte) []byte {
	n, _ := binary.Uvarint(payload)
	return payload[:n] // want `slice bound n is untrusted input`
}

// copyBody sizes an io.CopyN from a decoded segment length.
func copyBody(dst io.Writer, src io.Reader, hdr []byte) error {
	size := int64(binary.LittleEndian.Uint64(hdr))
	_, err := io.CopyN(dst, src, size) // want `io.CopyN length size is untrusted input`
	return err
}

// readCount is a decode helper: its tainted return must propagate to
// callers through the fixed-point summary.
func readCount(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b)
}

// decodeViaHelper allocates from a count that was decoded two frames away.
func decodeViaHelper(b []byte) []uint32 {
	count := readCount(b)
	return make([]uint32, count) // want `make sized by untrusted length count`
}
