// Package lockorderallow is an imvet fixture for //imvet:allow lockorder:
// a documented block-under-lock is suppressed, an unannotated control line
// still fires.
package lockorderallow

import "sync"

type G struct {
	mu sync.Mutex
}

// handoff deliberately parks under the lock: the protocol guarantees the
// sender never takes g.mu (the fixture's stand-in for such a contract).
func handoff(g *G, ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-ch //imvet:allow lockorder — fixture: sender is lock-free by protocol, no cycle possible
}

// control proves the analyzer still fires without the directive.
func control(g *G, ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-ch // want `control holds G.mu across a blocking operation \(channel receive\)`
}
