// Package sub proves the harness runs analyzers over fixture subpackages:
// its own violation must be reported against its own acquisition graph,
// independent of the parent fixture package.
package sub

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Double() int {
	s.mu.Lock()
	s.mu.Lock() // want `S.Double acquires S.mu while already holding it`
	defer s.mu.Unlock()
	defer s.mu.Unlock()
	return s.n
}
