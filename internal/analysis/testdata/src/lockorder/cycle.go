package lockorder

// aThenB and bThenA acquire the two mutexes in opposite orders: the classic
// deadlock, visible only as a property of the package-wide graph.
func aThenB(a *A) {
	a.mu.Lock()
	a.b.mu.Lock() // want `aThenB acquires B.mu while holding A.mu, but elsewhere in the package B.mu is acquired first: lock-order cycle`
	a.b.mu.Unlock()
	a.mu.Unlock()
}

func bThenA(b *B) {
	b.mu.Lock()
	b.a.mu.Lock() // want `bThenA acquires A.mu while holding B.mu, but elsewhere in the package A.mu is acquired first: lock-order cycle`
	b.a.mu.Unlock()
	b.mu.Unlock()
}

// cThenD and dThenC form the same cycle, but each second acquisition hides
// inside a callee: the edges come from the transitive acquire summaries.
func cThenD(c *C) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.d.touch() // want `cThenD acquires D.mu while holding C.mu \(via call to D.touch\)`
}

func (d *D) touch() {
	d.mu.Lock()
	defer d.mu.Unlock()
}

func dThenC(d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.c.touch() // want `dThenC acquires C.mu while holding D.mu \(via call to C.touch\)`
}

func (c *C) touch() {
	c.mu.Lock()
	defer c.mu.Unlock()
}

// reacquire locks a mutex it already holds: sync mutexes do not reenter.
func reacquire(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want `reacquire acquires A.mu while already holding it`
	a.mu.Unlock()
	a.mu.Unlock()
}

// reacquireViaCall self-deadlocks through a callee that takes the same lock.
func reacquireViaCall(d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.touch() // want `reacquireViaCall calls D.touch while holding D.mu`
}

// prune holds parent and child in the repo's hierarchy order on every path:
// a consistent order is clean.
func prune(m *Mgr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		j.done = true
		j.mu.Unlock()
	}
}
