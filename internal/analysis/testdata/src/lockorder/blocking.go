package lockorder

import "time"

// recvUnderLock parks on a channel receive with the mutex held.
func recvUnderLock(a *A, ch chan int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return <-ch // want `recvUnderLock holds A.mu across a blocking operation \(channel receive\)`
}

// sendUnderLock parks on a channel send with the mutex held.
func sendUnderLock(a *A, ch chan int) {
	a.mu.Lock()
	ch <- 1 // want `sendUnderLock holds A.mu across a blocking operation \(channel send\)`
	a.mu.Unlock()
}

// sleepUnderLock stalls every other acquirer for the sleep duration.
func sleepUnderLock(a *A) {
	a.mu.Lock()
	time.Sleep(time.Millisecond) // want `sleepUnderLock holds A.mu across a blocking operation \(call to time.Sleep\)`
	a.mu.Unlock()
}

// selectUnderLock blocks with no default case.
func selectUnderLock(a *A, ch chan int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	select { // want `selectUnderLock holds A.mu across a blocking operation \(select without a default case\)`
	case v := <-ch:
		return v
	}
}

// pollUnderLock uses select-with-default: non-blocking, clean — the repo's
// buildManager.submit shape.
func pollUnderLock(a *A, ch chan int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// recvAfterUnlock releases before parking: flow-sensitivity must see the
// explicit Unlock — the repo's flightGroup.Do shape.
func recvAfterUnlock(a *A, ch chan int) int {
	a.mu.Lock()
	a.mu.Unlock()
	return <-ch
}

// blockViaCall parks inside a callee while holding the lock.
func blockViaCall(a *A, ch chan int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	drain(ch) // want `blockViaCall holds A.mu across a blocking operation \(call to drain, which may block\)`
}

func drain(ch chan int) {
	for range ch {
	}
}
