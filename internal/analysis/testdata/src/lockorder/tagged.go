//go:build lockordertag

package lockorder

import "sync"

// tagGated proves the harness loads tag-gated fixture files on request:
// this violation (and its want) is invisible without -tags lockordertag.
func tagGated(wg *sync.WaitGroup, a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	wg.Wait() // want `tagGated holds A.mu across a blocking operation \(call to sync.WaitGroup.Wait\)`
}
