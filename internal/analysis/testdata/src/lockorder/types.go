// Package lockorder is an imvet fixture: the two-mutex acquisition-order
// cycle, recursive acquisition, and locks held across blocking operations.
// The types live in this file and the violations in cycle.go/blocking.go:
// the acquisition graph must span the whole package.
package lockorder

import "sync"

// A and B form the direct two-mutex cycle.
type A struct {
	mu sync.Mutex
	b  *B
}

type B struct {
	mu sync.Mutex
	a  *A
}

// C and D form a cycle observed only through call summaries.
type C struct {
	mu sync.Mutex
	d  *D
}

type D struct {
	mu sync.Mutex
	c  *C
}

// Mgr/Job mirror the repo's buildManager/buildJob hierarchy: a consistent
// parent→child order is clean.
type Mgr struct {
	mu   sync.Mutex
	jobs []*Job
}

type Job struct {
	mu   sync.Mutex
	done bool
}
