// Package ctxflowallow is an imvet fixture for //imvet:allow ctxflow: a
// documented deliberate detachment is suppressed, an unannotated control
// line still fires.
package ctxflowallow

import "context"

// submitJob deliberately detaches the job from the request context — the
// job outlives the submitting request by design (the repo's buildManager
// shape).
func submitJob(ctx context.Context) context.Context {
	//imvet:allow ctxflow — fixture: job outlives the request by design; cancelled via its own handle
	jobCtx, cancel := context.WithCancel(context.Background())
	_ = cancel
	_ = ctx
	return jobCtx
}

// control proves the analyzer still fires without the directive.
func control(ctx context.Context) context.Context {
	_ = ctx
	return context.Background() // want `control calls context.Background but has ctx in scope`
}
