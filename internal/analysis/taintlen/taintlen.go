// Package taintlen implements the imvet analyzer that machine-checks the
// sketchio hostile-input contract: every length, count or offset decoded
// from a sketch, checkpoint or spill file is attacker-controlled until it
// has been compared against a bound, and must not size an allocation or an
// index before that.
//
// This is the bug class the v1 decoder hardening closed: a header's
// numSets field flowing straight into `make([][]VertexID, numSets)` turns a
// 16-byte hostile file into a multi-gigabyte allocation. The analyzer runs
// the dataflow layer's forward taint propagation per function: calls to
// encoding/binary's fixed-width and varint decoders introduce taint, any
// comparison of the value (against anything, in any direction) sanitizes
// it, and a still-tainted value reaching a `make` size, a slice/array
// index, a slice-expression bound or an io.CopyN length is a diagnostic.
// Taint flows through in-package helper returns via fixed-point summaries.
//
// Scope: imdist/internal/sketchio (the only package that parses untrusted
// bytes), plus any package opting in with a //imvet:hostileinput file
// directive (the fixture mechanism, and the hook for future network decode
// paths — ROADMAP items 3/5 ship sketches between replicas).
package taintlen

import (
	"go/ast"
	"go/types"

	"imdist/internal/analysis"
	"imdist/internal/analysis/dataflow"
)

// hostilePackages always carry the hostile-input contract.
var hostilePackages = map[string]bool{
	"imdist/internal/sketchio": true,
}

// Analyzer is the taintlen pass.
var Analyzer = &analysis.Analyzer{
	Name: "taintlen",
	Doc: "flag lengths/counts decoded from untrusted sketch/checkpoint/spill bytes that reach " +
		"make, slice/index expressions or io.CopyN before being compared against a bound",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !hostilePackages[pass.Pkg.Path()] && !pass.HasPackageDirective("hostileinput") {
		return nil
	}
	info := dataflow.PackageInfo(pass)
	t := &dataflow.Taint{
		Info:    pass.TypesInfo,
		Sources: decodeSources(pass.TypesInfo),
	}
	t.AnalyzeAll(info, func(fn *dataflow.Func, n ast.Node, s *dataflow.TaintState) {
		checkSinks(pass, n, s)
	})
	return nil
}

// decodeSources recognizes the decoder calls that introduce taint: the
// fixed-width reads of a binary.ByteOrder (LittleEndian.Uint64 on a header
// field) and the varint family. Every byte they interpret came from a file
// or a peer.
func decodeSources(info *types.Info) func(call *ast.CallExpr) []bool {
	return func(call *ast.CallExpr) []bool {
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
			return nil
		}
		switch fn.Name() {
		case "Uint16", "Uint32", "Uint64":
			// ByteOrder methods: one result, tainted.
			return []bool{true}
		case "Varint", "Uvarint", "ReadVarint", "ReadUvarint":
			// (value, n) / (value, err): the decoded value is tainted.
			return []bool{true, false}
		}
		return nil
	}
}

// checkSinks reports tainted values consumed in size or index positions
// anywhere inside block node n.
func checkSinks(pass *analysis.Pass, n ast.Node, s *dataflow.TaintState) {
	dataflow.ShallowNodes(n, func(c ast.Node) {
		switch c := c.(type) {
		case *ast.CallExpr:
			checkCallSinks(pass, c, s)
		case *ast.IndexExpr:
			if !indexableByLen(pass.TypesInfo, c.X) {
				return
			}
			if s.Tainted(c.Index) {
				pass.Reportf(c.Index.Pos(), "index %s is untrusted input decoded from a sketch/checkpoint/spill file: compare it against a bound before indexing", exprName(c.Index))
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{c.Low, c.High, c.Max} {
				if bound != nil && s.Tainted(bound) {
					pass.Reportf(bound.Pos(), "slice bound %s is untrusted input decoded from a sketch/checkpoint/spill file: compare it against a bound before slicing", exprName(bound))
				}
			}
		}
	})
}

func checkCallSinks(pass *analysis.Pass, call *ast.CallExpr, s *dataflow.TaintState) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "make" {
			for _, arg := range call.Args[1:] {
				if s.Tainted(arg) {
					pass.Reportf(arg.Pos(), "make sized by untrusted length %s decoded from a sketch/checkpoint/spill file: compare it against a bound before allocating", exprName(arg))
				}
			}
			return
		}
	}
	if analysis.IsPkgFunc(pass.TypesInfo, call, "io", "CopyN") && len(call.Args) == 3 {
		if s.Tainted(call.Args[2]) {
			pass.Reportf(call.Args[2].Pos(), "io.CopyN length %s is untrusted input decoded from a sketch/checkpoint/spill file: compare it against a bound first", exprName(call.Args[2]))
		}
	}
}

// indexableByLen reports whether e is a slice, array or string — the types
// where a hostile index is an out-of-range panic. Map keys are not lengths.
func indexableByLen(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Slice, *types.Array, *types.Basic:
		_, isBasic := t.(*types.Basic)
		if isBasic {
			b := t.(*types.Basic)
			return b.Info()&types.IsString != 0
		}
		return true
	}
	return false
}

func exprName(e ast.Expr) string {
	if name := dataflow.ExprString(e); name != "" {
		return name
	}
	return "value"
}
