package taintlen_test

import (
	"testing"

	"imdist/internal/analysis/analysistest"
	"imdist/internal/analysis/taintlen"
)

// TestTaintlen proves decoded lengths fire at make/index/slice/CopyN sinks,
// that comparisons sanitize, and that taint crosses in-package helper
// returns via the summaries (the fixture spans two files).
func TestTaintlen(t *testing.T) {
	analysistest.Run(t, taintlen.Analyzer, "taintlen")
}

// TestTaintlenScopeGate proves the analyzer is silent outside sketchio and
// packages without the //imvet:hostileinput directive.
func TestTaintlenScopeGate(t *testing.T) {
	analysistest.Run(t, taintlen.Analyzer, "taintlenoff")
}

// TestTaintlenAllow proves //imvet:allow taintlen suppresses a documented
// exception while an unannotated line still fires.
func TestTaintlenAllow(t *testing.T) {
	analysistest.Run(t, taintlen.Analyzer, "taintlenallow")
}
