// Package analysistest runs an imvet analyzer over a fixture package under
// internal/analysis/testdata/src and checks its diagnostics against
// x/tools-style `// want "regexp"` expectations in the fixture source.
//
// Fixtures live under testdata so the go tool keeps them out of every
// ./... build, test and vet walk — they exist to *violate* the contracts,
// and the imvet gate over the real tree must stay clean.
package analysistest

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"imdist/internal/analysis"
)

// Run loads testdata/src/<fixture> — the fixture package and any
// subpackages, so call-graph and lock-order tests can span files and
// packages — runs the analyzer over each, and reports any mismatch between
// produced diagnostics and `// want` expectations as test errors.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	RunTags(t, a, fixture)
}

// RunTags is Run with additional build tags applied while loading the
// fixture, for expectations that live in tag-gated files. A gated file is
// invisible (violations and wants both) unless its tag is given.
func RunTags(t *testing.T, a *analysis.Analyzer, fixture string, tags ...string) {
	t.Helper()
	dir := filepath.Join(testDataDir(t), "src", fixture)
	pkgs, err := analysis.LoadTags(dir, tags, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: loaded no packages", fixture)
	}
	var expects []*expectation
	var found []foundDiag
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on fixture %s: %v", a.Name, fixture, err)
		}
		expects = append(expects, parseExpectations(t, pkg)...)
		for _, d := range diags {
			found = append(found, foundDiag{posn: pkg.Fset.Position(d.Pos).String(), d: d,
				file: pkg.Fset.Position(d.Pos).Filename, line: pkg.Fset.Position(d.Pos).Line})
		}
	}
	check(t, expects, found)
}

// expectation is one `// want` regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// foundDiag is one produced diagnostic with its resolved position.
type foundDiag struct {
	posn string
	file string
	line int
	d    analysis.Diagnostic
}

// check matches diagnostics against expectations one-to-one per line.
func check(t *testing.T, expects []*expectation, found []foundDiag) {
	t.Helper()
	for _, f := range found {
		matched := false
		for _, e := range expects {
			if e.met || e.file != f.file || e.line != f.line {
				continue
			}
			if e.re.MatchString(f.d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", f.posn, f.d.Analyzer, f.d.Message)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// wantRE extracts the `// want` marker; the string literals that follow are
// parsed with parseStrings.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// parseExpectations scans every fixture file's comments for want markers.
func parseExpectations(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				for _, lit := range parseStrings(t, posn.String(), m[1]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, lit, err)
					}
					expects = append(expects, &expectation{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return expects
}

// parseStrings reads a sequence of Go string literals (quoted or backquoted)
// from the text following a want marker.
func parseStrings(t *testing.T, posn, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", posn, s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", posn, s[:end+1], err)
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", posn, s)
			}
			lit = s[1 : 1+end]
			s = s[2+end:]
		default:
			t.Fatalf("%s: want arguments must be string literals, got: %s", posn, s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	return out
}

// testDataDir locates internal/analysis/testdata regardless of which
// analyzer package's test is running.
func testDataDir(t *testing.T) string {
	t.Helper()
	cmd := exec.Command("go", "list", "-f", "{{.Dir}}", "imdist/internal/analysis")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("locating internal/analysis: %v\n%s", err, stderr.String())
	}
	return filepath.Join(strings.TrimSpace(stdout.String()), "testdata")
}
