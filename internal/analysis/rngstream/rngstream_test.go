package rngstream_test

import (
	"testing"

	"imdist/internal/analysis/analysistest"
	"imdist/internal/analysis/rngstream"
)

// TestRngstream proves the analyzer flags sources captured by goroutine
// closures and parallel worker bodies and sources indexed by worker id,
// while accepting the per-index Splitter.Stream discipline.
func TestRngstream(t *testing.T) {
	analysistest.Run(t, rngstream.Analyzer, "rngstream")
}
