// Package rngstream implements the imvet analyzer that enforces the
// per-index rng stream discipline of the parallel sampling engines.
//
// Every parallel code path in imdist derives randomness per work *index*
// (rng.Splitter.Stream(i)), never per worker or per goroutine: that is what
// makes output independent of scheduling and worker count. A rng.Source (or
// *math/rand.Rand) captured by a goroutine closure is shared mutable state —
// a data race and a determinism break at once; a source indexed by the worker
// id is schedule-dependent even when race-free. rngstream flags both.
package rngstream

import (
	"go/ast"
	"go/types"

	"imdist/internal/analysis"
	"imdist/internal/analysis/dataflow"
)

const (
	rngPath      = "imdist/internal/rng"
	parallelPath = "imdist/internal/parallel"
)

// Analyzer is the rngstream pass.
var Analyzer = &analysis.Analyzer{
	Name: "rngstream",
	Doc: "flag rng.Source/*rand.Rand values captured by goroutine closures or parallel worker " +
		"bodies, and sources indexed by worker id; derive per-index streams from rng.Splitter",
	Run: run,
}

func run(pass *analysis.Pass) error {
	dataflow.PackageInfo(pass).Inspect(func(_ *dataflow.Func, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				checkClosure(pass, lit, "goroutine closure")
			}
		case *ast.CallExpr:
			if isParallelFor(pass.TypesInfo, n) {
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkClosure(pass, lit, "parallel worker body")
						checkWorkerIndexed(pass, lit)
					}
				}
			}
		}
		return true
	})
	return nil
}

// isParallelFor reports whether call invokes parallel.For or
// parallel.ForCost, the fan-out primitives whose bodies run concurrently.
func isParallelFor(info *types.Info, call *ast.CallExpr) bool {
	return analysis.IsPkgFunc(info, call, parallelPath, "For") ||
		analysis.IsPkgFunc(info, call, parallelPath, "ForCost")
}

// checkClosure reports any source-typed identifier or selector inside lit
// whose root object is declared outside it: a captured generator is shared
// mutable state across concurrently running body invocations.
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, what string) {
	reported := map[types.Object]bool{}
	// Field and method names (the .Sel of a selector) are handled through
	// the SelectorExpr case, which knows the chain's root; skip them in the
	// bare-identifier case so e.src is reported once, not twice.
	selNames := map[*ast.Ident]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selNames[sel.Sel] = true
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal's own locals are still "inside" the outer
			// capture check by position, so keep walking.
			return true
		case *ast.Ident:
			if selNames[n] {
				return true
			}
			obj := pass.TypesInfo.Uses[n]
			if obj == nil || reported[obj] || !capturedOutside(lit, obj) {
				return true
			}
			if isSourceType(obj.Type()) {
				reported[obj] = true
				pass.Reportf(n.Pos(), "rng source %s is captured by %s and shared across concurrent invocations; derive a per-index stream with rng.Splitter.Stream(index) inside the body", n.Name, what)
			}
		case *ast.SelectorExpr:
			t := pass.TypesInfo.Types[n].Type
			if t == nil || !isSourceType(t) {
				return true
			}
			root := dataflow.RootIdent(n)
			if root == nil {
				return true
			}
			obj := pass.TypesInfo.Uses[root]
			if obj == nil || reported[obj] || !capturedOutside(lit, obj) {
				return true
			}
			reported[obj] = true
			pass.Reportf(n.Pos(), "rng source %s reaches into state captured by %s; derive a per-index stream with rng.Splitter.Stream(index) inside the body", dataflow.ExprString(n), what)
		}
		return true
	})
}

// checkWorkerIndexed flags srcs[worker]-style expressions inside a parallel
// body: even a race-free per-worker source makes the consumed random
// sequence depend on which worker ran which index, breaking byte-identical
// answers across schedules.
func checkWorkerIndexed(pass *analysis.Pass, lit *ast.FuncLit) {
	params := lit.Type.Params
	if params == nil || params.NumFields() == 0 || len(params.List[0].Names) == 0 {
		return
	}
	workerIdent := params.List[0].Names[0]
	worker := pass.TypesInfo.Defs[workerIdent]
	if worker == nil {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(idx.Index).(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != worker {
			return true
		}
		t := pass.TypesInfo.Types[idx].Type
		if t != nil && isSourceType(t) {
			pass.Reportf(idx.Pos(), "rng source indexed by worker id %s: the random sequence then depends on work scheduling; index by the work index via rng.Splitter.Stream instead", id.Name)
		}
		return true
	})
}

// capturedOutside reports whether obj is declared outside lit (and is a
// variable — package-level funcs and types are not captures).
func capturedOutside(lit *ast.FuncLit, obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// isSourceType reports whether t is one of the generator types whose
// sharing rngstream polices: imdist's rng.Source interface (or any named
// type implementing it is deliberately NOT matched — interfaces appear at
// the use sites that matter) and math/rand's generators.
func isSourceType(t types.Type) bool {
	if analysis.TypeName(t, rngPath, "Source") ||
		analysis.TypeName(t, "math/rand", "Rand") ||
		analysis.TypeName(t, "math/rand", "Source") ||
		analysis.TypeName(t, "math/rand/v2", "Rand") ||
		analysis.TypeName(t, "math/rand/v2", "Source") {
		return true
	}
	// Concrete imdist generators (MT19937, Xoshiro) count too: they are the
	// values a captured rng.Source variable actually holds.
	if analysis.TypeName(t, rngPath, "MT19937") || analysis.TypeName(t, rngPath, "Xoshiro") {
		return true
	}
	return false
}
