// Package rng provides the pseudorandom number generators used throughout
// imdist.
//
// The paper (Section 4.1) draws all random numbers from the Mersenne Twister;
// this package provides a faithful MT19937 implementation together with the
// much faster xoshiro256** generator and a splitmix64 seeder. Every algorithm
// run receives its own Source so that trials are independent and experiments
// are reproducible from a single master seed.
package rng

import "math"

// Source is the minimal interface the influence-maximization code needs from
// a pseudorandom number generator. Implementations are not safe for
// concurrent use; clone one Source per goroutine with New or Split.
type Source interface {
	// Uint64 returns a uniformly distributed 64-bit value.
	Uint64() uint64
	// Float64 returns a uniformly distributed value in [0, 1).
	Float64() float64
	// Intn returns a uniformly distributed value in [0, n). It panics if
	// n <= 0.
	Intn(n int) int
	// Seed reinitializes the generator state from the given seed.
	Seed(seed uint64)
}

// Algorithm identifies a concrete generator implementation.
type Algorithm int

const (
	// MersenneTwister selects the 64-bit Mersenne Twister (MT19937-64),
	// matching the generator family used in the paper's C++ implementation.
	MersenneTwister Algorithm = iota
	// Xoshiro selects xoshiro256**, a small, fast, high-quality generator
	// suitable for the bulk sampling done by the estimators.
	Xoshiro
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case MersenneTwister:
		return "mt19937-64"
	case Xoshiro:
		return "xoshiro256**"
	default:
		return "unknown"
	}
}

// New returns a freshly seeded Source of the requested algorithm.
func New(a Algorithm, seed uint64) Source {
	switch a {
	case MersenneTwister:
		return NewMT19937(seed)
	default:
		return NewXoshiro(seed)
	}
}

// Split derives an independent child Source from a parent seed and a stream
// index. It is the mechanism experiments use to give every trial its own
// generator while remaining reproducible from one master seed.
func Split(a Algorithm, masterSeed uint64, stream uint64) Source {
	// Mix the stream index into the seed with splitmix64 so that adjacent
	// streams do not produce correlated sequences.
	s := splitmix64(masterSeed ^ (0x9e3779b97f4a7c15 * (stream + 1)))
	return New(a, s)
}

// Splitter deterministically derives an unbounded family of independent child
// Sources from a single base seed. It is the splittable-seed mechanism behind
// the parallel sampling engines: the base is drawn once (sequentially) from a
// parent Source, after which Stream(i) can be called for any index from any
// goroutine — a Splitter is immutable and therefore safe for concurrent use,
// unlike the Sources it produces.
type Splitter struct {
	algorithm Algorithm
	base      uint64
}

// NewSplitter returns a Splitter producing children of the given algorithm
// from the given base seed.
func NewSplitter(a Algorithm, base uint64) Splitter {
	return Splitter{algorithm: a, base: base}
}

// SplitterFrom draws a base seed from src (advancing it by one Uint64) and
// returns the Splitter rooted at it. This is how a sampling engine converts
// its single configured Source into per-sample streams while staying
// reproducible: the one sequential draw pins the whole family.
func SplitterFrom(a Algorithm, src Source) Splitter {
	return NewSplitter(a, src.Uint64())
}

// Stream returns the i-th child Source. Equal (base, i) pairs always yield
// identical streams; distinct indices yield independent ones.
func (s Splitter) Stream(i uint64) Source {
	return Split(s.algorithm, s.base, i)
}

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used both as a seeder and as a mixer for stream derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64FromUint64 converts a 64-bit random value to a float64 in [0, 1)
// using the top 53 bits, which yields a uniform dyadic rational.
func float64FromUint64(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}

// intnFromUint64 maps a random 64-bit value to [0, n) with negligible bias
// for the n used here (n < 2^32 in all workloads).
func intnFromUint64(u uint64, n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's multiply-shift reduction.
	hi, _ := mul64(u, uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32

	t := aLo * bLo
	w0 := t & mask32
	k := t >> 32

	t = aHi*bLo + k
	w1 := t & mask32
	w2 := t >> 32

	t = aLo*bHi + w1
	k = t >> 32

	hi = aHi*bHi + w2 + k
	lo = (t << 32) | w0
	return hi, lo
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the Box–Muller transform on the given source. It is a
// helper for generators and tests, not part of the hot path.
func NormFloat64(s Source) float64 {
	for {
		u1 := s.Float64()
		u2 := s.Float64()
		if u1 <= 1e-300 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}
