package rng

// MT19937 implements the 64-bit Mersenne Twister (MT19937-64) of Matsumoto
// and Nishimura, the pseudorandom number generator the paper's reference
// implementation uses. The generator has period 2^19937−1 and equidistribution
// in 311 dimensions at 64-bit accuracy.
type MT19937 struct {
	state [nn]uint64
	index int
}

const (
	nn        = 312
	mm        = 156
	matrixA   = 0xB5026F5AA96619E9
	upperMask = 0xFFFFFFFF80000000
	lowerMask = 0x7FFFFFFF
)

// NewMT19937 returns a Mersenne Twister seeded with seed.
func NewMT19937(seed uint64) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed reinitializes the generator state from the given seed, following the
// reference initialization of MT19937-64.
func (m *MT19937) Seed(seed uint64) {
	m.state[0] = seed
	for i := uint64(1); i < nn; i++ {
		m.state[i] = 6364136223846793005*(m.state[i-1]^(m.state[i-1]>>62)) + i
	}
	m.index = nn
}

// Uint64 returns the next 64-bit output of the generator.
func (m *MT19937) Uint64() uint64 {
	if m.index >= nn {
		m.generate()
	}
	x := m.state[m.index]
	m.index++

	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}

// generate refills the state array with the next nn untempered words.
func (m *MT19937) generate() {
	var mag01 = [2]uint64{0, matrixA}
	var i int
	for i = 0; i < nn-mm; i++ {
		x := (m.state[i] & upperMask) | (m.state[i+1] & lowerMask)
		m.state[i] = m.state[i+mm] ^ (x >> 1) ^ mag01[x&1]
	}
	for ; i < nn-1; i++ {
		x := (m.state[i] & upperMask) | (m.state[i+1] & lowerMask)
		m.state[i] = m.state[i+mm-nn] ^ (x >> 1) ^ mag01[x&1]
	}
	x := (m.state[nn-1] & upperMask) | (m.state[0] & lowerMask)
	m.state[nn-1] = m.state[mm-1] ^ (x >> 1) ^ mag01[x&1]
	m.index = 0
}

// Float64 returns a uniformly distributed value in [0, 1).
func (m *MT19937) Float64() float64 { return float64FromUint64(m.Uint64()) }

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (m *MT19937) Intn(n int) int { return intnFromUint64(m.Uint64(), n) }
