package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMT19937Reproducible(t *testing.T) {
	a := NewMT19937(42)
	b := NewMT19937(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: generators with equal seeds diverged: %d vs %d", i, got, want)
		}
	}
}

func TestMT19937KnownValues(t *testing.T) {
	// Reference outputs of MT19937-64 seeded with 5489 (the canonical default
	// seed of the reference implementation).
	m := NewMT19937(5489)
	want := []uint64{
		14514284786278117030,
		4620546740167642908,
		13109570281517897720,
		17462938647148434322,
		355488278567739596,
	}
	for i, w := range want {
		if got := m.Uint64(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

func TestXoshiroReproducible(t *testing.T) {
	a := NewXoshiro(7)
	b := NewXoshiro(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("step %d: xoshiro with equal seeds diverged", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	for _, alg := range []Algorithm{MersenneTwister, Xoshiro} {
		a := New(alg, 1)
		b := New(alg, 2)
		same := 0
		for i := 0; i < 100; i++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		if same > 2 {
			t.Errorf("%v: %d/100 identical outputs for different seeds", alg, same)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	for _, alg := range []Algorithm{MersenneTwister, Xoshiro} {
		s := New(alg, 99)
		for i := 0; i < 10000; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				t.Fatalf("%v: Float64 out of range: %v", alg, f)
			}
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	for _, alg := range []Algorithm{MersenneTwister, Xoshiro} {
		s := New(alg, 123)
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.Float64()
		}
		mean := sum / n
		if math.Abs(mean-0.5) > 0.01 {
			t.Errorf("%v: mean of uniforms = %v, want approx 0.5", alg, mean)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := NewXoshiro(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(10): value %d drawn %d times of 100000, expected near 10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewXoshiro(1).Intn(0)
}

func TestSplitStreamsIndependent(t *testing.T) {
	a := Split(Xoshiro, 42, 0)
	b := Split(Xoshiro, 42, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams share %d/1000 outputs", same)
	}
}

func TestSplitReproducible(t *testing.T) {
	a := Split(MersenneTwister, 11, 3)
	b := Split(MersenneTwister, 11, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split with equal parameters is not reproducible")
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if MersenneTwister.String() != "mt19937-64" {
		t.Errorf("MersenneTwister.String() = %q", MersenneTwister.String())
	}
	if Xoshiro.String() != "xoshiro256**" {
		t.Errorf("Xoshiro.String() = %q", Xoshiro.String())
	}
	if Algorithm(99).String() != "unknown" {
		t.Errorf("unknown algorithm String() = %q", Algorithm(99).String())
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit decomposition independently computed with math/bits-free arithmetic.
		wantLo := a * b
		if lo != wantLo {
			return false
		}
		// Cross-check hi using float approximation only for magnitude sanity.
		approx := float64(a) * float64(b) / math.Pow(2, 64)
		return math.Abs(float64(hi)-approx) <= approx*1e-9+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnFromUint64Bounds(t *testing.T) {
	f := func(u uint64, n uint16) bool {
		nn := int(n%1000) + 1
		v := intnFromUint64(u, nn)
		return v >= 0 && v < nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewXoshiro(2024)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := NormFloat64(s)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want approx 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want approx 1", variance)
	}
}

func BenchmarkMT19937Uint64(b *testing.B) {
	s := NewMT19937(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	s := NewXoshiro(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func TestSplitterMatchesSplit(t *testing.T) {
	sp := NewSplitter(Xoshiro, 42)
	for _, i := range []uint64{0, 1, 2, 1000} {
		a := sp.Stream(i)
		b := Split(Xoshiro, 42, i)
		for j := 0; j < 16; j++ {
			if av, bv := a.Uint64(), b.Uint64(); av != bv {
				t.Fatalf("stream %d draw %d: Splitter %d != Split %d", i, j, av, bv)
			}
		}
	}
}

func TestSplitterFromAdvancesParentOnce(t *testing.T) {
	parent := NewXoshiro(7)
	want := NewXoshiro(7)
	_ = SplitterFrom(Xoshiro, parent)
	want.Uint64()
	if parent.Uint64() != want.Uint64() {
		t.Fatal("SplitterFrom must consume exactly one Uint64 from the parent")
	}
}

func TestSplitterConcurrentUse(t *testing.T) {
	sp := NewSplitter(Xoshiro, 99)
	ref := make([]uint64, 64)
	for i := range ref {
		ref[i] = sp.Stream(uint64(i)).Uint64()
	}
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func() {
			ok := true
			for i := range ref {
				if sp.Stream(uint64(i)).Uint64() != ref[i] {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 4; g++ {
		if !<-done {
			t.Fatal("concurrent Stream draws diverged from serial reference")
		}
	}
}
