package rng

// Xoshiro256 implements the xoshiro256** 1.0 generator of Blackman and Vigna.
// It is substantially faster than the Mersenne Twister and passes stringent
// statistical test batteries; the estimators use it by default for bulk
// sampling while the Mersenne Twister remains available for strict fidelity
// to the paper's setup.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro returns a xoshiro256** generator seeded with seed.
func NewXoshiro(seed uint64) *Xoshiro256 {
	x := &Xoshiro256{}
	x.Seed(seed)
	return x
}

// Seed reinitializes the generator state from the given seed by running
// splitmix64, as recommended by the generator's authors.
func (x *Xoshiro256) Seed(seed uint64) {
	s := seed
	for i := 0; i < 4; i++ {
		s = splitmix64(s)
		x.s[i] = s
	}
	// A state of all zeros is invalid; splitmix64 of any seed cannot yield
	// four zero outputs in a row, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64-bit output of the generator.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9

	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)

	return result
}

func rotl(v uint64, k uint) uint64 { return (v << k) | (v >> (64 - k)) }

// Float64 returns a uniformly distributed value in [0, 1).
func (x *Xoshiro256) Float64() float64 { return float64FromUint64(x.Uint64()) }

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int { return intnFromUint64(x.Uint64(), n) }
