package experiment

import (
	"fmt"
	"io"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/estimator"
	"imdist/internal/stats"
	"imdist/internal/workload"
)

// instance is one workload cell: a dataset, an edge-probability model and a
// seed size.
type instance struct {
	Dataset data.Dataset
	Model   workload.Model
	K       int
}

func (c instance) String() string {
	return fmt.Sprintf("%s (%s, k=%d)", c.Dataset, c.Model, c.K)
}

// levelsFor returns the geometric sample-number sweep for an approach under
// the given scale: Oneshot and Snapshot sweep to 2^MaxExpSim, RIS to
// 2^MaxExpRIS (the paper's 2^16 vs 2^24 asymmetry).
func levelsFor(s Scale, a estimator.Approach) []int {
	if a == estimator.RIS {
		return stats.GeometricLevels(s.MaxExpRIS)
	}
	return stats.GeometricLevels(s.MaxExpSim)
}

// trialsFor returns the trial count for a dataset: the paper runs 1,000
// trials on small instances and 20 on the ⋆-marked large ones.
func trialsFor(s Scale, ds data.Dataset) int {
	for _, info := range data.Catalog() {
		if info.Name == ds && (info.Scaled || info.PaperN > 100000) {
			return s.TrialsLarge
		}
	}
	return s.Trials
}

// sweep runs the full sample-number sweep of one approach on one instance,
// reusing the environment's cached graph and oracle.
func (e *Env) sweep(inst instance, a estimator.Approach) ([]*core.Distribution, error) {
	ig, err := e.InfluenceGraph(inst.Dataset, inst.Model)
	if err != nil {
		return nil, err
	}
	oracle, err := e.Oracle(inst.Dataset, inst.Model)
	if err != nil {
		return nil, err
	}
	base := core.RunConfig{
		Graph:      ig,
		Approach:   a,
		SeedSize:   inst.K,
		Trials:     trialsFor(e.Scale, inst.Dataset),
		MasterSeed: e.MasterSeed ^ uint64(a+1)<<32 ^ uint64(inst.K)<<40,
		Oracle:     oracle,
		Workers:    e.Workers,
	}
	return core.Sweep(base, levelsFor(e.Scale, a))
}

// referenceInfluence returns the "Exact Greedy" reference influence of an
// instance: the oracle influence of the greedy solution computed directly on
// the oracle's RR sets (Section 5.2 uses the unique converged seed set; the
// oracle-greedy solution is its natural stand-in at reduced scale).
func (e *Env) referenceInfluence(inst instance) (float64, error) {
	oracle, err := e.Oracle(inst.Dataset, inst.Model)
	if err != nil {
		return 0, err
	}
	seeds := oracle.GreedySeeds(inst.K)
	return oracle.Influence(seeds)
}

// simApproaches lists Oneshot and Snapshot (the approaches whose sweep tops
// out at 2^MaxExpSim).
func simApproaches() []estimator.Approach {
	return []estimator.Approach{estimator.Oneshot, estimator.Snapshot}
}

// allApproaches lists the three approaches in paper order.
func allApproaches() []estimator.Approach {
	return []estimator.Approach{estimator.Oneshot, estimator.Snapshot, estimator.RIS}
}

// printf writes formatted output, propagating the first error through the
// experiment's return value.
func printf(w io.Writer, format string, args ...any) error {
	_, err := fmt.Fprintf(w, format, args...)
	return err
}

// fmtRatio renders a comparable ratio the way the paper's tables do: numbers
// below 1 keep decimals, larger ones are rounded.
func fmtRatio(r float64) string {
	if r < 1 {
		return fmt.Sprintf("%.3g", r)
	}
	if r < 10 {
		return fmt.Sprintf("%.1f", r)
	}
	return fmt.Sprintf("%.0f", r)
}

// fmtMissing renders a value that may be absent (the paper prints "–").
func fmtMissing(ok bool, format string, v float64) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

// standardModelsFor trims the probability-model list on the unit preset so
// unit experiments stay fast while small/paper cover all four settings.
func standardModelsFor(s Scale) []workload.Model {
	if s.Preset == Unit {
		return []workload.Model{workload.UC01, workload.IWC}
	}
	return workload.StandardModels()
}

// seedSizesFor returns the seed sizes exercised by the distribution
// experiments at the given preset (the paper uses 1, 4, 16, 64, 1024).
func seedSizesFor(s Scale) []int {
	switch s.Preset {
	case Unit:
		return []int{1, 4}
	case Small:
		return []int{1, 4, 16}
	default:
		return []int{1, 4, 16, 64}
	}
}

// smallDistributionDatasets returns the datasets used by the solution-
// distribution experiments (Tables 5–7, Figures 1–8) at the given preset.
func smallDistributionDatasets(s Scale) []data.Dataset {
	switch s.Preset {
	case Unit:
		// The full greedy scan of Oneshot costs n·β per estimate pass, so the
		// unit preset restricts distribution sweeps to the 34-vertex Karate
		// network; RIS-only figures still use the BA networks.
		return []data.Dataset{data.KarateSet}
	case Small:
		return []data.Dataset{data.KarateSet, data.Physicians, data.BASparse, data.BADense}
	default:
		return []data.Dataset{data.KarateSet, data.Physicians, data.CaGrQc, data.WikiVote, data.BASparse, data.BADense}
	}
}

// traversalDatasets returns the datasets used by the traversal-cost
// experiments (Tables 8 and 9) at the given preset.
func traversalDatasets(s Scale) []data.Dataset {
	switch s.Preset {
	case Unit:
		return []data.Dataset{data.KarateSet, data.BASparse, data.BADense}
	case Small:
		return []data.Dataset{data.KarateSet, data.Physicians, data.CaGrQc, data.BASparse, data.BADense}
	default:
		return data.Names()
	}
}

// statsDatasets returns the datasets whose Table-3 statistics are printed at
// the given preset.
func statsDatasets(s Scale) []data.Dataset {
	switch s.Preset {
	case Unit:
		return []data.Dataset{data.KarateSet, data.BASparse, data.BADense}
	case Small:
		return []data.Dataset{data.KarateSet, data.Physicians, data.CaGrQc, data.WikiVote, data.BASparse, data.BADense}
	default:
		return data.Names()
	}
}

// boxDataset returns the (dataset, k) used by Figure 4's box plots at the
// given preset: the paper uses Physicians (uc0.1, k=16); the unit preset
// downsizes to Karate k=4.
func boxDataset(s Scale) instance {
	if s.Preset == Unit {
		return instance{Dataset: data.KarateSet, Model: workload.UC01, K: 4}
	}
	return instance{Dataset: data.Physicians, Model: workload.UC01, K: 16}
}

// grqcDataset returns the dataset used by Figure 5: ca-GrQc in the paper,
// BA_d on the unit preset (both exhibit the uc0.1 giant-component effect).
func grqcDataset(s Scale) data.Dataset {
	if s.Preset == Unit {
		return data.BADense
	}
	return data.CaGrQc
}
