package experiment

import (
	"io"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/estimator"
	"imdist/internal/exact"
	"imdist/internal/graph"
	"imdist/internal/greedy"
	"imdist/internal/heuristics"
	"imdist/internal/rng"
	"imdist/internal/workload"
)

// printEntropySeries prints one entropy-decay series (one line per sample
// number) labelled with the instance and approach.
func printEntropySeries(w io.Writer, label string, a estimator.Approach, curve []core.EntropyPoint) error {
	for _, p := range curve {
		if err := printf(w, "%-32s %-9s %10d %8.3f %6d\n",
			label, a, p.SampleNumber, p.Entropy, p.Distinct); err != nil {
			return err
		}
	}
	return nil
}

// runFig1 reproduces Figure 1: the entropy of the seed-set distribution on
// Karate (uc0.1) as the sample number grows, for each approach and seed size.
func runFig1(w io.Writer, env *Env) error {
	if err := printf(w, "%-32s %-9s %10s %8s %6s\n", "instance", "algorithm", "samples", "entropy", "sets"); err != nil {
		return err
	}
	for _, k := range seedSizesFor(env.Scale) {
		inst := instance{Dataset: data.KarateSet, Model: workload.UC01, K: k}
		for _, a := range allApproaches() {
			sweep, err := env.sweep(inst, a)
			if err != nil {
				return err
			}
			if err := printEntropySeries(w, inst.String(), a, core.EntropyCurve(sweep)); err != nil {
				return err
			}
		}
	}
	return nil
}

// runFig2 reproduces Figure 2: instances whose entropy plateaus because two
// seed sets have almost the same influence (Karate iwc k=4, Physicians iwc
// k=1; the unit preset keeps only the Karate instance).
func runFig2(w io.Writer, env *Env) error {
	if err := printf(w, "%-32s %-9s %10s %8s %6s\n", "instance", "algorithm", "samples", "entropy", "sets"); err != nil {
		return err
	}
	instances := []instance{{Dataset: data.KarateSet, Model: workload.IWC, K: 4}}
	if env.Scale.Preset != Unit {
		instances = append(instances, instance{Dataset: data.Physicians, Model: workload.IWC, K: 1})
	}
	for _, inst := range instances {
		for _, a := range allApproaches() {
			sweep, err := env.sweep(inst, a)
			if err != nil {
				return err
			}
			if err := printEntropySeries(w, inst.String(), a, core.EntropyCurve(sweep)); err != nil {
				return err
			}
		}
	}
	return nil
}

// runFig3 reproduces Figure 3: the entropy decay of RIS on the two
// Barabási–Albert networks for each edge-probability setting; iwc decays the
// fastest because the top vertex's influence margin is the largest (Table 4).
func runFig3(w io.Writer, env *Env) error {
	if err := printf(w, "%-32s %-9s %10s %8s %6s\n", "instance", "algorithm", "samples", "entropy", "sets"); err != nil {
		return err
	}
	for _, ds := range []data.Dataset{data.BASparse, data.BADense} {
		for _, m := range workload.StandardModels() {
			inst := instance{Dataset: ds, Model: m, K: 1}
			sweep, err := env.sweep(inst, estimator.RIS)
			if err != nil {
				return err
			}
			if err := printEntropySeries(w, inst.String(), estimator.RIS, core.EntropyCurve(sweep)); err != nil {
				return err
			}
		}
	}
	return nil
}

// printInfluenceSeries prints one influence-distribution series: for each
// sample number, the notched-box-plot summary the paper plots in Figure 4.
func printInfluenceSeries(w io.Writer, label string, a estimator.Approach, curve []core.InfluencePoint) error {
	for _, p := range curve {
		b := p.Box
		if err := printf(w, "%-32s %-9s %10d %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			label, a, p.SampleNumber, b.Mean, b.Percentile1, b.Median, b.Percentile99, b.StdDev); err != nil {
			return err
		}
	}
	return nil
}

func influenceHeader(w io.Writer) error {
	return printf(w, "%-32s %-9s %10s %10s %10s %10s %10s %10s\n",
		"instance", "algorithm", "samples", "mean", "p1", "median", "p99", "stddev")
}

// runFig4 reproduces Figure 4: influence distributions as notched box plots
// for the three approaches on Physicians (uc0.1, k=16) (Karate k=4 on the
// unit preset).
func runFig4(w io.Writer, env *Env) error {
	if err := influenceHeader(w); err != nil {
		return err
	}
	inst := boxDataset(env.Scale)
	for _, a := range allApproaches() {
		sweep, err := env.sweep(inst, a)
		if err != nil {
			return err
		}
		if err := printInfluenceSeries(w, inst.String(), a, core.InfluenceCurve(sweep)); err != nil {
			return err
		}
	}
	return nil
}

// runFig5 reproduces Figure 5: RIS influence distributions on ca-GrQc (k=1)
// under uc0.1 (quick convergence driven by the giant component) and owc
// (slow improvement because all vertices are similarly influential).
func runFig5(w io.Writer, env *Env) error {
	if err := influenceHeader(w); err != nil {
		return err
	}
	ds := grqcDataset(env.Scale)
	for _, m := range []workload.Model{workload.UC01, workload.OWC} {
		inst := instance{Dataset: ds, Model: m, K: 1}
		sweep, err := env.sweep(inst, estimator.RIS)
		if err != nil {
			return err
		}
		if err := printInfluenceSeries(w, inst.String(), estimator.RIS, core.InfluenceCurve(sweep)); err != nil {
			return err
		}
	}
	return nil
}

// runFig6 reproduces Figure 6: the relation between the mean influence and
// the standard deviation / 1st percentile is nearly independent of the
// approach, which justifies comparing approaches by the mean alone.
func runFig6(w io.Writer, env *Env) error {
	if err := printf(w, "%-32s %-9s %10s %10s %10s %10s\n",
		"instance", "algorithm", "samples", "mean", "stddev", "p1"); err != nil {
		return err
	}
	var instances []instance
	if env.Scale.Preset == Unit {
		instances = []instance{
			{Dataset: data.KarateSet, Model: workload.OWC, K: 4},
			{Dataset: data.KarateSet, Model: workload.UC01, K: 4},
		}
	} else {
		instances = []instance{
			{Dataset: data.Physicians, Model: workload.OWC, K: 4},
			{Dataset: data.Physicians, Model: workload.UC01, K: 16},
		}
	}
	for _, inst := range instances {
		for _, a := range allApproaches() {
			sweep, err := env.sweep(inst, a)
			if err != nil {
				return err
			}
			for _, p := range core.InfluenceCurve(sweep) {
				if err := printf(w, "%-32s %-9s %10d %10.3f %10.4f %10.3f\n",
					inst.String(), a, p.SampleNumber, p.Box.Mean, p.Box.StdDev, p.Box.Percentile1); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// runFig7 reproduces Figure 7: the comparable number ratio β/τ of Oneshot to
// Snapshot as a function of Snapshot's sample number τ, for several seed
// sizes.
func runFig7(w io.Writer, env *Env) error {
	if err := printf(w, "%-32s %3s %10s %12s %12s\n",
		"instance", "k", "tau", "comparable", "ratio"); err != nil {
		return err
	}
	models := []workload.Model{workload.UC001, workload.IWC}
	ds := data.Physicians
	if env.Scale.Preset == Unit {
		ds = data.KarateSet
	}
	for _, m := range models {
		for _, k := range seedSizesFor(env.Scale) {
			inst := instance{Dataset: ds, Model: m, K: k}
			snapshotSweep, err := env.sweep(inst, estimator.Snapshot)
			if err != nil {
				return err
			}
			oneshotSweep, err := env.sweep(inst, estimator.Oneshot)
			if err != nil {
				return err
			}
			points, err := core.ComparableRatios(snapshotSweep, oneshotSweep)
			if err != nil {
				return err
			}
			for _, p := range points {
				if !p.Found {
					continue
				}
				if err := printf(w, "%-32s %3d %10d %12d %12s\n",
					inst.String(), k, p.ReferenceSample, p.ComparableSample, fmtRatio(p.NumberRatio)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// runFig8 reproduces Figure 8: the comparable size ratio of RIS to Snapshot
// as a function of Snapshot's sample size τ·m̃.
func runFig8(w io.Writer, env *Env) error {
	if err := printf(w, "%-32s %3s %14s %14s %12s %12s\n",
		"instance", "k", "tau", "snap size", "number ratio", "size ratio"); err != nil {
		return err
	}
	models := []workload.Model{workload.UC001, workload.IWC}
	ds := data.Physicians
	if env.Scale.Preset == Unit {
		ds = data.KarateSet
	}
	for _, m := range models {
		for _, k := range seedSizesFor(env.Scale) {
			inst := instance{Dataset: ds, Model: m, K: k}
			snapshotSweep, err := env.sweep(inst, estimator.Snapshot)
			if err != nil {
				return err
			}
			risSweep, err := env.sweep(inst, estimator.RIS)
			if err != nil {
				return err
			}
			points, err := core.ComparableRatios(snapshotSweep, risSweep)
			if err != nil {
				return err
			}
			for i, p := range points {
				if !p.Found {
					continue
				}
				snapSize := snapshotSweep[i].MeanCost().SampleSize()
				if err := printf(w, "%-32s %3d %14d %14.0f %12s %12s\n",
					inst.String(), k, p.ReferenceSample, snapSize,
					fmtRatio(p.NumberRatio), fmtRatio(p.SizeRatio)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// runExactCheck cross-validates the three estimators and the oracle against
// exact influence computation on a tiny instance (a validation experiment,
// not a paper artefact).
func runExactCheck(w io.Writer, env *Env) error {
	// A small diamond-plus-tail graph with 6 vertices and 7 edges.
	b := graph.NewBuilder(6)
	edges := [][2]graph.VertexID{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {1, 5}}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return 0.4 })
	if err != nil {
		return err
	}
	want, err := exact.Influence(ig, []graph.VertexID{0})
	if err != nil {
		return err
	}
	if err := printf(w, "exact Inf({0}) = %.6f\n", want); err != nil {
		return err
	}
	samples := map[estimator.Approach]int{
		estimator.Oneshot:  20000,
		estimator.Snapshot: 20000,
		estimator.RIS:      200000,
	}
	if env.Scale.Preset == Unit {
		samples = map[estimator.Approach]int{
			estimator.Oneshot:  4000,
			estimator.Snapshot: 4000,
			estimator.RIS:      40000,
		}
	}
	for _, a := range allApproaches() {
		est, err := estimator.New(a, estimator.Config{
			Graph:        ig,
			SampleNumber: samples[a],
			Source:       rng.Split(rng.Xoshiro, env.MasterSeed, uint64(a)+101),
			Workers:      env.Workers,
		})
		if err != nil {
			return err
		}
		got := est.Estimate(0)
		if err := printf(w, "%-9s estimate = %.6f (error %+.4f)\n", a, got, got-want); err != nil {
			return err
		}
	}
	oracle, err := core.NewOracleParallel(ig, diffusion.IC, samples[estimator.RIS], env.Workers, rng.Split(rng.Xoshiro, env.MasterSeed, 202))
	if err != nil {
		return err
	}
	got, err := oracle.Influence([]graph.VertexID{0})
	if err != nil {
		return err
	}
	return printf(w, "%-9s estimate = %.6f (error %+.4f)\n", "oracle", got, got-want)
}

// runHeuristics compares the Section 3.6 heuristics against the three
// sampling approaches on Karate (iwc, k=4), reporting oracle influence.
func runHeuristics(w io.Writer, env *Env) error {
	inst := instance{Dataset: data.KarateSet, Model: workload.IWC, K: 4}
	ig, err := env.InfluenceGraph(inst.Dataset, inst.Model)
	if err != nil {
		return err
	}
	oracle, err := env.Oracle(inst.Dataset, inst.Model)
	if err != nil {
		return err
	}
	if err := printf(w, "%-16s %12s  %s\n", "method", "influence", "seeds"); err != nil {
		return err
	}
	report := func(name string, seeds []graph.VertexID) error {
		inf, err := oracle.Influence(seeds)
		if err != nil {
			return err
		}
		return printf(w, "%-16s %12.3f  %v\n", name, inf, seeds)
	}
	// Heuristics.
	if seeds, err := heuristics.Degree(ig.Graph, inst.K); err == nil {
		if err := report("Degree", seeds); err != nil {
			return err
		}
	}
	if seeds, err := heuristics.SingleDiscount(ig.Graph, inst.K); err == nil {
		if err := report("SingleDiscount", seeds); err != nil {
			return err
		}
	}
	if seeds, err := heuristics.DegreeDiscount(ig, inst.K); err == nil {
		if err := report("DegreeDiscount", seeds); err != nil {
			return err
		}
	}
	if seeds, err := heuristics.PageRank(ig.Graph, inst.K, heuristics.PageRankOptions{}); err == nil {
		if err := report("PageRank", seeds); err != nil {
			return err
		}
	}
	// The three sampling approaches at a moderate sample number.
	sampleNumbers := map[estimator.Approach]int{
		estimator.Oneshot:  1 << env.Scale.MaxExpSim,
		estimator.Snapshot: 1 << env.Scale.MaxExpSim,
		estimator.RIS:      1 << env.Scale.MaxExpRIS,
	}
	for _, a := range allApproaches() {
		est, err := estimator.New(a, estimator.Config{
			Graph:        ig,
			SampleNumber: sampleNumbers[a],
			Source:       rng.Split(rng.Xoshiro, env.MasterSeed, uint64(a)+303),
			Workers:      env.Workers,
		})
		if err != nil {
			return err
		}
		seeds, err := greedy.Run(est, ig.NumVertices(), inst.K, rng.Split(rng.Xoshiro, env.MasterSeed, uint64(a)+404))
		if err != nil {
			return err
		}
		if err := report(a.String(), seeds); err != nil {
			return err
		}
	}
	// Oracle-greedy reference.
	return report("OracleGreedy", oracle.GreedySeeds(inst.K))
}
