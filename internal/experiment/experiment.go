// Package experiment provides the harness that regenerates every table and
// figure of the paper's evaluation section. Each experiment is identified by
// an ID (table3 … table9, fig1 … fig8), prints the same rows or series the
// paper reports, and scales its workload with a preset so that the same code
// path runs in seconds (unit), minutes (small) or at the paper's full scale
// (paper).
package experiment

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/workload"
)

// Preset selects the experiment scale.
type Preset string

const (
	// Unit is the CI-fast preset: few trials, small sample numbers, small
	// oracles; it exists so the whole harness is exercised by `go test`.
	Unit Preset = "unit"
	// Small is the default preset: hundreds of trials and sample numbers up
	// to 2^14 (Oneshot/Snapshot) / 2^18 (RIS); minutes of compute per
	// experiment.
	Small Preset = "small"
	// Paper is the paper's full protocol: T = 1,000 trials, sample numbers up
	// to 2^16 / 2^24 and a 10^7-RR-set oracle. Hours to days of compute.
	Paper Preset = "paper"
)

// ErrUnknownPreset reports an unrecognised preset name.
var ErrUnknownPreset = errors.New("experiment: unknown preset")

// ErrUnknownExperiment reports an unknown experiment ID.
var ErrUnknownExperiment = errors.New("experiment: unknown experiment")

// Scale holds the numeric knobs derived from a preset.
type Scale struct {
	Preset Preset
	// Trials is T for small instances; TrialsLarge is T for the ⋆-marked
	// large instances (the paper uses 1,000 and 20).
	Trials      int
	TrialsLarge int
	// MaxExpSim bounds the Oneshot/Snapshot sample-number sweep at 2^MaxExpSim.
	MaxExpSim int
	// MaxExpRIS bounds the RIS sample-number sweep at 2^MaxExpRIS.
	MaxExpRIS int
	// OracleSets is the number of RR sets backing the shared influence oracle.
	OracleSets int
	// DatasetScaleDivisor shrinks the web-scale surrogates (see data.Options).
	DatasetScaleDivisor int
}

// ScaleFor maps a preset to its knobs.
func ScaleFor(p Preset) (Scale, error) {
	switch p {
	case Unit:
		return Scale{
			Preset: Unit, Trials: 24, TrialsLarge: 6,
			MaxExpSim: 6, MaxExpRIS: 10,
			OracleSets: 20000, DatasetScaleDivisor: 512,
		}, nil
	case Small:
		return Scale{
			Preset: Small, Trials: 200, TrialsLarge: 20,
			MaxExpSim: 14, MaxExpRIS: 18,
			OracleSets: 200000, DatasetScaleDivisor: 64,
		}, nil
	case Paper:
		return Scale{
			Preset: Paper, Trials: 1000, TrialsLarge: 20,
			MaxExpSim: 16, MaxExpRIS: 24,
			OracleSets: 10_000_000, DatasetScaleDivisor: 1,
		}, nil
	default:
		return Scale{}, fmt.Errorf("%w: %q", ErrUnknownPreset, p)
	}
}

// Env carries the scale, the master seed and caches of influence graphs and
// oracles shared by experiments so that repeated experiments on the same
// workload do not rebuild them.
type Env struct {
	Scale      Scale
	MasterSeed uint64
	// Workers is the sampling parallelism forwarded to every estimator build
	// and oracle build the experiments perform (see estimator.Config.Workers).
	// 0 and 1 reproduce the serial harness; parallel runs are deterministic
	// for a fixed master seed but draw different random numbers than serial
	// ones, so published serial artefacts are only reproduced at Workers <= 1.
	Workers int

	graphs  map[string]*graph.InfluenceGraph
	oracles map[string]*core.Oracle
}

// NewEnv builds an environment for the given preset with the default master
// seed used throughout the reproduction.
func NewEnv(p Preset) (*Env, error) {
	s, err := ScaleFor(p)
	if err != nil {
		return nil, err
	}
	return &Env{
		Scale:      s,
		MasterSeed: 20200614,
		graphs:     make(map[string]*graph.InfluenceGraph),
		oracles:    make(map[string]*core.Oracle),
	}, nil
}

// InfluenceGraph returns the cached influence graph for (dataset, model),
// materializing it on first use.
func (e *Env) InfluenceGraph(ds data.Dataset, m workload.Model) (*graph.InfluenceGraph, error) {
	key := string(ds) + "/" + m.String()
	if ig, ok := e.graphs[key]; ok {
		return ig, nil
	}
	g, err := data.Load(ds, data.Options{Seed: e.MasterSeed, ScaleDivisor: e.Scale.DatasetScaleDivisor})
	if err != nil {
		return nil, err
	}
	ig, err := workload.Assign(g, m, rng.Split(rng.Xoshiro, e.MasterSeed, 7777))
	if err != nil {
		return nil, err
	}
	e.graphs[key] = ig
	return ig, nil
}

// Oracle returns the cached shared influence oracle for (dataset, model).
func (e *Env) Oracle(ds data.Dataset, m workload.Model) (*core.Oracle, error) {
	key := string(ds) + "/" + m.String()
	if o, ok := e.oracles[key]; ok {
		return o, nil
	}
	ig, err := e.InfluenceGraph(ds, m)
	if err != nil {
		return nil, err
	}
	sets := e.Scale.OracleSets
	// Cap the oracle's total stored vertices on larger graphs so the unit and
	// small presets stay within memory; the paper preset keeps the full 10^7.
	if e.Scale.Preset != Paper && ig.NumVertices() > 100000 {
		sets = sets / 10
		if sets < 1000 {
			sets = 1000
		}
	}
	o, err := core.NewOracleParallel(ig, diffusion.IC, sets, e.Workers, rng.Split(rng.Xoshiro, e.MasterSeed, 991))
	if err != nil {
		return nil, err
	}
	e.oracles[key] = o
	return o, nil
}

// Experiment is one regenerable artefact of the paper.
type Experiment struct {
	// ID is the identifier accepted by cmd/imexp and the benchmarks.
	ID string
	// Title is a one-line human description.
	Title string
	// Artefact names the paper table or figure the experiment regenerates.
	Artefact string
	// Run executes the experiment, writing rows to w.
	Run func(w io.Writer, env *Env) error
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "table3", Title: "Network statistics", Artefact: "Table 3", Run: runTable3},
		{ID: "table4", Title: "Top three single-vertex influence spreads", Artefact: "Table 4", Run: runTable4},
		{ID: "table5", Title: "Least sample number for near-optimal solutions", Artefact: "Table 5", Run: runTable5},
		{ID: "table6", Title: "Median comparable number ratio of Oneshot to Snapshot", Artefact: "Table 6", Run: runTable6},
		{ID: "table7", Title: "Median comparable number and size ratio of RIS to Snapshot", Artefact: "Table 7", Run: runTable7},
		{ID: "table8", Title: "Traversal cost at k=1 and sample number 1", Artefact: "Table 8", Run: runTable8},
		{ID: "table9", Title: "Traversal cost at identical accuracy", Artefact: "Table 9", Run: runTable9},
		{ID: "fig1", Title: "Entropy of seed-set distributions on Karate (uc0.1)", Artefact: "Figure 1", Run: runFig1},
		{ID: "fig2", Title: "Entropy plateaus caused by near-ties", Artefact: "Figure 2", Run: runFig2},
		{ID: "fig3", Title: "Entropy decay by edge-probability setting (RIS)", Artefact: "Figure 3", Run: runFig3},
		{ID: "fig4", Title: "Influence distributions as box plots", Artefact: "Figure 4", Run: runFig4},
		{ID: "fig5", Title: "Quick vs slow influence convergence (RIS)", Artefact: "Figure 5", Run: runFig5},
		{ID: "fig6", Title: "Mean vs standard deviation / 1st percentile", Artefact: "Figure 6", Run: runFig6},
		{ID: "fig7", Title: "Comparable number ratio of Oneshot to Snapshot", Artefact: "Figure 7", Run: runFig7},
		{ID: "fig8", Title: "Comparable size ratio of RIS to Snapshot", Artefact: "Figure 8", Run: runFig8},
		{ID: "exactcheck", Title: "Estimator cross-validation against exact influence", Artefact: "validation", Run: runExactCheck},
		{ID: "heuristics", Title: "Quality of Section 3.6 heuristics vs the three approaches", Artefact: "validation", Run: runHeuristics},
	}
}

// IDs returns the registry IDs in order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the experiment with the given ID.
func Run(w io.Writer, id string, env *Env) error {
	e, ok := Lookup(id)
	if !ok {
		known := IDs()
		sort.Strings(known)
		return fmt.Errorf("%w: %q (known: %v)", ErrUnknownExperiment, id, known)
	}
	if _, err := fmt.Fprintf(w, "# %s — %s (%s) [preset=%s]\n", e.ID, e.Title, e.Artefact, env.Scale.Preset); err != nil {
		return err
	}
	return e.Run(w, env)
}
