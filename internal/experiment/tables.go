package experiment

import (
	"io"
	"math"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/estimator"
	"imdist/internal/graph"
	"imdist/internal/workload"
)

// runTable3 prints the network statistics of Table 3: n, m, maximum out- and
// in-degree, clustering coefficient and average distance for every dataset at
// the current preset.
func runTable3(w io.Writer, env *Env) error {
	if err := printf(w, "%-12s %10s %10s %6s %6s %10s %10s %s\n",
		"network", "n", "m", "max+", "max-", "clus.coef", "avg.dist", "origin"); err != nil {
		return err
	}
	for _, ds := range statsDatasets(env.Scale) {
		g, err := data.Load(ds, data.Options{Seed: env.MasterSeed, ScaleDivisor: env.Scale.DatasetScaleDivisor})
		if err != nil {
			return err
		}
		s := graph.ComputeStats(g, 32)
		origin := "real"
		for _, info := range data.Catalog() {
			if info.Name == ds {
				if info.Scaled {
					origin = "surrogate(scaled)"
				} else if info.Surrogate {
					origin = "surrogate"
				} else if info.Type == "BA" {
					origin = "synthetic"
				}
			}
		}
		if err := printf(w, "%-12s %10d %10d %6d %6d %10.3f %10.2f %s\n",
			ds, s.Vertices, s.Edges, s.MaxOutDegree, s.MaxInDegree,
			s.ClusteringCoefficient, s.AverageDistance, origin); err != nil {
			return err
		}
	}
	return nil
}

// runTable4 prints the top three single-vertex influence spreads of the two
// Barabási–Albert networks under each probability setting, the quantity the
// paper uses to explain entropy-decay speed differences.
func runTable4(w io.Writer, env *Env) error {
	if err := printf(w, "%-8s %-7s %14s %14s %14s\n",
		"network", "prob", "Inf(v1st)", "Inf(v2nd)", "Inf(v3rd)"); err != nil {
		return err
	}
	for _, ds := range []data.Dataset{data.BASparse, data.BADense} {
		for _, m := range standardModelsFor(env.Scale) {
			oracle, err := env.Oracle(ds, m)
			if err != nil {
				return err
			}
			_, infs := oracle.TopSingleVertices(3)
			for len(infs) < 3 {
				infs = append(infs, 0)
			}
			if err := printf(w, "%-8s %-7s %14.4f %14.4f %14.4f\n",
				ds, m, infs[0], infs[1], infs[2]); err != nil {
				return err
			}
		}
	}
	return nil
}

// runTable5 prints, per instance and approach, the least sample number (as
// log2) achieving near-optimal solutions with 99% probability and the entropy
// at that sample number.
func runTable5(w io.Writer, env *Env) error {
	if err := printf(w, "%-12s %-7s %3s  %12s %7s  %12s %7s  %12s %7s\n",
		"network", "prob", "k",
		"log2(beta*)", "H*", "log2(tau*)", "H*", "log2(theta*)", "H*"); err != nil {
		return err
	}
	crit := core.DefaultNearOptimal()
	for _, ds := range smallDistributionDatasets(env.Scale) {
		for _, m := range standardModelsFor(env.Scale) {
			for _, k := range seedSizesFor(env.Scale) {
				inst := instance{Dataset: ds, Model: m, K: k}
				ref, err := env.referenceInfluence(inst)
				if err != nil {
					return err
				}
				cells := make([]string, 0, 6)
				for _, a := range allApproaches() {
					sweep, err := env.sweep(inst, a)
					if err != nil {
						return err
					}
					res, err := core.LeastSampleNumber(sweep, ref, crit)
					if err != nil {
						return err
					}
					cells = append(cells,
						fmtMissing(res.Found, "%.0f", res.Log2),
						fmtMissing(res.Found, "%.2f", res.Entropy))
				}
				if err := printf(w, "%-12s %-7s %3d  %12s %7s  %12s %7s  %12s %7s\n",
					ds, m, k, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// runTable6 prints the median comparable number ratio of Oneshot to Snapshot
// per instance: how many times more simulations Oneshot needs to match
// Snapshot's mean influence.
func runTable6(w io.Writer, env *Env) error {
	if err := printf(w, "%-12s %3s  %-7s %12s\n", "network", "k", "prob", "median beta/tau"); err != nil {
		return err
	}
	for _, ds := range smallDistributionDatasets(env.Scale) {
		for _, k := range seedSizesFor(env.Scale) {
			for _, m := range standardModelsFor(env.Scale) {
				inst := instance{Dataset: ds, Model: m, K: k}
				snapshotSweep, err := env.sweep(inst, estimator.Snapshot)
				if err != nil {
					return err
				}
				oneshotSweep, err := env.sweep(inst, estimator.Oneshot)
				if err != nil {
					return err
				}
				points, err := core.ComparableRatios(snapshotSweep, oneshotSweep)
				if err != nil {
					return err
				}
				med, ok := core.MedianNumberRatio(points)
				if err := printf(w, "%-12s %3d  %-7s %12s\n", ds, k, m, fmtMissing(ok, "%.0f", med)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// runTable7 prints the median comparable number ratio and size ratio of RIS
// to Snapshot per instance: RIS needs many more but much smaller samples.
func runTable7(w io.Writer, env *Env) error {
	if err := printf(w, "%-12s %3s  %-7s %16s %16s\n",
		"network", "k", "prob", "number theta/tau", "size ratio"); err != nil {
		return err
	}
	for _, ds := range smallDistributionDatasets(env.Scale) {
		for _, k := range seedSizesFor(env.Scale) {
			for _, m := range standardModelsFor(env.Scale) {
				inst := instance{Dataset: ds, Model: m, K: k}
				snapshotSweep, err := env.sweep(inst, estimator.Snapshot)
				if err != nil {
					return err
				}
				risSweep, err := env.sweep(inst, estimator.RIS)
				if err != nil {
					return err
				}
				points, err := core.ComparableRatios(snapshotSweep, risSweep)
				if err != nil {
					return err
				}
				num, numOK := core.MedianNumberRatio(points)
				size, sizeOK := core.MedianSizeRatio(points)
				numCell, sizeCell := "-", "-"
				if numOK {
					numCell = fmtRatio(num)
				}
				if sizeOK {
					sizeCell = fmtRatio(size)
				}
				if err := printf(w, "%-12s %3d  %-7s %16s %16s\n", ds, k, m, numCell, sizeCell); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// runTable8 prints the average vertex and edge traversal cost of each
// approach at k = 1 and sample number 1 for every dataset and probability
// setting (the per-sample cost of Section 5.3).
func runTable8(w io.Writer, env *Env) error {
	if err := printf(w, "%-12s %-7s %-9s %16s %16s\n",
		"network", "prob", "algorithm", "vertex cost", "edge cost"); err != nil {
		return err
	}
	for _, ds := range traversalDatasets(env.Scale) {
		for _, m := range standardModelsFor(env.Scale) {
			rows, err := env.traversalRows(ds, m)
			if err != nil {
				return err
			}
			for _, row := range rows {
				if err := printf(w, "%-12s %-7s %-9s %16.1f %16.1f\n",
					ds, m, row.Approach, row.VerticesExamined, row.EdgesExamined); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// traversalRows computes Table 8's rows for one (dataset, model) cell. On the
// web-scale surrogates Oneshot is skipped, matching the paper's "–" entries.
func (e *Env) traversalRows(ds data.Dataset, m workload.Model) ([]core.TraversalRow, error) {
	ig, err := e.InfluenceGraph(ds, m)
	if err != nil {
		return nil, err
	}
	oracle, err := e.Oracle(ds, m)
	if err != nil {
		return nil, err
	}
	cfg := core.RunConfig{
		Graph:      ig,
		Trials:     trialsFor(e.Scale, ds),
		MasterSeed: e.MasterSeed ^ 0x7ab1e8 ^ uint64(m)<<16,
		Oracle:     oracle,
		Workers:    e.Workers,
	}
	approaches := allApproaches()
	if skipOneshot(ds) {
		approaches = []estimator.Approach{estimator.Snapshot, estimator.RIS}
	}
	rows := make([]core.TraversalRow, 0, len(approaches))
	for _, a := range approaches {
		row, err := core.TraversalCost(cfg, a)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// skipOneshot reports whether the paper omits Oneshot on the dataset (the two
// web-scale networks, where a single simulation pass over all vertices is
// already prohibitive).
func skipOneshot(ds data.Dataset) bool {
	return ds == data.ComYoutube || ds == data.SocPokec
}

// runTable9 prints the traversal cost per accuracy unit γ when the three
// approaches are conditioned to identical accuracy: β = cr1·γ, τ = γ,
// θ = cr2·γ with cr1, cr2 the comparable number ratios to Snapshot.
func runTable9(w io.Writer, env *Env) error {
	if err := printf(w, "%-12s %-7s %-9s %18s\n",
		"network", "prob", "algorithm", "cost per gamma"); err != nil {
		return err
	}
	for _, ds := range smallDistributionDatasets(env.Scale) {
		for _, m := range standardModelsFor(env.Scale) {
			inst := instance{Dataset: ds, Model: m, K: 1}
			snapshotSweep, err := env.sweep(inst, estimator.Snapshot)
			if err != nil {
				return err
			}
			oneshotRatio := -1.0
			if !skipOneshot(ds) {
				oneshotSweep, err := env.sweep(inst, estimator.Oneshot)
				if err != nil {
					return err
				}
				if points, err := core.ComparableRatios(snapshotSweep, oneshotSweep); err == nil {
					if med, ok := core.MedianNumberRatio(points); ok {
						oneshotRatio = med
					}
				}
			}
			risRatio := -1.0
			risSweep, err := env.sweep(inst, estimator.RIS)
			if err != nil {
				return err
			}
			if points, err := core.ComparableRatios(snapshotSweep, risSweep); err == nil {
				if med, ok := core.MedianNumberRatio(points); ok {
					risRatio = med
				}
			}
			rows, err := env.traversalRows(ds, m)
			if err != nil {
				return err
			}
			for _, row := range core.IdenticalAccuracyCosts(rows, oneshotRatio, risRatio) {
				if math.IsNaN(row.CostPerGamma) {
					continue
				}
				if err := printf(w, "%-12s %-7s %-9s %18.0f\n", ds, m, row.Approach, row.CostPerGamma); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
