package experiment

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"imdist/internal/data"
	"imdist/internal/estimator"
	"imdist/internal/workload"
)

func unitEnv(t testing.TB) *Env {
	t.Helper()
	env, err := NewEnv(Unit)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestScaleForPresets(t *testing.T) {
	for _, p := range []Preset{Unit, Small, Paper} {
		s, err := ScaleFor(p)
		if err != nil {
			t.Fatalf("ScaleFor(%s): %v", p, err)
		}
		if s.Trials <= 0 || s.OracleSets <= 0 || s.MaxExpSim <= 0 || s.MaxExpRIS < s.MaxExpSim {
			t.Errorf("ScaleFor(%s) = %+v looks inconsistent", p, s)
		}
	}
	if _, err := ScaleFor(Preset("huge")); !errors.Is(err, ErrUnknownPreset) {
		t.Errorf("unknown preset err = %v", err)
	}
	// The paper preset must match the paper's protocol.
	s, _ := ScaleFor(Paper)
	if s.Trials != 1000 || s.MaxExpSim != 16 || s.MaxExpRIS != 24 || s.OracleSets != 10_000_000 {
		t.Errorf("paper preset = %+v, does not match the paper's protocol", s)
	}
}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"table3", "table4", "table5", "table6", "table7", "table8", "table9",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	}
	ids := map[string]bool{}
	for _, id := range IDs() {
		ids[id] = true
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("registry is missing %s", id)
		}
	}
	for _, e := range Registry() {
		if e.Run == nil || e.ID == "" || e.Title == "" || e.Artefact == "" {
			t.Errorf("incomplete experiment entry %+v", e)
		}
	}
}

func TestLookupAndRunUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found a non-existent experiment")
	}
	env := unitEnv(t)
	var buf bytes.Buffer
	if err := Run(&buf, "nope", env); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("Run(nope) err = %v", err)
	}
}

func TestEnvCaching(t *testing.T) {
	env := unitEnv(t)
	g1, err := env.InfluenceGraph(data.KarateSet, workload.UC01)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := env.InfluenceGraph(data.KarateSet, workload.UC01)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("InfluenceGraph not cached")
	}
	o1, err := env.Oracle(data.KarateSet, workload.UC01)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := env.Oracle(data.KarateSet, workload.UC01)
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Error("Oracle not cached")
	}
}

func TestLevelsAndTrials(t *testing.T) {
	s, _ := ScaleFor(Unit)
	if got := levelsFor(s, estimator.RIS); got[len(got)-1] != 1<<s.MaxExpRIS {
		t.Errorf("RIS levels top out at %d", got[len(got)-1])
	}
	if got := levelsFor(s, estimator.Oneshot); got[len(got)-1] != 1<<s.MaxExpSim {
		t.Errorf("Oneshot levels top out at %d", got[len(got)-1])
	}
	if trialsFor(s, data.KarateSet) != s.Trials {
		t.Error("small dataset should use the small-instance trial count")
	}
	if trialsFor(s, data.SocPokec) != s.TrialsLarge {
		t.Error("web-scale dataset should use the large-instance trial count")
	}
}

func TestFormattingHelpers(t *testing.T) {
	if fmtRatio(0.016) != "0.016" {
		t.Errorf("fmtRatio(0.016) = %q", fmtRatio(0.016))
	}
	if fmtRatio(3.4) != "3.4" {
		t.Errorf("fmtRatio(3.4) = %q", fmtRatio(3.4))
	}
	if fmtRatio(384) != "384" {
		t.Errorf("fmtRatio(384) = %q", fmtRatio(384))
	}
	if fmtMissing(false, "%.1f", 3) != "-" {
		t.Error("fmtMissing should print a dash when the value is absent")
	}
	if fmtMissing(true, "%.1f", 3) != "3.0" {
		t.Error("fmtMissing should format present values")
	}
}

// TestRunEveryExperimentUnitPreset smoke-tests every registered experiment at
// the unit preset: it must run without error and produce non-trivial output.
// This is the cheap end-to-end check that every paper artefact is
// regenerable; the small and paper presets use the same code paths.
func TestRunEveryExperimentUnitPreset(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	env := unitEnv(t)
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(&buf, e.ID, env); err != nil {
				t.Fatalf("experiment %s failed: %v", e.ID, err)
			}
			out := buf.String()
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
				t.Errorf("experiment %s produced too little output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "# "+e.ID) {
				t.Errorf("experiment %s output missing header", e.ID)
			}
		})
	}
}

// TestTable8RelationHoldsOnKarate verifies the paper's headline traversal-
// cost relation (Oneshot ≈ m/m̃ · Snapshot ≈ n · RIS for edges, 1 : 1 : 1/n
// for vertices) using the same code path as Table 8.
func TestTable8RelationHoldsOnKarate(t *testing.T) {
	env := unitEnv(t)
	rows, err := env.traversalRows(data.KarateSet, workload.UC01)
	if err != nil {
		t.Fatal(err)
	}
	byApproach := map[estimator.Approach]struct{ v, e float64 }{}
	for _, r := range rows {
		byApproach[r.Approach] = struct{ v, e float64 }{r.VerticesExamined, r.EdgesExamined}
	}
	one, snap, ris := byApproach[estimator.Oneshot], byApproach[estimator.Snapshot], byApproach[estimator.RIS]
	// Vertex costs of Oneshot and Snapshot agree within noise.
	if ratio := one.v / snap.v; ratio < 0.6 || ratio > 1.7 {
		t.Errorf("Oneshot/Snapshot vertex ratio = %v, want approx 1", ratio)
	}
	// Snapshot examines roughly p=0.1 of the edges Oneshot does on uc0.1.
	if ratio := snap.e / one.e; ratio > 0.4 {
		t.Errorf("Snapshot/Oneshot edge ratio = %v, want approx 0.1", ratio)
	}
	// RIS vertex cost is roughly 1/n of Oneshot's.
	if ratio := one.v / ris.v; ratio < 5 {
		t.Errorf("Oneshot/RIS vertex ratio = %v, want order n = 34", ratio)
	}
}

func TestSkipOneshotOnWebScale(t *testing.T) {
	if !skipOneshot(data.ComYoutube) || !skipOneshot(data.SocPokec) {
		t.Error("web-scale datasets should skip Oneshot")
	}
	if skipOneshot(data.KarateSet) {
		t.Error("Karate should not skip Oneshot")
	}
}
