package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// newBuildTestServer starts an empty server (sketches arrive via builds) and
// returns it together with its handler under httptest.
func newBuildTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.AllowEmpty = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// awaitBuild polls the job until it reaches a terminal state.
func awaitBuild(t testing.TB, baseURL, id string) buildStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st buildStatus
		if status := getJSON(t, baseURL+"/v1/admin/builds/"+id, &st); status != http.StatusOK {
			t.Fatalf("GET build %s: status %d", id, status)
		}
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("build %s still %s after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAsyncBuildServesSketch is the acceptance path: POST /v1/admin/builds
// drives a Karate build to completion, and the finished sketch immediately
// serves /v1/sketches/{name}/influence — with values identical to the same
// build done in-process, since the build seed pins the RR-set sequence.
func TestAsyncBuildServesSketch(t *testing.T) {
	_, ts := newBuildTestServer(t, Config{})

	status, raw := postJSON(t, ts.URL+"/v1/admin/builds",
		`{"name":"karate","dataset":"Karate","prob":"iwc","seed":7,"max_sets":20000,"workers":2,"default":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status = %d, body %s", status, raw)
	}
	var st buildStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || (st.State != BuildQueued && st.State != BuildRunning) {
		t.Fatalf("submit status = %+v", st)
	}

	final := awaitBuild(t, ts.URL, st.ID)
	if final.State != BuildSucceeded {
		t.Fatalf("build finished %s: %s", final.State, final.Error)
	}
	if final.Sets != 20000 || final.Progress != 1 {
		t.Errorf("final status = %+v, want 20000 sets at progress 1", final)
	}

	// The sketch serves the named route...
	status, raw = postJSON(t, ts.URL+"/v1/sketches/karate/influence", `{"seeds":[0,33]}`)
	if status != http.StatusOK {
		t.Fatalf("influence after build: status = %d, body %s", status, raw)
	}
	var got InfluenceResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	// ...and answers exactly like the identically parameterized local build.
	oracle := karateOracle(t) // 20000 sets, seed 7: the same deterministic sequence
	want, err := oracle.Influence(CanonicalSeeds([]int{0, 33}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Influence != want {
		t.Errorf("built sketch influence = %v, want %v (not the deterministic build)", got.Influence, want)
	}

	// default:true pointed the legacy unnamed route at it too.
	if status, _ := postJSON(t, ts.URL+"/v1/influence", `{"seeds":[0]}`); status != http.StatusOK {
		t.Errorf("legacy route after default build: status = %d", status)
	}
}

// TestAsyncAdaptiveBuildWithOut runs an adaptive (target_eps) build that
// persists its sketch to disk; the registry must serve it from the file.
func TestAsyncAdaptiveBuildWithOut(t *testing.T) {
	_, ts := newBuildTestServer(t, Config{})
	out := filepath.Join(t.TempDir(), "karate.sketch")

	status, raw := postJSON(t, ts.URL+"/v1/admin/builds", fmt.Sprintf(
		`{"name":"adaptive","dataset":"Karate","seed":3,"max_sets":2000000,"target_eps":0.2,"k":4,"out":%q}`, out))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status = %d, body %s", status, raw)
	}
	var st buildStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	final := awaitBuild(t, ts.URL, st.ID)
	if final.State != BuildSucceeded {
		t.Fatalf("build finished %s: %s", final.State, final.Error)
	}
	if final.Sets >= 2000000 {
		t.Errorf("adaptive build burned the whole cap: %d sets", final.Sets)
	}
	if final.Bound <= 0 || final.Bound > 0.2 {
		t.Errorf("final bound = %v, want in (0, 0.2]", final.Bound)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("out sketch not written: %v", err)
	}
	var list listSketchesResponse
	if status := getJSON(t, ts.URL+"/v1/sketches", &list); status != http.StatusOK {
		t.Fatal("list sketches failed")
	}
	found := false
	for _, info := range list.Sketches {
		if info.Name == "adaptive" {
			found = true
			if info.Source != out {
				t.Errorf("sketch source = %q, want %q (file-backed)", info.Source, out)
			}
			if info.RRSets != final.Sets {
				t.Errorf("served sketch has %d sets, build reported %d", info.RRSets, final.Sets)
			}
		}
	}
	if !found {
		t.Error("built sketch missing from /v1/sketches")
	}
}

// TestAsyncSpillBuildServesSketch runs the disk-backed build path end to end:
// a spill build under a deliberately tiny memory budget must produce a sketch
// byte-identical to the in-memory build of the same parameters, serve it from
// the registry, surface spill_bytes while running, and clean up the spill
// file once the sketch is written.
func TestAsyncSpillBuildServesSketch(t *testing.T) {
	_, ts := newBuildTestServer(t, Config{})
	dir := t.TempDir()
	memOut := filepath.Join(dir, "karate-mem.sketch")
	spillOut := filepath.Join(dir, "karate-spill.sketch")

	submit := func(body string) buildStatus {
		t.Helper()
		status, raw := postJSON(t, ts.URL+"/v1/admin/builds", body)
		if status != http.StatusAccepted {
			t.Fatalf("submit: status = %d, body %s", status, raw)
		}
		var st buildStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		final := awaitBuild(t, ts.URL, st.ID)
		if final.State != BuildSucceeded {
			t.Fatalf("build finished %s: %s", final.State, final.Error)
		}
		return final
	}

	submit(fmt.Sprintf(
		`{"name":"mem","dataset":"Karate","seed":11,"max_sets":5000,"workers":2,"out":%q}`, memOut))
	final := submit(fmt.Sprintf(
		`{"name":"spill","dataset":"Karate","seed":11,"max_sets":5000,"workers":2,"out":%q,"spill":true,"mem_budget_bytes":4096}`, spillOut))

	if final.SpillBytes <= 0 {
		t.Errorf("final status spill_bytes = %d, want > 0", final.SpillBytes)
	}
	// Byte-identity across storage backends is the whole contract.
	memBytes, err := os.ReadFile(memOut)
	if err != nil {
		t.Fatal(err)
	}
	spillBytes, err := os.ReadFile(spillOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memBytes, spillBytes) {
		t.Error("spill-built sketch differs from in-memory build")
	}
	// The spill scratch file is gone once the sketch is durable.
	if _, err := os.Stat(spillOut + ".spill"); !os.IsNotExist(err) {
		t.Errorf("spill file still present after build: stat err = %v", err)
	}
	// And the sketch serves queries like any other.
	status, raw := postJSON(t, ts.URL+"/v1/sketches/spill/influence", `{"seeds":[0,33]}`)
	if status != http.StatusOK {
		t.Fatalf("influence after spill build: status = %d, body %s", status, raw)
	}
	var got InfluenceResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Influence <= 0 {
		t.Errorf("influence = %v, want > 0", got.Influence)
	}
}

func TestBuildSubmitValidation(t *testing.T) {
	_, ts := newBuildTestServer(t, Config{})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"bad name", `{"name":"a/b","dataset":"Karate","max_sets":100}`, http.StatusBadRequest},
		{"no source", `{"name":"x","max_sets":100}`, http.StatusBadRequest},
		{"two sources", `{"name":"x","dataset":"Karate","graph":"g.txt","max_sets":100}`, http.StatusBadRequest},
		{"missing max_sets", `{"name":"x","dataset":"Karate"}`, http.StatusBadRequest},
		{"oversized max_sets", `{"name":"x","dataset":"Karate","max_sets":999999999999}`, http.StatusBadRequest},
		{"bad prob", `{"name":"x","dataset":"Karate","prob":"nope","max_sets":100}`, http.StatusBadRequest},
		{"bad model", `{"name":"x","dataset":"Karate","model":"SIR","max_sets":100}`, http.StatusBadRequest},
		{"bad delta", `{"name":"x","dataset":"Karate","max_sets":100,"delta":1.5}`, http.StatusBadRequest},
		{"spill without out", `{"name":"x","dataset":"Karate","max_sets":100,"spill":true}`, http.StatusBadRequest},
		{"negative mem budget", `{"name":"x","dataset":"Karate","max_sets":100,"mem_budget_bytes":-1}`, http.StatusBadRequest},
		{"unknown dataset is accepted at submit, fails async", `{"name":"x","dataset":"NoSuch","max_sets":100}`, http.StatusAccepted},
	}
	for _, tc := range cases {
		if status, raw := postJSON(t, ts.URL+"/v1/admin/builds", tc.body); status != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, status, tc.wantStatus, raw)
		}
	}

	// The unknown dataset job must fail asynchronously with its error kept.
	var list buildListResponse
	if status := getJSON(t, ts.URL+"/v1/admin/builds", &list); status != http.StatusOK {
		t.Fatal("list builds failed")
	}
	last := list.Builds[len(list.Builds)-1]
	final := awaitBuild(t, ts.URL, last.ID)
	if final.State != BuildFailed || final.Error == "" {
		t.Errorf("unknown-dataset build = %+v, want failed with error", final)
	}
}

func TestBuildDuplicateNameNeedsReplace(t *testing.T) {
	s, ts := newBuildTestServer(t, Config{})
	if err := s.Registry().Register("taken", loadedKarateOracle(t)); err != nil {
		t.Fatal(err)
	}
	status, raw := postJSON(t, ts.URL+"/v1/admin/builds",
		`{"name":"taken","dataset":"Karate","seed":1,"max_sets":500}`)
	if status != http.StatusConflict {
		t.Fatalf("duplicate build name: status = %d, body %s", status, raw)
	}
	status, raw = postJSON(t, ts.URL+"/v1/admin/builds",
		`{"name":"taken","dataset":"Karate","seed":1,"max_sets":500,"replace":true}`)
	if status != http.StatusAccepted {
		t.Fatalf("replace build: status = %d, body %s", status, raw)
	}
	var st buildStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if final := awaitBuild(t, ts.URL, st.ID); final.State != BuildSucceeded {
		t.Fatalf("replace build finished %s: %s", final.State, final.Error)
	}
	var list listSketchesResponse
	getJSON(t, ts.URL+"/v1/sketches", &list)
	for _, info := range list.Sketches {
		if info.Name == "taken" && info.RRSets != 500 {
			t.Errorf("replaced sketch has %d sets, want 500", info.RRSets)
		}
	}
}

func TestBuildCancelAndUnknown(t *testing.T) {
	// Concurrency 1 and a long-running first job keep the second queued so
	// cancelling a queued job is deterministic.
	_, ts := newBuildTestServer(t, Config{BuildConcurrency: 1})
	status, raw := postJSON(t, ts.URL+"/v1/admin/builds",
		`{"name":"slow","dataset":"ca-GrQc","seed":1,"max_sets":30000000,"target_eps":0.000001,"workers":1}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit slow: status = %d, body %s", status, raw)
	}
	var slow buildStatus
	if err := json.Unmarshal(raw, &slow); err != nil {
		t.Fatal(err)
	}
	status, raw = postJSON(t, ts.URL+"/v1/admin/builds",
		`{"name":"queued","dataset":"Karate","seed":1,"max_sets":100}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit queued: status = %d, body %s", status, raw)
	}
	var queued buildStatus
	if err := json.Unmarshal(raw, &queued); err != nil {
		t.Fatal(err)
	}

	del := func(id string) (int, buildStatus) {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/builds/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st buildStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}

	if status, st := del(queued.ID); status != http.StatusOK || st.State != BuildCancelled {
		t.Errorf("cancel queued: status = %d, state %s", status, st.State)
	}
	if status, _ := del(slow.ID); status != http.StatusOK {
		t.Errorf("cancel running: status = %d", status)
	}
	if final := awaitBuild(t, ts.URL, slow.ID); final.State != BuildCancelled {
		t.Errorf("cancelled build ended %s", final.State)
	}
	// Cancelling a terminal job conflicts; unknown jobs 404.
	if status, _ := del(slow.ID); status != http.StatusConflict {
		t.Errorf("re-cancel terminal: status = %d, want 409", status)
	}
	if status, _ := del("build-999"); status != http.StatusNotFound {
		t.Errorf("cancel unknown: status = %d, want 404", status)
	}
	var missing errorResponse
	if status := getJSON(t, ts.URL+"/v1/admin/builds/build-999", &missing); status != http.StatusNotFound {
		t.Errorf("get unknown: status = %d, want 404", status)
	}
}
