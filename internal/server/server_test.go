package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/sketchio"
	"imdist/internal/workload"
)

func karateOracle(t testing.TB) *core.Oracle {
	t.Helper()
	ig, err := workload.Assign(data.Karate(), workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.NewOracleParallelSeeded(ig, diffusion.IC, 20000, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// loadedKarateOracle round-trips the oracle through the sketch codec, so the
// server tests exercise exactly what imserve serves: a loaded sketch.
func loadedKarateOracle(t testing.TB) *core.Oracle {
	t.Helper()
	var buf bytes.Buffer
	if err := sketchio.Encode(&buf, karateOracle(t)); err != nil {
		t.Fatal(err)
	}
	o, err := sketchio.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func newTestServer(t testing.TB, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Oracle == nil {
		cfg.Oracle = loadedKarateOracle(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t testing.TB, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestInfluenceEndpoint(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle})

	status, raw := postJSON(t, ts.URL+"/v1/influence", `{"seeds":[33,0,33]}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var got influenceResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Influence(canonicalSeeds([]int{0, 33}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Influence != want {
		t.Errorf("influence = %v, want %v", got.Influence, want)
	}
	if got.Seeds != 2 {
		t.Errorf("canonical seed count = %d, want 2 (deduplicated)", got.Seeds)
	}

	// A permutation of the same seed set must hit the cache (same canonical
	// key) and return the identical response.
	status, raw2 := postJSON(t, ts.URL+"/v1/influence", `{"seeds":[0,33]}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !bytes.Equal(raw, raw2) {
		t.Errorf("permuted seed set got different response: %s vs %s", raw, raw2)
	}
}

func TestInfluenceRejectsBadInput(t *testing.T) {
	ts := newTestServer(t, Config{MaxSeeds: 4})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"empty seeds", `{"seeds":[]}`, http.StatusBadRequest},
		{"missing seeds", `{}`, http.StatusBadRequest},
		{"out of range high", `{"seeds":[34]}`, http.StatusBadRequest},
		{"out of range negative", `{"seeds":[-1]}`, http.StatusBadRequest},
		{"overflowing id", `{"seeds":[4294967296]}`, http.StatusBadRequest},
		{"too many seeds", `{"seeds":[0,1,2,3,4]}`, http.StatusBadRequest},
		{"unknown field", `{"seedz":[1]}`, http.StatusBadRequest},
		{"not json", `seeds=1`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, raw := postJSON(t, ts.URL+"/v1/influence", c.body)
			if status != c.wantStatus {
				t.Errorf("status = %d, want %d (body %s)", status, c.wantStatus, raw)
			}
			var e errorResponse
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				t.Errorf("expected JSON error body, got %s", raw)
			}
		})
	}
}

func TestInfluenceBodyLimit(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 64})
	big := `{"seeds":[` + strings.Repeat("1,", 100) + `1]}`
	status, _ := postJSON(t, ts.URL+"/v1/influence", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", status)
	}
}

func TestSeedsEndpoint(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle})
	status, raw := postJSON(t, ts.URL+"/v1/seeds", `{"k":4}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var got seedsResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	wantSeeds := oracle.GreedySeeds(4)
	if len(got.Seeds) != 4 {
		t.Fatalf("seeds = %v", got.Seeds)
	}
	for i := range wantSeeds {
		if got.Seeds[i] != int(wantSeeds[i]) {
			t.Errorf("seeds = %v, want %v", got.Seeds, wantSeeds)
			break
		}
	}

	for _, body := range []string{`{"k":0}`, `{"k":-3}`, `{"k":1000000}`} {
		if status, _ := postJSON(t, ts.URL+"/v1/seeds", body); status != http.StatusBadRequest {
			t.Errorf("body %s: status = %d, want 400", body, status)
		}
	}
}

func TestTopEndpoint(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle})
	resp, err := http.Get(ts.URL + "/v1/top?k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got topResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	wantV, wantI := oracle.TopSingleVertices(3)
	if len(got.Vertices) != 3 || !reflect.DeepEqual(got.Influences, wantI) {
		t.Errorf("top = %v/%v, want %v/%v", got.Vertices, got.Influences, wantV, wantI)
	}

	for _, q := range []string{"?k=0", "?k=abc", "?k=99999999"} {
		resp, err := http.Get(ts.URL + "/v1/top" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("k query %q: status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" || got.Vertices != 34 || got.RRSets != 20000 || got.Model != "IC" || got.BuildSeed != 7 {
		t.Errorf("healthz = %+v", got)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/influence")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/influence status = %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentInfluence is the acceptance test: many goroutines hammer
// /v1/influence (plus /v1/seeds and /v1/top) against one loaded sketch under
// -race, and every response must equal the serial answer.
func TestConcurrentInfluence(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle, CacheSize: 8})

	type want struct {
		body string
		inf  float64
	}
	var wants []want
	for _, seeds := range [][]int{{0}, {0, 33}, {1, 2, 3}, {32, 33}, {5, 11, 17, 23}} {
		inf, err := oracle.Influence(canonicalSeeds(seeds))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(influenceRequest{Seeds: seeds})
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, want{body: string(raw), inf: inf})
	}

	const goroutines = 16
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < iters; i++ {
				w := wants[(g+i)%len(wants)]
				resp, err := client.Post(ts.URL+"/v1/influence", "application/json", strings.NewReader(w.body))
				if err != nil {
					t.Error(err)
					return
				}
				var got influenceResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if got.Influence != w.inf {
					t.Errorf("concurrent influence for %s = %v, want %v", w.body, got.Influence, w.inf)
					return
				}
				if i%20 == 0 {
					resp, err := client.Post(ts.URL+"/v1/seeds", "application/json", strings.NewReader(fmt.Sprintf(`{"k":%d}`, 1+g%4)))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					resp, err = client.Get(ts.URL + "/v1/top?k=5")
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNewRequiresOracle(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without oracle succeeded")
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted out of LRU order")
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Error("Put did not update existing entry")
	}
	hits, misses, size := c.Stats()
	if size != 2 || hits == 0 || misses == 0 {
		t.Errorf("Stats = %d hits, %d misses, size %d", hits, misses, size)
	}

	// Disabled cache never stores.
	d := newLRUCache(0)
	d.Put("x", 1)
	if _, ok := d.Get("x"); ok {
		t.Error("disabled cache returned a value")
	}
}
