package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/sketchio"
	"imdist/internal/workload"
)

func karateOracle(t testing.TB) *core.Oracle {
	t.Helper()
	ig, err := workload.Assign(data.Karate(), workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.NewOracleParallelSeeded(ig, diffusion.IC, 20000, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// loadedKarateOracle round-trips the oracle through the sketch codec, so the
// server tests exercise exactly what imserve serves: a loaded sketch.
func loadedKarateOracle(t testing.TB) *core.Oracle {
	t.Helper()
	var buf bytes.Buffer
	if err := sketchio.Encode(&buf, karateOracle(t)); err != nil {
		t.Fatal(err)
	}
	o, err := sketchio.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func newTestServer(t testing.TB, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Oracle == nil {
		cfg.Oracle = loadedKarateOracle(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t testing.TB, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestInfluenceEndpoint(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle})

	status, raw := postJSON(t, ts.URL+"/v1/influence", `{"seeds":[33,0,33]}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var got InfluenceResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Influence(CanonicalSeeds([]int{0, 33}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Influence != want {
		t.Errorf("influence = %v, want %v", got.Influence, want)
	}
	if got.Seeds != 2 {
		t.Errorf("canonical seed count = %d, want 2 (deduplicated)", got.Seeds)
	}

	// A permutation of the same seed set must hit the cache (same canonical
	// key) and return the identical response.
	status, raw2 := postJSON(t, ts.URL+"/v1/influence", `{"seeds":[0,33]}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if !bytes.Equal(raw, raw2) {
		t.Errorf("permuted seed set got different response: %s vs %s", raw, raw2)
	}
}

func TestInfluenceRejectsBadInput(t *testing.T) {
	ts := newTestServer(t, Config{MaxSeeds: 4})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"empty seeds", `{"seeds":[]}`, http.StatusBadRequest},
		{"missing seeds", `{}`, http.StatusBadRequest},
		{"out of range high", `{"seeds":[34]}`, http.StatusBadRequest},
		{"out of range negative", `{"seeds":[-1]}`, http.StatusBadRequest},
		{"overflowing id", `{"seeds":[4294967296]}`, http.StatusBadRequest},
		{"too many seeds", `{"seeds":[0,1,2,3,4]}`, http.StatusBadRequest},
		{"unknown field", `{"seedz":[1]}`, http.StatusBadRequest},
		{"not json", `seeds=1`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, raw := postJSON(t, ts.URL+"/v1/influence", c.body)
			if status != c.wantStatus {
				t.Errorf("status = %d, want %d (body %s)", status, c.wantStatus, raw)
			}
			var e errorResponse
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				t.Errorf("expected JSON error body, got %s", raw)
			}
		})
	}
}

func TestInfluenceBodyLimit(t *testing.T) {
	ts := newTestServer(t, Config{MaxBodyBytes: 64})
	big := `{"seeds":[` + strings.Repeat("1,", 100) + `1]}`
	status, _ := postJSON(t, ts.URL+"/v1/influence", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", status)
	}
}

// batchItemResult is the client-side view of one /v1/influence:batch item:
// valid items carry influence/ci99/seeds, invalid ones only an error. The
// Influence pointer distinguishes "present" from "zero".
type batchItemResult struct {
	Influence *float64 `json:"influence"`
	CI99      float64  `json:"ci99"`
	Seeds     int      `json:"seeds"`
	Error     string   `json:"error"`
}

func TestBatchInfluenceEndpoint(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle})

	body := `[{"seeds":[33,0,33]},{"seeds":[1]},{"seeds":[0,33]},{"seeds":[5,11,17]}]`
	status, raw := postJSON(t, ts.URL+"/v1/influence:batch", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var items []batchItemResult
	if err := json.Unmarshal(raw, &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4", len(items))
	}
	for i, seeds := range [][]int{{33, 0, 33}, {1}, {0, 33}, {5, 11, 17}} {
		if items[i].Error != "" {
			t.Fatalf("item %d: unexpected error %q", i, items[i].Error)
		}
		want, err := oracle.Influence(CanonicalSeeds(seeds))
		if err != nil {
			t.Fatal(err)
		}
		if items[i].Influence == nil || *items[i].Influence != want {
			t.Errorf("item %d = %+v, want influence %v", i, items[i], want)
		}
	}
	// Items 0 and 2 are permutations of the same seed set and must agree.
	if *items[0].Influence != *items[2].Influence || items[0].Seeds != 2 {
		t.Errorf("canonicalization mismatch: %+v vs %+v", items[0], items[2])
	}

	// A follow-up single request for a batched seed set must agree with the
	// batch answer (batch results land in the shared cache under the same
	// canonical keys).
	status, raw = postJSON(t, ts.URL+"/v1/influence", `{"seeds":[17,5,11]}`)
	if status != http.StatusOK {
		t.Fatalf("single after batch: status = %d", status)
	}
	var single InfluenceResponse
	if err := json.Unmarshal(raw, &single); err != nil {
		t.Fatal(err)
	}
	if single.Influence != *items[3].Influence {
		t.Errorf("single after batch = %v, want %v", single.Influence, *items[3].Influence)
	}
}

func TestBatchInfluencePerItemErrors(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle, MaxSeeds: 3})

	body := `[{"seeds":[0]},{"seeds":[]},{"seeds":[99]},{"seeds":[-1]},{"seeds":[0,1,2,3]},{"seeds":[33]}]`
	status, raw := postJSON(t, ts.URL+"/v1/influence:batch", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var items []batchItemResult
	if err := json.Unmarshal(raw, &items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Fatalf("got %d items, want 6", len(items))
	}
	for _, bad := range []int{1, 2, 3, 4} {
		if items[bad].Error == "" {
			t.Errorf("item %d: expected per-item error, got %+v", bad, items[bad])
		}
		if items[bad].Influence != nil {
			t.Errorf("item %d: error item should omit influence, got %+v", bad, items[bad])
		}
	}
	for _, good := range []int{0, 5} {
		if items[good].Error != "" || items[good].Influence == nil {
			t.Errorf("item %d: expected success, got %+v", good, items[good])
		}
	}
}

func TestBatchInfluenceRejectsBadBatches(t *testing.T) {
	ts := newTestServer(t, Config{MaxBatchQueries: 2})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"empty array", `[]`, http.StatusBadRequest},
		{"not an array", `{"seeds":[0]}`, http.StatusBadRequest},
		{"too many queries", `[{"seeds":[0]},{"seeds":[1]},{"seeds":[2]}]`, http.StatusBadRequest},
		{"unknown field", `[{"seedz":[0]}]`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, raw := postJSON(t, ts.URL+"/v1/influence:batch", c.body)
			if status != c.wantStatus {
				t.Errorf("status = %d, want %d (body %s)", status, c.wantStatus, raw)
			}
		})
	}
}

// TestBatchMatchesSingleAcrossWorkerCounts is the server-level half of the
// batch determinism guarantee: whatever BatchWorkers is configured, the batch
// endpoint returns exactly the single-endpoint values.
func TestBatchMatchesSingleAcrossWorkerCounts(t *testing.T) {
	oracle := loadedKarateOracle(t)
	queries := [][]int{{0}, {0, 33}, {1, 2, 3}, {32, 33}, {5, 11, 17, 23}}
	raw, err := json.Marshal(func() []influenceRequest {
		reqs := make([]influenceRequest, len(queries))
		for i, q := range queries {
			reqs[i].Seeds = q
		}
		return reqs
	}())
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for _, q := range queries {
		inf, err := oracle.Influence(CanonicalSeeds(q))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, inf)
	}
	for _, workers := range []int{1, 2, -1} {
		// CacheSize -1 disables caching so every request exercises the engine.
		ts := newTestServer(t, Config{Oracle: oracle, BatchWorkers: workers, CacheSize: -1})
		status, body := postJSON(t, ts.URL+"/v1/influence:batch", string(raw))
		if status != http.StatusOK {
			t.Fatalf("workers=%d: status = %d", workers, status)
		}
		var items []batchItemResult
		if err := json.Unmarshal(body, &items); err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			if items[i].Error != "" || items[i].Influence == nil || *items[i].Influence != want[i] {
				t.Errorf("workers=%d item %d = %+v, want %v", workers, i, items[i], want[i])
			}
		}
	}
}

// TestBatchDeduplicatesRepeatedQueries checks that repeated canonical seed
// sets inside one batch are evaluated once and fanned out, even with the
// cache disabled (the dedup is per-request, not LRU-dependent).
func TestBatchDeduplicatesRepeatedQueries(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle, CacheSize: -1})
	body := `[{"seeds":[5]},{"seeds":[5]},{"seeds":[5,5]},{"seeds":[0,33]},{"seeds":[33,0]}]`
	status, raw := postJSON(t, ts.URL+"/v1/influence:batch", body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var items []batchItemResult
	if err := json.Unmarshal(raw, &items); err != nil {
		t.Fatal(err)
	}
	want5, err := oracle.Influence(CanonicalSeeds([]int{5}))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 2} {
		if items[i].Influence == nil || *items[i].Influence != want5 {
			t.Errorf("item %d = %+v, want influence %v", i, items[i], want5)
		}
	}
	if *items[3].Influence != *items[4].Influence {
		t.Errorf("permuted duplicates disagree: %v vs %v", *items[3].Influence, *items[4].Influence)
	}
}

func TestTopDefaultRespectsMaxK(t *testing.T) {
	// A bare GET /v1/top must not 400 just because MaxK < 10.
	ts := newTestServer(t, Config{MaxK: 5})
	resp, err := http.Get(ts.URL + "/v1/top")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var got TopResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Vertices) != 5 {
		t.Errorf("default k returned %d vertices, want 5 (min(10, MaxK))", len(got.Vertices))
	}
}

func TestSeedsEndpoint(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle})
	status, raw := postJSON(t, ts.URL+"/v1/seeds", `{"k":4}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, raw)
	}
	var got SeedsResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	wantSeeds := oracle.GreedySeeds(4)
	if len(got.Seeds) != 4 {
		t.Fatalf("seeds = %v", got.Seeds)
	}
	for i := range wantSeeds {
		if got.Seeds[i] != int(wantSeeds[i]) {
			t.Errorf("seeds = %v, want %v", got.Seeds, wantSeeds)
			break
		}
	}

	for _, body := range []string{`{"k":0}`, `{"k":-3}`, `{"k":1000000}`} {
		if status, _ := postJSON(t, ts.URL+"/v1/seeds", body); status != http.StatusBadRequest {
			t.Errorf("body %s: status = %d, want 400", body, status)
		}
	}
}

func TestTopEndpoint(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle})
	resp, err := http.Get(ts.URL + "/v1/top?k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got TopResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	wantV, wantI := oracle.TopSingleVertices(3)
	if len(got.Vertices) != 3 || !reflect.DeepEqual(got.Influences, wantI) {
		t.Errorf("top = %v/%v, want %v/%v", got.Vertices, got.Influences, wantV, wantI)
	}

	for _, q := range []string{"?k=0", "?k=abc", "?k=99999999"} {
		resp, err := http.Get(ts.URL + "/v1/top" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("k query %q: status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" || got.Vertices != 34 || got.RRSets != 20000 || got.Model != "IC" || got.BuildSeed != 7 {
		t.Errorf("healthz = %+v", got)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/influence")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/influence status = %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentInfluence is the acceptance test: many goroutines hammer
// /v1/influence (plus /v1/seeds and /v1/top) against one loaded sketch under
// -race, and every response must equal the serial answer.
func TestConcurrentInfluence(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle, CacheSize: 8})

	type want struct {
		body string
		inf  float64
	}
	var wants []want
	for _, seeds := range [][]int{{0}, {0, 33}, {1, 2, 3}, {32, 33}, {5, 11, 17, 23}} {
		inf, err := oracle.Influence(CanonicalSeeds(seeds))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(influenceRequest{Seeds: seeds})
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, want{body: string(raw), inf: inf})
	}

	const goroutines = 16
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < iters; i++ {
				w := wants[(g+i)%len(wants)]
				resp, err := client.Post(ts.URL+"/v1/influence", "application/json", strings.NewReader(w.body))
				if err != nil {
					t.Error(err)
					return
				}
				var got InfluenceResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if got.Influence != w.inf {
					t.Errorf("concurrent influence for %s = %v, want %v", w.body, got.Influence, w.inf)
					return
				}
				if i%20 == 0 {
					resp, err := client.Post(ts.URL+"/v1/seeds", "application/json", strings.NewReader(fmt.Sprintf(`{"k":%d}`, 1+g%4)))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					resp, err = client.Get(ts.URL + "/v1/top?k=5")
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNewRequiresOracle(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without oracle succeeded")
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted out of LRU order")
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Error("Put did not update existing entry")
	}
	hits, misses, size := c.Stats()
	if size != 2 || hits == 0 || misses == 0 {
		t.Errorf("Stats = %d hits, %d misses, size %d", hits, misses, size)
	}

	// Disabled cache never stores, but still counts every Get as a miss so
	// /healthz reflects uncached traffic.
	d := newLRUCache(0)
	d.Put("x", 1)
	if _, ok := d.Get("x"); ok {
		t.Error("disabled cache returned a value")
	}
	d.Get("y")
	if hits, misses, size := d.Stats(); hits != 0 || misses != 2 || size != 0 {
		t.Errorf("disabled cache Stats = %d hits, %d misses, size %d; want 0, 2, 0", hits, misses, size)
	}
}

// TestHealthzCountsMissesWithoutCache pins the lruCache stats fix end to end:
// a server with caching disabled must still report its misses.
func TestHealthzCountsMissesWithoutCache(t *testing.T) {
	ts := newTestServer(t, Config{CacheSize: -1})
	for i := 0; i < 3; i++ {
		if status, _ := postJSON(t, ts.URL+"/v1/influence", `{"seeds":[0]}`); status != http.StatusOK {
			t.Fatalf("status = %d", status)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.CacheHits != 0 || got.CacheMisses != 3 {
		t.Errorf("healthz cache stats = %d/%d, want 0 hits / 3 misses", got.CacheHits, got.CacheMisses)
	}
}
