package server

import (
	"container/list"
	"sync"
)

// lruCache is a small thread-safe LRU for query results. Keys are
// canonicalized request strings (see influenceKey and friends), so two
// requests naming the same seed set in different orders share one entry.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element

	hits, misses uint64
}

type lruEntry struct {
	key   string
	value any
}

// newLRUCache returns a cache holding up to capacity entries; capacity <= 0
// disables caching (every Get misses — and counts as a miss in Stats, so a
// cacheless server still reports its uncached traffic — and Put is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		c.misses++
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

func (c *lruCache) Put(key string, value any) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).value = value
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, value: value})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Stats returns cumulative hit/miss counters and the current size.
func (c *lruCache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
