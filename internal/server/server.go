// Package server exposes loaded RR-sketch oracles (core.Oracle) over HTTP —
// the serve-many half of the build-once / serve-many pipeline. One process
// holds a registry of named sketches (many graphs, many diffusion models,
// many builds) and answers influence queries for any number of clients; each
// oracle's query path is concurrency-safe, so a single sketch in memory
// serves every connection.
//
// Endpoints (JSON):
//
//	POST /v1/sketches/{name}/influence        {"seeds":[0,5,9]}  -> {"influence":..,"ci99":..}
//	POST /v1/sketches/{name}/influence:batch  [{"seeds":[0]},..] -> [{"influence":..},..]
//	POST /v1/sketches/{name}/seeds            {"k":4}            -> {"seeds":[..],"influence":..}
//	GET  /v1/sketches/{name}/top?k=10                            -> {"vertices":[..],"influences":[..]}
//	GET  /v1/sketches                                            -> per-sketch metadata + cache stats
//	POST /v1/admin/sketches                   {"name":..,"path":..} -> load or hot-replace a sketch
//	DELETE /v1/admin/sketches/{name}                             -> unload a sketch
//	GET  /healthz                                                -> server + default-sketch summary
//
// The unnamed legacy routes (POST /v1/influence, POST /v1/influence:batch,
// POST /v1/seeds, GET /v1/top) alias a configurable default sketch, so
// single-sketch clients keep working unchanged.
//
// Reloads are copy-on-swap: a replacement sketch becomes visible atomically,
// queries already in flight finish on the oracle they started with, and a
// memory-mapped sketch is unmapped only after its last query releases its
// reference (internal/sketchio refcounting).
//
// Results are memoized in a per-sketch LRU cache keyed by the sketch's
// identity (name, model, build seed, shape) plus the canonicalized request,
// so entries can never collide across sketches or across reloads that change
// a sketch's contents. Cold-cache /v1/seeds and /v1/top computations are
// single-flighted: concurrent identical requests share one greedy run.
// Request bodies are size-limited, and ListenAndServe drains in-flight
// requests on context cancellation.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"imdist/internal/core"
	"imdist/internal/graph"
)

// Defaults for Config zero values.
const (
	DefaultCacheSize       = 4096
	DefaultMaxBodyBytes    = 1 << 20
	DefaultMaxSeeds        = 100_000
	DefaultMaxK            = 10_000
	DefaultMaxBatchQueries = 1024
	// DefaultSketchName is the name Config.Oracle is registered under when
	// Config.DefaultSketch does not say otherwise.
	DefaultSketchName = "default"
	// DefaultReadTimeout bounds how long a client may take to send a request.
	DefaultReadTimeout = 30 * time.Second
	// DefaultWriteTimeout bounds how long a response may take to compute and
	// write. It is sized for large /v1/influence:batch responses on slow
	// clients — the previous hard-coded 60s cut such responses mid-stream.
	DefaultWriteTimeout = 2 * time.Minute
	shutdownGrace       = 10 * time.Second
)

// Config configures a Server. The zero value of every field selects a
// sensible default; at least one sketch (Oracle or Sketches) is required
// unless AllowEmpty is set.
type Config struct {
	// Oracle, when non-nil, is registered as the default sketch under
	// DefaultSketch (or DefaultSketchName) — the single-sketch configuration.
	Oracle *core.Oracle
	// Sketches are additional named in-memory sketches to serve.
	Sketches map[string]*core.Oracle
	// DefaultSketch is the sketch name aliased by the legacy unnamed routes.
	// Empty means the name Oracle was registered under, else the first
	// sketch loaded.
	DefaultSketch string
	// AllowEmpty permits starting with no sketches loaded (they arrive later
	// via Registry().LoadFile or the admin endpoint, as imserve -sketch-dir
	// does). Queries 404 until a sketch is loaded.
	AllowEmpty bool
	// CacheSize is the maximum number of memoized query results per sketch
	// (default DefaultCacheSize; negative disables caching).
	CacheSize int
	// MaxBodyBytes limits request body sizes (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxSeeds limits the seed-set size of /v1/influence requests
	// (default DefaultMaxSeeds).
	MaxSeeds int
	// MaxK limits k for /v1/seeds and /v1/top (default DefaultMaxK).
	MaxK int
	// MaxBatchQueries limits the number of items per /v1/influence:batch
	// request (default DefaultMaxBatchQueries).
	MaxBatchQueries int
	// BatchWorkers is the worker count handed to the oracle's sharded batch
	// engine for each /v1/influence:batch request. The zero value selects one
	// worker per CPU; 1 evaluates batches on the request goroutine.
	BatchWorkers int
	// Kernel is the coverage kernel applied to every sketch the server holds —
	// those in this Config and every later registry load or admin reload:
	// "epoch", "bitpack", or "auto" (the default; "" means auto). Kernels
	// change only query speed, never answers (see core.Kernel).
	Kernel string
	// ReadTimeout and WriteTimeout bound the HTTP request read and response
	// write of ListenAndServe's server. Zero selects DefaultReadTimeout /
	// DefaultWriteTimeout; negative disables the limit entirely (trusted
	// networks with arbitrarily slow clients).
	ReadTimeout time.Duration
	// WriteTimeout: see ReadTimeout. The batch handler additionally resets
	// the write deadline after evaluation, so the configured budget applies
	// to writing the response rather than being consumed by computation.
	WriteTimeout time.Duration
	// BuildConcurrency is how many async sketch builds (/v1/admin/builds)
	// run at once (default DefaultBuildConcurrency).
	BuildConcurrency int
	// MaxQueuedBuilds bounds the async build queue (default
	// DefaultMaxQueuedBuilds); full-queue submissions get 503.
	MaxQueuedBuilds int
	// MaxBuildSets caps max_sets per submitted build (default
	// DefaultMaxBuildSets).
	MaxBuildSets int
}

// Server answers oracle queries over HTTP.
type Server struct {
	registry *Registry
	builds   *buildManager
	cfg      Config
	mux      *http.ServeMux
	start    time.Time

	closeOnce sync.Once
}

// New validates cfg, fills in defaults and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Oracle == nil && len(cfg.Sketches) == 0 && !cfg.AllowEmpty {
		return nil, errors.New("server: Config requires at least one sketch (Oracle or Sketches), or AllowEmpty")
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxSeeds == 0 {
		cfg.MaxSeeds = DefaultMaxSeeds
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = DefaultMaxK
	}
	if cfg.MaxBatchQueries == 0 {
		cfg.MaxBatchQueries = DefaultMaxBatchQueries
	}
	if cfg.BatchWorkers == 0 {
		cfg.BatchWorkers = -1
	}
	switch {
	case cfg.ReadTimeout == 0:
		cfg.ReadTimeout = DefaultReadTimeout
	case cfg.ReadTimeout < 0:
		cfg.ReadTimeout = 0
	}
	switch {
	case cfg.WriteTimeout == 0:
		cfg.WriteTimeout = DefaultWriteTimeout
	case cfg.WriteTimeout < 0:
		cfg.WriteTimeout = 0
	}
	if cfg.BuildConcurrency < 1 {
		cfg.BuildConcurrency = DefaultBuildConcurrency
	}
	if cfg.MaxQueuedBuilds < 1 {
		cfg.MaxQueuedBuilds = DefaultMaxQueuedBuilds
	}
	if cfg.MaxBuildSets < 1 {
		cfg.MaxBuildSets = DefaultMaxBuildSets
	}
	kernel, err := core.ParseKernel(cfg.Kernel)
	if err != nil {
		return nil, err
	}
	cfg.Kernel = string(kernel)
	s := &Server{
		registry: NewRegistry(cfg.CacheSize),
		cfg:      cfg,
		mux:      http.NewServeMux(),
		start:    time.Now(),
	}
	s.registry.SetKernel(kernel)
	s.builds = newBuildManager(s.registry, cfg.BuildConcurrency, cfg.MaxQueuedBuilds, cfg.MaxBuildSets)
	if cfg.Oracle != nil {
		name := cfg.DefaultSketch
		if name == "" {
			name = DefaultSketchName
		}
		if err := s.registry.Register(name, cfg.Oracle); err != nil {
			return nil, err
		}
	}
	// Register named sketches in sorted order so "first loaded becomes
	// default" is deterministic when no default is named.
	names := make([]string, 0, len(cfg.Sketches))
	for name := range cfg.Sketches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.registry.Register(name, cfg.Sketches[name]); err != nil {
			return nil, err
		}
	}
	if cfg.DefaultSketch != "" {
		if err := s.registry.SetDefault(cfg.DefaultSketch); err != nil {
			return nil, err
		}
	}

	// Legacy unnamed routes alias the default sketch.
	s.mux.HandleFunc("POST /v1/influence", s.handleInfluence)
	s.mux.HandleFunc("POST /v1/influence:batch", s.handleBatchInfluence)
	s.mux.HandleFunc("POST /v1/seeds", s.handleSeeds)
	s.mux.HandleFunc("GET /v1/top", s.handleTop)
	// Named per-sketch routes.
	s.mux.HandleFunc("POST /v1/sketches/{sketch}/influence", s.handleInfluence)
	s.mux.HandleFunc("POST /v1/sketches/{sketch}/influence:batch", s.handleBatchInfluence)
	s.mux.HandleFunc("POST /v1/sketches/{sketch}/seeds", s.handleSeeds)
	s.mux.HandleFunc("GET /v1/sketches/{sketch}/top", s.handleTop)
	// Shard-fleet primitives: raw merge-able integer counts for the cluster
	// coordinator (internal/cluster).
	s.mux.HandleFunc("POST /v1/shard/coverage", s.handleShardCoverage)
	s.mux.HandleFunc("POST /v1/shard/marginal", s.handleShardMarginal)
	s.mux.HandleFunc("POST /v1/sketches/{sketch}/shard/coverage", s.handleShardCoverage)
	s.mux.HandleFunc("POST /v1/sketches/{sketch}/shard/marginal", s.handleShardMarginal)
	// Registry introspection and administration.
	s.mux.HandleFunc("GET /v1/sketches", s.handleListSketches)
	s.mux.HandleFunc("POST /v1/admin/sketches", s.handleAdminLoad)
	s.mux.HandleFunc("DELETE /v1/admin/sketches/{sketch}", s.handleAdminUnload)
	// Async build service: submit, observe and cancel server-side sketch
	// builds whose results land in the registry.
	s.mux.HandleFunc("POST /v1/admin/builds", s.handleBuildSubmit)
	s.mux.HandleFunc("GET /v1/admin/builds", s.handleBuildList)
	s.mux.HandleFunc("GET /v1/admin/builds/{build}", s.handleBuildGet)
	s.mux.HandleFunc("DELETE /v1/admin/builds/{build}", s.handleBuildCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Close releases the server's background resources: it cancels every live
// async build and stops the build runner pool. Loaded sketches are left to
// the registry's owner. ListenAndServe calls it on shutdown; standalone
// Handler users should call it themselves when done.
func (s *Server) Close() {
	s.closeOnce.Do(s.builds.shutdown)
}

// Registry returns the server's sketch registry, through which callers load,
// replace and unload sketches at runtime (imserve's -sketch-dir SIGHUP
// rescan drives this).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// httpServer builds the net/http server ListenAndServe runs, applying the
// configured timeouts (already normalized by New).
func (s *Server) httpServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.cfg.ReadTimeout,
		WriteTimeout:      s.cfg.WriteTimeout,
	}
}

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to shutdownGrace.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := s.httpServer(addr)
	defer s.Close()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// ctx is already cancelled on this path: deriving the drain timeout
		// from it would make Shutdown return immediately and tear down
		// in-flight requests instead of draining them.
		//imvet:allow ctxflow — shutdown drain must outlive the cancelled serve ctx; bounded by shutdownGrace
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// entryFor resolves the request's sketch ({sketch} path segment, or the
// default for legacy unnamed routes) and takes a query reference on it; on
// success the caller must release() it when done. On failure a 404 has been
// written.
func (s *Server) entryFor(w http.ResponseWriter, r *http.Request) (*sketchEntry, bool) {
	name := r.PathValue("sketch")
	e, ok := s.registry.acquire(name)
	if !ok {
		if name == "" {
			writeError(w, http.StatusNotFound, "no default sketch loaded (default %q)", s.registry.DefaultName())
		} else {
			writeError(w, http.StatusNotFound, "sketch %q not loaded", name)
		}
		return nil, false
	}
	return e, true
}

// extendWriteDeadline restarts the response write budget. net/http's
// WriteTimeout clock starts when the request is read, so a slow evaluation
// would otherwise eat the whole budget and cut large responses mid-stream;
// resetting after evaluation makes the configured timeout bound the write
// itself, which is the documented meaning of Config.WriteTimeout.
func (s *Server) extendWriteDeadline(w http.ResponseWriter) {
	if s.cfg.WriteTimeout > 0 {
		_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

// decodeBody strictly decodes a size-limited JSON body into v.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return false
	}
	return true
}

// CanonicalSeeds sorts and deduplicates seeds so equivalent seed sets share
// one cache entry and one oracle evaluation.
func CanonicalSeeds(seeds []int) []graph.VertexID {
	out := make([]graph.VertexID, len(seeds))
	for i, v := range seeds {
		out[i] = graph.VertexID(v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// seedsKey renders a canonical seed set as the sketch-local part of a cache
// key; the sketch identity prefix is prepended by the caller.
func seedsKey(seeds []graph.VertexID) string {
	var b strings.Builder
	b.Grow(len(seeds)*8 + 2)
	b.WriteString("s:")
	for i, v := range seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

type influenceRequest struct {
	Seeds []int `json:"seeds"`
}

// InfluenceResponse is the body of a /v1/influence answer. It is exported so
// the cluster coordinator can produce byte-identical responses.
type InfluenceResponse struct {
	Influence float64 `json:"influence"`
	CI99      float64 `json:"ci99"`
	Seeds     int     `json:"seeds"`
}

// validateInfluenceSeeds checks an influence request's seed list against the
// server's limits and the oracle's vertex range; it returns a user-facing
// error message, or "" when the request is valid. Shared by the single and
// batch influence handlers so both reject exactly the same inputs.
func (s *Server) validateInfluenceSeeds(oracle *core.Oracle, seeds []int) string {
	return ValidateInfluenceSeeds(seeds, s.cfg.MaxSeeds, oracle.NumVertices())
}

// ValidateInfluenceSeeds is the influence-request seed validation shared with
// the cluster coordinator, which must reject exactly the same inputs with
// exactly the same messages to stay byte-identical to a single process.
func ValidateInfluenceSeeds(seeds []int, maxSeeds, numVertices int) string {
	if len(seeds) == 0 {
		return "seeds must be non-empty"
	}
	if len(seeds) > maxSeeds {
		return fmt.Sprintf("too many seeds: %d > %d", len(seeds), maxSeeds)
	}
	for _, v := range seeds {
		// Reject before the int32 conversion in CanonicalSeeds can wrap.
		if v < 0 || v >= numVertices {
			return fmt.Sprintf("seed vertex %d not in [0, %d)", v, numVertices)
		}
	}
	return ""
}

func (s *Server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	defer e.release()
	var req influenceRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if msg := s.validateInfluenceSeeds(e.oracle, req.Seeds); msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	seeds := CanonicalSeeds(req.Seeds)
	key := e.keyPrefix + seedsKey(seeds)
	if v, ok := e.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, v)
		return
	}
	inf, err := e.oracle.Influence(seeds)
	if err != nil {
		// Unreachable after the range check above, but the oracle's own
		// validation is the final authority.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := InfluenceResponse{
		Influence: inf,
		CI99:      e.oracle.ConfidenceHalfWidth(2.576),
		Seeds:     len(seeds),
	}
	e.cache.Put(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

// BatchItem is one element of a /v1/influence:batch response. A valid item
// carries the same fields as a /v1/influence response; an invalid one carries
// only an error message, so a single bad query never fails the whole batch.
// Repeated queries in one batch share a single *InfluenceResponse, which
// encodes identically either way.
type BatchItem struct {
	*InfluenceResponse
	Error string `json:"error,omitempty"`
}

func (s *Server) handleBatchInfluence(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	defer e.release()
	var reqs []influenceRequest
	if !s.decodeBody(w, r, &reqs) {
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, "batch must be a non-empty JSON array of influence requests")
		return
	}
	if len(reqs) > s.cfg.MaxBatchQueries {
		writeError(w, http.StatusBadRequest, "too many batch queries: %d > %d", len(reqs), s.cfg.MaxBatchQueries)
		return
	}
	items := make([]BatchItem, len(reqs))
	// Resolve each item against the sketch's LRU first (batch and single
	// requests use the same canonical cache keys), collecting the misses —
	// deduplicated by canonical key, so a batch of repeated hotspot queries
	// costs one engine evaluation per distinct seed set — for one pass
	// through the sharded batch engine.
	type pendingQuery struct {
		items []int
		key   string
		seeds []graph.VertexID
	}
	var pending []pendingQuery
	pendingByKey := make(map[string]int)
	for i, req := range reqs {
		if msg := s.validateInfluenceSeeds(e.oracle, req.Seeds); msg != "" {
			items[i].Error = msg
			continue
		}
		seeds := CanonicalSeeds(req.Seeds)
		key := e.keyPrefix + seedsKey(seeds)
		if j, ok := pendingByKey[key]; ok {
			pending[j].items = append(pending[j].items, i)
			continue
		}
		if v, ok := e.cache.Get(key); ok {
			resp := v.(InfluenceResponse)
			items[i].InfluenceResponse = &resp
			continue
		}
		pendingByKey[key] = len(pending)
		pending = append(pending, pendingQuery{items: []int{i}, key: key, seeds: seeds})
	}
	if len(pending) > 0 {
		seedSets := make([][]graph.VertexID, len(pending))
		for j, p := range pending {
			seedSets[j] = p.seeds
		}
		values, errs := e.oracle.BatchInfluence(seedSets, s.cfg.BatchWorkers)
		ci := e.oracle.ConfidenceHalfWidth(2.576)
		for j, p := range pending {
			if errs[j] != nil {
				// Unreachable after validateInfluenceSeeds, but the oracle's
				// own validation is the final authority.
				for _, i := range p.items {
					items[i].Error = errs[j].Error()
				}
				continue
			}
			resp := InfluenceResponse{Influence: values[j], CI99: ci, Seeds: len(p.seeds)}
			e.cache.Put(p.key, resp)
			for _, i := range p.items {
				items[i].InfluenceResponse = &resp
			}
		}
	}
	// Large batches can spend a while in the engine; give the response write
	// its full configured budget instead of whatever the evaluation left.
	s.extendWriteDeadline(w)
	writeJSON(w, http.StatusOK, items)
}

type seedsRequest struct {
	K int `json:"k"`
}

// SeedsResponse is the body of a /v1/seeds answer (exported for the cluster
// coordinator).
type SeedsResponse struct {
	Seeds     []int   `json:"seeds"`
	Influence float64 `json:"influence"`
}

func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	defer e.release()
	var req seedsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1, %d], got %d", s.cfg.MaxK, req.K)
		return
	}
	key := e.keyPrefix + "g:" + strconv.Itoa(req.K)
	if v, ok := e.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, v)
		return
	}
	// Single-flight the greedy run: N concurrent cold-cache requests for the
	// same (sketch, k) compute once and share the result instead of each
	// running GreedySeeds (the cache stampede this endpoint used to have).
	v, err := e.flight.Do(key, func() (any, error) {
		if v, ok := e.cache.Get(key); ok {
			return v, nil
		}
		e.seedRuns.Add(1)
		seeds := e.oracle.GreedySeeds(req.K)
		inf, err := e.oracle.Influence(seeds)
		if err != nil {
			return nil, err
		}
		out := make([]int, len(seeds))
		for i, v := range seeds {
			out[i] = int(v)
		}
		resp := SeedsResponse{Seeds: out, Influence: inf}
		e.cache.Put(key, resp)
		return resp, nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.extendWriteDeadline(w)
	writeJSON(w, http.StatusOK, v)
}

// TopResponse is the body of a /v1/top answer (exported for the cluster
// coordinator).
type TopResponse struct {
	Vertices   []int     `json:"vertices"`
	Influences []float64 `json:"influences"`
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	defer e.release()
	// The default must respect MaxK, or a bare GET /v1/top would 400 on
	// servers configured with MaxK < 10.
	k := min(10, s.cfg.MaxK)
	if q := r.URL.Query().Get("k"); q != "" {
		parsed, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid k %q", q)
			return
		}
		k = parsed
	}
	if k < 1 || k > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1, %d], got %d", s.cfg.MaxK, k)
		return
	}
	key := e.keyPrefix + "t:" + strconv.Itoa(k)
	if v, ok := e.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, v)
		return
	}
	// Ranking all vertices is a full scan; single-flight it like /v1/seeds.
	v, err := e.flight.Do(key, func() (any, error) {
		if v, ok := e.cache.Get(key); ok {
			return v, nil
		}
		vs, infs := e.oracle.TopSingleVertices(k)
		out := make([]int, len(vs))
		for i, v := range vs {
			out[i] = int(v)
		}
		resp := TopResponse{Vertices: out, Influences: infs}
		e.cache.Put(key, resp)
		return resp, nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.extendWriteDeadline(w)
	writeJSON(w, http.StatusOK, v)
}

// sketchInfo is the per-sketch metadata reported by GET /v1/sketches (and,
// for the default sketch, flattened into /healthz).
type sketchInfo struct {
	Name      string  `json:"name"`
	Default   bool    `json:"default"`
	Vertices  int     `json:"vertices"`
	RRSets    int     `json:"rr_sets"`
	Model     string  `json:"model"`
	BuildSeed uint64  `json:"build_seed"`
	Kernel    string  `json:"kernel"`
	CI99      float64 `json:"ci99"`
	// Shard lineage, present only for sketches produced by imsketch -split:
	// which slice of which fleet this is (the index pointer distinguishes
	// shard 0 from "not sharded").
	ShardIndex       *int    `json:"shard_index,omitempty"`
	ShardCount       int     `json:"shard_count,omitempty"`
	TotalSets        int     `json:"total_sets,omitempty"`
	Source           string  `json:"source,omitempty"`
	Mapped           bool    `json:"mapped"`
	LoadedAgeSeconds float64 `json:"loaded_age_seconds"`
	CacheHits        uint64  `json:"cache_hits"`
	CacheMisses      uint64  `json:"cache_misses"`
	CacheSize        int     `json:"cache_size"`
	SeedComputations uint64  `json:"seed_computations"`
}

func (s *Server) infoFor(e *sketchEntry, defaultName string) sketchInfo {
	hits, misses, size := e.cache.Stats()
	info := sketchInfo{
		Name:             e.name,
		Default:          e.name == defaultName,
		Vertices:         e.oracle.NumVertices(),
		RRSets:           e.oracle.NumSets(),
		Model:            e.oracle.Model().String(),
		BuildSeed:        e.oracle.BuildSeed(),
		Kernel:           string(e.oracle.KernelResolved()),
		CI99:             e.oracle.ConfidenceHalfWidth(2.576),
		Source:           e.source,
		Mapped:           e.mapped != nil && e.mapped.ZeroCopy(),
		LoadedAgeSeconds: time.Since(e.loadedAt).Seconds(),
		CacheHits:        hits,
		CacheMisses:      misses,
		CacheSize:        size,
		SeedComputations: e.seedRuns.Load(),
	}
	if l := e.oracle.ShardLineage(); l.Sharded() {
		idx := l.Index
		info.ShardIndex = &idx
		info.ShardCount = l.Count
		info.TotalSets = l.TotalSets
	}
	return info
}

type listSketchesResponse struct {
	Default  string       `json:"default"`
	Sketches []sketchInfo `json:"sketches"`
}

func (s *Server) handleListSketches(w http.ResponseWriter, r *http.Request) {
	entries, defaultName := s.registry.snapshot()
	resp := listSketchesResponse{Default: defaultName, Sketches: make([]sketchInfo, 0, len(entries))}
	for _, e := range entries {
		resp.Sketches = append(resp.Sketches, s.infoFor(e, defaultName))
	}
	writeJSON(w, http.StatusOK, resp)
}

// adminLoadRequest asks the server to load the sketch file at Path under
// Name; Replace permits overwriting a name already loaded (without it a
// duplicate is a 409), and Default additionally points the legacy unnamed
// routes at it.
type adminLoadRequest struct {
	Name    string `json:"name"`
	Path    string `json:"path"`
	Replace bool   `json:"replace"`
	Default bool   `json:"default"`
}

func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) {
	var req adminLoadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "path is required")
		return
	}
	if err := validateSketchName(req.Name); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Admin loads are rare and serialized by the operator in practice; the
	// check-then-load pair is not atomic against a concurrent load of the
	// same name, which at worst replaces where it would have 409'd.
	if !req.Replace && s.registry.Contains(req.Name) {
		writeError(w, http.StatusConflict, "sketch %q already loaded (set replace to overwrite)", req.Name)
		return
	}
	if err := s.registry.LoadFile(req.Name, req.Path); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Default {
		if err := s.registry.SetDefault(req.Name); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	e, ok := s.registry.acquire(req.Name)
	if !ok {
		// The sketch was unloaded again between load and report; rare but
		// not an error worth failing the load over.
		writeJSON(w, http.StatusOK, errorResponse{})
		return
	}
	defer e.release()
	writeJSON(w, http.StatusOK, s.infoFor(e, s.registry.DefaultName()))
}

func (s *Server) handleAdminUnload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("sketch")
	if err := s.registry.Unload(name); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrUnknownSketch) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unloaded", "name": name})
}

type healthzResponse struct {
	Status string `json:"status"`
	// The flat sketch fields describe the default sketch, preserving the
	// single-sketch healthz contract older clients (and imbench) rely on.
	Vertices  int     `json:"vertices"`
	RRSets    int     `json:"rr_sets"`
	Model     string  `json:"model"`
	BuildSeed uint64  `json:"build_seed"`
	CI99      float64 `json:"ci99"`
	// Shard lineage of the default sketch, present only when it is a shard
	// of a split fleet (see sketchInfo).
	ShardIndex    *int     `json:"shard_index,omitempty"`
	ShardCount    int      `json:"shard_count,omitempty"`
	TotalSets     int      `json:"total_sets,omitempty"`
	CacheHits     uint64   `json:"cache_hits"`
	CacheMisses   uint64   `json:"cache_misses"`
	CacheSize     int      `json:"cache_size"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	DefaultSketch string   `json:"default_sketch"`
	SketchNames   []string `json:"sketch_names"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		DefaultSketch: s.registry.DefaultName(),
		SketchNames:   s.registry.Names(),
	}
	if len(resp.SketchNames) == 0 {
		resp.Status = "no sketches loaded"
	}
	if e, ok := s.registry.acquire(""); ok {
		hits, misses, size := e.cache.Stats()
		resp.Vertices = e.oracle.NumVertices()
		resp.RRSets = e.oracle.NumSets()
		resp.Model = e.oracle.Model().String()
		resp.BuildSeed = e.oracle.BuildSeed()
		resp.CI99 = e.oracle.ConfidenceHalfWidth(2.576)
		if l := e.oracle.ShardLineage(); l.Sharded() {
			idx := l.Index
			resp.ShardIndex = &idx
			resp.ShardCount = l.Count
			resp.TotalSets = l.TotalSets
		}
		resp.CacheHits = hits
		resp.CacheMisses = misses
		resp.CacheSize = size
		e.release()
	}
	writeJSON(w, http.StatusOK, resp)
}
