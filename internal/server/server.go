// Package server exposes a loaded RR-sketch oracle (core.Oracle) over HTTP —
// the serve-many half of the build-once / serve-many pipeline. One process
// loads a sketch built offline by imsketch and answers influence queries for
// any number of clients; the oracle's query path is concurrency-safe, so a
// single sketch in memory serves every connection.
//
// Endpoints (JSON):
//
//	POST /v1/influence        {"seeds":[0,5,9]}      -> {"influence":..,"ci99":..}
//	POST /v1/influence:batch  [{"seeds":[0]},..]     -> [{"influence":..},..]
//	POST /v1/seeds            {"k":4}                -> {"seeds":[..],"influence":..}
//	GET  /v1/top?k=10                                -> {"vertices":[..],"influences":[..]}
//	GET  /healthz                                    -> sketch metadata + cache stats
//
// The batch endpoint accepts a JSON array of influence requests, evaluates
// the uncached ones in one pass through the oracle's sharded batch engine,
// and returns one result per item in request order; invalid items carry a
// per-item "error" field instead of failing the whole batch.
//
// Results are memoized in an LRU cache keyed by canonicalized requests
// (seed sets are sorted and deduplicated first), request bodies are
// size-limited, and ListenAndServe drains in-flight requests on context
// cancellation.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"imdist/internal/core"
	"imdist/internal/graph"
)

// Defaults for Config zero values.
const (
	DefaultCacheSize       = 4096
	DefaultMaxBodyBytes    = 1 << 20
	DefaultMaxSeeds        = 100_000
	DefaultMaxK            = 10_000
	DefaultMaxBatchQueries = 1024
	shutdownGrace          = 10 * time.Second
)

// Config configures a Server. The zero value of every field except Oracle
// selects a sensible default.
type Config struct {
	// Oracle is the loaded sketch to serve. Required.
	Oracle *core.Oracle
	// CacheSize is the maximum number of memoized query results
	// (default DefaultCacheSize; negative disables caching).
	CacheSize int
	// MaxBodyBytes limits request body sizes (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxSeeds limits the seed-set size of /v1/influence requests
	// (default DefaultMaxSeeds).
	MaxSeeds int
	// MaxK limits k for /v1/seeds and /v1/top (default DefaultMaxK).
	MaxK int
	// MaxBatchQueries limits the number of items per /v1/influence:batch
	// request (default DefaultMaxBatchQueries).
	MaxBatchQueries int
	// BatchWorkers is the worker count handed to the oracle's sharded batch
	// engine for each /v1/influence:batch request. The zero value selects one
	// worker per CPU; 1 evaluates batches on the request goroutine.
	BatchWorkers int
}

// Server answers oracle queries over HTTP.
type Server struct {
	oracle *core.Oracle
	cache  *lruCache
	cfg    Config
	mux    *http.ServeMux
	start  time.Time
}

// New validates cfg, fills in defaults and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Oracle == nil {
		return nil, errors.New("server: Config.Oracle is required")
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxSeeds == 0 {
		cfg.MaxSeeds = DefaultMaxSeeds
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = DefaultMaxK
	}
	if cfg.MaxBatchQueries == 0 {
		cfg.MaxBatchQueries = DefaultMaxBatchQueries
	}
	if cfg.BatchWorkers == 0 {
		cfg.BatchWorkers = -1
	}
	s := &Server{
		oracle: cfg.Oracle,
		cache:  newLRUCache(cfg.CacheSize),
		cfg:    cfg,
		mux:    http.NewServeMux(),
		start:  time.Now(),
	}
	s.mux.HandleFunc("POST /v1/influence", s.handleInfluence)
	s.mux.HandleFunc("POST /v1/influence:batch", s.handleBatchInfluence)
	s.mux.HandleFunc("POST /v1/seeds", s.handleSeeds)
	s.mux.HandleFunc("GET /v1/top", s.handleTop)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to shutdownGrace.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a size-limited JSON body into v.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return false
	}
	return true
}

// canonicalSeeds sorts and deduplicates seeds so equivalent seed sets share
// one cache entry and one oracle evaluation.
func canonicalSeeds(seeds []int) []graph.VertexID {
	out := make([]graph.VertexID, len(seeds))
	for i, v := range seeds {
		out[i] = graph.VertexID(v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

func seedsKey(seeds []graph.VertexID) string {
	var b strings.Builder
	b.Grow(len(seeds)*8 + 2)
	b.WriteString("s:")
	for i, v := range seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

type influenceRequest struct {
	Seeds []int `json:"seeds"`
}

type influenceResponse struct {
	Influence float64 `json:"influence"`
	CI99      float64 `json:"ci99"`
	Seeds     int     `json:"seeds"`
}

// validateInfluenceSeeds checks an influence request's seed list against the
// server's limits and the oracle's vertex range; it returns a user-facing
// error message, or "" when the request is valid. Shared by the single and
// batch influence handlers so both reject exactly the same inputs.
func (s *Server) validateInfluenceSeeds(seeds []int) string {
	if len(seeds) == 0 {
		return "seeds must be non-empty"
	}
	if len(seeds) > s.cfg.MaxSeeds {
		return fmt.Sprintf("too many seeds: %d > %d", len(seeds), s.cfg.MaxSeeds)
	}
	for _, v := range seeds {
		// Reject before the int32 conversion in canonicalSeeds can wrap.
		if v < 0 || v >= s.oracle.NumVertices() {
			return fmt.Sprintf("seed vertex %d not in [0, %d)", v, s.oracle.NumVertices())
		}
	}
	return ""
}

func (s *Server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	var req influenceRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if msg := s.validateInfluenceSeeds(req.Seeds); msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	seeds := canonicalSeeds(req.Seeds)
	key := seedsKey(seeds)
	if v, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, v)
		return
	}
	inf, err := s.oracle.Influence(seeds)
	if err != nil {
		// Unreachable after the range check above, but the oracle's own
		// validation is the final authority.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := influenceResponse{
		Influence: inf,
		CI99:      s.oracle.ConfidenceHalfWidth(2.576),
		Seeds:     len(seeds),
	}
	s.cache.Put(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

// batchItemResponse is one element of a /v1/influence:batch response. A
// valid item carries the same fields as a /v1/influence response; an invalid
// one carries only an error message, so a single bad query never fails the
// whole batch.
type batchItemResponse struct {
	*influenceResponse
	Error string `json:"error,omitempty"`
}

func (s *Server) handleBatchInfluence(w http.ResponseWriter, r *http.Request) {
	var reqs []influenceRequest
	if !s.decodeBody(w, r, &reqs) {
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, "batch must be a non-empty JSON array of influence requests")
		return
	}
	if len(reqs) > s.cfg.MaxBatchQueries {
		writeError(w, http.StatusBadRequest, "too many batch queries: %d > %d", len(reqs), s.cfg.MaxBatchQueries)
		return
	}
	items := make([]batchItemResponse, len(reqs))
	// Resolve each item against the shared LRU first (batch and single
	// requests use the same canonical cache keys), collecting the misses —
	// deduplicated by canonical key, so a batch of repeated hotspot queries
	// costs one engine evaluation per distinct seed set — for one pass
	// through the sharded batch engine.
	type pendingQuery struct {
		items []int
		key   string
		seeds []graph.VertexID
	}
	var pending []pendingQuery
	pendingByKey := make(map[string]int)
	for i, req := range reqs {
		if msg := s.validateInfluenceSeeds(req.Seeds); msg != "" {
			items[i].Error = msg
			continue
		}
		seeds := canonicalSeeds(req.Seeds)
		key := seedsKey(seeds)
		if j, ok := pendingByKey[key]; ok {
			pending[j].items = append(pending[j].items, i)
			continue
		}
		if v, ok := s.cache.Get(key); ok {
			resp := v.(influenceResponse)
			items[i].influenceResponse = &resp
			continue
		}
		pendingByKey[key] = len(pending)
		pending = append(pending, pendingQuery{items: []int{i}, key: key, seeds: seeds})
	}
	if len(pending) > 0 {
		seedSets := make([][]graph.VertexID, len(pending))
		for j, p := range pending {
			seedSets[j] = p.seeds
		}
		values, errs := s.oracle.BatchInfluence(seedSets, s.cfg.BatchWorkers)
		ci := s.oracle.ConfidenceHalfWidth(2.576)
		for j, p := range pending {
			if errs[j] != nil {
				// Unreachable after validateInfluenceSeeds, but the oracle's
				// own validation is the final authority.
				for _, i := range p.items {
					items[i].Error = errs[j].Error()
				}
				continue
			}
			resp := influenceResponse{Influence: values[j], CI99: ci, Seeds: len(p.seeds)}
			s.cache.Put(p.key, resp)
			for _, i := range p.items {
				items[i].influenceResponse = &resp
			}
		}
	}
	writeJSON(w, http.StatusOK, items)
}

type seedsRequest struct {
	K int `json:"k"`
}

type seedsResponse struct {
	Seeds     []int   `json:"seeds"`
	Influence float64 `json:"influence"`
}

func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	var req seedsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1, %d], got %d", s.cfg.MaxK, req.K)
		return
	}
	key := "g:" + strconv.Itoa(req.K)
	if v, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, v)
		return
	}
	seeds := s.oracle.GreedySeeds(req.K)
	inf, err := s.oracle.Influence(seeds)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]int, len(seeds))
	for i, v := range seeds {
		out[i] = int(v)
	}
	resp := seedsResponse{Seeds: out, Influence: inf}
	s.cache.Put(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

type topResponse struct {
	Vertices   []int     `json:"vertices"`
	Influences []float64 `json:"influences"`
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	// The default must respect MaxK, or a bare GET /v1/top would 400 on
	// servers configured with MaxK < 10.
	k := min(10, s.cfg.MaxK)
	if q := r.URL.Query().Get("k"); q != "" {
		parsed, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid k %q", q)
			return
		}
		k = parsed
	}
	if k < 1 || k > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1, %d], got %d", s.cfg.MaxK, k)
		return
	}
	key := "t:" + strconv.Itoa(k)
	if v, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, v)
		return
	}
	vs, infs := s.oracle.TopSingleVertices(k)
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	resp := topResponse{Vertices: out, Influences: infs}
	s.cache.Put(key, resp)
	writeJSON(w, http.StatusOK, resp)
}

type healthzResponse struct {
	Status        string  `json:"status"`
	Vertices      int     `json:"vertices"`
	RRSets        int     `json:"rr_sets"`
	Model         string  `json:"model"`
	BuildSeed     uint64  `json:"build_seed"`
	CI99          float64 `json:"ci99"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheSize     int     `json:"cache_size"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.cache.Stats()
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:        "ok",
		Vertices:      s.oracle.NumVertices(),
		RRSets:        s.oracle.NumSets(),
		Model:         s.oracle.Model().String(),
		BuildSeed:     s.oracle.BuildSeed(),
		CI99:          s.oracle.ConfidenceHalfWidth(2.576),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheSize:     size,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}
