package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/sketchio"
	"imdist/internal/workload"
)

// testOracle builds a small Karate oracle with controllable identity, so
// tests can produce sketches that answer differently from one another.
func testOracle(t testing.TB, model diffusion.Model, sets int, seed uint64) *core.Oracle {
	t.Helper()
	ig, err := workload.Assign(data.Karate(), workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.NewOracleParallelSeeded(ig, model, sets, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func sketchFile(t *testing.T, o *core.Oracle) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), fmt.Sprintf("%s-%d.sketch", o.Model(), o.BuildSeed()))
	if err := sketchio.WriteFile(path, o); err != nil {
		t.Fatal(err)
	}
	return path
}

func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// TestNamedSketchRoutes serves two different sketches from one process and
// checks every named route answers from the right oracle, with the legacy
// unnamed routes aliasing the default.
func TestNamedSketchRoutes(t *testing.T) {
	ic := testOracle(t, diffusion.IC, 20000, 7)
	lt := testOracle(t, diffusion.LT, 10000, 11)
	s, err := New(Config{
		Sketches:      map[string]*core.Oracle{"ic": ic, "lt": lt},
		DefaultSketch: "ic",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, oracle := range map[string]*core.Oracle{"ic": ic, "lt": lt} {
		want, err := oracle.Influence(CanonicalSeeds([]int{0, 33}))
		if err != nil {
			t.Fatal(err)
		}
		status, raw := postJSON(t, ts.URL+"/v1/sketches/"+name+"/influence", `{"seeds":[0,33]}`)
		if status != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", name, status, raw)
		}
		var got InfluenceResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if got.Influence != want {
			t.Errorf("%s influence = %v, want %v", name, got.Influence, want)
		}

		wantV, wantI := oracle.TopSingleVertices(3)
		var top TopResponse
		if status := getJSON(t, ts.URL+"/v1/sketches/"+name+"/top?k=3", &top); status != http.StatusOK {
			t.Fatalf("%s top: status = %d", name, status)
		}
		if len(top.Vertices) != len(wantV) || !reflect.DeepEqual(top.Influences, wantI) {
			t.Errorf("%s top = %v/%v, want %v/%v", name, top.Vertices, top.Influences, wantV, wantI)
		}
	}

	// The IC and LT oracles genuinely answer differently, so route mixups
	// cannot hide.
	icInf, _ := ic.Influence(CanonicalSeeds([]int{0, 33}))
	ltInf, _ := lt.Influence(CanonicalSeeds([]int{0, 33}))
	if icInf == ltInf {
		t.Fatalf("test sketches answer identically (%v); pick different builds", icInf)
	}

	// Legacy unnamed route == default sketch ("ic").
	_, rawLegacy := postJSON(t, ts.URL+"/v1/influence", `{"seeds":[0,33]}`)
	var legacy InfluenceResponse
	if err := json.Unmarshal(rawLegacy, &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Influence != icInf {
		t.Errorf("legacy route = %v, want default sketch's %v", legacy.Influence, icInf)
	}

	// Unknown sketch names 404 with a JSON error.
	status, raw := postJSON(t, ts.URL+"/v1/sketches/nope/influence", `{"seeds":[0]}`)
	if status != http.StatusNotFound {
		t.Errorf("unknown sketch: status = %d, body %s", status, raw)
	}
}

func TestListSketchesAndHealthz(t *testing.T) {
	ic := testOracle(t, diffusion.IC, 20000, 7)
	lt := testOracle(t, diffusion.LT, 10000, 11)
	s, err := New(Config{Sketches: map[string]*core.Oracle{"ic": ic, "lt": lt}, DefaultSketch: "lt"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var list listSketchesResponse
	if status := getJSON(t, ts.URL+"/v1/sketches", &list); status != http.StatusOK {
		t.Fatalf("list status = %d", status)
	}
	if list.Default != "lt" || len(list.Sketches) != 2 {
		t.Fatalf("list = %+v", list)
	}
	byName := map[string]sketchInfo{}
	for _, info := range list.Sketches {
		byName[info.Name] = info
	}
	if got := byName["ic"]; got.Vertices != 34 || got.RRSets != 20000 || got.Model != "IC" || got.BuildSeed != 7 || got.Default {
		t.Errorf("ic info = %+v", got)
	}
	if got := byName["lt"]; got.RRSets != 10000 || got.Model != "LT" || got.BuildSeed != 11 || !got.Default {
		t.Errorf("lt info = %+v", got)
	}

	var hz healthzResponse
	if status := getJSON(t, ts.URL+"/healthz", &hz); status != http.StatusOK {
		t.Fatalf("healthz status = %d", status)
	}
	if hz.Status != "ok" || hz.DefaultSketch != "lt" || hz.Model != "LT" || hz.RRSets != 10000 {
		t.Errorf("healthz = %+v", hz)
	}
	if !reflect.DeepEqual(hz.SketchNames, []string{"ic", "lt"}) {
		t.Errorf("healthz sketch names = %v", hz.SketchNames)
	}
}

func TestAdminLoadUnload(t *testing.T) {
	base := testOracle(t, diffusion.IC, 20000, 7)
	extra := testOracle(t, diffusion.IC, 15000, 99)
	path := sketchFile(t, extra)
	s, err := New(Config{Oracle: base})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, raw := postJSON(t, ts.URL+"/v1/admin/sketches", fmt.Sprintf(`{"name":"extra","path":%q}`, path))
	if status != http.StatusOK {
		t.Fatalf("admin load: status = %d, body %s", status, raw)
	}
	var info sketchInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "extra" || info.BuildSeed != 99 || info.RRSets != 15000 || info.Source != path {
		t.Errorf("loaded info = %+v", info)
	}

	want, err := extra.Influence(CanonicalSeeds([]int{0, 33}))
	if err != nil {
		t.Fatal(err)
	}
	_, raw = postJSON(t, ts.URL+"/v1/sketches/extra/influence", `{"seeds":[0,33]}`)
	var got InfluenceResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Influence != want {
		t.Errorf("loaded sketch influence = %v, want %v", got.Influence, want)
	}

	// Bad loads are 400s: missing file, bad name, missing fields.
	for _, body := range []string{
		fmt.Sprintf(`{"name":"x","path":%q}`, filepath.Join(t.TempDir(), "missing.sketch")),
		fmt.Sprintf(`{"name":"bad/name","path":%q}`, path),
		`{"name":"x"}`,
		fmt.Sprintf(`{"path":%q}`, path),
	} {
		if status, raw := postJSON(t, ts.URL+"/v1/admin/sketches", body); status != http.StatusBadRequest {
			t.Errorf("admin load %s: status = %d, body %s", body, status, raw)
		}
	}

	// Unload and verify queries 404.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/sketches/extra", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin unload: status = %d", resp.StatusCode)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/sketches/extra/influence", `{"seeds":[0]}`); status != http.StatusNotFound {
		t.Errorf("unloaded sketch: status = %d, want 404", status)
	}
	resp, err = http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double unload: status = %d, want 404", resp.StatusCode)
	}
}

// TestAdminLoadStatusCodes pins the admin-load error contract: loading a
// name already held is a 409 unless replace is set, and invalid names are
// 400s before the filesystem is ever touched.
func TestAdminLoadStatusCodes(t *testing.T) {
	base := testOracle(t, diffusion.IC, 20000, 7)
	extra := testOracle(t, diffusion.IC, 15000, 99)
	path := sketchFile(t, extra)
	s, err := New(Config{Oracle: base})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First load under a fresh name succeeds without replace.
	if status, raw := postJSON(t, ts.URL+"/v1/admin/sketches",
		fmt.Sprintf(`{"name":"dup","path":%q}`, path)); status != http.StatusOK {
		t.Fatalf("first load: status = %d, body %s", status, raw)
	}
	// The same name again is a conflict...
	if status, raw := postJSON(t, ts.URL+"/v1/admin/sketches",
		fmt.Sprintf(`{"name":"dup","path":%q}`, path)); status != http.StatusConflict {
		t.Errorf("duplicate load without replace: status = %d, body %s", status, raw)
	}
	// ...including against the default sketch registered at startup...
	if status, raw := postJSON(t, ts.URL+"/v1/admin/sketches",
		fmt.Sprintf(`{"name":%q,"path":%q}`, DefaultSketchName, path)); status != http.StatusConflict {
		t.Errorf("duplicate load of default: status = %d, body %s", status, raw)
	}
	// ...and replace:true opts back into hot-swapping.
	if status, raw := postJSON(t, ts.URL+"/v1/admin/sketches",
		fmt.Sprintf(`{"name":"dup","path":%q,"replace":true}`, path)); status != http.StatusOK {
		t.Errorf("replace load: status = %d, body %s", status, raw)
	}

	// Invalid names are 400s whether or not the path exists.
	for _, name := range []string{"", "a/b", "a b", "..%2f", strings.Repeat("x", 129)} {
		body, _ := json.Marshal(adminLoadRequest{Name: name, Path: path})
		if status, raw := postJSON(t, ts.URL+"/v1/admin/sketches", string(body)); status != http.StatusBadRequest {
			t.Errorf("invalid name %q: status = %d, body %s", name, status, raw)
		}
	}
}

// TestSeedsCacheKeyedBySketchIdentity is the regression test for the seeds
// cache-key collision: the old key was "g:"+k with no sketch identity, so
// with two sketches loaded (or one hot-reloaded) /v1/seeds served one
// sketch's greedy solution for another. The new keys carry the sketch
// identity, and a reload swaps in a fresh cache besides.
func TestSeedsCacheKeyedBySketchIdentity(t *testing.T) {
	a := testOracle(t, diffusion.IC, 20000, 7)
	b := testOracle(t, diffusion.IC, 15000, 99)
	wantA, err := a.Influence(a.GreedySeeds(3))
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := b.Influence(b.GreedySeeds(3))
	if err != nil {
		t.Fatal(err)
	}
	if wantA == wantB {
		t.Fatalf("test oracles agree on greedy influence (%v); pick different builds", wantA)
	}

	s, err := New(Config{Sketches: map[string]*core.Oracle{"a": a, "b": b}, DefaultSketch: "a"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	seedsInfluence := func(url string) float64 {
		t.Helper()
		status, raw := postJSON(t, url, `{"k":3}`)
		if status != http.StatusOK {
			t.Fatalf("seeds: status = %d, body %s", status, raw)
		}
		var got SeedsResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		return got.Influence
	}

	// Warm the cache through the legacy route (sketch "a"), then ask sketch
	// "b": under the old "g:3" key this returned a's cached answer.
	if got := seedsInfluence(ts.URL + "/v1/seeds"); got != wantA {
		t.Fatalf("default seeds influence = %v, want %v", got, wantA)
	}
	if got := seedsInfluence(ts.URL + "/v1/sketches/b/seeds"); got != wantB {
		t.Errorf("sketch b seeds influence = %v, want %v (cache collided across sketches)", got, wantB)
	}

	// Hot-reload "a" with b's contents under the same name; the cached
	// answer for the old build must not survive the reload.
	status, raw := postJSON(t, ts.URL+"/v1/admin/sketches",
		fmt.Sprintf(`{"name":"a","path":%q,"replace":true}`, sketchFile(t, b)))
	if status != http.StatusOK {
		t.Fatalf("reload: status = %d, body %s", status, raw)
	}
	if got := seedsInfluence(ts.URL + "/v1/seeds"); got != wantB {
		t.Errorf("post-reload seeds influence = %v, want %v (stale cache served across reload)", got, wantB)
	}
}

// TestSeedsSingleFlight is the cache-stampede regression test: N concurrent
// identical cold-cache /v1/seeds requests must run greedy selection exactly
// once (run with -race in CI).
func TestSeedsSingleFlight(t *testing.T) {
	s, err := New(Config{Oracle: testOracle(t, diffusion.IC, 200000, 7)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	start.Add(1)
	responses := make([][]byte, clients)
	for i := 0; i < clients; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			status, raw := postJSON(t, ts.URL+"/v1/seeds", `{"k":10}`)
			if status != http.StatusOK {
				t.Errorf("client %d: status = %d", i, status)
			}
			responses[i] = raw
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 1; i < clients; i++ {
		if string(responses[i]) != string(responses[0]) {
			t.Fatalf("client %d got a different answer: %s vs %s", i, responses[i], responses[0])
		}
	}
	var list listSketchesResponse
	getJSON(t, ts.URL+"/v1/sketches", &list)
	if len(list.Sketches) != 1 {
		t.Fatalf("list = %+v", list)
	}
	if got := list.Sketches[0].SeedComputations; got != 1 {
		t.Errorf("seed computations = %d, want 1 (stampede: concurrent identical requests each ran greedy)", got)
	}
}

// TestConcurrentMixedSketchesWithReload is the acceptance test for the
// registry: two memory-mapped sketches serve interleaved influence / batch /
// seeds / top traffic from many goroutines while one goroutine hot-reloads
// both sketches over and over through the admin endpoint. Every answer must
// equal the per-oracle ground truth (reloads swap in byte-identical files),
// and under -race plus the sketchio refcounting no query may touch an
// unmapped sketch.
func TestConcurrentMixedSketchesWithReload(t *testing.T) {
	ic := testOracle(t, diffusion.IC, 20000, 7)
	lt := testOracle(t, diffusion.LT, 10000, 11)
	icPath, ltPath := sketchFile(t, ic), sketchFile(t, lt)

	s, err := New(Config{AllowEmpty: true, DefaultSketch: "ic"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().LoadFile("ic", icPath); err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().LoadFile("lt", ltPath); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type ground struct {
		name     string
		infBody  string
		inf      float64
		batch    string
		batchInf []float64
		seedsInf float64
		topInf   []float64
	}
	truth := make([]ground, 0, 2)
	for name, oracle := range map[string]*core.Oracle{"ic": ic, "lt": lt} {
		g := ground{name: name, infBody: `{"seeds":[0,33]}`, batch: `[{"seeds":[0]},{"seeds":[1,2]},{"seeds":[32,33]}]`}
		var err error
		if g.inf, err = oracle.Influence(CanonicalSeeds([]int{0, 33})); err != nil {
			t.Fatal(err)
		}
		for _, seeds := range [][]int{{0}, {1, 2}, {32, 33}} {
			inf, err := oracle.Influence(CanonicalSeeds(seeds))
			if err != nil {
				t.Fatal(err)
			}
			g.batchInf = append(g.batchInf, inf)
		}
		if g.seedsInf, err = oracle.Influence(oracle.GreedySeeds(3)); err != nil {
			t.Fatal(err)
		}
		_, g.topInf = oracle.TopSingleVertices(4)
		truth = append(truth, g)
	}

	const goroutines = 12
	const iters = 40
	var queries, reloads sync.WaitGroup
	stopReload := make(chan struct{})

	// The reloader: hot-replace both sketches continuously, through the same
	// admin endpoint an operator would use.
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		client := ts.Client()
		for i := 0; ; i++ {
			select {
			case <-stopReload:
				return
			default:
			}
			name, path := "ic", icPath
			if i%2 == 1 {
				name, path = "lt", ltPath
			}
			body := fmt.Sprintf(`{"name":%q,"path":%q,"replace":true}`, name, path)
			resp, err := client.Post(ts.URL+"/v1/admin/sketches", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("reload %s: status %d", name, resp.StatusCode)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for g := 0; g < goroutines; g++ {
		queries.Add(1)
		go func(g int) {
			defer queries.Done()
			client := ts.Client()
			for i := 0; i < iters; i++ {
				gt := truth[(g+i)%len(truth)]
				base := ts.URL + "/v1/sketches/" + gt.name
				switch i % 4 {
				case 0:
					status, raw := postJSON(t, base+"/influence", gt.infBody)
					var got InfluenceResponse
					if status != http.StatusOK || json.Unmarshal(raw, &got) != nil || got.Influence != gt.inf {
						t.Errorf("%s influence = %s (status %d), want %v", gt.name, raw, status, gt.inf)
						return
					}
				case 1:
					status, raw := postJSON(t, base+"/influence:batch", gt.batch)
					var items []struct {
						Influence float64 `json:"influence"`
						Error     string  `json:"error"`
					}
					if status != http.StatusOK || json.Unmarshal(raw, &items) != nil || len(items) != len(gt.batchInf) {
						t.Errorf("%s batch = %s (status %d)", gt.name, raw, status)
						return
					}
					for j := range items {
						if items[j].Error != "" || items[j].Influence != gt.batchInf[j] {
							t.Errorf("%s batch item %d = %+v, want %v", gt.name, j, items[j], gt.batchInf[j])
							return
						}
					}
				case 2:
					status, raw := postJSON(t, base+"/seeds", `{"k":3}`)
					var got SeedsResponse
					if status != http.StatusOK || json.Unmarshal(raw, &got) != nil || got.Influence != gt.seedsInf {
						t.Errorf("%s seeds = %s (status %d), want %v", gt.name, raw, status, gt.seedsInf)
						return
					}
				case 3:
					resp, err := client.Get(base + "/top?k=4")
					if err != nil {
						t.Error(err)
						return
					}
					var got TopResponse
					err = json.NewDecoder(resp.Body).Decode(&got)
					resp.Body.Close()
					if err != nil || !reflect.DeepEqual(got.Influences, gt.topInf) {
						t.Errorf("%s top = %v (err %v), want %v", gt.name, got.Influences, err, gt.topInf)
						return
					}
				}
			}
		}(g)
	}

	// Let queries finish, then stop the reloader.
	done := make(chan struct{})
	go func() { queries.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("mixed-sketch load test timed out")
	}
	close(stopReload)
	reloads.Wait()
}

func TestTimeoutConfig(t *testing.T) {
	oracle := testOracle(t, diffusion.IC, 1000, 1)
	cases := []struct {
		name         string
		read, write  time.Duration
		wantR, wantW time.Duration
	}{
		{"defaults", 0, 0, DefaultReadTimeout, DefaultWriteTimeout},
		{"explicit", 10 * time.Second, 3 * time.Minute, 10 * time.Second, 3 * time.Minute},
		{"disabled", -1, -1, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := New(Config{Oracle: oracle, ReadTimeout: c.read, WriteTimeout: c.write})
			if err != nil {
				t.Fatal(err)
			}
			hs := s.httpServer(":0")
			if hs.ReadTimeout != c.wantR || hs.WriteTimeout != c.wantW {
				t.Errorf("timeouts = %v/%v, want %v/%v", hs.ReadTimeout, hs.WriteTimeout, c.wantR, c.wantW)
			}
		})
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	oracle := testOracle(t, diffusion.IC, 1000, 1)
	r := NewRegistry(16)
	for _, name := range []string{"", "a/b", "a b", "a\nb", strings.Repeat("x", 200)} {
		if err := r.Register(name, oracle); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
	if err := r.Register("ok-name.v1_2", oracle); err != nil {
		t.Errorf("valid name rejected: %v", err)
	}
}
