package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"imdist/internal/core"
	"imdist/internal/sketchio"
)

// sketchNameRe limits sketch names to one URL path segment of safe
// characters, since names are routed as /v1/sketches/{name}/... .
var sketchNameRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

// ErrUnknownSketch reports a query or admin operation naming a sketch the
// registry does not hold.
var ErrUnknownSketch = errors.New("server: unknown sketch")

// sketchEntry is one loaded sketch: the oracle plus everything whose
// lifetime must match it — the per-sketch result cache, the per-sketch
// single-flight group, the identity prefix of its cache keys, and the
// refcounted mapping it may alias. Entries are immutable after construction;
// a reload builds a fresh entry and swaps it in (copy-on-swap), so in-flight
// queries keep a consistent view of oracle + cache + identity throughout.
type sketchEntry struct {
	name   string
	oracle *core.Oracle
	cache  *lruCache
	flight *flightGroup
	// keyPrefix encodes the sketch's identity (name, diffusion model, build
	// seed, n, RR-set count) into every cache key. Isolation primarily comes
	// from each entry owning its cache — a reload swaps in a fresh one — but
	// the identity prefix keeps the keys collision-free by construction even
	// if entries ever share a store (and makes stale-entry bugs impossible
	// to reintroduce silently).
	keyPrefix string
	source    string
	loadedAt  time.Time
	// mapped is the refcounted file mapping backing the oracle, nil for
	// in-memory oracles. Queries hold a reference for their whole duration
	// (acquire/release), so an unload or reload never unmaps under them.
	mapped *sketchio.MappedSketch
	// seedRuns counts actual GreedySeeds computations (not cache or
	// single-flight joins); /v1/sketches reports it, and the stampede
	// regression test asserts it stays at 1 under concurrent identical load.
	seedRuns atomic.Uint64
}

func newSketchEntry(name string, oracle *core.Oracle, mapped *sketchio.MappedSketch, source string, cacheSize int) *sketchEntry {
	return &sketchEntry{
		name:   name,
		oracle: oracle,
		cache:  newLRUCache(cacheSize),
		flight: newFlightGroup(),
		keyPrefix: fmt.Sprintf("%s|%s|%d|%d|%d|", name,
			oracle.Model(), oracle.BuildSeed(), oracle.NumVertices(), oracle.NumSets()),
		source:   source,
		loadedAt: time.Now(),
		mapped:   mapped,
	}
}

// acquire takes a query reference on the entry's backing storage. It returns
// false only when the entry was unloaded and its mapping already closed
// between the registry lookup and this call — impossible while the registry
// holds the entry, since the owner reference is dropped only after removal.
func (e *sketchEntry) acquire() bool {
	if e.mapped == nil {
		return true
	}
	return e.mapped.Acquire()
}

func (e *sketchEntry) release() {
	if e.mapped != nil {
		e.mapped.Release()
	}
}

// retire drops the registry's owner reference after the entry has been
// swapped out; the backing mapping is unmapped once the last in-flight
// query releases.
func (e *sketchEntry) retire() {
	if e.mapped != nil {
		e.mapped.Close()
	}
}

// Registry is the named set of sketches a Server routes queries to. All
// methods are safe for concurrent use with each other and with query
// traffic; loads and unloads are copy-on-swap, so queries in flight on a
// replaced sketch finish on the oracle they started with while new requests
// see the replacement.
type Registry struct {
	mu          sync.RWMutex
	entries     map[string]*sketchEntry
	defaultName string
	cacheSize   int
	// kernel is applied to every oracle that enters the registry (Register
	// and LoadFile), so one server-level knob governs all sketches uniformly.
	kernel core.Kernel
}

// NewRegistry returns an empty registry whose sketches each get an LRU
// result cache of cacheSize entries (negative disables caching).
func NewRegistry(cacheSize int) *Registry {
	return &Registry{entries: make(map[string]*sketchEntry), cacheSize: cacheSize}
}

// SetKernel selects the coverage kernel applied to every sketch subsequently
// registered or loaded (server.New calls it with Config.Kernel before the
// first registration). Sketches already held are unaffected.
func (r *Registry) SetKernel(k core.Kernel) {
	r.mu.Lock()
	r.kernel = k
	r.mu.Unlock()
}

// applyKernel installs the registry's kernel selection on an oracle about to
// enter the registry. The kernel was validated when it was set, so the
// oracle's own validation cannot fail here.
func (r *Registry) applyKernel(oracle *core.Oracle) {
	r.mu.RLock()
	k := r.kernel
	r.mu.RUnlock()
	if k != "" {
		_ = oracle.SetKernel(k)
	}
}

func validateSketchName(name string) error {
	if !sketchNameRe.MatchString(name) {
		return fmt.Errorf("server: invalid sketch name %q (want one path segment of [A-Za-z0-9._-], at most 128 chars)", name)
	}
	return nil
}

// SketchNameForFile derives a sketch's registry name from its file path:
// the base name without the .sketch extension.
func SketchNameForFile(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".sketch")
}

// ParseSketchSpec splits one CLI sketch spec into its name and file path.
// A spec is either "name=path" or a bare path, whose name is derived with
// SketchNameForFile; imserve's -sketch and imbench's -sketch flags share
// this syntax.
func ParseSketchSpec(spec string) (name, path string, err error) {
	if n, p, ok := strings.Cut(spec, "="); ok {
		if n == "" || p == "" {
			return "", "", fmt.Errorf("server: invalid sketch spec %q: want name=path", spec)
		}
		return n, p, nil
	}
	if spec == "" {
		return "", "", errors.New("server: empty sketch spec")
	}
	return SketchNameForFile(spec), spec, nil
}

// Register loads an in-memory oracle under name, replacing any sketch
// already held under it. The first sketch registered becomes the default
// unless a default was set explicitly.
func (r *Registry) Register(name string, oracle *core.Oracle) error {
	if oracle == nil {
		return errors.New("server: Register requires an oracle")
	}
	if err := validateSketchName(name); err != nil {
		return err
	}
	r.applyKernel(oracle)
	r.swap(newSketchEntry(name, oracle, nil, "", r.cacheSize))
	return nil
}

// LoadFile loads the sketch file at path under name, replacing any sketch
// already held under it. The file is memory-mapped (and served zero-copy)
// where the platform supports it; the previous mapping, if any, is unmapped
// once its last in-flight query finishes.
func (r *Registry) LoadFile(name, path string) error {
	if err := validateSketchName(name); err != nil {
		return err
	}
	m, err := sketchio.OpenMapped(path)
	if err != nil {
		return fmt.Errorf("loading sketch %q from %s: %w", name, path, err)
	}
	r.applyKernel(m.Oracle())
	r.swap(newSketchEntry(name, m.Oracle(), m, path, r.cacheSize))
	return nil
}

func (r *Registry) swap(e *sketchEntry) {
	r.mu.Lock()
	old := r.entries[e.name]
	r.entries[e.name] = e
	if r.defaultName == "" {
		r.defaultName = e.name
	}
	r.mu.Unlock()
	if old != nil {
		old.retire()
	}
}

// Unload removes the sketch held under name; its backing storage is
// released once the last in-flight query finishes. Unloading the default
// sketch leaves the default name dangling: legacy unnamed routes 404 until
// the name is loaded again or the default is changed.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	old, ok := r.entries[name]
	if ok {
		delete(r.entries, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSketch, name)
	}
	old.retire()
	return nil
}

// UnloadAll removes every sketch (shutdown path).
func (r *Registry) UnloadAll() {
	r.mu.Lock()
	old := r.entries
	r.entries = make(map[string]*sketchEntry)
	r.mu.Unlock()
	for _, e := range old {
		e.retire()
	}
}

// SetDefault names the sketch legacy unnamed routes alias. The name does
// not need to be loaded yet (imserve sets the default before its first
// directory scan); unnamed routes 404 until it is.
func (r *Registry) SetDefault(name string) error {
	if err := validateSketchName(name); err != nil {
		return err
	}
	r.mu.Lock()
	r.defaultName = name
	r.mu.Unlock()
	return nil
}

// DefaultName returns the name aliased by legacy unnamed routes ("" when no
// sketch has ever been registered and no default was set).
func (r *Registry) DefaultName() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defaultName
}

// Names returns the loaded sketch names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Contains reports whether a sketch is loaded under name.
func (r *Registry) Contains(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[name]
	return ok
}

// Len returns the number of loaded sketches.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// acquire resolves name ("" means the default sketch) to its entry and takes
// a query reference on it; the caller must release() when the query is done.
// The reference is taken under the registry lock, so a concurrent unload or
// reload cannot unmap the entry before the caller is counted.
func (r *Registry) acquire(name string) (*sketchEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		name = r.defaultName
	}
	e, ok := r.entries[name]
	if !ok || !e.acquire() {
		return nil, false
	}
	return e, true
}

// snapshot returns the current entries (references NOT acquired — callers
// must only read immutable fields and counters) plus the default name.
func (r *Registry) snapshot() ([]*sketchEntry, string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	entries := make([]*sketchEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	return entries, r.defaultName
}

// flightGroup collapses concurrent duplicate work: all callers of Do with
// the same key while a call is in flight share that call's single execution
// and result. This is the stampede fix for cold-cache /v1/seeds — N
// identical concurrent requests run greedy selection once.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do runs fn once per key among concurrent callers: the first caller
// executes, the rest block and share its return values.
func (g *flightGroup) Do(key string, fn func() (any, error)) (any, error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	return c.val, c.err
}
