package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/sketchio"
	"imdist/internal/workload"
)

// Defaults for the async build service (Config zero values).
const (
	// DefaultBuildConcurrency is how many sketch builds run at once; queued
	// builds wait their turn. Builds are CPU-hungry (each already
	// parallelizes across workers), so one at a time is the safe default next
	// to live query traffic.
	DefaultBuildConcurrency = 1
	// DefaultMaxQueuedBuilds bounds the build queue; past it, submissions are
	// rejected with 503.
	DefaultMaxQueuedBuilds = 16
	// DefaultMaxBuildSets caps the max_sets a single build may request
	// (memory protection: RR sets live on the heap until the sketch is done).
	DefaultMaxBuildSets = 50_000_000
)

// BuildState is the lifecycle state of an async build job.
type BuildState string

// The build job states. Queued and running are live; the rest are terminal.
const (
	BuildQueued    BuildState = "queued"
	BuildRunning   BuildState = "running"
	BuildSucceeded BuildState = "succeeded"
	BuildFailed    BuildState = "failed"
	BuildCancelled BuildState = "cancelled"
)

func (s BuildState) terminal() bool {
	return s == BuildSucceeded || s == BuildFailed || s == BuildCancelled
}

// buildRequest is the body of POST /v1/admin/builds: build a sketch from a
// named dataset or an edge-list file, adaptively (target_eps) or to a fixed
// size, and load the result into the registry under Name when it completes.
type buildRequest struct {
	// Name is the registry name the finished sketch is loaded under.
	Name string `json:"name"`
	// Dataset is a named dataset ("Karate", ...); Graph is a path to a
	// directed edge-list file. Exactly one must be set.
	Dataset string `json:"dataset,omitempty"`
	Graph   string `json:"graph,omitempty"`
	// Prob is the edge-probability model (default "iwc").
	Prob string `json:"prob,omitempty"`
	// Model is the diffusion model, "IC" (default) or "LT".
	Model string `json:"model,omitempty"`
	// Seed pins the build's RR-set sequence (and doubles as the probability
	// assignment seed, as in imsketch).
	Seed uint64 `json:"seed"`
	// Workers is the build parallelism (0 = all CPUs, otherwise the
	// OracleOptions semantics).
	Workers int `json:"workers,omitempty"`
	// MaxSets caps the sketch size. Required.
	MaxSets int `json:"max_sets"`
	// TargetEps > 0 makes the build adaptive: it stops as soon as the
	// ErrorBound relative error reaches it (or at MaxSets). 0 builds straight
	// to MaxSets.
	TargetEps float64 `json:"target_eps,omitempty"`
	// Delta and K parameterize the error bound (defaults
	// core.DefaultBoundDelta / core.DefaultBoundK).
	Delta float64 `json:"delta,omitempty"`
	K     int     `json:"k,omitempty"`
	// Out, when set, writes the finished sketch to this path (atomic temp +
	// rename) and serves it memory-mapped from there; empty serves it from
	// the heap.
	Out string `json:"out,omitempty"`
	// Spill streams every generated batch to a spill file next to Out
	// (<out>.spill) instead of holding all RR sets on the heap, bounding the
	// build's memory by MemBudgetBytes. Requires Out. The finished sketch is
	// byte-identical to an in-memory build; the spill file is removed after
	// the sketch is written.
	Spill bool `json:"spill,omitempty"`
	// MemBudgetBytes bounds the spill working set (0 = the 64 MiB default).
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
	// Replace permits overwriting a sketch already loaded under Name;
	// without it a duplicate name is rejected up front with 409.
	Replace bool `json:"replace,omitempty"`
	// Default additionally points the legacy unnamed routes at the sketch.
	Default bool `json:"default,omitempty"`
}

// buildJob is one tracked build. Mutable state is guarded by mu; the identity
// fields are immutable after submission.
type buildJob struct {
	id      string
	req     buildRequest
	created time.Time
	// ctx spans the job's whole life; cancel flips it (DELETE endpoint,
	// manager shutdown). A running build observes it between rounds.
	ctx    context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	state      BuildState
	started    time.Time
	finished   time.Time
	sets       int
	bound      float64
	fraction   float64
	spillBytes int64
	errMsg     string
}

// buildStatus is the JSON view of a job (POST response and GET bodies).
type buildStatus struct {
	ID        string     `json:"id"`
	Name      string     `json:"name"`
	State     BuildState `json:"state"`
	Sets      int        `json:"sets"`
	MaxSets   int        `json:"max_sets"`
	TargetEps float64    `json:"target_eps,omitempty"`
	// Bound is the latest ErrorBound estimate (absent until first computed).
	Bound float64 `json:"bound,omitempty"`
	// Progress estimates completion in [0, 1].
	Progress float64 `json:"progress"`
	// SpillBytes is the spill file's current size (spill builds only).
	SpillBytes int64  `json:"spill_bytes,omitempty"`
	Error      string `json:"error,omitempty"`
	// CreatedSecondsAgo / RunSeconds situate the job in time without leaking
	// absolute clocks.
	CreatedSecondsAgo float64 `json:"created_seconds_ago"`
	RunSeconds        float64 `json:"run_seconds,omitempty"`
}

func (j *buildJob) status() buildStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := buildStatus{
		ID:                j.id,
		Name:              j.req.Name,
		State:             j.state,
		Sets:              j.sets,
		MaxSets:           j.req.MaxSets,
		TargetEps:         j.req.TargetEps,
		Progress:          j.fraction,
		SpillBytes:        j.spillBytes,
		Error:             j.errMsg,
		CreatedSecondsAgo: time.Since(j.created).Seconds(),
	}
	// JSON has no +Inf; leave the bound absent until it is a real number.
	if !math.IsInf(j.bound, 0) && !math.IsNaN(j.bound) && j.bound > 0 {
		st.Bound = j.bound
	}
	switch {
	case j.state == BuildRunning:
		st.RunSeconds = time.Since(j.started).Seconds()
	case j.state.terminal() && !j.started.IsZero():
		st.RunSeconds = j.finished.Sub(j.started).Seconds()
	}
	return st
}

// buildManager owns the build queue: a bounded channel drained by a fixed
// pool of runner goroutines, plus the job table served by the status
// endpoints. Jobs hand their finished sketches to the registry.
type buildManager struct {
	registry *Registry
	maxSets  int

	mu     sync.Mutex
	jobs   map[string]*buildJob
	order  []string // submission order, for stable listings
	nextID int

	queue chan *buildJob
	stop  context.CancelFunc
	done  sync.WaitGroup
}

func newBuildManager(reg *Registry, concurrency, queueCap, maxSets int) *buildManager {
	ctx, cancel := context.WithCancel(context.Background())
	m := &buildManager{
		registry: reg,
		maxSets:  maxSets,
		jobs:     make(map[string]*buildJob),
		queue:    make(chan *buildJob, queueCap),
		stop:     cancel,
	}
	m.done.Add(concurrency)
	for i := 0; i < concurrency; i++ {
		go func() {
			defer m.done.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case job := <-m.queue:
					m.run(ctx, job)
				}
			}
		}()
	}
	return m
}

// shutdown cancels every live job and stops the runner pool (server
// shutdown path). Queued jobs flip to cancelled; the running ones observe
// their context between build rounds.
func (m *buildManager) shutdown() {
	m.mu.Lock()
	for _, j := range m.jobs {
		j.cancel()
		j.mu.Lock()
		if j.state == BuildQueued {
			j.state = BuildCancelled
			j.finished = time.Now()
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	m.stop()
	m.done.Wait()
}

// validate normalizes req in place and reports the first problem as a
// user-facing message ("" when valid). statusConflict distinguishes 409s.
func (m *buildManager) validate(req *buildRequest) (msg string, status int) {
	if err := validateSketchName(req.Name); err != nil {
		return err.Error(), http.StatusBadRequest
	}
	if (req.Dataset == "") == (req.Graph == "") {
		return "exactly one of dataset or graph is required", http.StatusBadRequest
	}
	if req.Prob == "" {
		req.Prob = "iwc"
	}
	if _, err := workload.ParseModel(req.Prob); err != nil {
		return err.Error(), http.StatusBadRequest
	}
	if req.Model == "" {
		req.Model = "IC"
	}
	if _, err := diffusion.ParseModel(req.Model); err != nil {
		return err.Error(), http.StatusBadRequest
	}
	if req.MaxSets < 1 || req.MaxSets > m.maxSets {
		return fmt.Sprintf("max_sets must be in [1, %d], got %d", m.maxSets, req.MaxSets), http.StatusBadRequest
	}
	if req.TargetEps < 0 || req.Delta < 0 || req.Delta >= 1 {
		return "target_eps must be >= 0 and delta in [0, 1)", http.StatusBadRequest
	}
	if req.MemBudgetBytes < 0 {
		return "mem_budget_bytes must be >= 0", http.StatusBadRequest
	}
	if req.Spill && req.Out == "" {
		return "spill requires out (the spill file lives next to the sketch)", http.StatusBadRequest
	}
	if req.Workers == 0 {
		req.Workers = -1
	}
	if !req.Replace && m.registry.Contains(req.Name) {
		return fmt.Sprintf("sketch %q already loaded (set replace to overwrite)", req.Name), http.StatusConflict
	}
	return "", 0
}

// submit validates and enqueues a build. It returns the queued job, or a
// user-facing error message with its HTTP status.
func (m *buildManager) submit(req buildRequest) (*buildJob, string, int) {
	if msg, status := m.validate(&req); msg != "" {
		return nil, msg, status
	}
	job := &buildJob{
		req:     req,
		created: time.Now(),
		state:   BuildQueued,
	}
	// The job context is deliberately detached from the submitting request:
	// a build keeps running after the submitting client disconnects, and is
	// cancelled through its own handle instead — DELETE /v1/builds/{id}
	// (cancelJob), manager shutdown, or the pool context via the AfterFunc
	// wired in run().
	//imvet:allow ctxflow — job outlives the request by design; cancellation flows through job.cancel
	job.ctx, job.cancel = context.WithCancel(context.Background())
	m.mu.Lock()
	m.nextID++
	job.id = "build-" + strconv.Itoa(m.nextID)
	select {
	case m.queue <- job:
	default:
		m.mu.Unlock()
		job.cancel()
		return nil, fmt.Sprintf("build queue full (%d queued)", cap(m.queue)), http.StatusServiceUnavailable
	}
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.pruneFinishedLocked()
	m.mu.Unlock()
	return job, "", 0
}

// maxFinishedBuilds bounds how many terminal jobs the manager keeps for
// status queries; beyond it the oldest finished jobs are forgotten, so a
// long-lived server with periodic rebuilds holds a bounded job table.
const maxFinishedBuilds = 64

func (j *buildJob) inTerminalState() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal()
}

// pruneFinishedLocked evicts the oldest terminal jobs past maxFinishedBuilds.
// Live (queued/running) jobs are never evicted. Caller holds m.mu.
func (m *buildManager) pruneFinishedLocked() {
	finished := 0
	for _, id := range m.order {
		if m.jobs[id].inTerminalState() {
			finished++
		}
	}
	if finished <= maxFinishedBuilds {
		return
	}
	keep := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if finished > maxFinishedBuilds && j.inTerminalState() {
			delete(m.jobs, id)
			j.cancel()
			finished--
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}

func (m *buildManager) get(id string) (*buildJob, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (m *buildManager) list() []buildStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*buildJob, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]buildStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// cancelJob requests cancellation. Queued jobs terminate immediately; running
// jobs stop at their next build round. Terminal jobs report a conflict.
func (m *buildManager) cancelJob(j *buildJob) (buildStatus, bool) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return j.status(), false
	}
	if j.state == BuildQueued {
		j.state = BuildCancelled
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.cancel()
	return j.status(), true
}

// run executes one job start to finish. poolCtx cancels with the whole
// manager (server shutdown); the job's own context cancels just this build.
func (m *buildManager) run(poolCtx context.Context, job *buildJob) {
	job.mu.Lock()
	if job.state != BuildQueued { // cancelled while waiting
		job.mu.Unlock()
		return
	}
	job.state = BuildRunning
	job.started = time.Now()
	job.bound = math.Inf(1)
	job.mu.Unlock()

	// The build stops on either signal: this job's cancel, or the whole
	// manager shutting down.
	ctx, cancel := context.WithCancel(job.ctx)
	defer cancel()
	stop := context.AfterFunc(poolCtx, cancel)
	defer stop()
	err := m.executeBuild(ctx, job)

	// The job is terminal either way; release its context resources.
	defer job.cancel()
	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	switch {
	case err == nil:
		job.state = BuildSucceeded
		job.fraction = 1
	case errors.Is(err, context.Canceled):
		job.state = BuildCancelled
	default:
		job.state = BuildFailed
		job.errMsg = err.Error()
	}
}

// executeBuild loads the graph, runs the (possibly adaptive) incremental
// build with progress mirrored into the job, and loads the finished sketch
// into the registry.
func (m *buildManager) executeBuild(ctx context.Context, job *buildJob) error {
	req := job.req
	ig, err := loadBuildGraph(req)
	if err != nil {
		return err
	}
	model, err := diffusion.ParseModel(req.Model)
	if err != nil {
		return err
	}
	target := core.BuildTarget{
		Eps:     req.TargetEps,
		Delta:   req.Delta,
		K:       req.K,
		MaxSets: req.MaxSets,
		Progress: func(p core.BuildProgress) error {
			job.mu.Lock()
			job.sets = p.Sets
			job.bound = p.Bound
			job.fraction = p.Fraction
			job.spillBytes = p.SpillBytes
			job.mu.Unlock()
			return nil
		},
	}
	var builder *core.SketchBuilder
	if req.Spill {
		// The spill file lives next to the final sketch and is the build's
		// primary storage; a previous run's file is not resumed (a submitted
		// job is a fresh build), so clear it first.
		spillPath := req.Out + ".spill"
		if err := os.Remove(spillPath); err != nil && !os.IsNotExist(err) {
			return err
		}
		b, store, _, err := sketchio.BuildSpill(ctx, spillPath, ig, model, req.Workers, req.Seed, req.MemBudgetBytes, target)
		if store != nil {
			// The oracle below reads through the store, so it closes only
			// after the sketch file is written; then the spill file goes too.
			defer func() {
				_ = store.Close()
				os.Remove(spillPath)
			}()
		}
		if err != nil {
			return err
		}
		builder = b
	} else {
		builder, err = core.NewSketchBuilder(ig, model, req.Workers, req.Seed)
		if err != nil {
			return err
		}
		if _, err := builder.BuildToTarget(ctx, target); err != nil {
			return err
		}
	}
	oracle, err := builder.Oracle()
	if err != nil {
		return err
	}
	// Re-check the replace guard at completion: the name may have been
	// loaded (admin endpoint, another build) while this build ran, and
	// Register/LoadFile would overwrite it unconditionally. The remaining
	// check-to-register window is milliseconds instead of the build's
	// minutes; an operator race inside it hot-replaces, as documented for
	// the admin load path.
	if !req.Replace && m.registry.Contains(req.Name) {
		return fmt.Errorf("sketch %q was loaded while the build ran; resubmit with replace to overwrite", req.Name)
	}
	if req.Out != "" {
		if err := sketchio.WriteFile(req.Out, oracle); err != nil {
			return err
		}
		if err := m.registry.LoadFile(req.Name, req.Out); err != nil {
			return err
		}
	} else if err := m.registry.Register(req.Name, oracle); err != nil {
		return err
	}
	if req.Default {
		if err := m.registry.SetDefault(req.Name); err != nil {
			return err
		}
	}
	return nil
}

// loadBuildGraph materializes the influence graph a build request names.
func loadBuildGraph(req buildRequest) (*graph.InfluenceGraph, error) {
	var (
		g   *graph.Graph
		err error
	)
	if req.Dataset != "" {
		ds, perr := data.Parse(req.Dataset)
		if perr != nil {
			return nil, perr
		}
		g, err = data.Load(ds, data.DefaultOptions())
	} else {
		f, oerr := os.Open(req.Graph)
		if oerr != nil {
			return nil, oerr
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f)
	}
	if err != nil {
		return nil, err
	}
	prob, err := workload.ParseModel(req.Prob)
	if err != nil {
		return nil, err
	}
	return workload.Assign(g, prob, rng.NewXoshiro(req.Seed))
}

// The HTTP surface of the build service.

func (s *Server) handleBuildSubmit(w http.ResponseWriter, r *http.Request) {
	var req buildRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	job, msg, status := s.builds.submit(req)
	if msg != "" {
		writeError(w, status, "%s", msg)
		return
	}
	writeJSON(w, http.StatusAccepted, job.status())
}

type buildListResponse struct {
	Builds []buildStatus `json:"builds"`
}

func (s *Server) handleBuildList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, buildListResponse{Builds: s.builds.list()})
}

func (s *Server) handleBuildGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.builds.get(r.PathValue("build"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown build %q", r.PathValue("build"))
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleBuildCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.builds.get(r.PathValue("build"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown build %q", r.PathValue("build"))
		return
	}
	st, cancelled := s.builds.cancelJob(job)
	if !cancelled {
		writeError(w, http.StatusConflict, "build %s already %s", job.id, st.State)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
