package server

import (
	"net/http"

	"imdist/internal/core"
	"imdist/internal/graph"
)

// Shard endpoints: the integer-count primitives a cluster coordinator
// scatter-gathers over a partitioned sketch fleet (internal/cluster). Unlike
// the public /v1 query endpoints, which answer in influence units, these
// return raw per-shard RR-set counts — pure merge-able integers. The single
// float division by the fleet-wide total happens once, at the coordinator,
// which is what keeps distributed answers byte-identical to a single process
// on the unsplit sketch.
//
//	POST /v1/shard/coverage  {"seed_sets":[[0,5],[3]]} -> {"counts":[..],"shard_index":..,...}
//	POST /v1/shard/marginal  {"seeds":[..],"candidates":[..]} -> {"gains":[..],...}
//
// Both also exist as named routes (/v1/sketches/{name}/shard/...). Every
// response carries the sketch's shard identity so the coordinator can verify,
// per query, that the fleet is assembled from the shards it thinks it is; an
// unsharded sketch reports itself as shard 0 of a 1-shard fleet, making a
// plain single sketch a degenerate—but valid—fleet.

// ShardIdentity names the sketch a shard response was computed on: the build
// identity shared by every shard of a split, plus this shard's slice of the
// fleet.
type ShardIdentity struct {
	Vertices   int    `json:"vertices"`
	Model      string `json:"model"`
	BuildSeed  uint64 `json:"build_seed"`
	NumSets    int    `json:"num_sets"`
	ShardIndex int    `json:"shard_index"`
	ShardCount int    `json:"shard_count"`
	TotalSets  int    `json:"total_sets"`
}

// shardIdentity describes o for a shard response, synthesizing the 1-shard
// fleet view for unsharded sketches.
func shardIdentity(o *core.Oracle) ShardIdentity {
	l := o.ShardLineage()
	if !l.Sharded() {
		l = core.ShardLineage{Index: 0, Count: 1, TotalSets: o.NumSets()}
	}
	return ShardIdentity{
		Vertices:   o.NumVertices(),
		Model:      o.Model().String(),
		BuildSeed:  o.BuildSeed(),
		NumSets:    o.NumSets(),
		ShardIndex: l.Index,
		ShardCount: l.Count,
		TotalSets:  l.TotalSets,
	}
}

// ShardCoverageRequest evaluates many seed sets against this shard's slice of
// the RR-set pool.
type ShardCoverageRequest struct {
	SeedSets [][]int `json:"seed_sets"`
}

// ShardCoverageResponse carries one exact coverage count per requested seed
// set. Errors, when present, is item-parallel ("" for valid items), so one
// bad seed set never fails the scatter.
type ShardCoverageResponse struct {
	ShardIdentity
	Counts []int64  `json:"counts"`
	Errors []string `json:"errors,omitempty"`
}

func (s *Server) handleShardCoverage(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	defer e.release()
	var req ShardCoverageRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.SeedSets) == 0 {
		writeError(w, http.StatusBadRequest, "seed_sets must be non-empty")
		return
	}
	if len(req.SeedSets) > s.cfg.MaxBatchQueries {
		writeError(w, http.StatusBadRequest, "too many seed sets: %d > %d", len(req.SeedSets), s.cfg.MaxBatchQueries)
		return
	}
	resp := ShardCoverageResponse{
		ShardIdentity: shardIdentity(e.oracle),
		Counts:        make([]int64, len(req.SeedSets)),
	}
	seedSets := make([][]graph.VertexID, len(req.SeedSets))
	var msgs []string
	for i, seeds := range req.SeedSets {
		if msg := s.validateShardSeeds(e.oracle, seeds); msg != "" {
			if msgs == nil {
				msgs = make([]string, len(req.SeedSets))
			}
			msgs[i] = msg
			continue
		}
		seedSets[i] = CanonicalSeeds(seeds)
	}
	counts, errs := e.oracle.BatchCoverage(seedSets, s.cfg.BatchWorkers)
	for i := range counts {
		if msgs != nil && msgs[i] != "" {
			continue
		}
		if errs[i] != nil {
			// Unreachable after validateShardSeeds, but the oracle's own
			// validation is the final authority.
			if msgs == nil {
				msgs = make([]string, len(req.SeedSets))
			}
			msgs[i] = errs[i].Error()
			continue
		}
		resp.Counts[i] = counts[i]
	}
	resp.Errors = msgs
	s.extendWriteDeadline(w)
	writeJSON(w, http.StatusOK, resp)
}

// validateShardSeeds is validateInfluenceSeeds for shard queries, which —
// unlike public influence queries — accept the empty seed set (coverage 0,
// and the greedy protocol's round-0 marginal call).
func (s *Server) validateShardSeeds(oracle *core.Oracle, seeds []int) string {
	if len(seeds) == 0 {
		return ""
	}
	return s.validateInfluenceSeeds(oracle, seeds)
}

// ShardMarginalRequest asks for the marginal coverage gain of every candidate
// on top of seeds. A null/absent candidates list means every vertex, in
// ascending id order; an empty list is an empty answer.
type ShardMarginalRequest struct {
	Seeds      []int `json:"seeds"`
	Candidates []int `json:"candidates"`
}

// ShardMarginalResponse carries one exact marginal count per candidate.
type ShardMarginalResponse struct {
	ShardIdentity
	Gains []int64 `json:"gains"`
}

func (s *Server) handleShardMarginal(w http.ResponseWriter, r *http.Request) {
	e, ok := s.entryFor(w, r)
	if !ok {
		return
	}
	defer e.release()
	var req ShardMarginalRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if msg := s.validateShardSeeds(e.oracle, req.Seeds); msg != "" {
		writeError(w, http.StatusBadRequest, "seeds: %s", msg)
		return
	}
	if msg := s.validateShardSeeds(e.oracle, req.Candidates); msg != "" {
		writeError(w, http.StatusBadRequest, "candidates: %s", msg)
		return
	}
	seeds := CanonicalSeeds(req.Seeds)
	// Candidates keep their request order (the coordinator matches gains back
	// by position) and their nil-ness: null means "all vertices".
	var candidates []graph.VertexID
	if req.Candidates != nil {
		candidates = make([]graph.VertexID, len(req.Candidates))
		for i, v := range req.Candidates {
			candidates[i] = graph.VertexID(v)
		}
	}
	gains, err := e.oracle.MarginalCoverage(seeds, candidates)
	if err != nil {
		// Unreachable after the range checks above, but the oracle's own
		// validation is the final authority.
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.extendWriteDeadline(w)
	writeJSON(w, http.StatusOK, ShardMarginalResponse{
		ShardIdentity: shardIdentity(e.oracle),
		Gains:         gains,
	})
}
