package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"imdist/internal/core"
	"imdist/internal/graph"
)

func TestShardCoverageEndpoint(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle})

	status, raw := postJSON(t, ts.URL+"/v1/shard/coverage", `{"seed_sets":[[0],[33,0,33],[],[99]]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var resp ShardCoverageResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	// An unsharded sketch reports itself as the whole 1-shard fleet.
	if resp.ShardIndex != 0 || resp.ShardCount != 1 || resp.TotalSets != oracle.NumSets() {
		t.Errorf("identity = %+v, want shard 0 of 1 over %d sets", resp.ShardIdentity, oracle.NumSets())
	}
	if resp.NumSets != oracle.NumSets() || resp.Vertices != oracle.NumVertices() {
		t.Errorf("identity shape = %+v", resp.ShardIdentity)
	}
	want0, err := oracle.Coverage([]graph.VertexID{0})
	if err != nil {
		t.Fatal(err)
	}
	want1, err := oracle.Coverage([]graph.VertexID{0, 33})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Counts[0] != want0 || resp.Counts[1] != want1 || resp.Counts[2] != 0 {
		t.Errorf("counts = %v, want [%d %d 0 _]", resp.Counts, want0, want1)
	}
	if len(resp.Errors) != 4 || resp.Errors[3] == "" || resp.Errors[0] != "" {
		t.Errorf("errors = %q, want item 3 flagged only", resp.Errors)
	}

	// Empty batch and oversized batches are rejected outright.
	if status, _ := postJSON(t, ts.URL+"/v1/shard/coverage", `{"seed_sets":[]}`); status != http.StatusBadRequest {
		t.Errorf("empty seed_sets status = %d", status)
	}
}

func TestShardMarginalEndpoint(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Oracle: oracle})

	// Explicit candidates, in request order.
	status, raw := postJSON(t, ts.URL+"/v1/shard/marginal", `{"seeds":[0],"candidates":[33,0,5]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var resp ShardMarginalResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	wantGains, err := oracle.MarginalCoverage([]graph.VertexID{0}, []graph.VertexID{33, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Gains) != 3 || resp.Gains[0] != wantGains[0] || resp.Gains[1] != 0 || resp.Gains[2] != wantGains[2] {
		t.Errorf("gains = %v, want %v", resp.Gains, wantGains)
	}

	// Null candidates = all vertices; empty seeds = membership counts.
	status, raw = postJSON(t, ts.URL+"/v1/shard/marginal", `{"seeds":[]}`)
	if status != http.StatusOK {
		t.Fatalf("all-vertices status %d: %s", status, raw)
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Gains) != oracle.NumVertices() {
		t.Fatalf("all-vertices gains = %d entries, want %d", len(resp.Gains), oracle.NumVertices())
	}
	all, err := oracle.MarginalCoverage(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range all {
		if resp.Gains[v] != all[v] {
			t.Fatalf("gain[%d] = %d, want %d", v, resp.Gains[v], all[v])
		}
	}

	// Out-of-range seeds and candidates are a 400, not a partial answer.
	if status, _ := postJSON(t, ts.URL+"/v1/shard/marginal", `{"seeds":[99]}`); status != http.StatusBadRequest {
		t.Errorf("bad seed status = %d", status)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/shard/marginal", `{"seeds":[0],"candidates":[99]}`); status != http.StatusBadRequest {
		t.Errorf("bad candidate status = %d", status)
	}
}

func TestShardEndpointsNamedRoutes(t *testing.T) {
	oracle := loadedKarateOracle(t)
	ts := newTestServer(t, Config{Sketches: map[string]*core.Oracle{"k": oracle}})
	status, raw := postJSON(t, ts.URL+"/v1/sketches/k/shard/coverage", `{"seed_sets":[[0]]}`)
	if status != http.StatusOK {
		t.Fatalf("named route status %d: %s", status, raw)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/sketches/nope/shard/marginal", `{"seeds":[0]}`); status != http.StatusNotFound {
		t.Errorf("unknown sketch status = %d", status)
	}
}

func TestLineageSurfacedInListAndHealthz(t *testing.T) {
	oracle := loadedKarateOracle(t)
	if err := oracle.SetShardLineage(core.ShardLineage{Index: 2, Count: 4, TotalSets: 80000}); err != nil {
		t.Fatal(err)
	}
	plain := loadedKarateOracle(t)
	ts := newTestServer(t, Config{
		Oracle:   oracle,
		Sketches: map[string]*core.Oracle{"plain": plain},
	})

	resp, err := http.Get(ts.URL + "/v1/sketches")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list listSketchesResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	byName := map[string]sketchInfo{}
	for _, si := range list.Sketches {
		byName[si.Name] = si
	}
	sharded := byName[DefaultSketchName]
	if sharded.ShardIndex == nil || *sharded.ShardIndex != 2 || sharded.ShardCount != 4 || sharded.TotalSets != 80000 {
		t.Errorf("sharded sketch info = %+v, want shard 2 of 4 over 80000", sharded)
	}
	if p := byName["plain"]; p.ShardIndex != nil || p.ShardCount != 0 || p.TotalSets != 0 {
		t.Errorf("plain sketch leaked lineage: %+v", p)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.ShardIndex == nil || *hz.ShardIndex != 2 || hz.ShardCount != 4 || hz.TotalSets != 80000 {
		t.Errorf("healthz lineage = index %v count %d total %d", hz.ShardIndex, hz.ShardCount, hz.TotalSets)
	}
}
