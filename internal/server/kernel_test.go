package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"imdist/internal/core"
	"imdist/internal/sketchio"
)

// getRaw fetches url and returns the status plus the raw body, for
// byte-for-byte response comparisons.
func getRaw(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestConfigKernelValidation pins Config.Kernel's contract: known names (and
// the empty default) are accepted, unknown names fail New.
func TestConfigKernelValidation(t *testing.T) {
	oracle := karateOracle(t)
	for _, kernel := range []string{"", "auto", "epoch", "bitpack"} {
		if _, err := New(Config{Oracle: oracle, Kernel: kernel}); err != nil {
			t.Errorf("Config.Kernel = %q rejected: %v", kernel, err)
		}
	}
	if _, err := New(Config{Oracle: oracle, Kernel: "gpu"}); err == nil {
		t.Error("Config.Kernel = \"gpu\" accepted")
	}
}

// TestServerKernelsAnswerIdentically serves the same sketch from two servers
// pinned to opposite kernels and requires byte-identical response bodies on
// the whole query surface — the HTTP layer's view of the kernel contract.
func TestServerKernelsAnswerIdentically(t *testing.T) {
	serverFor := func(kernel string) *httptest.Server {
		s, err := New(Config{Oracle: loadedKarateOracle(t), Kernel: kernel, CacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	epoch := serverFor("epoch")
	bitpack := serverFor("bitpack")

	type call struct{ method, path, body string }
	calls := []call{
		{"POST", "/v1/influence", `{"seeds":[0,33,16]}`},
		{"POST", "/v1/influence", `{"seeds":[5]}`},
		{"POST", "/v1/influence:batch", `[{"seeds":[0]},{"seeds":[1,2,3]},{"seeds":[30,31,32,33]}]`},
		{"POST", "/v1/seeds", `{"k":5}`},
		{"GET", "/v1/top?k=8", ""},
	}
	for _, c := range calls {
		var wantStatus, gotStatus int
		var want, got []byte
		if c.method == "GET" {
			wantStatus, want = getRaw(t, epoch.URL+c.path)
			gotStatus, got = getRaw(t, bitpack.URL+c.path)
		} else {
			wantStatus, want = postJSON(t, epoch.URL+c.path, c.body)
			gotStatus, got = postJSON(t, bitpack.URL+c.path, c.body)
		}
		if wantStatus != 200 || gotStatus != 200 {
			t.Fatalf("%s %s: statuses %d vs %d", c.method, c.path, wantStatus, gotStatus)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s %s: epoch body %s != bitpack body %s", c.method, c.path, want, got)
		}
	}
}

// TestRegistryAppliesKernelToLoads verifies the one-knob-for-all-sketches
// behavior: a sketch loaded through Registry.LoadFile (the imserve and admin
// reload path) comes up on the server's configured kernel, and /v1/sketches
// reports it.
func TestRegistryAppliesKernelToLoads(t *testing.T) {
	s, err := New(Config{AllowEmpty: true, Kernel: "bitpack"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "karate.sketch")
	var buf bytes.Buffer
	if err := sketchio.Encode(&buf, karateOracle(t)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().LoadFile("karate", path); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Registry().acquire("karate")
	if !ok {
		t.Fatal("loaded sketch not acquirable")
	}
	defer e.release()
	if got := e.oracle.KernelConfigured(); got != core.KernelBitpack {
		t.Errorf("loaded oracle configured kernel = %q, want bitpack", got)
	}

	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	var list struct {
		Sketches []struct {
			Name   string `json:"name"`
			Kernel string `json:"kernel"`
		} `json:"sketches"`
	}
	if status := getJSON(t, ts.URL+"/v1/sketches", &list); status != 200 {
		t.Fatalf("GET /v1/sketches: status %d", status)
	}
	if len(list.Sketches) != 1 || list.Sketches[0].Kernel != "bitpack" {
		t.Errorf("/v1/sketches reports %+v, want one sketch on the bitpack kernel", list.Sketches)
	}
}

// TestRegisterAppliesKernel covers the in-memory Config.Sketches path: every
// oracle handed to New comes up on the configured kernel.
func TestRegisterAppliesKernel(t *testing.T) {
	oracle := karateOracle(t)
	if _, err := New(Config{Sketches: map[string]*core.Oracle{"k": oracle}, Kernel: "epoch"}); err != nil {
		t.Fatal(err)
	}
	if got := oracle.KernelConfigured(); got != core.KernelEpoch {
		t.Errorf("registered oracle configured kernel = %q, want epoch", got)
	}
}
