package graph

import (
	"errors"
	"math"
	"testing"
)

func TestNewInfluenceGraphUniform(t *testing.T) {
	g := smallTestGraph(t)
	ig, err := NewInfluenceGraph(g, func(_, _ VertexID) float64 { return 0.1 })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ig.SumProbabilities()-0.5) > 1e-12 {
		t.Errorf("SumProbabilities = %v, want 0.5", ig.SumProbabilities())
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, p := range ig.OutProbabilities(VertexID(v)) {
			if p != 0.1 {
				t.Fatalf("out probability = %v, want 0.1", p)
			}
		}
		for _, p := range ig.InProbabilities(VertexID(v)) {
			if p != 0.1 {
				t.Fatalf("in probability = %v, want 0.1", p)
			}
		}
	}
}

func TestInfluenceGraphForwardReverseConsistency(t *testing.T) {
	g := smallTestGraph(t)
	// Probability encodes the edge identity so the reverse mirror can be
	// checked exactly: p(u,v) = (u*10 + v + 1) / 100.
	ig, err := NewInfluenceGraph(g, func(u, v VertexID) float64 {
		return float64(u*10+v+1) / 100
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < g.NumVertices(); w++ {
		ins := g.InNeighbors(VertexID(w))
		probs := ig.InProbabilities(VertexID(w))
		for i, u := range ins {
			want := float64(u*10+VertexID(w)+1) / 100
			if math.Abs(probs[i]-want) > 1e-12 {
				t.Errorf("in-prob of edge (%d,%d) = %v, want %v", u, w, probs[i], want)
			}
		}
	}
}

func TestInfluenceGraphRejectsBadProbability(t *testing.T) {
	g := smallTestGraph(t)
	for _, bad := range []float64{0, -0.5, 1.5, math.NaN()} {
		_, err := NewInfluenceGraph(g, func(_, _ VertexID) float64 { return bad })
		if !errors.Is(err, ErrProbabilityRange) {
			t.Errorf("probability %v: err = %v, want ErrProbabilityRange", bad, err)
		}
	}
}

func TestInfluenceGraphTranspose(t *testing.T) {
	g := smallTestGraph(t)
	ig, err := NewInfluenceGraph(g, func(u, v Vertex64) float64 {
		return float64(u*10+v+1) / 100
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := ig.Transpose()
	if tr.NumEdges() != ig.NumEdges() {
		t.Fatalf("transpose changed edge count")
	}
	if math.Abs(tr.SumProbabilities()-ig.SumProbabilities()) > 1e-12 {
		t.Errorf("transpose changed total probability: %v vs %v", tr.SumProbabilities(), ig.SumProbabilities())
	}
	// Edge (u,v) with p must appear as (v,u) with p in the transpose.
	for v := 0; v < g.NumVertices(); v++ {
		outs := g.OutNeighbors(VertexID(v))
		probs := ig.OutProbabilities(VertexID(v))
		for i, w := range outs {
			trOuts := tr.OutNeighbors(w)
			trProbs := tr.OutProbabilities(w)
			found := false
			for j, x := range trOuts {
				if x == VertexID(v) && math.Abs(trProbs[j]-probs[i]) < 1e-12 {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("transpose missing edge (%d,%d) with p=%v", w, v, probs[i])
			}
		}
	}
}

// Vertex64 is a local alias to exercise that VertexID is an alias type usable
// interchangeably with int32 in callbacks.
type Vertex64 = VertexID

func TestInfluenceGraphString(t *testing.T) {
	g := smallTestGraph(t)
	ig, err := NewInfluenceGraph(g, func(_, _ VertexID) float64 { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	if ig.String() == "" {
		t.Error("String() returned empty")
	}
}
