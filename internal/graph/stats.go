package graph

// Stats holds the structural statistics of a network as reported in Table 3
// of the paper: size, maximum degrees, the (undirected) clustering
// coefficient, and the average shortest-path distance.
type Stats struct {
	Vertices              int
	Edges                 int
	MaxOutDegree          int
	MaxInDegree           int
	ClusteringCoefficient float64
	AverageDistance       float64
	// AverageDistanceExact reports whether AverageDistance was computed over
	// all pairs (small graphs) or estimated from sampled sources.
	AverageDistanceExact bool
}

// ComputeStats computes the Table-3 statistics of g. For graphs with more
// than sampleThreshold vertices the average distance is estimated from
// distanceSamples breadth-first searches from evenly spaced sources, and the
// clustering coefficient is computed over a vertex sample of the same size;
// both are flagged via AverageDistanceExact.
func ComputeStats(g *Graph, distanceSamples int) Stats {
	const sampleThreshold = 4096
	s := Stats{
		Vertices:     g.NumVertices(),
		Edges:        g.NumEdges(),
		MaxOutDegree: g.MaxOutDegree(),
		MaxInDegree:  g.MaxInDegree(),
	}
	if g.NumVertices() == 0 {
		s.AverageDistanceExact = true
		return s
	}
	exact := g.NumVertices() <= sampleThreshold
	s.AverageDistanceExact = exact

	und := undirectedAdjacency(g)

	if exact {
		s.ClusteringCoefficient = globalClustering(und, nil)
		s.AverageDistance = averageDistance(und, allVertices(g.NumVertices()))
	} else {
		if distanceSamples <= 0 {
			distanceSamples = 64
		}
		sources := sampleVertices(g.NumVertices(), distanceSamples)
		s.ClusteringCoefficient = globalClustering(und, sources)
		s.AverageDistance = averageDistance(und, sources)
	}
	return s
}

// undirectedAdjacency builds a deduplicated undirected adjacency list from
// the directed graph, ignoring self-loops. Table 3's clustering coefficient
// and average distance are defined on the underlying undirected graph.
func undirectedAdjacency(g *Graph) [][]VertexID {
	n := g.NumVertices()
	adj := make([][]VertexID, n)
	seen := make(map[int64]struct{}, g.NumEdges())
	add := func(u, v VertexID) {
		if u == v {
			return
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		key := int64(a)<<32 | int64(uint32(b))
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := 0; v < n; v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			add(VertexID(v), w)
		}
	}
	return adj
}

func allVertices(n int) []VertexID {
	vs := make([]VertexID, n)
	for i := range vs {
		vs[i] = VertexID(i)
	}
	return vs
}

// sampleVertices returns k evenly spaced vertex ids in [0, n).
func sampleVertices(n, k int) []VertexID {
	if k >= n {
		return allVertices(n)
	}
	vs := make([]VertexID, 0, k)
	step := float64(n) / float64(k)
	for i := 0; i < k; i++ {
		vs = append(vs, VertexID(float64(i)*step))
	}
	return vs
}

// globalClustering computes the mean local clustering coefficient over the
// given vertices (all vertices when sample is nil) on the undirected graph.
func globalClustering(adj [][]VertexID, sample []VertexID) float64 {
	if sample == nil {
		sample = allVertices(len(adj))
	}
	if len(sample) == 0 {
		return 0
	}
	neighborSets := make([]map[VertexID]struct{}, len(adj))
	set := func(v VertexID) map[VertexID]struct{} {
		if neighborSets[v] == nil {
			m := make(map[VertexID]struct{}, len(adj[v]))
			for _, w := range adj[v] {
				m[w] = struct{}{}
			}
			neighborSets[v] = m
		}
		return neighborSets[v]
	}
	total := 0.0
	counted := 0
	for _, v := range sample {
		d := len(adj[v])
		if d < 2 {
			counted++
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			si := set(adj[v][i])
			for j := i + 1; j < d; j++ {
				if _, ok := si[adj[v][j]]; ok {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// averageDistance returns the mean shortest-path distance from the given
// sources to all vertices reachable from them in the undirected graph.
func averageDistance(adj [][]VertexID, sources []VertexID) float64 {
	n := len(adj)
	if n == 0 || len(sources) == 0 {
		return 0
	}
	dist := make([]int32, n)
	queue := make([]VertexID, 0, n)
	var sum float64
	var pairs int
	for _, s := range sources {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
					sum += float64(dist[w])
					pairs++
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// WeaklyConnectedComponents returns, for each vertex, the id of its weakly
// connected component, together with the number of components. Component ids
// are assigned in order of discovery starting from vertex 0.
func WeaklyConnectedComponents(g *Graph) (comp []int32, count int) {
	n := g.NumVertices()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]VertexID, 0, n)
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[start] = id
		queue = queue[:0]
		queue = append(queue, VertexID(start))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.OutNeighbors(v) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
			for _, w := range g.InNeighbors(v) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return comp, count
}

// LargestComponentSize returns the number of vertices in the largest weakly
// connected component of g.
func LargestComponentSize(g *Graph) int {
	comp, count := WeaklyConnectedComponents(g)
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}
