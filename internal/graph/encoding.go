package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ErrMalformedEdgeList reports an unparsable line in an edge-list stream.
var ErrMalformedEdgeList = errors.New("graph: malformed edge list")

// ReadEdgeList parses a whitespace-separated directed edge list of the form
//
//	# optional comment lines starting with '#' or '%'
//	<from> <to>
//	...
//
// Vertex ids may be arbitrary non-negative integers; they are compacted to a
// dense range [0, n) preserving first-appearance order. The function is the
// loader used by cmd/imseed and cmd/imgraph for SNAP/KONECT style files.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	ids := make(map[int64]VertexID)
	var edges []Edge
	lookup := func(raw int64) VertexID {
		if v, ok := ids[raw]; ok {
			return v
		}
		v := VertexID(len(ids))
		ids[raw] = v
		return v
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrMalformedEdgeList, lineNo, line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrMalformedEdgeList, lineNo, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrMalformedEdgeList, lineNo, err)
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("%w: line %d: negative vertex id", ErrMalformedEdgeList, lineNo)
		}
		edges = append(edges, Edge{From: lookup(from), To: lookup(to)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return fromEdges(len(ids), edges), nil
}

// WriteEdgeList writes the graph as a directed edge list with a single header
// comment, in a format ReadEdgeList can parse back.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# imdist edge list: n=%d m=%d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.OutNeighbors(VertexID(v)) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
