package graph

import (
	"math"
	"testing"
)

// triangleGraph returns an undirected triangle as a directed graph (6 arcs).
func triangleGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	for _, e := range [][2]VertexID{{0, 1}, {1, 2}, {0, 2}} {
		if err := b.AddUndirected(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestStatsTriangle(t *testing.T) {
	g := triangleGraph(t)
	s := ComputeStats(g, 0)
	if s.Vertices != 3 || s.Edges != 6 {
		t.Errorf("size = (%d,%d), want (3,6)", s.Vertices, s.Edges)
	}
	if math.Abs(s.ClusteringCoefficient-1.0) > 1e-12 {
		t.Errorf("clustering coefficient = %v, want 1", s.ClusteringCoefficient)
	}
	if math.Abs(s.AverageDistance-1.0) > 1e-12 {
		t.Errorf("average distance = %v, want 1", s.AverageDistance)
	}
	if !s.AverageDistanceExact {
		t.Error("small graph should compute exact average distance")
	}
}

func TestStatsPath(t *testing.T) {
	// Path 0-1-2 (undirected): no triangles, average distance over ordered
	// reachable pairs = (1+2+1+1+1+2)/6 = 4/3.
	b := NewBuilder(3)
	if err := b.AddUndirected(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddUndirected(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	s := ComputeStats(g, 0)
	if s.ClusteringCoefficient != 0 {
		t.Errorf("clustering coefficient = %v, want 0", s.ClusteringCoefficient)
	}
	if math.Abs(s.AverageDistance-4.0/3.0) > 1e-12 {
		t.Errorf("average distance = %v, want 4/3", s.AverageDistance)
	}
}

func TestStatsMaxDegrees(t *testing.T) {
	// Star with centre 0 and 4 leaves, directed out from the centre.
	b := NewBuilder(5)
	for i := VertexID(1); i <= 4; i++ {
		if err := b.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	s := ComputeStats(g, 0)
	if s.MaxOutDegree != 4 || s.MaxInDegree != 1 {
		t.Errorf("max degrees = (%d,%d), want (4,1)", s.MaxOutDegree, s.MaxInDegree)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} connected via directed edges, {3,4} connected,
	// vertex 5 isolated.
	b := NewBuilder(6)
	mustAdd := func(u, v VertexID) {
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1)
	mustAdd(2, 1) // weak connectivity through shared head
	mustAdd(3, 4)
	g := b.Build()
	comp, count := WeaklyConnectedComponents(g)
	if count != 3 {
		t.Fatalf("component count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("vertices 0,1,2 not in one component: %v", comp[:3])
	}
	if comp[3] != comp[4] {
		t.Errorf("vertices 3,4 not in one component: %v", comp[3:5])
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Errorf("vertex 5 should be isolated: %v", comp)
	}
	if LargestComponentSize(g) != 3 {
		t.Errorf("LargestComponentSize = %d, want 3", LargestComponentSize(g))
	}
}

func TestSampledStatsOnLargerGraph(t *testing.T) {
	// A cycle with 5000 vertices exceeds the exact threshold, so the average
	// distance is estimated from samples; it should still be positive and the
	// clustering coefficient of a cycle is 0.
	n := 5000
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddUndirected(VertexID(i), VertexID((i+1)%n)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	s := ComputeStats(g, 16)
	if s.AverageDistanceExact {
		t.Error("large graph should use sampled average distance")
	}
	if s.AverageDistance <= 0 {
		t.Errorf("sampled average distance = %v, want > 0", s.AverageDistance)
	}
	if s.ClusteringCoefficient != 0 {
		t.Errorf("cycle clustering coefficient = %v, want 0", s.ClusteringCoefficient)
	}
}
