package graph

import (
	"errors"
	"fmt"
)

// ErrProbabilityRange reports an edge probability outside (0, 1].
var ErrProbabilityRange = errors.New("graph: edge probability out of range (0,1]")

// InfluenceGraph is a directed graph together with an influence probability
// p(e) in (0, 1] for every edge e, i.e. the triple G = (V, E, p) of the paper.
// Probabilities are stored aligned with both CSR directions so that forward
// simulation (Oneshot/Snapshot) and reverse simulation (RIS) can both read
// them without indirection.
type InfluenceGraph struct {
	*Graph

	// outProb[i] is the probability of the edge stored at outAdj[i].
	outProb []float64
	// inProb[i] is the probability of the edge stored at inAdj[i].
	inProb []float64

	sumProb float64
}

// NewInfluenceGraph attaches probabilities to g. assign is called once for
// every directed edge (u, v) and must return a value in (0, 1].
func NewInfluenceGraph(g *Graph, assign func(from, to VertexID) float64) (*InfluenceGraph, error) {
	ig := &InfluenceGraph{
		Graph:   g,
		outProb: make([]float64, g.NumEdges()),
		inProb:  make([]float64, g.NumEdges()),
	}
	for v := 0; v < g.n; v++ {
		base := g.outIdx[v]
		for i, w := range g.OutNeighbors(VertexID(v)) {
			p := assign(VertexID(v), w)
			if !(p > 0 && p <= 1) {
				return nil, fmt.Errorf("%w: p(%d,%d)=%v", ErrProbabilityRange, v, w, p)
			}
			ig.outProb[int(base)+i] = p
			ig.sumProb += p
		}
	}
	// Mirror onto the reverse CSR: for the in-edge (u, w) stored at reverse
	// slot i of w, look up p(u, w) in u's forward run. For parallel edges the
	// probabilities may be permuted among the parallel copies, which leaves
	// the diffusion distribution unchanged (each copy is an independent coin
	// with the same bias when assign is a function of the endpoints).
	for w := 0; w < g.n; w++ {
		base := g.inIdx[w]
		for i, u := range g.InNeighbors(VertexID(w)) {
			ig.inProb[int(base)+i] = ig.outProb[forwardSlot(g, u, VertexID(w))]
		}
	}
	return ig, nil
}

// forwardSlot returns the index into outProb/outAdj of an edge (u, w).
func forwardSlot(g *Graph, u, w VertexID) int {
	run := g.OutNeighbors(u)
	lo, hi := 0, len(run)
	for lo < hi {
		mid := (lo + hi) / 2
		if run[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(run) || run[lo] != w {
		panic("graph: reverse adjacency inconsistent with forward adjacency")
	}
	return int(g.outIdx[u]) + lo
}

// OutProbabilities returns the probabilities aligned with OutNeighbors(v).
// The returned slice aliases internal storage and must not be modified.
func (ig *InfluenceGraph) OutProbabilities(v VertexID) []float64 {
	return ig.outProb[ig.outIdx[v]:ig.outIdx[v+1]]
}

// InProbabilities returns the probabilities aligned with InNeighbors(v).
// The returned slice aliases internal storage and must not be modified.
func (ig *InfluenceGraph) InProbabilities(v VertexID) []float64 {
	return ig.inProb[ig.inIdx[v]:ig.inIdx[v+1]]
}

// SumProbabilities returns m̃ = Σ_e p(e), the expected number of live edges in
// a random live-edge graph. The paper uses m̃ both as the Snapshot sample-size
// unit and to explain the traversal-cost ratio m̃/m.
func (ig *InfluenceGraph) SumProbabilities() float64 { return ig.sumProb }

// Transpose returns the influence graph with every edge reversed and the same
// probability attached to the reversed edge (G^T of the paper).
func (ig *InfluenceGraph) Transpose() *InfluenceGraph {
	return &InfluenceGraph{
		Graph:   ig.Graph.Transpose(),
		outProb: append([]float64(nil), ig.inProb...),
		inProb:  append([]float64(nil), ig.outProb...),
		sumProb: ig.sumProb,
	}
}

// String returns a short description of the influence graph.
func (ig *InfluenceGraph) String() string {
	return fmt.Sprintf("InfluenceGraph(n=%d, m=%d, m~=%.2f)",
		ig.NumVertices(), ig.NumEdges(), ig.SumProbabilities())
}
