package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2
2 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("parsed graph has n=%d m=%d, want 3,3", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Error("parsed graph missing expected edges")
	}
}

func TestReadEdgeListCompactsIDs(t *testing.T) {
	in := "100 200\n200 300\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3 (ids compacted)", g.NumVertices())
	}
}

func TestReadEdgeListMalformed(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 x\n",
		"-1 2\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); !errors.Is(err, ErrMalformedEdgeList) {
			t.Errorf("input %q: err = %v, want ErrMalformedEdgeList", in, err)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := smallTestGraph(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: got (%d,%d), want (%d,%d)",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.From, e.To) {
			t.Errorf("round trip lost edge %v", e)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty input produced n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}
