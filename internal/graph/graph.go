// Package graph provides the directed-graph substrate used by every other
// package in imdist: compressed sparse row (CSR) adjacency in both the
// forward and reverse direction, influence graphs carrying per-edge
// propagation probabilities, builders, text encoding, and the structural
// statistics reported in Table 3 of the paper.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex; vertices are numbered 0..N-1.
type VertexID = int32

// Edge is a directed edge from From to To.
type Edge struct {
	From VertexID
	To   VertexID
}

// Graph is an immutable directed graph stored in compressed sparse row form
// for both outgoing and incoming adjacency. The zero value is an empty graph.
type Graph struct {
	n int

	// Forward CSR: outgoing neighbours of v are outAdj[outIdx[v]:outIdx[v+1]].
	outIdx []int32
	outAdj []VertexID

	// Reverse CSR: incoming neighbours of v are inAdj[inIdx[v]:inIdx[v+1]].
	inIdx []int32
	inAdj []VertexID
}

// ErrVertexRange reports an edge endpoint outside [0, n).
var ErrVertexRange = errors.New("graph: vertex out of range")

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges m.
func (g *Graph) NumEdges() int { return len(g.outAdj) }

// OutNeighbors returns the outgoing neighbours of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outAdj[g.outIdx[v]:g.outIdx[v+1]]
}

// InNeighbors returns the incoming neighbours of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.inAdj[g.inIdx[v]:g.inIdx[v+1]]
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int { return int(g.outIdx[v+1] - g.outIdx[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int { return int(g.inIdx[v+1] - g.inIdx[v]) }

// Edges returns all directed edges in forward-CSR order. The slice is freshly
// allocated and owned by the caller.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < g.n; v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			edges = append(edges, Edge{From: VertexID(v), To: w})
		}
	}
	return edges
}

// Transpose returns a new graph with every edge reversed.
func (g *Graph) Transpose() *Graph {
	t := &Graph{
		n:      g.n,
		outIdx: append([]int32(nil), g.inIdx...),
		outAdj: append([]VertexID(nil), g.inAdj...),
		inIdx:  append([]int32(nil), g.outIdx...),
		inAdj:  append([]VertexID(nil), g.outAdj...),
	}
	return t
}

// String returns a short description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.NumVertices(), g.NumEdges())
}

// Builder accumulates directed edges and produces an immutable Graph.
// A Builder may be reused after calling Build.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NumVertices returns the declared number of vertices.
func (b *Builder) NumVertices() int { return b.n }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge appends the directed edge (from, to). It returns ErrVertexRange if
// either endpoint is outside [0, n). Self-loops and parallel edges are kept;
// callers that need simple graphs should deduplicate before building.
func (b *Builder) AddEdge(from, to VertexID) error {
	if from < 0 || int(from) >= b.n || to < 0 || int(to) >= b.n {
		return fmt.Errorf("%w: edge (%d,%d) with n=%d", ErrVertexRange, from, to, b.n)
	}
	b.edges = append(b.edges, Edge{From: from, To: to})
	return nil
}

// AddUndirected appends both (u,v) and (v,u).
func (b *Builder) AddUndirected(u, v VertexID) error {
	if err := b.AddEdge(u, v); err != nil {
		return err
	}
	return b.AddEdge(v, u)
}

// Build constructs the immutable CSR graph from the accumulated edges.
func (b *Builder) Build() *Graph {
	return fromEdges(b.n, b.edges)
}

// FromEdges constructs a graph with n vertices from the given edge list.
// It returns an error if any endpoint is out of range.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	for _, e := range edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("%w: edge (%d,%d) with n=%d", ErrVertexRange, e.From, e.To, n)
		}
	}
	return fromEdges(n, edges), nil
}

// fromEdges builds both CSR directions by counting sort; edges are assumed
// validated.
func fromEdges(n int, edges []Edge) *Graph {
	g := &Graph{
		n:      n,
		outIdx: make([]int32, n+1),
		outAdj: make([]VertexID, len(edges)),
		inIdx:  make([]int32, n+1),
		inAdj:  make([]VertexID, len(edges)),
	}
	for _, e := range edges {
		g.outIdx[e.From+1]++
		g.inIdx[e.To+1]++
	}
	for v := 0; v < n; v++ {
		g.outIdx[v+1] += g.outIdx[v]
		g.inIdx[v+1] += g.inIdx[v]
	}
	outPos := make([]int32, n)
	inPos := make([]int32, n)
	for _, e := range edges {
		g.outAdj[g.outIdx[e.From]+outPos[e.From]] = e.To
		outPos[e.From]++
		g.inAdj[g.inIdx[e.To]+inPos[e.To]] = e.From
		inPos[e.To]++
	}
	// Sort each adjacency run for deterministic iteration order and fast
	// membership queries.
	for v := 0; v < n; v++ {
		sortVertexRun(g.outAdj[g.outIdx[v]:g.outIdx[v+1]])
		sortVertexRun(g.inAdj[g.inIdx[v]:g.inIdx[v+1]])
	}
	return g
}

func sortVertexRun(run []VertexID) {
	sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
}

// HasEdge reports whether the directed edge (from, to) exists.
func (g *Graph) HasEdge(from, to VertexID) bool {
	run := g.OutNeighbors(from)
	i := sort.Search(len(run), func(i int) bool { return run[i] >= to })
	return i < len(run) && run[i] == to
}

// MaxOutDegree returns the maximum out-degree over all vertices (0 for an
// empty graph).
func (g *Graph) MaxOutDegree() int {
	best := 0
	for v := 0; v < g.n; v++ {
		if d := g.OutDegree(VertexID(v)); d > best {
			best = d
		}
	}
	return best
}

// MaxInDegree returns the maximum in-degree over all vertices.
func (g *Graph) MaxInDegree() int {
	best := 0
	for v := 0; v < g.n; v++ {
		if d := g.InDegree(VertexID(v)); d > best {
			best = d
		}
	}
	return best
}
