package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

// smallTestGraph returns the directed graph
//
//	0 -> 1, 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 0
func smallTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	for _, e := range [][2]VertexID{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return b.Build()
}

func TestBuilderBasicCounts(t *testing.T) {
	g := smallTestGraph(t)
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", g.NumEdges())
	}
}

func TestOutInNeighbors(t *testing.T) {
	g := smallTestGraph(t)
	out := g.OutNeighbors(0)
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Errorf("OutNeighbors(0) = %v, want [1 2]", out)
	}
	in := g.InNeighbors(2)
	if len(in) != 2 || in[0] != 0 || in[1] != 1 {
		t.Errorf("InNeighbors(2) = %v, want [0 1]", in)
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Errorf("degrees of 0 = (%d,%d), want (2,1)", g.OutDegree(0), g.InDegree(0))
	}
}

func TestHasEdge(t *testing.T) {
	g := smallTestGraph(t)
	cases := []struct {
		from, to VertexID
		want     bool
	}{
		{0, 1, true}, {0, 2, true}, {1, 2, true}, {2, 3, true}, {3, 0, true},
		{1, 0, false}, {2, 0, false}, {3, 2, false}, {0, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.from, c.to); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestTransposeReversesEdges(t *testing.T) {
	g := smallTestGraph(t)
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() || tr.NumVertices() != g.NumVertices() {
		t.Fatalf("transpose changed size: %v vs %v", tr, g)
	}
	for _, e := range g.Edges() {
		if !tr.HasEdge(e.To, e.From) {
			t.Errorf("transpose missing edge (%d,%d)", e.To, e.From)
		}
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(rawEdges []uint16, rawN uint8) bool {
		n := int(rawN%30) + 1
		b := NewBuilder(n)
		for _, r := range rawEdges {
			from := VertexID(int(r>>8) % n)
			to := VertexID(int(r&0xff) % n)
			if err := b.AddEdge(from, to); err != nil {
				return false
			}
		}
		g := b.Build()
		tt := g.Transpose().Transpose()
		if tt.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, c := g.OutNeighbors(VertexID(v)), tt.OutNeighbors(VertexID(v))
			if len(a) != len(c) {
				return false
			}
			for i := range a {
				if a[i] != c[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDegreeSumEqualsEdges(t *testing.T) {
	f := func(rawEdges []uint16, rawN uint8) bool {
		n := int(rawN%40) + 1
		b := NewBuilder(n)
		for _, r := range rawEdges {
			_ = b.AddEdge(VertexID(int(r>>8)%n), VertexID(int(r&0xff)%n))
		}
		g := b.Build()
		sumOut, sumIn := 0, 0
		for v := 0; v < n; v++ {
			sumOut += g.OutDegree(VertexID(v))
			sumIn += g.InDegree(VertexID(v))
		}
		return sumOut == g.NumEdges() && sumIn == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 3); !errors.Is(err, ErrVertexRange) {
		t.Errorf("AddEdge(0,3) error = %v, want ErrVertexRange", err)
	}
	if err := b.AddEdge(-1, 0); !errors.Is(err, ErrVertexRange) {
		t.Errorf("AddEdge(-1,0) error = %v, want ErrVertexRange", err)
	}
}

func TestFromEdgesValidation(t *testing.T) {
	_, err := FromEdges(2, []Edge{{0, 5}})
	if !errors.Is(err, ErrVertexRange) {
		t.Errorf("FromEdges with bad edge: err = %v, want ErrVertexRange", err)
	}
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err != nil || g.NumEdges() != 2 {
		t.Errorf("FromEdges valid: g=%v err=%v", g, err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	s := ComputeStats(g, 8)
	if s.Vertices != 0 || s.Edges != 0 {
		t.Errorf("stats of empty graph: %+v", s)
	}
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddUndirected(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("AddUndirected did not create both directions")
	}
}

func TestMaxDegrees(t *testing.T) {
	g := smallTestGraph(t)
	if g.MaxOutDegree() != 2 {
		t.Errorf("MaxOutDegree = %d, want 2", g.MaxOutDegree())
	}
	if g.MaxInDegree() != 2 {
		t.Errorf("MaxInDegree = %d, want 2", g.MaxInDegree())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := smallTestGraph(t)
	edges := g.Edges()
	g2, err := FromEdges(g.NumVertices(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed edge count: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for _, e := range edges {
		if !g2.HasEdge(e.From, e.To) {
			t.Errorf("round trip lost edge %v", e)
		}
	}
}

func TestStringer(t *testing.T) {
	g := smallTestGraph(t)
	if got := g.String(); got != "Graph(n=4, m=5)" {
		t.Errorf("String() = %q", got)
	}
}
