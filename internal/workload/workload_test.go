package workload

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"imdist/internal/graph"
	"imdist/internal/rng"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestUniformCascade(t *testing.T) {
	g := testGraph(t)
	for _, tc := range []struct {
		model Model
		want  float64
	}{{UC01, 0.1}, {UC001, 0.01}} {
		ig, err := Assign(g, tc.model, nil)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, p := range ig.OutProbabilities(graph.VertexID(v)) {
				if p != tc.want {
					t.Errorf("%v: p = %v, want %v", tc.model, p, tc.want)
				}
			}
		}
	}
}

func TestIWCProbabilitiesSumToOnePerTarget(t *testing.T) {
	// The defining property of iwc (Section 4.3): sum over in-neighbours u of
	// p(u,v) equals 1 for every vertex v with at least one in-edge.
	g := testGraph(t)
	ig, err := Assign(g, IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		probs := ig.InProbabilities(graph.VertexID(v))
		if len(probs) == 0 {
			continue
		}
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		if math.Abs(sum-1.0) > 1e-12 {
			t.Errorf("iwc: sum of in-probabilities of %d = %v, want 1", v, sum)
		}
	}
}

func TestOWCProbabilitiesSumToOnePerSource(t *testing.T) {
	// The defining property of owc: sum over out-neighbours v of p(u,v)
	// equals 1 for every vertex u with at least one out-edge.
	g := testGraph(t)
	ig, err := Assign(g, OWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumVertices(); u++ {
		probs := ig.OutProbabilities(graph.VertexID(u))
		if len(probs) == 0 {
			continue
		}
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		if math.Abs(sum-1.0) > 1e-12 {
			t.Errorf("owc: sum of out-probabilities of %d = %v, want 1", u, sum)
		}
	}
}

func TestIWCSumProbEqualsVerticesWithInEdges(t *testing.T) {
	// On iwc m̃ = number of vertices with at least one in-edge (the paper
	// approximates m̃ = n).
	g := testGraph(t)
	ig, err := Assign(g, IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	withIn := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.InDegree(graph.VertexID(v)) > 0 {
			withIn++
		}
	}
	if math.Abs(ig.SumProbabilities()-float64(withIn)) > 1e-12 {
		t.Errorf("iwc m~ = %v, want %d", ig.SumProbabilities(), withIn)
	}
}

func TestTrivalency(t *testing.T) {
	g := testGraph(t)
	ig, err := Assign(g, Trivalency, rng.NewXoshiro(3))
	if err != nil {
		t.Fatal(err)
	}
	valid := map[float64]bool{0.1: true, 0.01: true, 0.001: true}
	for v := 0; v < g.NumVertices(); v++ {
		for _, p := range ig.OutProbabilities(graph.VertexID(v)) {
			if !valid[p] {
				t.Errorf("trivalency produced p = %v", p)
			}
		}
	}
	if _, err := Assign(g, Trivalency, nil); err == nil {
		t.Error("Trivalency without source accepted")
	}
}

func TestParseModel(t *testing.T) {
	cases := map[string]Model{
		"uc0.1": UC01, "uc01": UC01,
		"uc0.01": UC001, "uc001": UC001,
		"iwc": IWC, "owc": OWC,
		"tv": Trivalency, "trivalency": Trivalency,
	}
	for s, want := range cases {
		got, err := ParseModel(s)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseModel("bogus"); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("ParseModel(bogus) err = %v, want ErrUnknownModel", err)
	}
}

func TestModelStringRoundTrip(t *testing.T) {
	for _, m := range append(StandardModels(), Trivalency) {
		parsed, err := ParseModel(m.String())
		if err != nil || parsed != m {
			t.Errorf("round trip of %v failed: %v, %v", m, parsed, err)
		}
	}
	if Model(42).String() != "unknown" {
		t.Errorf("unexpected String for invalid model")
	}
}

func TestStandardModels(t *testing.T) {
	ms := StandardModels()
	if len(ms) != 4 {
		t.Fatalf("StandardModels has %d entries, want 4", len(ms))
	}
	want := []Model{UC01, UC001, IWC, OWC}
	for i, m := range ms {
		if m != want[i] {
			t.Errorf("StandardModels[%d] = %v, want %v", i, m, want[i])
		}
	}
}

func TestSeedSetsShapeAndRange(t *testing.T) {
	for _, m := range Mixes() {
		sets, err := SeedSets(m, 50, 200, 8, rng.NewXoshiro(1))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(sets) != 200 {
			t.Fatalf("%v: got %d sets, want 200", m, len(sets))
		}
		for i, set := range sets {
			if len(set) < 1 || len(set) > 8 {
				t.Fatalf("%v: set %d has size %d, want [1, 8]", m, i, len(set))
			}
			if m == MixSingleton && len(set) != 1 {
				t.Fatalf("singleton set %d has size %d", i, len(set))
			}
			seen := map[graph.VertexID]bool{}
			for _, v := range set {
				if v < 0 || int(v) >= 50 {
					t.Fatalf("%v: set %d contains out-of-range vertex %d", m, i, v)
				}
				if seen[v] {
					t.Fatalf("%v: set %d contains duplicate vertex %d", m, i, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestSeedSetsDeterministic(t *testing.T) {
	for _, m := range Mixes() {
		a, err := SeedSets(m, 100, 64, 6, rng.NewXoshiro(9))
		if err != nil {
			t.Fatal(err)
		}
		b, err := SeedSets(m, 100, 64, 6, rng.NewXoshiro(9))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				t.Fatalf("%v: set %d sizes differ", m, i)
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%v: set %d differs between equal seeds", m, i)
				}
			}
		}
	}
}

func TestSeedSetsHotspotConcentration(t *testing.T) {
	// With hotspotFraction = 0.9 over a 5% hot prefix, the bulk of all drawn
	// seeds must land in the hot prefix of the vertex space.
	n := 1000
	hot := int(hotspotShare * float64(n))
	sets, err := SeedSets(MixHotspot, n, 500, 4, rng.NewXoshiro(3))
	if err != nil {
		t.Fatal(err)
	}
	inHot, total := 0, 0
	for _, set := range sets {
		for _, v := range set {
			total++
			if int(v) < hot {
				inHot++
			}
		}
	}
	if frac := float64(inHot) / float64(total); frac < 0.7 {
		t.Errorf("hotspot mix put only %.2f of seeds in the hot set, want > 0.7", frac)
	}
}

func TestSeedSetsSmallVertexSpace(t *testing.T) {
	// maxSize beyond n clamps; generation must terminate and cover whole sets
	// even when every query asks for nearly all vertices.
	sets, err := SeedSets(MixHotspot, 3, 50, 10, rng.NewXoshiro(8))
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range sets {
		if len(set) < 1 || len(set) > 3 {
			t.Fatalf("set %d has size %d, want [1, 3]", i, len(set))
		}
	}
}

func TestSeedSetsRejectsBadInput(t *testing.T) {
	src := rng.NewXoshiro(1)
	if _, err := SeedSets(MixUniform, 0, 1, 1, src); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := SeedSets(MixUniform, 10, -1, 1, src); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := SeedSets(MixUniform, 10, 1, 0, src); err == nil {
		t.Error("maxSize = 0 accepted")
	}
	if _, err := SeedSets(MixUniform, 10, 1, 1, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := SeedSets(Mix(42), 10, 1, 1, src); !errors.Is(err, ErrUnknownMix) {
		t.Error("unknown mix accepted")
	}
}

func TestParseMixRoundTrip(t *testing.T) {
	for _, m := range Mixes() {
		parsed, err := ParseMix(m.String())
		if err != nil || parsed != m {
			t.Errorf("round trip of %v failed: %v, %v", m, parsed, err)
		}
	}
	if _, err := ParseMix("bogus"); !errors.Is(err, ErrUnknownMix) {
		t.Errorf("ParseMix(bogus) err = %v, want ErrUnknownMix", err)
	}
	if Mix(42).String() != "unknown" {
		t.Errorf("unexpected String for invalid mix")
	}
}

func TestAssignUnknownModel(t *testing.T) {
	g := testGraph(t)
	if _, err := Assign(g, Model(99), nil); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("Assign with unknown model err = %v, want ErrUnknownModel", err)
	}
}

func TestParseTargets(t *testing.T) {
	got, err := ParseTargets("karate-ic:2, karate-lt")
	if err != nil {
		t.Fatal(err)
	}
	want := []Target{{Name: "karate-ic", Weight: 2}, {Name: "karate-lt", Weight: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseTargets = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "a:", "a:0", "a:-1", "a:x", ":2", "a,a", "a,,b"} {
		if _, err := ParseTargets(bad); err == nil {
			t.Errorf("ParseTargets(%q) accepted", bad)
		}
	}
}

func TestTargetSequence(t *testing.T) {
	targets := []Target{{Name: "a", Weight: 2}, {Name: "b", Weight: 1}}
	seq, err := TargetSequence(targets, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "a", "b", "a", "a", "b", "a"}
	if !reflect.DeepEqual(seq, want) {
		t.Errorf("TargetSequence = %v, want %v", seq, want)
	}
	// Deterministic: equal inputs, equal sequence.
	again, err := TargetSequence(targets, 7)
	if err != nil || !reflect.DeepEqual(seq, again) {
		t.Errorf("TargetSequence not deterministic: %v vs %v (%v)", seq, again, err)
	}
	if _, err := TargetSequence(nil, 3); err == nil {
		t.Error("empty target list accepted")
	}
	if _, err := TargetSequence(targets, -1); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := TargetSequence([]Target{{Name: "a", Weight: 0}}, 1); err == nil {
		t.Error("zero weight accepted")
	}
}
