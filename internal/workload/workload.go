// Package workload assigns influence probabilities to graphs, implementing
// the four edge-probability settings of Section 4.3 of the paper (uniform
// cascade 0.1 and 0.01, in-degree weighted cascade, out-degree weighted
// cascade) plus the trivalency model commonly used in follow-up work.
//
// It also generates query workloads for the serving side: reproducible
// seed-set mixes (uniform, hotspot, singleton) that load drivers such as
// cmd/imbench replay against a running influence server, and weighted
// multi-sketch target mixes (ParseTargets, TargetSequence) that spread one
// query stream across several named sketches of a multi-sketch server.
package workload

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"imdist/internal/graph"
	"imdist/internal/rng"
)

// Model identifies an edge-probability assignment strategy.
type Model int

const (
	// UC01 is the uniform cascade model with p(e) = 0.1 ("uc0.1").
	UC01 Model = iota
	// UC001 is the uniform cascade model with p(e) = 0.01 ("uc0.01").
	UC001
	// IWC is the in-degree weighted cascade: p(u,v) = 1/d⁻(v).
	IWC
	// OWC is the out-degree weighted cascade: p(u,v) = 1/d⁺(u).
	OWC
	// Trivalency assigns each edge one of {0.1, 0.01, 0.001} uniformly at
	// random (an extension beyond the paper's four settings).
	Trivalency
)

// ErrUnknownModel reports an unrecognised model name or value.
var ErrUnknownModel = errors.New("workload: unknown probability model")

// String returns the paper's abbreviation for the model.
func (m Model) String() string {
	switch m {
	case UC01:
		return "uc0.1"
	case UC001:
		return "uc0.01"
	case IWC:
		return "iwc"
	case OWC:
		return "owc"
	case Trivalency:
		return "tv"
	default:
		return "unknown"
	}
}

// ParseModel converts a model abbreviation ("uc0.1", "uc0.01", "iwc", "owc",
// "tv") into a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "uc0.1", "uc01":
		return UC01, nil
	case "uc0.01", "uc001":
		return UC001, nil
	case "iwc":
		return IWC, nil
	case "owc":
		return OWC, nil
	case "tv", "trivalency":
		return Trivalency, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownModel, s)
	}
}

// StandardModels lists the four settings evaluated in the paper, in the order
// tables report them.
func StandardModels() []Model { return []Model{UC01, UC001, IWC, OWC} }

// Assign attaches probabilities to g according to the model. The src argument
// is only consulted by randomized models (Trivalency) and may be nil for the
// deterministic ones. Vertices with zero relevant degree cannot occur as an
// edge endpoint of the corresponding kind, so the weighted models never
// divide by zero.
func Assign(g *graph.Graph, m Model, src rng.Source) (*graph.InfluenceGraph, error) {
	switch m {
	case UC01:
		return graph.NewInfluenceGraph(g, func(_, _ graph.VertexID) float64 { return 0.1 })
	case UC001:
		return graph.NewInfluenceGraph(g, func(_, _ graph.VertexID) float64 { return 0.01 })
	case IWC:
		return graph.NewInfluenceGraph(g, func(_, v graph.VertexID) float64 {
			return 1.0 / float64(g.InDegree(v))
		})
	case OWC:
		return graph.NewInfluenceGraph(g, func(u, _ graph.VertexID) float64 {
			return 1.0 / float64(g.OutDegree(u))
		})
	case Trivalency:
		if src == nil {
			return nil, fmt.Errorf("workload: Trivalency requires a random source")
		}
		levels := [3]float64{0.1, 0.01, 0.001}
		return graph.NewInfluenceGraph(g, func(_, _ graph.VertexID) float64 {
			return levels[src.Intn(3)]
		})
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownModel, int(m))
	}
}

// Target is one named sketch in a multi-sketch benchmark mix, with a
// round-robin selection weight: a server holding several sketches is driven
// with traffic interleaved across them in proportion to the weights.
type Target struct {
	Name   string
	Weight int
}

// ParseTargets parses a multi-sketch mix specification of the form
// "name[:weight],name[:weight],...", e.g. "karate-ic:2,karate-lt" (weights
// default to 1). Names must be non-empty and unique; weights must be >= 1.
func ParseTargets(s string) ([]Target, error) {
	if s == "" {
		return nil, errors.New("workload: empty target mix")
	}
	parts := strings.Split(s, ",")
	targets := make([]Target, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, part := range parts {
		name, weightStr, hasWeight := strings.Cut(strings.TrimSpace(part), ":")
		t := Target{Name: name, Weight: 1}
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("workload: target %q: weight must be a positive integer", part)
			}
			t.Weight = w
		}
		if t.Name == "" {
			return nil, fmt.Errorf("workload: target %q: empty sketch name", part)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("workload: duplicate target %q", t.Name)
		}
		seen[t.Name] = true
		targets = append(targets, t)
	}
	return targets, nil
}

// TargetSequence deterministically assigns one target name to each of count
// queries by cycling a weighted round-robin pattern: targets appear in order,
// each repeated Weight times per cycle, so "a:2,b:1" yields a,a,b,a,a,b,...
// Equal inputs always produce the same sequence, keeping multi-sketch
// benchmark runs replayable. The pattern is indexed arithmetically, never
// materialized, so huge weights cost nothing.
func TargetSequence(targets []Target, count int) ([]string, error) {
	if len(targets) == 0 {
		return nil, errors.New("workload: target sequence needs at least one target")
	}
	if count < 0 {
		return nil, fmt.Errorf("workload: negative query count %d", count)
	}
	total := 0
	for _, t := range targets {
		if t.Weight < 1 {
			return nil, fmt.Errorf("workload: target %q: weight must be >= 1, got %d", t.Name, t.Weight)
		}
		total += t.Weight
	}
	seq := make([]string, count)
	for i := range seq {
		r := i % total
		for _, t := range targets {
			if r < t.Weight {
				seq[i] = t.Name
				break
			}
			r -= t.Weight
		}
	}
	return seq, nil
}

// Mix identifies a seed-set query mix for influence-server load generation.
type Mix int

const (
	// MixUniform draws each query's seeds uniformly from all vertices, with
	// the set size uniform in [1, maxSize].
	MixUniform Mix = iota
	// MixHotspot draws most seeds (hotspotFraction of them) from a small hot
	// set of vertices, modelling skewed production traffic where a few
	// celebrity seed sets are queried over and over (and therefore exercise
	// a server's cache).
	MixHotspot
	// MixSingleton issues single-vertex queries only, uniform over vertices —
	// the /v1/top-style ranking traffic pattern.
	MixSingleton
)

const (
	// hotspotFraction is the fraction of seeds MixHotspot draws from the hot
	// set; the rest are uniform over all vertices.
	hotspotFraction = 0.9
	// hotspotShare is the fraction of the vertex space forming the hot set
	// (at least one vertex).
	hotspotShare = 0.05
)

// ErrUnknownMix reports an unrecognised mix name or value.
var ErrUnknownMix = errors.New("workload: unknown query mix")

// String returns the mix name accepted by ParseMix.
func (m Mix) String() string {
	switch m {
	case MixUniform:
		return "uniform"
	case MixHotspot:
		return "hotspot"
	case MixSingleton:
		return "singleton"
	default:
		return "unknown"
	}
}

// ParseMix converts a mix name ("uniform", "hotspot", "singleton") into a Mix.
func ParseMix(s string) (Mix, error) {
	switch s {
	case "uniform":
		return MixUniform, nil
	case "hotspot":
		return MixHotspot, nil
	case "singleton":
		return MixSingleton, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownMix, s)
	}
}

// Mixes returns all query mixes.
func Mixes() []Mix { return []Mix{MixUniform, MixHotspot, MixSingleton} }

// SeedSets generates count seed sets over the vertex space [0, n) according
// to the mix. Every set is non-empty, duplicate-free and no larger than
// maxSize (clamped to n); equal (mix, n, count, maxSize) with an equally
// seeded src reproduce the same workload, so two benchmark runs replay
// byte-identical query streams.
func SeedSets(m Mix, n, count, maxSize int, src rng.Source) ([][]graph.VertexID, error) {
	switch m {
	case MixUniform, MixHotspot, MixSingleton:
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownMix, int(m))
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: seed-set mix needs n >= 1 vertices, got %d", n)
	}
	if count < 0 {
		return nil, fmt.Errorf("workload: negative seed-set count %d", count)
	}
	if maxSize < 1 {
		return nil, fmt.Errorf("workload: seed-set mix needs maxSize >= 1, got %d", maxSize)
	}
	if src == nil {
		return nil, fmt.Errorf("workload: seed-set mix requires a random source")
	}
	if maxSize > n {
		maxSize = n
	}
	hotCount := int(hotspotShare * float64(n))
	if hotCount < 1 {
		hotCount = 1
	}
	draw := func() graph.VertexID {
		switch m {
		case MixHotspot:
			if src.Float64() < hotspotFraction {
				return graph.VertexID(src.Intn(hotCount))
			}
			return graph.VertexID(src.Intn(n))
		default:
			return graph.VertexID(src.Intn(n))
		}
	}
	sets := make([][]graph.VertexID, count)
	for i := range sets {
		size := 1
		if m != MixSingleton && maxSize > 1 {
			size = 1 + src.Intn(maxSize)
		}
		set := make([]graph.VertexID, 0, size)
		seen := make(map[graph.VertexID]bool, size)
		// Rejection-sample distinct vertices; after too many collisions
		// (tiny graphs, hotspot mixes) fall back to a linear scan from the
		// last draw so generation always terminates.
		retries := 0
		for len(set) < size {
			v := draw()
			for seen[v] {
				retries++
				if retries > 16*size {
					v = (v + 1) % graph.VertexID(n)
					continue
				}
				v = draw()
			}
			seen[v] = true
			set = append(set, v)
		}
		sets[i] = set
	}
	return sets, nil
}
