// Package workload assigns influence probabilities to graphs, implementing
// the four edge-probability settings of Section 4.3 of the paper (uniform
// cascade 0.1 and 0.01, in-degree weighted cascade, out-degree weighted
// cascade) plus the trivalency model commonly used in follow-up work.
package workload

import (
	"errors"
	"fmt"

	"imdist/internal/graph"
	"imdist/internal/rng"
)

// Model identifies an edge-probability assignment strategy.
type Model int

const (
	// UC01 is the uniform cascade model with p(e) = 0.1 ("uc0.1").
	UC01 Model = iota
	// UC001 is the uniform cascade model with p(e) = 0.01 ("uc0.01").
	UC001
	// IWC is the in-degree weighted cascade: p(u,v) = 1/d⁻(v).
	IWC
	// OWC is the out-degree weighted cascade: p(u,v) = 1/d⁺(u).
	OWC
	// Trivalency assigns each edge one of {0.1, 0.01, 0.001} uniformly at
	// random (an extension beyond the paper's four settings).
	Trivalency
)

// ErrUnknownModel reports an unrecognised model name or value.
var ErrUnknownModel = errors.New("workload: unknown probability model")

// String returns the paper's abbreviation for the model.
func (m Model) String() string {
	switch m {
	case UC01:
		return "uc0.1"
	case UC001:
		return "uc0.01"
	case IWC:
		return "iwc"
	case OWC:
		return "owc"
	case Trivalency:
		return "tv"
	default:
		return "unknown"
	}
}

// ParseModel converts a model abbreviation ("uc0.1", "uc0.01", "iwc", "owc",
// "tv") into a Model.
func ParseModel(s string) (Model, error) {
	switch s {
	case "uc0.1", "uc01":
		return UC01, nil
	case "uc0.01", "uc001":
		return UC001, nil
	case "iwc":
		return IWC, nil
	case "owc":
		return OWC, nil
	case "tv", "trivalency":
		return Trivalency, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownModel, s)
	}
}

// StandardModels lists the four settings evaluated in the paper, in the order
// tables report them.
func StandardModels() []Model { return []Model{UC01, UC001, IWC, OWC} }

// Assign attaches probabilities to g according to the model. The src argument
// is only consulted by randomized models (Trivalency) and may be nil for the
// deterministic ones. Vertices with zero relevant degree cannot occur as an
// edge endpoint of the corresponding kind, so the weighted models never
// divide by zero.
func Assign(g *graph.Graph, m Model, src rng.Source) (*graph.InfluenceGraph, error) {
	switch m {
	case UC01:
		return graph.NewInfluenceGraph(g, func(_, _ graph.VertexID) float64 { return 0.1 })
	case UC001:
		return graph.NewInfluenceGraph(g, func(_, _ graph.VertexID) float64 { return 0.01 })
	case IWC:
		return graph.NewInfluenceGraph(g, func(_, v graph.VertexID) float64 {
			return 1.0 / float64(g.InDegree(v))
		})
	case OWC:
		return graph.NewInfluenceGraph(g, func(u, _ graph.VertexID) float64 {
			return 1.0 / float64(g.OutDegree(u))
		})
	case Trivalency:
		if src == nil {
			return nil, fmt.Errorf("workload: Trivalency requires a random source")
		}
		levels := [3]float64{0.1, 0.01, 0.001}
		return graph.NewInfluenceGraph(g, func(_, _ graph.VertexID) float64 {
			return levels[src.Intn(3)]
		})
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownModel, int(m))
	}
}
