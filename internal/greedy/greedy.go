// Package greedy implements the simple greedy framework of Algorithm 3.1:
// repeatedly add the vertex with the largest estimated (marginal) influence,
// breaking ties by a random shuffle of the vertex order, until k seeds have
// been selected. A CELF-style lazy variant is provided for monotone
// submodular estimators (Snapshot and RIS).
package greedy

import (
	"container/heap"
	"errors"
	"fmt"

	"imdist/internal/estimator"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// ErrInvalidSeedSize reports k outside [1, n].
var ErrInvalidSeedSize = errors.New("greedy: seed size out of range")

// Run executes Algorithm 3.1 on the given estimator: the order of vertices is
// shuffled with src, then for each of the k iterations every not-yet-selected
// vertex is evaluated with Estimate and the last vertex attaining the maximum
// is committed with Update. It returns the selected seed set in selection
// order.
func Run(est estimator.Estimator, n, k int, src rng.Source) ([]graph.VertexID, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrInvalidSeedSize, k, n)
	}
	order := shuffledOrder(n, src)
	selected := preselected(est, n)
	seeds := make([]graph.VertexID, 0, k)

	for len(seeds) < k {
		best := graph.VertexID(-1)
		bestVal := 0.0
		for _, v := range order {
			if selected[v] {
				continue
			}
			val := est.Estimate(v)
			// "last vertex with maximum (marginal) influence": ties go to the
			// later vertex in the shuffled order, which randomizes tie-breaks.
			if best < 0 || val >= bestVal {
				best = v
				bestVal = val
			}
		}
		if best < 0 {
			// All candidates are selected already — possible when the
			// estimator arrived with pre-committed seeds and k exceeds the
			// remaining vertices. Mirror RunLazy's error.
			return seeds, fmt.Errorf("%w: exhausted candidates after %d seeds", ErrInvalidSeedSize, len(seeds))
		}
		est.Update(best)
		selected[best] = true
		seeds = append(seeds, best)
	}
	return seeds, nil
}

// RunLazy executes the CELF lazy-greedy optimization (Leskovec et al., the
// Oneshot representative of Table 2) on a monotone submodular estimator: the
// marginal gains computed in earlier iterations upper-bound the current ones,
// so a vertex is re-evaluated only when it reaches the top of a max-heap.
// The result is identical to Run for submodular estimators (Snapshot, RIS) up
// to tie-breaking; using it with Oneshot sacrifices the guarantee because
// Oneshot's estimates are not submodular.
func RunLazy(est estimator.Estimator, n, k int, src rng.Source) ([]graph.VertexID, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrInvalidSeedSize, k, n)
	}
	order := shuffledOrder(n, src)
	// rank[v] is the tie-break priority: later in the shuffled order wins, so
	// the behaviour matches Run's "last vertex with maximum" rule.
	rank := make([]int, n)
	for i, v := range order {
		rank[v] = i
	}

	selected := preselected(est, n)
	pq := make(gainHeap, 0, n)
	for _, v := range order {
		if selected[v] {
			continue
		}
		pq = append(pq, gainEntry{vertex: v, gain: est.Estimate(v), round: 0, rank: rank[v]})
	}
	heap.Init(&pq)

	seeds := make([]graph.VertexID, 0, k)
	for len(seeds) < k && pq.Len() > 0 {
		top := heap.Pop(&pq).(gainEntry)
		if top.round == len(seeds) {
			// The cached gain is current for this round: commit the vertex.
			est.Update(top.vertex)
			seeds = append(seeds, top.vertex)
			continue
		}
		// Stale: re-evaluate against the current seed set and push back.
		top.gain = est.Estimate(top.vertex)
		top.round = len(seeds)
		heap.Push(&pq, top)
	}
	if len(seeds) < k {
		return seeds, fmt.Errorf("%w: exhausted candidates after %d seeds", ErrInvalidSeedSize, len(seeds))
	}
	return seeds, nil
}

// preselected returns the selection mask seeded with the vertices the
// estimator has already committed. Re-selecting a committed vertex would
// silently corrupt the result — the returned seed set contains duplicates yet
// counts them against k, and the coverage state no longer matches a k-seed
// greedy run — so vertices already in the estimator's seed set are
// defensively excluded from the candidate pool.
func preselected(est estimator.Estimator, n int) []bool {
	selected := make([]bool, n)
	for _, v := range est.Seeds() {
		if int(v) >= 0 && int(v) < n {
			selected[v] = true
		}
	}
	return selected
}

// shuffledOrder returns a Fisher–Yates shuffle of 0..n-1 driven by src.
func shuffledOrder(n int, src rng.Source) []graph.VertexID {
	order := make([]graph.VertexID, n)
	for i := range order {
		order[i] = graph.VertexID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// gainEntry is one candidate in the CELF priority queue.
type gainEntry struct {
	vertex graph.VertexID
	gain   float64
	round  int // the seed-set size the gain was computed against
	rank   int // tie-break: higher rank (later in shuffled order) wins
}

// gainHeap is a max-heap over gain with rank as the tie-breaker.
type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }

func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].rank > h[j].rank
}

func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *gainHeap) Push(x any) { *h = append(*h, x.(gainEntry)) }

func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
