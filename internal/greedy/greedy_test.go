package greedy

import (
	"errors"
	"testing"

	"imdist/internal/estimator"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// twoStarGraph returns two disjoint stars with hubs 0 and 1 (5 leaves each,
// p = 1); the unique optimal seed set of size 2 is {0, 1}.
func twoStarGraph(t testing.TB) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(12)
	for v := 2; v <= 6; v++ {
		if err := b.AddEdge(0, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	for v := 7; v <= 11; v++ {
		if err := b.AddEdge(1, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return 1.0 })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func newEst(t testing.TB, a estimator.Approach, ig *graph.InfluenceGraph, samples int, seed uint64) estimator.Estimator {
	t.Helper()
	est, err := estimator.New(a, estimator.Config{Graph: ig, SampleNumber: samples, Source: rng.NewXoshiro(seed)})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func containsBoth(seeds []graph.VertexID, a, b graph.VertexID) bool {
	foundA, foundB := false, false
	for _, s := range seeds {
		if s == a {
			foundA = true
		}
		if s == b {
			foundB = true
		}
	}
	return foundA && foundB
}

func TestRunFindsBothHubs(t *testing.T) {
	ig := twoStarGraph(t)
	cases := []struct {
		a       estimator.Approach
		samples int
	}{
		{estimator.Oneshot, 200},
		{estimator.Snapshot, 64},
		{estimator.RIS, 20000},
	}
	for _, c := range cases {
		est := newEst(t, c.a, ig, c.samples, 7)
		seeds, err := Run(est, ig.NumVertices(), 2, rng.NewXoshiro(1))
		if err != nil {
			t.Fatalf("%v: %v", c.a, err)
		}
		if !containsBoth(seeds, 0, 1) {
			t.Errorf("%v: seeds = %v, want both hubs {0,1}", c.a, seeds)
		}
	}
}

func TestRunSeedSizeValidation(t *testing.T) {
	ig := twoStarGraph(t)
	est := newEst(t, estimator.Snapshot, ig, 8, 1)
	if _, err := Run(est, ig.NumVertices(), 0, rng.NewXoshiro(1)); !errors.Is(err, ErrInvalidSeedSize) {
		t.Errorf("k=0 err = %v, want ErrInvalidSeedSize", err)
	}
	if _, err := Run(est, ig.NumVertices(), 13, rng.NewXoshiro(1)); !errors.Is(err, ErrInvalidSeedSize) {
		t.Errorf("k>n err = %v, want ErrInvalidSeedSize", err)
	}
}

func TestRunSelectsDistinctSeeds(t *testing.T) {
	ig := twoStarGraph(t)
	est := newEst(t, estimator.Oneshot, ig, 20, 3)
	seeds, err := Run(est, ig.NumVertices(), 6, rng.NewXoshiro(5))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[graph.VertexID]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d in %v", s, seeds)
		}
		seen[s] = true
	}
	if len(seeds) != 6 {
		t.Errorf("got %d seeds, want 6", len(seeds))
	}
}

func TestRunKEqualsN(t *testing.T) {
	ig := twoStarGraph(t)
	est := newEst(t, estimator.Snapshot, ig, 4, 1)
	seeds, err := Run(est, ig.NumVertices(), ig.NumVertices(), rng.NewXoshiro(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != ig.NumVertices() {
		t.Errorf("k=n selected %d seeds, want %d", len(seeds), ig.NumVertices())
	}
}

func TestRunUpdatesEstimator(t *testing.T) {
	ig := twoStarGraph(t)
	est := newEst(t, estimator.RIS, ig, 4000, 9)
	seeds, err := Run(est, ig.NumVertices(), 3, rng.NewXoshiro(4))
	if err != nil {
		t.Fatal(err)
	}
	got := est.Seeds()
	if len(got) != len(seeds) {
		t.Fatalf("estimator seeds %v, run returned %v", got, seeds)
	}
	for i := range got {
		if got[i] != seeds[i] {
			t.Errorf("seed %d: estimator has %d, run returned %d", i, got[i], seeds[i])
		}
	}
}

func TestLazyMatchesEagerForSubmodularEstimators(t *testing.T) {
	ig := twoStarGraph(t)
	for _, c := range []struct {
		a       estimator.Approach
		samples int
	}{{estimator.Snapshot, 64}, {estimator.RIS, 20000}} {
		eager := newEst(t, c.a, ig, c.samples, 21)
		lazyEst := newEst(t, c.a, ig, c.samples, 21)
		eagerSeeds, err := Run(eager, ig.NumVertices(), 2, rng.NewXoshiro(31))
		if err != nil {
			t.Fatal(err)
		}
		lazySeeds, err := RunLazy(lazyEst, ig.NumVertices(), 2, rng.NewXoshiro(31))
		if err != nil {
			t.Fatal(err)
		}
		if !containsBoth(eagerSeeds, 0, 1) || !containsBoth(lazySeeds, 0, 1) {
			t.Errorf("%v: eager=%v lazy=%v, want both hubs", c.a, eagerSeeds, lazySeeds)
		}
	}
}

func TestRunLazyValidation(t *testing.T) {
	ig := twoStarGraph(t)
	est := newEst(t, estimator.Snapshot, ig, 8, 1)
	if _, err := RunLazy(est, ig.NumVertices(), 0, rng.NewXoshiro(1)); !errors.Is(err, ErrInvalidSeedSize) {
		t.Errorf("lazy k=0 err = %v", err)
	}
}

func TestTieBreakingIsRandomized(t *testing.T) {
	// A graph of 8 isolated vertices: every vertex has identical influence 1,
	// so the first seed is decided purely by tie-breaking. Over many runs with
	// different shuffle seeds, more than one distinct vertex must be chosen.
	b := graph.NewBuilder(8)
	// Influence graphs need at least valid probability assignment; with no
	// edges the assign function is never called.
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	chosen := map[graph.VertexID]bool{}
	for trial := 0; trial < 40; trial++ {
		est := newEst(t, estimator.Snapshot, ig, 2, uint64(trial+1))
		seeds, err := Run(est, 8, 1, rng.NewXoshiro(uint64(1000+trial)))
		if err != nil {
			t.Fatal(err)
		}
		chosen[seeds[0]] = true
	}
	if len(chosen) < 3 {
		t.Errorf("tie-breaking chose only %d distinct vertices over 40 runs: %v", len(chosen), chosen)
	}
}

func TestShuffledOrderIsPermutation(t *testing.T) {
	order := shuffledOrder(100, rng.NewXoshiro(12))
	seen := make([]bool, 100)
	for _, v := range order {
		if v < 0 || int(v) >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[v] = true
	}
}

// TestRunSkipsPrecommittedSeeds covers the double-selection hazard: when the
// estimator arrives with committed seeds (e.g. a reused estimator), neither
// Run nor RunLazy may select them again — the returned seed set must be
// disjoint from the pre-committed set and duplicate-free.
func TestRunSkipsPrecommittedSeeds(t *testing.T) {
	ig := twoStarGraph(t)
	for _, lazy := range []bool{false, true} {
		for _, a := range []estimator.Approach{estimator.Snapshot, estimator.RIS} {
			est := newEst(t, a, ig, 64, 5)
			// Pre-commit the strongest vertex (hub 0) outside the greedy loop.
			est.Update(0)
			var (
				seeds []graph.VertexID
				err   error
			)
			if lazy {
				seeds, err = RunLazy(est, ig.NumVertices(), 2, rng.NewXoshiro(9))
			} else {
				seeds, err = Run(est, ig.NumVertices(), 2, rng.NewXoshiro(9))
			}
			if err != nil {
				t.Fatalf("%v lazy=%v: %v", a, lazy, err)
			}
			seen := map[graph.VertexID]bool{0: true}
			for _, s := range seeds {
				if seen[s] {
					t.Fatalf("%v lazy=%v: vertex %d selected twice (seeds %v after pre-committing 0)", a, lazy, s, seeds)
				}
				seen[s] = true
			}
			// Hub 1 must still be found among the fresh selections.
			if !containsBoth(append(seeds, 0), 0, 1) {
				t.Errorf("%v lazy=%v: expected hub 1 in %v", a, lazy, seeds)
			}
		}
	}
}
