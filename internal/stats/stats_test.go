package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanAndVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/singleton statistics should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile of empty slice should be 0")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			if math.IsNaN(r) || math.IsInf(r, 0) {
				r = 0
			}
			xs[i] = r
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	_ = Percentile(xs, 50)
	if !sort.Float64sAreSorted(orig) {
		// orig was unsorted, assert xs still equals orig element-wise.
		for i := range xs {
			if xs[i] != orig[i] {
				t.Fatal("Percentile mutated its input")
			}
		}
	}
}

func TestBoxPlot(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	b := NewBoxPlot(xs)
	if b.Min != 0 || b.Max != 100 {
		t.Errorf("min/max = %v/%v", b.Min, b.Max)
	}
	if math.Abs(b.Median-50) > 1e-9 {
		t.Errorf("median = %v, want 50", b.Median)
	}
	if math.Abs(b.Percentile25-25) > 1e-9 || math.Abs(b.Percentile75-75) > 1e-9 {
		t.Errorf("quartiles = %v, %v", b.Percentile25, b.Percentile75)
	}
	if b.NotchLow >= b.Median || b.NotchHigh <= b.Median {
		t.Errorf("notch [%v,%v] does not bracket median %v", b.NotchLow, b.NotchHigh, b.Median)
	}
	if b.N != 101 {
		t.Errorf("N = %d, want 101", b.N)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	b := NewBoxPlot(nil)
	if b.N != 0 || b.Mean != 0 {
		t.Errorf("empty box plot = %+v", b)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if got := Entropy(map[string]int{"a": 1000}); got != 0 {
		t.Errorf("degenerate entropy = %v, want 0", got)
	}
	if got := Entropy(map[string]int{}); got != 0 {
		t.Errorf("empty entropy = %v, want 0", got)
	}
}

func TestEntropyUniform(t *testing.T) {
	// 8 equally likely outcomes -> 3 bits.
	counts := map[int]int{}
	for i := 0; i < 8; i++ {
		counts[i] = 125
	}
	if got := Entropy(counts); math.Abs(got-3) > 1e-12 {
		t.Errorf("uniform entropy = %v, want 3", got)
	}
}

func TestEntropyBoundedByMaxEntropy(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := map[int]int{}
		total := 0
		for _, r := range raw {
			counts[int(r%50)]++
			total++
		}
		if total == 0 {
			return Entropy(counts) == 0
		}
		h := Entropy(counts)
		return h >= 0 && h <= MaxEntropy(total)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEntropyIgnoresNonPositiveCounts(t *testing.T) {
	h := Entropy(map[string]int{"a": 10, "b": 0, "c": -5, "d": 10})
	if math.Abs(h-1) > 1e-12 {
		t.Errorf("entropy with zero/negative counts = %v, want 1", h)
	}
}

func TestMaxEntropy(t *testing.T) {
	if MaxEntropy(1) != 0 || MaxEntropy(0) != 0 {
		t.Error("MaxEntropy of <=1 trials should be 0")
	}
	if math.Abs(MaxEntropy(1000)-math.Log2(1000)) > 1e-12 {
		t.Errorf("MaxEntropy(1000) = %v", MaxEntropy(1000))
	}
	// The paper: entropy from 10^3 trials never exceeds ~9.97 bits.
	if MaxEntropy(1000) > 9.97 {
		t.Errorf("MaxEntropy(1000) = %v, paper cites approx 9.97", MaxEntropy(1000))
	}
}

func TestBinomialCI(t *testing.T) {
	// p=0.5, n=10^7, z=2.576: half width = 2.576*sqrt(0.25/1e7) ~ 4.07e-4.
	got := BinomialCI(0.5, 1e7, 2.576)
	want := 2.576 * math.Sqrt(0.25/1e7)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("BinomialCI = %v, want %v", got, want)
	}
	if BinomialCI(0.5, 0, 2.576) != 0 {
		t.Error("BinomialCI with n=0 should be 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0, 2.0, -1.0}
	counts, width := Histogram(xs, 0, 1, 4)
	if len(counts) != 4 {
		t.Fatalf("bins = %d, want 4", len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram total = %d, want %d", total, len(xs))
	}
	if math.Abs(width-0.25) > 1e-12 {
		t.Errorf("width = %v, want 0.25", width)
	}
	// Degenerate range.
	counts, width = Histogram(xs, 5, 5, 3)
	if counts[0] != len(xs) || width != 0 {
		t.Errorf("degenerate histogram = %v, width %v", counts, width)
	}
	// Non-positive bin count.
	counts, _ = Histogram(xs, 0, 1, 0)
	if len(counts) != 1 {
		t.Errorf("nbins=0 should collapse to a single bin, got %d", len(counts))
	}
}

func TestGeometricLevels(t *testing.T) {
	levels := GeometricLevels(4)
	want := []int{1, 2, 4, 8, 16}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v", levels)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Errorf("levels[%d] = %d, want %d", i, levels[i], want[i])
		}
	}
	if GeometricLevels(-1) != nil {
		t.Error("negative maxExp should yield nil")
	}
	// The paper's sweeps go up to 2^16 for Oneshot/Snapshot and 2^24 for RIS.
	if got := GeometricLevels(24); got[len(got)-1] != 16777216 {
		t.Errorf("2^24 level = %d, want 16777216", got[len(got)-1])
	}
}
