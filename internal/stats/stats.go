// Package stats provides the statistical machinery the paper's methodology
// relies on: Shannon entropy of empirical set distributions (Section 5.1),
// summary statistics and notched-box-plot quantities for influence
// distributions (Section 5.2), and binomial confidence intervals for the
// RR-set influence oracle.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p <= 0 {
		return minOf(xs)
	}
	if p >= 100 {
		return maxOf(xs)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// BoxPlot holds the quantities drawn in the paper's notched box plots
// (Figure 4's legend): quartiles, 1st/99th percentiles, mean, and the 95%
// confidence interval of the median (the "notch").
type BoxPlot struct {
	Min          float64
	Percentile1  float64
	Percentile25 float64
	Median       float64
	Percentile75 float64
	Percentile99 float64
	Max          float64
	Mean         float64
	StdDev       float64
	NotchLow     float64
	NotchHigh    float64
	N            int
}

// NewBoxPlot computes the notched box plot summary of xs.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	b := BoxPlot{
		Min:          minOf(xs),
		Percentile1:  Percentile(xs, 1),
		Percentile25: Percentile(xs, 25),
		Median:       Median(xs),
		Percentile75: Percentile(xs, 75),
		Percentile99: Percentile(xs, 99),
		Max:          maxOf(xs),
		Mean:         Mean(xs),
		StdDev:       StdDev(xs),
		N:            len(xs),
	}
	// Standard notch definition: median ± 1.57·IQR/sqrt(n).
	iqr := b.Percentile75 - b.Percentile25
	half := 1.57 * iqr / math.Sqrt(float64(len(xs)))
	b.NotchLow = b.Median - half
	b.NotchHigh = b.Median + half
	return b
}

// Entropy returns the Shannon entropy, in bits, of an empirical distribution
// given as a map from outcome key to occurrence count. A degenerate
// (single-outcome) or empty distribution has entropy 0. With T trials the
// entropy cannot exceed log2(T).
func Entropy[K comparable](counts map[K]int) float64 {
	total := 0
	for _, c := range counts {
		if c > 0 {
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	if h < 0 {
		h = 0
	}
	return h
}

// MaxEntropy returns log2(trials), the maximum possible entropy of an
// empirical distribution constructed from the given number of trials.
func MaxEntropy(trials int) float64 {
	if trials <= 1 {
		return 0
	}
	return math.Log2(float64(trials))
}

// BinomialCI returns the normal-approximation confidence interval half-width
// for a binomial proportion estimated from n trials at confidence z (e.g.
// z = 2.576 for 99%). The paper uses this form to bound the RR-set oracle:
// the 99% CI for Inf(S) is n·F(S) ± 1.29·n/sqrt(R) with z/2 = 1.29.
func BinomialCI(p float64, n int, z float64) float64 {
	if n <= 0 {
		return 0
	}
	v := p * (1 - p)
	if v < 0 {
		v = 0
	}
	return z * math.Sqrt(v/float64(n))
}

// Histogram counts xs into nbins equal-width bins over [min, max]; values
// outside the range are clamped to the boundary bins. It returns the bin
// counts and the bin width. A non-positive nbins yields a single bin.
func Histogram(xs []float64, min, max float64, nbins int) (counts []int, width float64) {
	if nbins <= 0 {
		nbins = 1
	}
	counts = make([]int, nbins)
	if max <= min {
		counts[0] = len(xs)
		return counts, 0
	}
	width = (max - min) / float64(nbins)
	for _, x := range xs {
		idx := int((x - min) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		counts[idx]++
	}
	return counts, width
}

// GeometricLevels returns the sample numbers 2^0, 2^1, ..., 2^maxExp used by
// the paper's sweeps ("the sample number was set to a power of two up to
// 2^16 / 2^24").
func GeometricLevels(maxExp int) []int {
	if maxExp < 0 {
		return nil
	}
	levels := make([]int, maxExp+1)
	for i := 0; i <= maxExp; i++ {
		levels[i] = 1 << uint(i)
	}
	return levels
}
