package exact

import (
	"errors"
	"math"
	"testing"

	"imdist/internal/estimator"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

func lineGraph(t *testing.T, p float64) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return p })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func diamondGraph(t *testing.T, p float64) *graph.InfluenceGraph {
	t.Helper()
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: two paths from 0 to 3.
	b := graph.NewBuilder(4)
	for _, e := range [][2]graph.VertexID{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return p })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func TestInfluenceLine(t *testing.T) {
	// Inf({0}) on 0->1->2 with p: 1 + p + p^2.
	for _, p := range []float64{0.1, 0.5, 1.0} {
		ig := lineGraph(t, p)
		got, err := Influence(ig, []graph.VertexID{0})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 + p + p*p
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: Influence = %v, want %v", p, got, want)
		}
	}
}

func TestInfluenceDiamond(t *testing.T) {
	// Inf({0}) = 1 + 2p + Pr[3 activated]; 3 is activated unless both paths
	// fail: 1 - (1 - p^2)^2.
	p := 0.5
	ig := diamondGraph(t, p)
	got, err := Influence(ig, []graph.VertexID{0})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 2*p + 1 - (1-p*p)*(1-p*p)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Influence = %v, want %v", got, want)
	}
}

func TestInfluenceMultipleSeeds(t *testing.T) {
	ig := lineGraph(t, 0.5)
	got, err := Influence(ig, []graph.VertexID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Seeds {0,2}: 2 + Pr[1 activated] = 2 + 0.5.
	if math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Influence({0,2}) = %v, want 2.5", got)
	}
}

func TestInfluenceEmptyAndErrors(t *testing.T) {
	ig := lineGraph(t, 0.5)
	got, err := Influence(ig, nil)
	if err != nil || got != 0 {
		t.Errorf("Influence(empty) = %v, %v", got, err)
	}
	if _, err := Influence(ig, []graph.VertexID{7}); err == nil {
		t.Error("out-of-range seed accepted")
	}
	// Graph with too many edges.
	b := graph.NewBuilder(30)
	for i := 0; i < 29; i++ {
		if err := b.AddEdge(graph.VertexID(i), graph.VertexID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	big, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return 0.5 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Influence(big, []graph.VertexID{0}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized graph err = %v, want ErrTooLarge", err)
	}
}

func TestSamplingEstimatorsAgreeWithExact(t *testing.T) {
	// Cross-validation (DESIGN.md §6): the three approaches' estimates of
	// Inf({0}) on the diamond graph must agree with the exact value within
	// Monte-Carlo tolerance.
	ig := diamondGraph(t, 0.3)
	want, err := Influence(ig, []graph.VertexID{0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a       estimator.Approach
		samples int
		tol     float64
	}{
		{estimator.Oneshot, 20000, 0.05},
		{estimator.Snapshot, 20000, 0.05},
		{estimator.RIS, 400000, 0.05},
	}
	for _, c := range cases {
		est, err := estimator.New(c.a, estimator.Config{Graph: ig, SampleNumber: c.samples, Source: rng.NewXoshiro(7)})
		if err != nil {
			t.Fatal(err)
		}
		got := est.Estimate(0)
		if math.Abs(got-want) > c.tol {
			t.Errorf("%v estimate = %v, exact = %v (tolerance %v)", c.a, got, want, c.tol)
		}
	}
}

func TestGreedyExact(t *testing.T) {
	// Two disjoint edges 0->1, 2->3 with p=1: optimal k=2 is {0,2} with
	// influence 4.
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(ig, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Influence-4) > 1e-12 {
		t.Errorf("greedy influence = %v, want 4", res.Influence)
	}
	if len(res.Seeds) != 2 || len(res.MarginalGains) != 2 {
		t.Errorf("greedy result = %+v", res)
	}
	if res.MarginalGains[0] != 2 || res.MarginalGains[1] != 2 {
		t.Errorf("marginal gains = %v, want [2 2]", res.MarginalGains)
	}
	if _, err := Greedy(ig, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Greedy(ig, 9); err == nil {
		t.Error("k>n accepted")
	}
}

func TestBestSingleVertices(t *testing.T) {
	ig := lineGraph(t, 0.5)
	vs, infs, err := BestSingleVertices(ig, 3)
	if err != nil {
		t.Fatal(err)
	}
	if vs[0] != 0 {
		t.Errorf("most influential vertex = %d, want 0", vs[0])
	}
	if !(infs[0] >= infs[1] && infs[1] >= infs[2]) {
		t.Errorf("influences not sorted: %v", infs)
	}
	if math.Abs(infs[0]-1.75) > 1e-12 {
		t.Errorf("Inf(0) = %v, want 1.75", infs[0])
	}
	// topK <= 0 returns all.
	vsAll, _, err := BestSingleVertices(ig, 0)
	if err != nil || len(vsAll) != 3 {
		t.Errorf("BestSingleVertices(0) returned %d vertices, err %v", len(vsAll), err)
	}
}
