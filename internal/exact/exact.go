// Package exact computes the exact influence spread of small influence
// graphs by enumerating live-edge realizations. The paper's Section 3.6
// discusses exact computation via binary decision diagrams, which is feasible
// only up to about a hundred edges; this package plays the same role in the
// reproduction — it validates the three sampling estimators on tiny instances
// — using direct enumeration, which is exact for the same size regime.
package exact

import (
	"errors"
	"fmt"

	"imdist/internal/graph"
)

// MaxEdges is the largest edge count Influence will enumerate (2^MaxEdges
// realizations).
const MaxEdges = 24

// ErrTooLarge reports a graph too large for exact enumeration.
var ErrTooLarge = errors.New("exact: graph too large for exact influence computation")

// Influence returns the exact influence spread Inf(seeds) of the seed set
// under the IC model by summing, over all 2^m live-edge subgraphs, the
// probability of the subgraph times the number of vertices reachable from the
// seeds in it.
func Influence(ig *graph.InfluenceGraph, seeds []graph.VertexID) (float64, error) {
	m := ig.NumEdges()
	if m > MaxEdges {
		return 0, fmt.Errorf("%w: %d edges (max %d)", ErrTooLarge, m, MaxEdges)
	}
	n := ig.NumVertices()
	if n == 0 {
		return 0, nil
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return 0, fmt.Errorf("exact: seed %d out of range [0,%d)", s, n)
		}
	}
	edges := ig.Edges()
	probs := make([]float64, m)
	for i, e := range edges {
		probs[i] = edgeProbability(ig, e.From, e.To)
	}

	visited := make([]bool, n)
	queue := make([]graph.VertexID, 0, n)
	adj := make([][]graph.VertexID, n)

	total := 0.0
	for mask := 0; mask < (1 << uint(m)); mask++ {
		p := 1.0
		for i := range adj {
			adj[i] = adj[i][:0]
		}
		for i, e := range edges {
			if mask&(1<<uint(i)) != 0 {
				p *= probs[i]
				adj[e.From] = append(adj[e.From], e.To)
			} else {
				p *= 1 - probs[i]
			}
		}
		if p == 0 {
			continue
		}
		total += p * float64(reachable(adj, seeds, visited, queue))
	}
	return total, nil
}

// edgeProbability looks up p(u, v) in the forward adjacency of u.
func edgeProbability(ig *graph.InfluenceGraph, u, v graph.VertexID) float64 {
	neighbors := ig.OutNeighbors(u)
	probs := ig.OutProbabilities(u)
	for i, w := range neighbors {
		if w == v {
			return probs[i]
		}
	}
	return 0
}

// reachable counts vertices reachable from seeds in the adjacency list adj.
func reachable(adj [][]graph.VertexID, seeds []graph.VertexID, visited []bool, queue []graph.VertexID) int {
	for i := range visited {
		visited[i] = false
	}
	queue = queue[:0]
	count := 0
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue, s)
		count++
	}
	for head := 0; head < len(queue); head++ {
		for _, w := range adj[queue[head]] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
				count++
			}
		}
	}
	return count
}

// GreedyResult holds the outcome of the exact greedy algorithm.
type GreedyResult struct {
	// Seeds is the selected seed set in selection order.
	Seeds []graph.VertexID
	// Influence is the exact influence spread of Seeds.
	Influence float64
	// MarginalGains[i] is the exact marginal gain of Seeds[i].
	MarginalGains []float64
}

// Greedy runs Kempe et al.'s greedy algorithm with the exact influence oracle
// (feasible only for tiny graphs): it iteratively adds the vertex with the
// largest exact marginal gain, breaking ties toward the smaller vertex id.
func Greedy(ig *graph.InfluenceGraph, k int) (*GreedyResult, error) {
	n := ig.NumVertices()
	if k < 1 || k > n {
		return nil, fmt.Errorf("exact: seed size %d out of range [1,%d]", k, n)
	}
	res := &GreedyResult{}
	current := 0.0
	chosen := make([]bool, n)
	for len(res.Seeds) < k {
		bestV := graph.VertexID(-1)
		bestVal := -1.0
		for v := 0; v < n; v++ {
			if chosen[v] {
				continue
			}
			val, err := Influence(ig, append(res.Seeds, graph.VertexID(v)))
			if err != nil {
				return nil, err
			}
			if val > bestVal {
				bestVal = val
				bestV = graph.VertexID(v)
			}
		}
		res.MarginalGains = append(res.MarginalGains, bestVal-current)
		current = bestVal
		chosen[bestV] = true
		res.Seeds = append(res.Seeds, bestV)
	}
	res.Influence = current
	return res, nil
}

// BestSingleVertices returns the vertices sorted by exact single-vertex
// influence in non-increasing order together with their influences; topK
// limits the output (topK <= 0 returns all). This mirrors Table 4's "top
// three influence spread of a single vertex".
func BestSingleVertices(ig *graph.InfluenceGraph, topK int) ([]graph.VertexID, []float64, error) {
	n := ig.NumVertices()
	type pair struct {
		v   graph.VertexID
		inf float64
	}
	pairs := make([]pair, n)
	for v := 0; v < n; v++ {
		inf, err := Influence(ig, []graph.VertexID{graph.VertexID(v)})
		if err != nil {
			return nil, nil, err
		}
		pairs[v] = pair{graph.VertexID(v), inf}
	}
	// Simple selection sort by influence (n is tiny in the exact regime).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if pairs[j].inf > pairs[best].inf {
				best = j
			}
		}
		pairs[i], pairs[best] = pairs[best], pairs[i]
	}
	if topK <= 0 || topK > n {
		topK = n
	}
	vs := make([]graph.VertexID, topK)
	infs := make([]float64, topK)
	for i := 0; i < topK; i++ {
		vs[i] = pairs[i].v
		infs[i] = pairs[i].inf
	}
	return vs, infs, nil
}
