package core

import (
	"fmt"
	"sync"

	"imdist/internal/graph"
)

// RRStore abstracts where a sketch's RR sets live while it is being built and
// queried. The Oracle and SketchBuilder run entirely off store reads, so the
// same build and query code serves both the classic in-memory store (MemStore)
// and a spill-to-disk store that keeps only a bounded working set of decoded
// segments resident (internal/sketchio's SpillStore) — the refactor that lets
// a sketch far larger than RAM build within a fixed memory budget.
//
// Contract:
//
//   - Sets are append-only and immutable: once Append returns, Set(i) for any
//     existing i returns the same vertices forever. This is what lets an
//     Oracle snapshot a prefix while the builder keeps appending.
//   - Set and ForEach must be safe for concurrent use with each other and
//     with one concurrent Append (an Oracle serves queries while a build
//     appends past its snapshot).
//   - Slices returned by Set/ForEach are owned by the store and must not be
//     modified; a spill store may hand out cached buffers it later drops, but
//     never mutates in place.
//   - Append takes ownership of the batch and its element slices.
type RRStore interface {
	// NumSets returns the number of RR sets the store holds.
	NumSets() int
	// Set returns RR set i, 0 <= i < NumSets(). Read-only.
	Set(i int) []graph.VertexID
	// Append adds a batch of RR sets after the existing ones, taking
	// ownership of batch. A store backed by durable media persists the batch
	// before returning.
	Append(batch [][]graph.VertexID) error
	// ForEach calls fn for every set index in [from, to) in ascending order,
	// stopping at the first error and returning it. It is the streaming read
	// path: a spill store decodes each segment once, in file order, without
	// polluting its cache.
	ForEach(from, to int, fn func(i int, set []graph.VertexID) error) error
	// Stats reports the store's current footprint.
	Stats() StoreStats
	// Close releases the store's resources (file handles, mappings). Sets
	// must not be read after Close. Closing a MemStore is a no-op.
	Close() error
}

// StoreStats is an RRStore's current footprint.
type StoreStats struct {
	// Sets is the number of RR sets held.
	Sets int
	// PayloadBytes is the exact encoded size of all sets in the shared
	// record format (4-byte count + 4 bytes per vertex, per set) — the v1
	// sketch payload size, which lets finalize size its header without an
	// extra pass over the data.
	PayloadBytes int64
	// MemBytes approximates the decoded bytes resident on the heap (all sets
	// for MemStore, the cached working set for a spill store).
	MemBytes int64
	// SpillBytes is the number of bytes durably spilled to disk (0 for
	// in-memory stores).
	SpillBytes int64
}

// setBytes approximates the heap footprint of one decoded RR set: its slice
// header plus 4 bytes per vertex.
func setBytes(set []graph.VertexID) int64 { return 24 + 4*int64(len(set)) }

// MemStore is the in-memory RRStore: a plain [][]VertexID, the storage the
// builder and oracle used before the store refactor. Appends are O(1)
// amortized and reads are direct slice indexing.
type MemStore struct {
	mu      sync.RWMutex
	sets    [][]graph.VertexID
	payload int64
	mem     int64
}

// NewMemStore returns a MemStore holding sets, taking ownership of the slice
// and its elements. nil starts an empty store.
func NewMemStore(sets [][]graph.VertexID) *MemStore {
	s := &MemStore{sets: sets}
	for _, set := range sets {
		s.payload += 4 + 4*int64(len(set))
		s.mem += setBytes(set)
	}
	return s
}

// NumSets returns the number of RR sets held.
func (s *MemStore) NumSets() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sets)
}

// Set returns RR set i. The slice is owned by the store; do not modify it.
func (s *MemStore) Set(i int) []graph.VertexID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	// The RRStore contract (above) makes this zero-copy read safe: sets are
	// append-only and immutable once Append returns, and callers are bound
	// to read-only use. Copying here would put an allocation on the hottest
	// query path for nothing.
	return s.sets[i] //imvet:allow lockscope — RRStore contract: sets are immutable, callers read-only
}

// Append adds batch after the existing sets, taking ownership.
func (s *MemStore) Append(batch [][]graph.VertexID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sets = append(s.sets, batch...)
	for _, set := range batch {
		s.payload += 4 + 4*int64(len(set))
		s.mem += setBytes(set)
	}
	return nil
}

// ForEach calls fn for every set index in [from, to) in ascending order.
func (s *MemStore) ForEach(from, to int, fn func(i int, set []graph.VertexID) error) error {
	s.mu.RLock()
	sets := s.sets
	s.mu.RUnlock()
	if from < 0 || to > len(sets) || from > to {
		return fmt.Errorf("core: ForEach range [%d, %d) outside [0, %d)", from, to, len(sets))
	}
	for i := from; i < to; i++ {
		if err := fn(i, sets[i]); err != nil {
			return err
		}
	}
	return nil
}

// Stats reports the store's footprint; SpillBytes is always 0.
func (s *MemStore) Stats() StoreStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return StoreStats{Sets: len(s.sets), PayloadBytes: s.payload, MemBytes: s.mem}
}

// Close is a no-op: a MemStore's memory is the garbage collector's problem.
func (s *MemStore) Close() error { return nil }
