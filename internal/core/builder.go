package core

import (
	"context"
	"fmt"
	"math"

	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/parallel"
	"imdist/internal/rng"
)

// SketchBuilder grows an RR-set sketch incrementally. Where
// NewOracleParallelSeeded commits to a fixed RR-set count up front,
// a builder appends batches of RR sets on demand (AppendBatch), reports the
// current accuracy of the sketch (ErrorBound) and can loop append→check until
// a target relative error or a hard cap is reached (BuildToTarget) — the
// stopping-rule idea behind adaptive RIS algorithms (OPIM, D-SSA): the RR-set
// count is the single cost/accuracy dial, so stop paying as soon as the
// accuracy goal is met instead of guessing the count up front.
//
// Every RR set draws from its own rng stream derived from the builder's seed,
// and the stream index is the set's global position in the sketch. A sketch
// grown in any sequence of batches, at any worker count, is therefore
// byte-identical to the one-shot NewOracleParallelSeeded build of the same
// total — which also makes checkpoint/resume exact: a resumed builder
// (ResumeSketchBuilder) continues the very same sequence.
//
// A SketchBuilder is not safe for concurrent use; each batch parallelizes
// internally across the builder's workers.
type SketchBuilder struct {
	ig      *graph.InfluenceGraph
	model   diffusion.Model
	seed    uint64
	workers int
	split   rng.Splitter

	samplers []rrSampler
	rrSets   [][]graph.VertexID

	// oracle caches the finalized view of the first oracleAt sets; appending
	// past oracleAt invalidates it.
	oracle   *Oracle
	oracleAt int
}

// NewSketchBuilder returns an empty builder over ig for the given diffusion
// model. workers has the NewOracleParallel semantics (0/1 serial, n workers,
// negative = all CPUs) and only affects speed, never the generated sets. seed
// pins the whole RR-set sequence, exactly as in NewOracleParallelSeeded: a
// builder grown to R sets produces the same sketch that
// NewOracleParallelSeeded(ig, model, R, w, seed) would.
func NewSketchBuilder(ig *graph.InfluenceGraph, model diffusion.Model, workers int, seed uint64) (*SketchBuilder, error) {
	return ResumeSketchBuilder(ig, model, workers, seed, nil)
}

// ResumeSketchBuilder reconstructs a builder that has already generated
// rrSets (a checkpoint written by internal/sketchio); generation continues at
// stream index len(rrSets), so the resumed sequence is indistinguishable from
// an uninterrupted build. It validates every checkpointed vertex id against
// [0, n) — checkpoints may come from untrusted storage — and takes ownership
// of rrSets.
func ResumeSketchBuilder(ig *graph.InfluenceGraph, model diffusion.Model, workers int, seed uint64, rrSets [][]graph.VertexID) (*SketchBuilder, error) {
	if ig == nil || ig.NumVertices() == 0 {
		return nil, ErrEmptyGraph
	}
	if model == diffusion.LT {
		if err := diffusion.ValidateLTWeights(ig); err != nil {
			return nil, err
		}
	}
	n := ig.NumVertices()
	for i, set := range rrSets {
		for _, v := range set {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("core: resumed RR set %d contains vertex %d outside [0, %d)", i, v, n)
			}
		}
	}
	// The same stream-family derivation as NewOracleParallelSeeded: base seed
	// drawn once from rng.NewXoshiro(seed), then one independent stream per
	// global RR-set index.
	return &SketchBuilder{
		ig:      ig,
		model:   model,
		seed:    seed,
		workers: workers,
		split:   rng.SplitterFrom(rng.Xoshiro, rng.NewXoshiro(seed)),
		rrSets:  rrSets,
	}, nil
}

// NumSets returns the number of RR sets generated so far.
func (b *SketchBuilder) NumSets() int { return len(b.rrSets) }

// NumVertices returns the number of vertices of the underlying graph.
func (b *SketchBuilder) NumVertices() int { return b.ig.NumVertices() }

// Model returns the diffusion model the builder samples under.
func (b *SketchBuilder) Model() diffusion.Model { return b.model }

// Seed returns the master seed pinning the builder's RR-set sequence.
func (b *SketchBuilder) Seed() uint64 { return b.seed }

// Graph returns the influence graph the builder samples from (checkpoint
// writers fingerprint it so a resume against a different graph is caught).
func (b *SketchBuilder) Graph() *graph.InfluenceGraph { return b.ig }

// Sets returns the RR sets generated so far. The slice and its elements are
// owned by the builder and must not be modified; the prefix seen by a caller
// remains valid across later AppendBatch calls (appends never mutate existing
// sets), which is what lets checkpoint writers stream b.Sets()[from:to]
// windows while the build continues.
func (b *SketchBuilder) Sets() [][]graph.VertexID { return b.rrSets }

// AppendBatch generates m more RR sets, at stream indices
// [NumSets(), NumSets()+m), across the builder's workers. The resulting
// prefix depends only on (seed, total count) — never on the batch schedule or
// worker count.
func (b *SketchBuilder) AppendBatch(m int) error {
	if m < 1 {
		return fmt.Errorf("core: AppendBatch needs a positive batch, got %d", m)
	}
	w := parallel.Resolve(b.workers, m)
	for len(b.samplers) < w {
		b.samplers = append(b.samplers, newRRSampler(b.ig, b.model))
	}
	start := len(b.rrSets)
	batch := make([][]graph.VertexID, m)
	parallel.For(w, m, func(worker, j int) {
		s := b.split.Stream(uint64(start + j))
		batch[j] = b.samplers[worker].Sample(s, s, nil)
	})
	b.rrSets = append(b.rrSets, batch...)
	return nil
}

// Oracle finalizes the current sketch into a queryable Oracle carrying the
// builder's model and seed. The oracle snapshots the current prefix: the
// builder can keep appending afterwards without disturbing it, and a later
// Oracle call returns a fresh, larger snapshot.
func (b *SketchBuilder) Oracle() (*Oracle, error) {
	if b.oracle == nil || b.oracleAt != len(b.rrSets) {
		o, err := NewOracleFromRRSets(b.ig.NumVertices(), b.model, b.seed, b.rrSets)
		if err != nil {
			return nil, err
		}
		b.oracle = o
		b.oracleAt = len(b.rrSets)
	}
	return b.oracle, nil
}

// DefaultBoundK is the seed-set size ErrorBound and BuildToTarget target when
// the caller does not name one.
const DefaultBoundK = 10

// DefaultBoundDelta is the failure probability backing ErrorBound when the
// caller does not name one (99% confidence).
const DefaultBoundDelta = 0.01

// ErrorBound estimates the current relative error of the sketch for seed sets
// of size k at confidence 1-delta: the Hoeffding half-width of an influence
// estimate from R RR sets, n·sqrt(ln(2/δ)/2R), divided by the sketch's own
// greedy top-k influence as a stand-in for the optimum. It is the
// OPIM/D-SSA-style stopping quantity BuildToTarget drives to a target: it
// shrinks as 1/sqrt(R), so halving the bound costs 4× the sets. An empty
// sketch reports +Inf. k < 1 and out-of-range delta select DefaultBoundK and
// DefaultBoundDelta.
//
// The bound is an engineering estimate, not the paper-exact (1−1/e−ε)
// guarantee: the optimum proxy is estimated on the same RR sets it bounds, so
// treat it as a stopping rule, not a certificate.
func (b *SketchBuilder) ErrorBound(k int, delta float64) float64 {
	r := len(b.rrSets)
	if r == 0 {
		return math.Inf(1)
	}
	if k < 1 {
		k = DefaultBoundK
	}
	if delta <= 0 || delta >= 1 {
		delta = DefaultBoundDelta
	}
	o, err := b.Oracle()
	if err != nil {
		return math.Inf(1)
	}
	lb := o.influenceOf(o.GreedySeeds(k))
	if lb < 1 {
		lb = 1
	}
	n := float64(b.ig.NumVertices())
	return n * math.Sqrt(math.Log(2/delta)/(2*float64(r))) / lb
}

// Defaults for BuildTarget zero values.
const (
	// DefaultMinSets is the smallest sketch BuildToTarget checks a bound on;
	// below it the greedy lower bound is too noisy to stop early.
	DefaultMinSets = 1 << 10
	// DefaultMaxBatch caps one append round, bounding both the work between
	// two bound checks and the gap between two progress/checkpoint callbacks.
	DefaultMaxBatch = 1 << 20
)

// BuildTarget configures BuildToTarget.
type BuildTarget struct {
	// Eps is the target relative error (see ErrorBound). Eps <= 0 disables
	// the accuracy stop: the build runs straight to MaxSets (a fixed-size
	// build with progress and checkpointing).
	Eps float64
	// Delta is the bound's failure probability (default DefaultBoundDelta).
	Delta float64
	// K is the seed-set size the bound targets (default DefaultBoundK).
	K int
	// MaxSets caps the sketch size; the build stops there even if the bound
	// was not reached. Required.
	MaxSets int
	// MinSets is the smallest sketch a bound is checked on (default
	// DefaultMinSets, clamped to MaxSets).
	MinSets int
	// MaxBatch caps the sets appended per round (default DefaultMaxBatch).
	MaxBatch int
	// Progress, when non-nil, runs after every round with the build's
	// current state — the hook checkpoint writers and job managers attach.
	// A non-nil error aborts the build and is returned verbatim.
	Progress func(BuildProgress) error
}

// BuildProgress is the per-round state handed to BuildTarget.Progress.
type BuildProgress struct {
	// Sets is the current sketch size; Appended is how many of them the round
	// just finished added (0 on the initial report of a resumed build whose
	// target was already met).
	Sets     int
	Appended int
	// Bound is the current ErrorBound (+Inf before MinSets or when Eps <= 0).
	Bound float64
	// Fraction estimates overall completion in [0, 1] from the bound's
	// 1/sqrt(R) shape and the MaxSets cap.
	Fraction float64
}

// BuildResult summarizes a finished BuildToTarget run.
type BuildResult struct {
	// Sets is the final sketch size.
	Sets int
	// Bound is the final ErrorBound (+Inf when never computed, i.e. Eps <= 0).
	Bound float64
	// Converged reports whether the bound met Eps (false when the MaxSets
	// cap stopped the build first, or Eps <= 0).
	Converged bool
}

// BuildToTarget grows the sketch in geometrically increasing rounds until
// ErrorBound(t.K, t.Delta) <= t.Eps or the sketch holds t.MaxSets sets,
// whichever comes first. Cancelling ctx stops the build between rounds with
// ctx's error; the builder remains valid (and checkpointable) either way.
// The generated sets depend only on (seed, final count), never on the round
// schedule, so an interrupted-and-resumed target build still lands on a
// byte-identical sketch for the same final count.
func (b *SketchBuilder) BuildToTarget(ctx context.Context, t BuildTarget) (BuildResult, error) {
	if t.MaxSets < 1 {
		return BuildResult{Sets: b.NumSets()}, fmt.Errorf("core: BuildToTarget needs MaxSets >= 1, got %d", t.MaxSets)
	}
	if t.Delta <= 0 || t.Delta >= 1 {
		t.Delta = DefaultBoundDelta
	}
	if t.K < 1 {
		t.K = DefaultBoundK
	}
	minSets := t.MinSets
	if minSets < 1 {
		minSets = DefaultMinSets
	}
	if minSets > t.MaxSets {
		minSets = t.MaxSets
	}
	maxBatch := t.MaxBatch
	if maxBatch < 1 {
		maxBatch = DefaultMaxBatch
	}
	appended := 0
	for {
		if err := ctx.Err(); err != nil {
			return BuildResult{Sets: b.NumSets(), Bound: math.Inf(1)}, err
		}
		cur := b.NumSets()
		bound := math.Inf(1)
		if t.Eps > 0 && cur >= minSets {
			bound = b.ErrorBound(t.K, t.Delta)
		}
		res := BuildResult{
			Sets:      cur,
			Bound:     bound,
			Converged: t.Eps > 0 && bound <= t.Eps,
		}
		if t.Progress != nil {
			if err := t.Progress(BuildProgress{
				Sets:     cur,
				Appended: appended,
				Bound:    bound,
				Fraction: buildFraction(cur, t.MaxSets, bound, t.Eps),
			}); err != nil {
				return res, err
			}
		}
		if res.Converged || cur >= t.MaxSets {
			return res, nil
		}
		next := cur * 2
		if next < minSets {
			next = minSets
		}
		if next > cur+maxBatch {
			next = cur + maxBatch
		}
		if next > t.MaxSets {
			next = t.MaxSets
		}
		if err := b.AppendBatch(next - cur); err != nil {
			return res, err
		}
		appended = next - cur
	}
}

// buildFraction estimates build completion: the bound shrinks as 1/sqrt(R),
// so meeting eps needs R·(bound/eps)² sets — unless the MaxSets cap arrives
// first, whichever terminal condition is nearer.
func buildFraction(sets, maxSets int, bound, eps float64) float64 {
	frac := float64(sets) / float64(maxSets)
	if eps > 0 && bound > 0 && !math.IsInf(bound, 1) {
		byBound := (eps / bound) * (eps / bound)
		if byBound > frac {
			frac = byBound
		}
	}
	return math.Min(frac, 1)
}
