package core

import (
	"errors"
	"testing"

	"imdist/internal/diffusion"
	"imdist/internal/gen"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// batchTestOracle builds a 400-vertex BA oracle with enough RR sets that a
// small explicit shard size produces several shards.
func batchTestOracle(t testing.TB, numSets int) *Oracle {
	t.Helper()
	g, err := gen.BarabasiAlbert(400, 3, rng.NewXoshiro(21))
	if err != nil {
		t.Fatal(err)
	}
	ig, err := graph.NewInfluenceGraph(g, func(_, _ graph.VertexID) float64 { return 0.1 })
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOracleParallelSeeded(ig, diffusion.IC, numSets, -1, 9)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// batchTestQueries is a mixed bag of seed sets: singletons, small sets, a
// larger set, duplicates inside a set, and an empty set.
func batchTestQueries() [][]graph.VertexID {
	return [][]graph.VertexID{
		{0},
		{399},
		{0, 1},
		{5, 5, 5},
		{},
		{10, 20, 30, 40, 50, 60, 70},
		{1, 0}, // permutation of an earlier set
		{123, 7, 7, 300},
	}
}

// TestBatchInfluenceMatchesSerial is the acceptance test of the batch engine:
// for every worker count and for a shard size that forces multi-shard
// merging, BatchInfluence must be byte-identical to looped Influence calls.
func TestBatchInfluenceMatchesSerial(t *testing.T) {
	o := batchTestOracle(t, 5000)
	queries := batchTestQueries()
	want := make([]float64, len(queries))
	for i, seeds := range queries {
		inf, err := o.Influence(seeds)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = inf
	}
	for _, workers := range []int{0, 1, 2, 4, -1} {
		for _, shardSize := range []int{0, 512, 4999, 5000, 1 << 20} {
			got, errs := o.batchInfluence(queries, workers, shardSize)
			for i := range queries {
				if errs[i] != nil {
					t.Fatalf("workers=%d shard=%d: unexpected error for query %d: %v", workers, shardSize, i, errs[i])
				}
				if got[i] != want[i] {
					t.Errorf("workers=%d shard=%d: query %d = %v, want %v (serial)", workers, shardSize, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchInfluencePerItemErrors checks that invalid items report errors
// without disturbing their neighbours.
func TestBatchInfluencePerItemErrors(t *testing.T) {
	o := batchTestOracle(t, 1000)
	queries := [][]graph.VertexID{
		{0, 1},
		{-1},
		{3},
		{0, 400}, // out of range high
	}
	values, errs := o.BatchInfluence(queries, 2)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid items got errors: %v, %v", errs[0], errs[2])
	}
	for _, bad := range []int{1, 3} {
		if !errors.Is(errs[bad], ErrSeedOutOfRange) {
			t.Errorf("errs[%d] = %v, want ErrSeedOutOfRange", bad, errs[bad])
		}
		if values[bad] != 0 {
			t.Errorf("values[%d] = %v, want 0 for invalid item", bad, values[bad])
		}
	}
	for _, good := range []int{0, 2} {
		want, err := o.Influence(queries[good])
		if err != nil {
			t.Fatal(err)
		}
		if values[good] != want {
			t.Errorf("values[%d] = %v, want %v", good, values[good], want)
		}
	}
}

// TestBatchInfluenceEmptyBatch checks the trivial cases.
func TestBatchInfluenceEmptyBatch(t *testing.T) {
	o := batchTestOracle(t, 100)
	values, errs := o.BatchInfluence(nil, 4)
	if len(values) != 0 || len(errs) != 0 {
		t.Errorf("empty batch returned %v, %v", values, errs)
	}
	values, errs = o.BatchInfluence([][]graph.VertexID{{}}, 4)
	if len(values) != 1 || values[0] != 0 || errs[0] != nil {
		t.Errorf("empty seed set returned %v, %v", values, errs)
	}
}

// TestBatchInfluenceConcurrentCallers hammers BatchInfluence from several
// goroutines (run under -race) to verify the engine shares no mutable state
// across calls.
func TestBatchInfluenceConcurrentCallers(t *testing.T) {
	o := batchTestOracle(t, 3000)
	queries := batchTestQueries()
	want, errs := o.BatchInfluence(queries, 1)
	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(workers int) {
			for iter := 0; iter < 10; iter++ {
				got, errs := o.batchInfluence(queries, workers, 700)
				for i := range queries {
					if errs[i] != nil {
						done <- errs[i]
						return
					}
					if got[i] != want[i] {
						done <- errors.New("concurrent batch diverged from serial")
						return
					}
				}
			}
			done <- nil
		}(1 + g%4)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkBatchInfluence(b *testing.B) {
	o := batchTestOracle(b, 200000)
	src := rng.NewXoshiro(4)
	queries := make([][]graph.VertexID, 64)
	for i := range queries {
		set := make([]graph.VertexID, 1+src.Intn(8))
		for j := range set {
			set[j] = graph.VertexID(src.Intn(o.NumVertices()))
		}
		queries[i] = set
	}
	b.Run("looped-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, seeds := range queries {
				if _, err := o.Influence(seeds); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch-allcpus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, errs := o.BatchInfluence(queries, -1)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
