package core

import (
	"errors"
	"testing"

	"imdist/internal/diffusion"
	"imdist/internal/estimator"
	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/workload"
)

func TestOracleForModelLT(t *testing.T) {
	ig := karateIWC(t)
	o, err := NewOracleForModel(ig, diffusion.LT, 20000, rng.NewXoshiro(3))
	if err != nil {
		t.Fatal(err)
	}
	inf, err := o.Influence([]graph.VertexID{0})
	if err != nil {
		t.Fatal(err)
	}
	if inf < 1 || inf > float64(ig.NumVertices()) {
		t.Errorf("LT oracle influence of vertex 0 = %v out of range", inf)
	}
	seeds := o.GreedySeeds(2)
	if len(seeds) != 2 || seeds[0] == seeds[1] {
		t.Errorf("LT oracle greedy seeds = %v", seeds)
	}
}

func TestOracleForModelLTRejectsInvalidWeights(t *testing.T) {
	// uc0.1 on Karate has a vertex with in-degree 17, so LT weights sum to
	// 1.7 and must be rejected.
	ig, err := workload.Assign(karateIWC(t).Graph, workload.UC01, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOracleForModel(ig, diffusion.LT, 100, rng.NewXoshiro(1)); !errors.Is(err, diffusion.ErrInvalidLTWeights) {
		t.Errorf("invalid LT weights err = %v", err)
	}
}

func TestRunDistributionLTModel(t *testing.T) {
	ig := karateIWC(t)
	o, err := NewOracleForModel(ig, diffusion.LT, 10000, rng.NewXoshiro(5))
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunDistribution(RunConfig{
		Graph:        ig,
		Approach:     estimator.Snapshot,
		SampleNumber: 64,
		SeedSize:     2,
		Trials:       20,
		MasterSeed:   9,
		Oracle:       o,
		Model:        diffusion.LT,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.MeanInfluence() <= 2 {
		t.Errorf("LT mean influence = %v, expected more than the seed count", d.MeanInfluence())
	}
	if d.Entropy() < 0 || d.Entropy() > 10 {
		t.Errorf("LT entropy = %v", d.Entropy())
	}
}
