package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

func TestParseKernel(t *testing.T) {
	for _, s := range []string{"", "auto", "epoch", "bitpack"} {
		k, err := ParseKernel(s)
		if err != nil {
			t.Errorf("ParseKernel(%q) = %v", s, err)
		}
		if s == "" && k != KernelAuto {
			t.Errorf("ParseKernel(\"\") = %q, want auto", k)
		}
	}
	for _, s := range []string{"bits", "BITPACK", "epoch "} {
		if _, err := ParseKernel(s); err == nil {
			t.Errorf("ParseKernel(%q) accepted", s)
		}
	}
	o := mustOracle(t, twoStarGraph(t), 100, 1)
	if err := o.SetKernel("nope"); err == nil {
		t.Error("SetKernel(nope) accepted")
	}
}

func TestKernelAutoPicksBitpackOnDenseOracles(t *testing.T) {
	// Karate RR sets touch a large fraction of the 34 vertices: density far
	// above 1/64, so auto must choose the packed kernel.
	o := mustOracle(t, karateIWC(t), 20000, 1)
	if got := o.KernelResolved(); got != KernelBitpack {
		t.Errorf("auto kernel on Karate = %q, want bitpack", got)
	}
	if got := o.KernelConfigured(); got != KernelAuto {
		t.Errorf("configured kernel = %q, want auto", got)
	}
}

func TestPackedIndexBytes(t *testing.T) {
	// 34 vertices x 20000 sets in one block: 34 rows of ceil(20000/64) words.
	want := int64(8 * 34 * ((20000 + 63) / 64))
	if got := PackedIndexBytes(34, 20000); got != want {
		t.Errorf("PackedIndexBytes(34, 20000) = %d, want %d", got, want)
	}
	// Multi-block: 2.5 default shards.
	n, sets := 10, DefaultBatchShardSize*2+DefaultBatchShardSize/2
	want = 8 * int64(10*(DefaultBatchShardSize/64)*2+10*((DefaultBatchShardSize/2+63)/64))
	if got := PackedIndexBytes(n, sets); got != want {
		t.Errorf("PackedIndexBytes(%d, %d) = %d, want %d", n, sets, got, want)
	}
}

// kernelOraclePair builds two oracles over the byte-identical RR-set pool
// (same graph, model, count, seed, workers) and pins one to each kernel.
func kernelOraclePair(t *testing.T, ig *graph.InfluenceGraph, model diffusion.Model, numSets, workers int) (epoch, bitpack *Oracle) {
	t.Helper()
	for _, k := range []Kernel{KernelEpoch, KernelBitpack} {
		o, err := NewOracleParallel(ig, model, numSets, workers, rng.NewXoshiro(99))
		if err != nil {
			t.Fatal(err)
		}
		if err := o.SetKernel(k); err != nil {
			t.Fatal(err)
		}
		if got := o.KernelResolved(); got != k {
			t.Fatalf("resolved kernel = %q, want %q", got, k)
		}
		if k == KernelEpoch {
			epoch = o
		} else {
			bitpack = o
		}
	}
	return epoch, bitpack
}

// TestKernelEquivalence is the property pinning the whole PR: the bitpack
// kernel returns byte-identical answers to the epoch kernel for Influence,
// BatchInfluence, GreedySeeds and TopSingleVertices, across diffusion models
// and worker counts.
func TestKernelEquivalence(t *testing.T) {
	karate := karateIWC(t)
	cases := []struct {
		name    string
		ig      *graph.InfluenceGraph
		model   diffusion.Model
		numSets int
	}{
		{"twostar-ic", twoStarGraph(t), diffusion.IC, 5000},
		{"karate-ic", karate, diffusion.IC, 30000},
		{"karate-lt", karate, diffusion.LT, 20000},
		// Not a multiple of 64, so the last accumulator word is partial.
		{"karate-ic-ragged", karate, diffusion.IC, 12345},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				epoch, bitpack := kernelOraclePair(t, tc.ig, tc.model, tc.numSets, workers)
				n := epoch.NumVertices()

				// Random seed sets of growing size, duplicates included.
				src := rng.NewXoshiro(7)
				queries := make([][]graph.VertexID, 0, 40)
				for q := 0; q < 40; q++ {
					seeds := make([]graph.VertexID, 1+q%8)
					for i := range seeds {
						seeds[i] = graph.VertexID(src.Uint64() % uint64(n))
					}
					queries = append(queries, seeds)
				}
				queries = append(queries, nil) // empty set is a valid query

				for i, seeds := range queries {
					a, errA := epoch.Influence(seeds)
					b, errB := bitpack.Influence(seeds)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("query %d: err epoch=%v bitpack=%v", i, errA, errB)
					}
					if math.Float64bits(a) != math.Float64bits(b) {
						t.Fatalf("query %d (%v): Influence epoch=%v bitpack=%v", i, seeds, a, b)
					}
				}

				for _, bw := range []int{1, 4} {
					va, ea := epoch.BatchInfluence(queries, bw)
					vb, eb := bitpack.BatchInfluence(queries, bw)
					for i := range queries {
						if (ea[i] == nil) != (eb[i] == nil) {
							t.Fatalf("batch workers=%d item %d: err epoch=%v bitpack=%v", bw, i, ea[i], eb[i])
						}
						if math.Float64bits(va[i]) != math.Float64bits(vb[i]) {
							t.Fatalf("batch workers=%d item %d: epoch=%v bitpack=%v", bw, i, va[i], vb[i])
						}
					}
				}

				for _, k := range []int{1, 2, 5, n + 3} {
					sa := epoch.GreedySeeds(k)
					sb := bitpack.GreedySeeds(k)
					if len(sa) != len(sb) {
						t.Fatalf("GreedySeeds(%d): len epoch=%d bitpack=%d", k, len(sa), len(sb))
					}
					for i := range sa {
						if sa[i] != sb[i] {
							t.Fatalf("GreedySeeds(%d): epoch=%v bitpack=%v", k, sa, sb)
						}
					}
				}

				va, ia := epoch.TopSingleVertices(0)
				vb, ib := bitpack.TopSingleVertices(0)
				for i := range va {
					if va[i] != vb[i] || math.Float64bits(ia[i]) != math.Float64bits(ib[i]) {
						t.Fatalf("TopSingleVertices: item %d epoch=(%v,%v) bitpack=(%v,%v)", i, va[i], ia[i], vb[i], ib[i])
					}
				}
			})
		}
	}
}

// TestKernelEquivalenceMultiShard forces the RR pool past one batch shard so
// the packed block layout, the shard merge, and the partial last block are
// all exercised with more than one block.
func TestKernelEquivalenceMultiShard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard pool is slow in -short mode")
	}
	numSets := DefaultBatchShardSize*2 + 777
	epoch, bitpack := kernelOraclePair(t, karateIWC(t), diffusion.IC, numSets, 4)
	queries := [][]graph.VertexID{{0, 33}, {1, 2, 3}, {5}, {0, 0, 7, 31}}
	va, _ := epoch.BatchInfluence(queries, 4)
	vb, _ := bitpack.BatchInfluence(queries, 4)
	for i := range queries {
		if math.Float64bits(va[i]) != math.Float64bits(vb[i]) {
			t.Fatalf("item %d: epoch=%v bitpack=%v", i, va[i], vb[i])
		}
	}
	sa, sb := epoch.GreedySeeds(5), bitpack.GreedySeeds(5)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("GreedySeeds: epoch=%v bitpack=%v", sa, sb)
		}
	}
}

// TestKernelSwitchUnderConcurrentQueries drives queries from several
// goroutines while the kernel is flipped back and forth, pinning that the
// switch is safe and never changes an answer (run under -race in CI).
func TestKernelSwitchUnderConcurrentQueries(t *testing.T) {
	o := mustOracle(t, karateIWC(t), 20000, 1)
	ref, err := o.Influence([]graph.VertexID{0, 33, 7})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			k := KernelEpoch
			if i%2 == 0 {
				k = KernelBitpack
			}
			if err := o.SetKernel(k); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := o.Influence([]graph.VertexID{0, 33, 7})
				if err != nil || math.Float64bits(got) != math.Float64bits(ref) {
					t.Errorf("Influence under kernel switch = %v (err %v), want %v", got, err, ref)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestBuilderKernelThreading pins that a builder's kernel selection reaches
// its snapshot oracles and never changes ErrorBound.
func TestBuilderKernelThreading(t *testing.T) {
	ig := karateIWC(t)
	bounds := make(map[Kernel]float64)
	for _, k := range []Kernel{KernelEpoch, KernelBitpack} {
		b, err := NewSketchBuilder(ig, diffusion.IC, 1, 42)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SetKernel(k); err != nil {
			t.Fatal(err)
		}
		if err := b.AppendBatch(5000); err != nil {
			t.Fatal(err)
		}
		o, err := b.Oracle()
		if err != nil {
			t.Fatal(err)
		}
		if got := o.KernelResolved(); got != k {
			t.Errorf("builder oracle kernel = %q, want %q", got, k)
		}
		bounds[k] = b.ErrorBound(10, 0.01)
	}
	if math.Float64bits(bounds[KernelEpoch]) != math.Float64bits(bounds[KernelBitpack]) {
		t.Errorf("ErrorBound differs across kernels: epoch=%v bitpack=%v", bounds[KernelEpoch], bounds[KernelBitpack])
	}
}

// benchmarkCoverageOracle builds a moderately dense synthetic oracle for the
// kernel benchmarks: Karate with enough RR sets that the coverage merge
// dominates query time.
func benchmarkCoverageOracle(b *testing.B, kernel Kernel) (*Oracle, [][]graph.VertexID) {
	b.Helper()
	o, err := NewOracleParallel(karateIWC(b), diffusion.IC, 200000, -1, rng.NewXoshiro(7))
	if err != nil {
		b.Fatal(err)
	}
	if err := o.SetKernel(kernel); err != nil {
		b.Fatal(err)
	}
	src := rng.NewXoshiro(5)
	queries := make([][]graph.VertexID, 256)
	for q := range queries {
		seeds := make([]graph.VertexID, 2+q%7)
		for i := range seeds {
			seeds[i] = graph.VertexID(src.Uint64() % uint64(o.NumVertices()))
		}
		queries[q] = seeds
	}
	// Force the lazy packed build outside the timed region.
	if _, err := o.Influence(queries[0]); err != nil {
		b.Fatal(err)
	}
	return o, queries
}

// BenchmarkCoverage compares the coverage kernels on the query path the
// server hammers: multi-seed Influence over a 200k-set Karate oracle. The
// bench-smoke CI job runs this once per commit, and imbench -compare-kernels
// lands the same comparison in BENCH_kernel.json.
func BenchmarkCoverage(b *testing.B) {
	for _, kernel := range []Kernel{KernelEpoch, KernelBitpack} {
		b.Run("kernel="+string(kernel), func(b *testing.B) {
			o, queries := benchmarkCoverageOracle(b, kernel)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := o.Influence(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoverageBatch compares the kernels inside the sharded batch
// engine (64 queries per call, all CPUs).
func BenchmarkCoverageBatch(b *testing.B) {
	for _, kernel := range []Kernel{KernelEpoch, KernelBitpack} {
		b.Run("kernel="+string(kernel), func(b *testing.B) {
			o, queries := benchmarkCoverageOracle(b, kernel)
			batch := queries[:64]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, errs := o.BatchInfluence(batch, -1); errs[0] != nil {
					b.Fatal(errs[0])
				}
			}
		})
	}
}

// BenchmarkCoverageGreedy compares the kernels on greedy seed selection
// (the /v1/seeds cold path).
func BenchmarkCoverageGreedy(b *testing.B) {
	for _, kernel := range []Kernel{KernelEpoch, KernelBitpack} {
		b.Run("kernel="+string(kernel), func(b *testing.B) {
			o, _ := benchmarkCoverageOracle(b, kernel)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if seeds := o.GreedySeeds(10); len(seeds) != 10 {
					b.Fatal("short seed set")
				}
			}
		})
	}
}
