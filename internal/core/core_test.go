package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"imdist/internal/data"
	"imdist/internal/estimator"
	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/workload"
)

// twoStarGraph returns two disjoint stars with hubs 0 (5 leaves) and 1 (3
// leaves), p = 1. Inf(0) = 6, Inf(1) = 4, optimal 2-seed influence = 10.
func twoStarGraph(t testing.TB) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(10)
	for v := 2; v <= 6; v++ {
		if err := b.AddEdge(0, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	for v := 7; v <= 9; v++ {
		if err := b.AddEdge(1, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func karateIWC(t testing.TB) *graph.InfluenceGraph {
	t.Helper()
	ig, err := workload.Assign(data.Karate(), workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func mustOracle(t testing.TB, ig *graph.InfluenceGraph, sets int, seed uint64) *Oracle {
	t.Helper()
	o, err := NewOracle(ig, sets, rng.NewXoshiro(seed))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOracleValidation(t *testing.T) {
	ig := twoStarGraph(t)
	if _, err := NewOracle(nil, 10, rng.NewXoshiro(1)); !errors.Is(err, ErrEmptyGraph) {
		t.Errorf("nil graph err = %v", err)
	}
	if _, err := NewOracle(ig, 0, rng.NewXoshiro(1)); err == nil {
		t.Error("zero RR sets accepted")
	}
	empty, err := graph.NewInfluenceGraph(graph.NewBuilder(0).Build(), func(_, _ graph.VertexID) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOracle(empty, 10, rng.NewXoshiro(1)); !errors.Is(err, ErrEmptyGraph) {
		t.Errorf("empty graph err = %v", err)
	}
}

func TestOracleInfluenceAccuracy(t *testing.T) {
	// Exact influences on the two-star graph: Inf(0)=6, Inf(1)=4, Inf(leaf)=1,
	// Inf({0,1})=10.
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 200000, 3)
	cases := []struct {
		seeds []graph.VertexID
		want  float64
	}{
		{[]graph.VertexID{0}, 6},
		{[]graph.VertexID{1}, 4},
		{[]graph.VertexID{5}, 1},
		{[]graph.VertexID{0, 1}, 10},
		{nil, 0},
	}
	for _, c := range cases {
		got, err := o.Influence(c.seeds)
		if err != nil {
			t.Fatalf("oracle Influence(%v) error: %v", c.seeds, err)
		}
		if math.Abs(got-c.want) > 0.15 {
			t.Errorf("oracle Influence(%v) = %v, want approx %v", c.seeds, got, c.want)
		}
	}
	if o.NumSets() != 200000 || o.NumVertices() != 10 {
		t.Errorf("oracle accessors: sets=%d n=%d", o.NumSets(), o.NumVertices())
	}
}

func TestOracleInfluenceRejectsOutOfRangeSeeds(t *testing.T) {
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 1000, 3)
	for _, seeds := range [][]graph.VertexID{{-1}, {10}, {0, 42}, {0, -7, 1}} {
		if _, err := o.Influence(seeds); !errors.Is(err, ErrSeedOutOfRange) {
			t.Errorf("Influence(%v) err = %v, want ErrSeedOutOfRange", seeds, err)
		}
	}
	if err := o.ValidateSeeds([]graph.VertexID{0, 9}); err != nil {
		t.Errorf("ValidateSeeds(valid) = %v", err)
	}
}

func TestOracleFromRRSets(t *testing.T) {
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 5000, 11)
	sets := make([][]graph.VertexID, o.NumSets())
	for i := range sets {
		sets[i] = o.RRSet(i)
	}
	rebuilt, err := NewOracleFromRRSets(o.NumVertices(), o.Model(), 11, sets)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rebuilt.GreedySeeds(3), o.GreedySeeds(3); len(got) != len(want) {
		t.Fatalf("rebuilt GreedySeeds = %v, want %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rebuilt GreedySeeds = %v, want %v", got, want)
			}
		}
	}
	a, _ := rebuilt.Influence([]graph.VertexID{0, 1, 2})
	b, _ := o.Influence([]graph.VertexID{0, 1, 2})
	if a != b {
		t.Errorf("rebuilt Influence = %v, want %v", a, b)
	}
	if rebuilt.BuildSeed() != 11 {
		t.Errorf("BuildSeed = %d, want 11", rebuilt.BuildSeed())
	}

	if _, err := NewOracleFromRRSets(0, o.Model(), 0, sets); !errors.Is(err, ErrEmptyGraph) {
		t.Errorf("n=0 err = %v", err)
	}
	if _, err := NewOracleFromRRSets(10, o.Model(), 0, nil); err == nil {
		t.Error("zero RR sets accepted")
	}
	if _, err := NewOracleFromRRSets(10, o.Model(), 0, [][]graph.VertexID{{0, 12}}); err == nil {
		t.Error("out-of-range member accepted")
	}
}

func TestOracleConcurrentQueries(t *testing.T) {
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 20000, 5)
	wantInf, err := o.Influence([]graph.VertexID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantSeeds := o.GreedySeeds(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := o.Influence([]graph.VertexID{0, 1})
				if err != nil || got != wantInf {
					t.Errorf("concurrent Influence = %v, %v; want %v", got, err, wantInf)
					return
				}
				if i%50 == 0 {
					seeds := o.GreedySeeds(2)
					for j := range seeds {
						if seeds[j] != wantSeeds[j] {
							t.Errorf("concurrent GreedySeeds = %v, want %v", seeds, wantSeeds)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestOracleConfidenceHalfWidth(t *testing.T) {
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 10000, 1)
	// Half width = n * z * 0.5 / sqrt(R) = 10*2.576*0.5/100 = 0.1288.
	want := 10 * 2.576 * 0.5 / 100
	if got := o.ConfidenceHalfWidth(2.576); math.Abs(got-want) > 1e-9 {
		t.Errorf("ConfidenceHalfWidth = %v, want %v", got, want)
	}
}

func TestOracleGreedySeeds(t *testing.T) {
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 50000, 5)
	seeds := o.GreedySeeds(2)
	if len(seeds) != 2 {
		t.Fatalf("GreedySeeds returned %v", seeds)
	}
	if seeds[0] != 0 || seeds[1] != 1 {
		t.Errorf("GreedySeeds = %v, want [0 1] (hub order by influence)", seeds)
	}
	if o.GreedySeeds(0) != nil {
		t.Error("GreedySeeds(0) should be nil")
	}
	if got := o.GreedySeeds(100); len(got) != ig.NumVertices() {
		t.Errorf("GreedySeeds(k>n) selected %d seeds, want n=%d", len(got), ig.NumVertices())
	}
}

func TestOracleTopSingleVertices(t *testing.T) {
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 50000, 7)
	vs, infs := o.TopSingleVertices(3)
	if vs[0] != 0 || vs[1] != 1 {
		t.Errorf("top vertices = %v, want hub 0 then hub 1", vs)
	}
	if !(infs[0] >= infs[1] && infs[1] >= infs[2]) {
		t.Errorf("influences not sorted: %v", infs)
	}
	all, _ := o.TopSingleVertices(0)
	if len(all) != ig.NumVertices() {
		t.Errorf("TopSingleVertices(0) returned %d, want all %d", len(all), ig.NumVertices())
	}
}

func TestRunDistributionValidation(t *testing.T) {
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 1000, 1)
	valid := RunConfig{Graph: ig, Approach: estimator.Snapshot, SampleNumber: 4, SeedSize: 1, Trials: 5, Oracle: o}
	bad := valid
	bad.Graph = nil
	if _, err := RunDistribution(bad); err == nil {
		t.Error("nil graph accepted")
	}
	bad = valid
	bad.Oracle = nil
	if _, err := RunDistribution(bad); err == nil {
		t.Error("nil oracle accepted")
	}
	bad = valid
	bad.Trials = 0
	if _, err := RunDistribution(bad); err == nil {
		t.Error("zero trials accepted")
	}
	bad = valid
	bad.SeedSize = 0
	if _, err := RunDistribution(bad); err == nil {
		t.Error("zero seed size accepted")
	}
	bad = valid
	bad.SampleNumber = 0
	if _, err := RunDistribution(bad); err == nil {
		t.Error("zero sample number accepted")
	}
}

func TestRunDistributionConvergesToUniqueSolution(t *testing.T) {
	// Finding 1 of the paper: for a sufficiently large sample number every
	// approach returns a unique seed set; on the two-star graph that set is
	// {0} for k=1.
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 20000, 11)
	for _, a := range []estimator.Approach{estimator.Oneshot, estimator.Snapshot, estimator.RIS} {
		samples := 256
		if a == estimator.RIS {
			samples = 8192
		}
		d, err := RunDistribution(RunConfig{
			Graph: ig, Approach: a, SampleNumber: samples, SeedSize: 1,
			Trials: 30, MasterSeed: 42, Oracle: o,
		})
		if err != nil {
			t.Fatal(err)
		}
		if d.Entropy() != 0 {
			t.Errorf("%v: entropy = %v at large sample number, want 0", a, d.Entropy())
		}
		modal, count := d.ModalSeedSet()
		if count != 30 || len(modal) != 1 || modal[0] != 0 {
			t.Errorf("%v: modal seed set = %v (count %d), want [0] x30", a, modal, count)
		}
	}
}

func TestRunDistributionHighEntropyAtTinySampleNumber(t *testing.T) {
	// With sample number 1 the solutions should be diverse: entropy well
	// above 0 on Karate iwc.
	ig := karateIWC(t)
	o := mustOracle(t, ig, 5000, 13)
	d, err := RunDistribution(RunConfig{
		Graph: ig, Approach: estimator.Oneshot, SampleNumber: 1, SeedSize: 1,
		Trials: 50, MasterSeed: 7, Oracle: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Entropy() < 1 {
		t.Errorf("entropy at sample number 1 = %v, expected diverse solutions", d.Entropy())
	}
	if d.DistinctSeedSets() < 3 {
		t.Errorf("distinct seed sets = %d, expected several", d.DistinctSeedSets())
	}
}

func TestRunDistributionReproducible(t *testing.T) {
	ig := karateIWC(t)
	o := mustOracle(t, ig, 2000, 17)
	cfg := RunConfig{
		Graph: ig, Approach: estimator.Snapshot, SampleNumber: 8, SeedSize: 2,
		Trials: 10, MasterSeed: 99, Oracle: o,
	}
	d1, err := RunDistribution(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := RunDistribution(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Trials {
		if d1.Trials[i].Influence != d2.Trials[i].Influence {
			t.Fatalf("trial %d differs between identical configs", i)
		}
	}
	if d1.Entropy() != d2.Entropy() {
		t.Error("entropy differs between identical configs")
	}
}

func TestRunDistributionLazyMatchesEagerQuality(t *testing.T) {
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 20000, 23)
	base := RunConfig{
		Graph: ig, Approach: estimator.RIS, SampleNumber: 4096, SeedSize: 2,
		Trials: 10, MasterSeed: 5, Oracle: o,
	}
	eager, err := RunDistribution(base)
	if err != nil {
		t.Fatal(err)
	}
	lazyCfg := base
	lazyCfg.Lazy = true
	lazy, err := RunDistribution(lazyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eager.MeanInfluence()-lazy.MeanInfluence()) > 0.3 {
		t.Errorf("lazy mean influence %v differs from eager %v", lazy.MeanInfluence(), eager.MeanInfluence())
	}
}

func TestSweepAndEntropyCurveMonotoneTrend(t *testing.T) {
	// Entropy should broadly decrease as the sample number grows (Finding:
	// "the entropy in the early stages is nearly maximum, and it then
	// monotonically decreases"). Compare the first and last levels.
	ig := karateIWC(t)
	o := mustOracle(t, ig, 5000, 29)
	sweep, err := Sweep(RunConfig{
		Graph: ig, Approach: estimator.Snapshot, SeedSize: 1,
		Trials: 40, MasterSeed: 3, Oracle: o,
	}, []int{1, 4, 16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	curve := EntropyCurve(sweep)
	if len(curve) != 5 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if curve[len(curve)-1].Entropy >= curve[0].Entropy {
		t.Errorf("entropy did not decay: first %v, last %v", curve[0].Entropy, curve[len(curve)-1].Entropy)
	}
	for i, p := range curve {
		if p.SampleNumber != []int{1, 4, 16, 64, 256}[i] {
			t.Errorf("curve point %d has sample number %d", i, p.SampleNumber)
		}
	}
}

func TestInfluenceCurveMeanIncreases(t *testing.T) {
	ig := karateIWC(t)
	o := mustOracle(t, ig, 5000, 31)
	sweep, err := Sweep(RunConfig{
		Graph: ig, Approach: estimator.Snapshot, SeedSize: 1,
		Trials: 30, MasterSeed: 8, Oracle: o,
	}, []int{1, 16, 256})
	if err != nil {
		t.Fatal(err)
	}
	curve := InfluenceCurve(sweep)
	if curve[2].Box.Mean < curve[0].Box.Mean {
		t.Errorf("mean influence decreased along the sweep: %v -> %v", curve[0].Box.Mean, curve[2].Box.Mean)
	}
}

func TestLeastSampleNumber(t *testing.T) {
	ig := twoStarGraph(t)
	o := mustOracle(t, ig, 20000, 37)
	ref, err := o.Influence(o.GreedySeeds(1))
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := Sweep(RunConfig{
		Graph: ig, Approach: estimator.Snapshot, SeedSize: 1,
		Trials: 50, MasterSeed: 21, Oracle: o,
	}, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	res, err := LeastSampleNumber(sweep, ref, DefaultNearOptimal())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no sufficient sample number found on a trivial instance")
	}
	if res.SampleNumber > 32 {
		t.Errorf("least sample number = %d", res.SampleNumber)
	}
	if res.Log2 != math.Log2(float64(res.SampleNumber)) {
		t.Errorf("Log2 inconsistent: %v for %d", res.Log2, res.SampleNumber)
	}
	// Impossible criterion: reference far above anything achievable.
	res, err = LeastSampleNumber(sweep, 1e9, DefaultNearOptimal())
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("impossible criterion reported as found")
	}
	if _, err := LeastSampleNumber(nil, 1, DefaultNearOptimal()); !errors.Is(err, ErrNoDistributions) {
		t.Errorf("empty sweep err = %v", err)
	}
}

func TestComparableRatiosOneshotVsSnapshot(t *testing.T) {
	// Finding: Snapshot needs no more samples than Oneshot for the same mean
	// influence, so the Oneshot:Snapshot comparable number ratio is >= 1
	// (Table 6 reports values from 1 to 96).
	ig := karateIWC(t)
	o := mustOracle(t, ig, 5000, 41)
	levels := []int{1, 2, 4, 8, 16, 32, 64}
	base := RunConfig{Graph: ig, SeedSize: 1, Trials: 30, MasterSeed: 55, Oracle: o}

	snapCfg := base
	snapCfg.Approach = estimator.Snapshot
	snapshotSweep, err := Sweep(snapCfg, levels)
	if err != nil {
		t.Fatal(err)
	}
	oneshotCfg := base
	oneshotCfg.Approach = estimator.Oneshot
	oneshotSweep, err := Sweep(oneshotCfg, levels)
	if err != nil {
		t.Fatal(err)
	}
	points, err := ComparableRatios(snapshotSweep, oneshotSweep)
	if err != nil {
		t.Fatal(err)
	}
	med, ok := MedianNumberRatio(points)
	if !ok {
		t.Fatal("no comparable points found")
	}
	if med < 0.5 {
		t.Errorf("median Oneshot:Snapshot ratio = %v, expected >= 1 (within noise)", med)
	}
	// Size ratio is undefined because Oneshot... wait: reference is Snapshot
	// here, whose sample size is positive, so size ratios are defined.
	if _, ok := MedianSizeRatio(points); !ok {
		t.Error("size ratio undefined although the reference stores samples")
	}
}

func TestComparableRatiosErrors(t *testing.T) {
	if _, err := ComparableRatios(nil, nil); !errors.Is(err, ErrNoDistributions) {
		t.Errorf("empty input err = %v", err)
	}
	if _, ok := MedianNumberRatio(nil); ok {
		t.Error("median of no points reported ok")
	}
	if _, ok := MedianSizeRatio([]ComparablePoint{{Found: true, SizeRatio: math.NaN()}}); ok {
		t.Error("median of NaN-only size ratios reported ok")
	}
}

func TestTraversalCostRelationAcrossApproaches(t *testing.T) {
	// Section 5.3: per-sample vertex traversal cost of Oneshot equals
	// Snapshot's and is about n times RIS's; the edge cost of Snapshot is
	// about m̃/m of Oneshot's.
	ig := karateIWC(t)
	o := mustOracle(t, ig, 2000, 47)
	cfg := RunConfig{Graph: ig, Trials: 60, MasterSeed: 31, Oracle: o}
	rows := map[estimator.Approach]TraversalRow{}
	for _, a := range []estimator.Approach{estimator.Oneshot, estimator.Snapshot, estimator.RIS} {
		row, err := TraversalCost(cfg, a)
		if err != nil {
			t.Fatal(err)
		}
		rows[a] = row
	}
	one, snap, ris := rows[estimator.Oneshot], rows[estimator.Snapshot], rows[estimator.RIS]
	if one.VerticesExamined <= 0 || snap.VerticesExamined <= 0 || ris.VerticesExamined <= 0 {
		t.Fatalf("zero traversal cost: %+v %+v %+v", one, snap, ris)
	}
	vertexRatio := one.VerticesExamined / snap.VerticesExamined
	if vertexRatio < 0.5 || vertexRatio > 2.0 {
		t.Errorf("Oneshot/Snapshot vertex cost ratio = %v, want approx 1", vertexRatio)
	}
	nRatio := one.VerticesExamined / ris.VerticesExamined
	n := float64(ig.NumVertices())
	if nRatio < n/4 || nRatio > n*4 {
		t.Errorf("Oneshot/RIS vertex cost ratio = %v, want approx n = %v", nRatio, n)
	}
	// Snapshot scans only live edges: its edge cost must be below Oneshot's.
	if snap.EdgesExamined >= one.EdgesExamined {
		t.Errorf("Snapshot edge cost %v >= Oneshot edge cost %v", snap.EdgesExamined, one.EdgesExamined)
	}
}

func TestIdenticalAccuracyCosts(t *testing.T) {
	rows := []TraversalRow{
		{Approach: estimator.Oneshot, VerticesExamined: 100, EdgesExamined: 400},
		{Approach: estimator.Snapshot, VerticesExamined: 100, EdgesExamined: 40},
		{Approach: estimator.RIS, VerticesExamined: 2, EdgesExamined: 8},
	}
	out := IdenticalAccuracyCosts(rows, 4, 64)
	if len(out) != 3 {
		t.Fatalf("got %d rows, want 3", len(out))
	}
	if out[0].CostPerGamma != 4*500 {
		t.Errorf("Oneshot per-gamma cost = %v, want 2000", out[0].CostPerGamma)
	}
	if out[1].CostPerGamma != 140 {
		t.Errorf("Snapshot per-gamma cost = %v, want 140", out[1].CostPerGamma)
	}
	if out[2].CostPerGamma != 64*10 {
		t.Errorf("RIS per-gamma cost = %v, want 640", out[2].CostPerGamma)
	}
	// Negative ratio omits the approach.
	out = IdenticalAccuracyCosts(rows, -1, 64)
	if len(out) != 2 {
		t.Errorf("negative ratio should omit Oneshot, got %d rows", len(out))
	}
}

func TestQuantileFractionAndModalOnEmpty(t *testing.T) {
	d := &Distribution{seedSetCounts: map[string]int{}}
	if d.QuantileFraction(1) != 0 {
		t.Error("QuantileFraction on empty distribution should be 0")
	}
	if m, c := d.ModalSeedSet(); m != nil || c != 0 {
		t.Error("ModalSeedSet on empty distribution should be nil, 0")
	}
	if d.MeanCost() != (MeanCost{}) {
		t.Error("MeanCost on empty distribution should be zero")
	}
}

func TestSeedSetKeyCanonical(t *testing.T) {
	a := seedSetKey([]graph.VertexID{3, 1, 2})
	b := seedSetKey([]graph.VertexID{2, 3, 1})
	if a != b {
		t.Errorf("seed set key is order dependent: %q vs %q", a, b)
	}
	if got := parseSeedSetKey(a); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseSeedSetKey = %v", got)
	}
	if parseSeedSetKey("") != nil {
		t.Error("empty key should parse to nil")
	}
}

func TestMeanCostHelpers(t *testing.T) {
	m := MeanCost{VerticesExamined: 1, EdgesExamined: 2, SampleVertices: 3, SampleEdges: 4}
	if m.Traversal() != 3 || m.SampleSize() != 7 {
		t.Errorf("MeanCost helpers: %v %v", m.Traversal(), m.SampleSize())
	}
}
