package core

import (
	"errors"
	"math"

	"imdist/internal/stats"
)

// NearOptimalCriterion defines Table 5's success criterion: a trial is
// near-optimal when its influence is at least Fraction times the reference
// (Exact Greedy) influence, and a sample number suffices when at least
// Probability of its trials are near-optimal.
type NearOptimalCriterion struct {
	// Fraction is the near-optimality threshold relative to the reference
	// influence; the paper uses 0.95.
	Fraction float64
	// Probability is the required success probability over trials; the paper
	// uses 0.99.
	Probability float64
}

// DefaultNearOptimal returns the paper's criterion (0.95, 99%).
func DefaultNearOptimal() NearOptimalCriterion {
	return NearOptimalCriterion{Fraction: 0.95, Probability: 0.99}
}

// LeastSampleResult is one row cell of Table 5: the least swept sample number
// meeting the criterion and the entropy of the seed-set distribution at that
// sample number.
type LeastSampleResult struct {
	// Found is false when no swept sample number met the criterion (the paper
	// prints "> 2^20" in such cases).
	Found bool
	// SampleNumber is the least sufficient sample number (valid when Found).
	SampleNumber int
	// Log2 is log2(SampleNumber), the form Table 5 reports.
	Log2 float64
	// Entropy is the seed-set entropy H* at that sample number.
	Entropy float64
}

// ErrNoDistributions reports an analysis call with no input distributions.
var ErrNoDistributions = errors.New("core: no distributions")

// LeastSampleNumber scans the swept distributions (in increasing sample
// number order) and returns the first whose trials meet the near-optimality
// criterion against the reference influence.
func LeastSampleNumber(sweep []*Distribution, referenceInfluence float64, crit NearOptimalCriterion) (LeastSampleResult, error) {
	if len(sweep) == 0 {
		return LeastSampleResult{}, ErrNoDistributions
	}
	threshold := crit.Fraction * referenceInfluence
	for _, d := range sweep {
		if d.QuantileFraction(threshold) >= crit.Probability {
			return LeastSampleResult{
				Found:        true,
				SampleNumber: d.SampleNumber,
				Log2:         math.Log2(float64(d.SampleNumber)),
				Entropy:      d.Entropy(),
			}, nil
		}
	}
	return LeastSampleResult{Found: false}, nil
}

// EntropyPoint is one point of the entropy-decay curves of Figures 1–3.
type EntropyPoint struct {
	SampleNumber int
	Entropy      float64
	Distinct     int
}

// EntropyCurve extracts the entropy of each swept distribution.
func EntropyCurve(sweep []*Distribution) []EntropyPoint {
	out := make([]EntropyPoint, len(sweep))
	for i, d := range sweep {
		out[i] = EntropyPoint{SampleNumber: d.SampleNumber, Entropy: d.Entropy(), Distinct: d.DistinctSeedSets()}
	}
	return out
}

// InfluencePoint is one point of the influence-distribution curves of
// Figures 4–6: the box-plot summary of I(s) at one sample number.
type InfluencePoint struct {
	SampleNumber int
	Box          stats.BoxPlot
	MeanCost     MeanCost
}

// InfluenceCurve extracts the influence box plots of each swept distribution.
func InfluenceCurve(sweep []*Distribution) []InfluencePoint {
	out := make([]InfluencePoint, len(sweep))
	for i, d := range sweep {
		out[i] = InfluencePoint{SampleNumber: d.SampleNumber, Box: d.BoxPlot(), MeanCost: d.MeanCost()}
	}
	return out
}

// ComparablePoint relates one sample number of the reference approach (alg1)
// to the least sample number of the compared approach (alg2) achieving at
// least the same mean influence (Section 5.2.3's definitions).
type ComparablePoint struct {
	// ReferenceSample is s1, the reference approach's sample number.
	ReferenceSample int
	// ComparableSample is s2, the least swept sample number of the compared
	// approach whose mean influence is >= the reference's; 0 when none
	// qualifies within the sweep.
	ComparableSample int
	// Found reports whether a comparable sample number exists in the sweep.
	Found bool
	// NumberRatio is s2/s1.
	NumberRatio float64
	// SizeRatio is (mean sample size of alg2 at s2)/(mean sample size of
	// alg1 at s1); NaN when the reference stores no samples (Oneshot).
	SizeRatio float64
	// ReferenceMean and ComparableMean are the mean influences at s1 and s2.
	ReferenceMean  float64
	ComparableMean float64
}

// ComparableRatios computes, for every reference distribution, the comparable
// sample number of the compared sweep: the least s2 whose mean influence is at
// least the reference mean at s1. Both sweeps must be sorted by increasing
// sample number (as returned by Sweep).
func ComparableRatios(reference, compared []*Distribution) ([]ComparablePoint, error) {
	if len(reference) == 0 || len(compared) == 0 {
		return nil, ErrNoDistributions
	}
	out := make([]ComparablePoint, 0, len(reference))
	for _, ref := range reference {
		p := ComparablePoint{
			ReferenceSample: ref.SampleNumber,
			ReferenceMean:   ref.MeanInfluence(),
		}
		refSize := ref.MeanCost().SampleSize()
		for _, cmp := range compared {
			if cmp.MeanInfluence() >= p.ReferenceMean {
				p.Found = true
				p.ComparableSample = cmp.SampleNumber
				p.ComparableMean = cmp.MeanInfluence()
				p.NumberRatio = float64(cmp.SampleNumber) / float64(ref.SampleNumber)
				if refSize > 0 {
					p.SizeRatio = cmp.MeanCost().SampleSize() / refSize
				} else {
					p.SizeRatio = math.NaN()
				}
				break
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// MedianNumberRatio returns the median of the number ratios over the points
// where a comparable sample number was found (the statistic Tables 6 and 7
// report). The boolean is false when no point qualified.
func MedianNumberRatio(points []ComparablePoint) (float64, bool) {
	var ratios []float64
	for _, p := range points {
		if p.Found {
			ratios = append(ratios, p.NumberRatio)
		}
	}
	if len(ratios) == 0 {
		return 0, false
	}
	return stats.Median(ratios), true
}

// MedianSizeRatio returns the median of the size ratios over the points where
// both a comparable sample number and a well-defined size ratio exist.
func MedianSizeRatio(points []ComparablePoint) (float64, bool) {
	var ratios []float64
	for _, p := range points {
		if p.Found && !math.IsNaN(p.SizeRatio) {
			ratios = append(ratios, p.SizeRatio)
		}
	}
	if len(ratios) == 0 {
		return 0, false
	}
	return stats.Median(ratios), true
}
