package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"imdist/internal/diffusion"
	"imdist/internal/estimator"
	"imdist/internal/graph"
	"imdist/internal/greedy"
	"imdist/internal/rng"
	"imdist/internal/stats"
)

// Trial is one algorithm run: the seed set it produced, the oracle influence
// of that seed set, and the traversal/sample cost the run incurred.
type Trial struct {
	Seeds     []graph.VertexID
	Influence float64
	Cost      diffusion.Cost
}

// RunConfig describes one cell of the experimental design: a fixed influence
// graph, approach, sample number and seed size, run Trials times with
// independent randomness derived from MasterSeed.
type RunConfig struct {
	Graph        *graph.InfluenceGraph
	Approach     estimator.Approach
	SampleNumber int
	SeedSize     int
	Trials       int
	// MasterSeed determines all randomness; trial t uses streams derived from
	// (MasterSeed, t), so any trial can be reproduced in isolation.
	MasterSeed uint64
	// Oracle evaluates the influence of every produced seed set. It must be
	// built on the same influence graph.
	Oracle *Oracle
	// Lazy selects the CELF lazy-greedy variant instead of Algorithm 3.1's
	// exhaustive scan. It changes cost, not output, for submodular
	// estimators.
	Lazy bool
	// Model selects the diffusion model; the zero value is IC as in the
	// paper. When set to LT, the Oracle must also have been built for LT.
	Model diffusion.Model
	// Workers is the per-trial sampling parallelism, forwarded to
	// estimator.Config.Workers: 0 and 1 run the paper's serial algorithms,
	// values greater than 1 fan each trial's Build (and Oneshot's
	// simulations) out over that many goroutines, negative values use all
	// CPUs. Trials themselves stay sequential so the estimator streams per
	// trial are derived exactly as in the serial harness.
	Workers int
}

// Distribution is the empirical solution distribution S(s) and influence
// distribution I(s) constructed from T trials (Section 4's methodology).
type Distribution struct {
	Approach     estimator.Approach
	SampleNumber int
	SeedSize     int

	Trials []Trial

	// seedSetCounts maps canonical seed-set keys to occurrence counts.
	seedSetCounts map[string]int
}

var errBadRunConfig = errors.New("core: invalid run configuration")

// RunDistribution executes cfg.Trials independent runs of the configured
// approach and collects them into a Distribution.
func RunDistribution(cfg RunConfig) (*Distribution, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("%w: nil graph", errBadRunConfig)
	}
	if cfg.Oracle == nil {
		return nil, fmt.Errorf("%w: nil oracle", errBadRunConfig)
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("%w: trials = %d", errBadRunConfig, cfg.Trials)
	}
	if cfg.SeedSize < 1 || cfg.SeedSize > cfg.Graph.NumVertices() {
		return nil, fmt.Errorf("%w: seed size %d with n = %d", errBadRunConfig, cfg.SeedSize, cfg.Graph.NumVertices())
	}
	if cfg.SampleNumber < 1 {
		return nil, fmt.Errorf("%w: sample number %d", errBadRunConfig, cfg.SampleNumber)
	}
	d := &Distribution{
		Approach:      cfg.Approach,
		SampleNumber:  cfg.SampleNumber,
		SeedSize:      cfg.SeedSize,
		Trials:        make([]Trial, 0, cfg.Trials),
		seedSetCounts: make(map[string]int),
	}
	for t := 0; t < cfg.Trials; t++ {
		trial, err := runOne(cfg, uint64(t))
		if err != nil {
			return nil, err
		}
		d.Trials = append(d.Trials, trial)
		d.seedSetCounts[seedSetKey(trial.Seeds)]++
	}
	return d, nil
}

// runOne executes a single trial with randomness derived from (MasterSeed, t).
func runOne(cfg RunConfig, trialIndex uint64) (Trial, error) {
	// Two independent streams per trial: one for the estimator's sampling and
	// one for the greedy tie-break shuffle (Section 4.1 seeds a fresh PRNG
	// state per run).
	estSrc := rng.Split(rng.Xoshiro, cfg.MasterSeed, trialIndex*2)
	shuffleSrc := rng.Split(rng.Xoshiro, cfg.MasterSeed, trialIndex*2+1)

	est, err := estimator.New(cfg.Approach, estimator.Config{
		Graph:        cfg.Graph,
		SampleNumber: cfg.SampleNumber,
		Source:       estSrc,
		Model:        cfg.Model,
		Workers:      cfg.Workers,
	})
	if err != nil {
		return Trial{}, err
	}
	var seeds []graph.VertexID
	if cfg.Lazy {
		seeds, err = greedy.RunLazy(est, cfg.Graph.NumVertices(), cfg.SeedSize, shuffleSrc)
	} else {
		seeds, err = greedy.Run(est, cfg.Graph.NumVertices(), cfg.SeedSize, shuffleSrc)
	}
	if err != nil {
		return Trial{}, err
	}
	inf, err := cfg.Oracle.Influence(seeds)
	if err != nil {
		return Trial{}, err
	}
	return Trial{
		Seeds:     seeds,
		Influence: inf,
		Cost:      est.Cost(),
	}, nil
}

// seedSetKey canonicalizes a seed set (order-insensitive) into a map key.
func seedSetKey(seeds []graph.VertexID) string {
	sorted := append([]graph.VertexID(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	for i, v := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

// Entropy returns the Shannon entropy (bits) of the empirical seed-set
// distribution.
func (d *Distribution) Entropy() float64 { return stats.Entropy(d.seedSetCounts) }

// DistinctSeedSets returns the number of distinct seed sets observed.
func (d *Distribution) DistinctSeedSets() int { return len(d.seedSetCounts) }

// ModalSeedSet returns the most frequent seed set (ties broken by the
// lexicographically smallest canonical key) and its frequency.
func (d *Distribution) ModalSeedSet() ([]graph.VertexID, int) {
	bestKey := ""
	bestCount := -1
	for key, count := range d.seedSetCounts {
		if count > bestCount || (count == bestCount && key < bestKey) {
			bestKey, bestCount = key, count
		}
	}
	if bestCount < 0 {
		return nil, 0
	}
	return parseSeedSetKey(bestKey), bestCount
}

func parseSeedSetKey(key string) []graph.VertexID {
	if key == "" {
		return nil
	}
	parts := strings.Split(key, ",")
	seeds := make([]graph.VertexID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			continue
		}
		seeds = append(seeds, graph.VertexID(v))
	}
	return seeds
}

// Influences returns the influence spread of every trial, in trial order.
func (d *Distribution) Influences() []float64 {
	out := make([]float64, len(d.Trials))
	for i, t := range d.Trials {
		out[i] = t.Influence
	}
	return out
}

// MeanInfluence returns the mean of the influence distribution; the paper
// uses the mean as the dominant quality measure (Section 5.2.3, Figure 6).
func (d *Distribution) MeanInfluence() float64 { return stats.Mean(d.Influences()) }

// BoxPlot returns the notched-box-plot summary of the influence distribution
// (the quantities plotted in Figure 4).
func (d *Distribution) BoxPlot() stats.BoxPlot { return stats.NewBoxPlot(d.Influences()) }

// QuantileFraction returns the fraction of trials whose influence is at least
// the given threshold, the quantity behind Table 5's "near-optimal with
// probability 99%".
func (d *Distribution) QuantileFraction(threshold float64) float64 {
	if len(d.Trials) == 0 {
		return 0
	}
	count := 0
	for _, t := range d.Trials {
		if t.Influence >= threshold {
			count++
		}
	}
	return float64(count) / float64(len(d.Trials))
}

// MeanCost returns the per-trial average of each cost counter.
func (d *Distribution) MeanCost() MeanCost {
	if len(d.Trials) == 0 {
		return MeanCost{}
	}
	var sum MeanCost
	for _, t := range d.Trials {
		sum.VerticesExamined += float64(t.Cost.VerticesExamined)
		sum.EdgesExamined += float64(t.Cost.EdgesExamined)
		sum.SampleVertices += float64(t.Cost.SampleVertices)
		sum.SampleEdges += float64(t.Cost.SampleEdges)
	}
	inv := 1.0 / float64(len(d.Trials))
	sum.VerticesExamined *= inv
	sum.EdgesExamined *= inv
	sum.SampleVertices *= inv
	sum.SampleEdges *= inv
	return sum
}

// MeanCost is the per-trial average of the Cost counters, kept as floats
// because Table 8 reports fractional averages.
type MeanCost struct {
	VerticesExamined float64
	EdgesExamined    float64
	SampleVertices   float64
	SampleEdges      float64
}

// Traversal returns the mean total traversal cost (vertices + edges).
func (m MeanCost) Traversal() float64 { return m.VerticesExamined + m.EdgesExamined }

// SampleSize returns the mean total sample size (vertices + edges stored).
func (m MeanCost) SampleSize() float64 { return m.SampleVertices + m.SampleEdges }

// Sweep runs RunDistribution for every sample number in levels, reusing the
// same graph, oracle, seed size and trial count, and returns the resulting
// distributions in level order. The master seed is varied per level so that
// levels are independent.
func Sweep(base RunConfig, levels []int) ([]*Distribution, error) {
	out := make([]*Distribution, 0, len(levels))
	for i, s := range levels {
		cfg := base
		cfg.SampleNumber = s
		cfg.MasterSeed = base.MasterSeed + uint64(i)*1_000_003
		d, err := RunDistribution(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at sample number %d: %w", s, err)
		}
		out = append(out, d)
	}
	return out, nil
}
