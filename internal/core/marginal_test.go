package core

import (
	"errors"
	"testing"

	"imdist/internal/graph"
)

// bothKernels runs fn against the oracle under the epoch and bitpack kernels.
func bothKernels(t *testing.T, o *Oracle, fn func(t *testing.T, o *Oracle)) {
	t.Helper()
	for _, k := range []Kernel{KernelEpoch, KernelBitpack} {
		t.Run(string(k), func(t *testing.T) {
			if err := o.SetKernel(k); err != nil {
				t.Fatal(err)
			}
			fn(t, o)
		})
	}
}

func TestCoverageMatchesInfluence(t *testing.T) {
	o := mustOracle(t, karateIWC(t), 5000, 3)
	seedSets := [][]graph.VertexID{
		nil,
		{0},
		{33},
		{0, 33, 2},
		{5, 5, 5}, // duplicates must not double-count
	}
	bothKernels(t, o, func(t *testing.T, o *Oracle) {
		for _, seeds := range seedSets {
			hits, err := o.Coverage(seeds)
			if err != nil {
				t.Fatalf("Coverage(%v) = %v", seeds, err)
			}
			inf, err := o.Influence(seeds)
			if err != nil {
				t.Fatal(err)
			}
			want := float64(o.NumVertices()) * float64(hits) / float64(o.NumSets())
			if inf != want {
				t.Errorf("Influence(%v) = %v, want %v from %d covered sets", seeds, inf, want, hits)
			}
		}
	})
	if _, err := o.Coverage([]graph.VertexID{99}); !errors.Is(err, ErrSeedOutOfRange) {
		t.Errorf("out-of-range Coverage err = %v", err)
	}
}

func TestBatchCoverageMatchesCoverage(t *testing.T) {
	o := mustOracle(t, karateIWC(t), 5000, 4)
	seedSets := [][]graph.VertexID{
		{0}, {1, 2, 3}, nil, {33, 0}, {99}, {7},
	}
	bothKernels(t, o, func(t *testing.T, o *Oracle) {
		counts, errs := o.BatchCoverage(seedSets, 4)
		for i, seeds := range seedSets {
			if i == 4 {
				if !errors.Is(errs[i], ErrSeedOutOfRange) {
					t.Errorf("item 4 err = %v", errs[i])
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("item %d err = %v", i, errs[i])
			}
			want, err := o.Coverage(seeds)
			if err != nil {
				t.Fatal(err)
			}
			if counts[i] != want {
				t.Errorf("BatchCoverage[%d] = %d, want %d", i, counts[i], want)
			}
		}
	})
}

func TestMarginalCoverageMatchesBruteForce(t *testing.T) {
	o := mustOracle(t, karateIWC(t), 3000, 5)
	n := o.NumVertices()
	seedSets := [][]graph.VertexID{
		nil,
		{0},
		{0, 33},
		{0, 33, 2, 5, 8},
	}
	bothKernels(t, o, func(t *testing.T, o *Oracle) {
		for _, seeds := range seedSets {
			base, err := o.Coverage(seeds)
			if err != nil {
				t.Fatal(err)
			}
			gains, err := o.MarginalCoverage(seeds, nil)
			if err != nil {
				t.Fatalf("MarginalCoverage(%v, nil) = %v", seeds, err)
			}
			if len(gains) != n {
				t.Fatalf("nil candidates: %d gains, want %d", len(gains), n)
			}
			for v := 0; v < n; v++ {
				with, err := o.Coverage(append(append([]graph.VertexID(nil), seeds...), graph.VertexID(v)))
				if err != nil {
					t.Fatal(err)
				}
				if gains[v] != with-base {
					t.Errorf("seeds %v: gain[%d] = %d, want %d", seeds, v, gains[v], with-base)
				}
			}
			// An explicit candidate list returns the same gains in its order.
			cands := []graph.VertexID{33, 0, 7}
			sub, err := o.MarginalCoverage(seeds, cands)
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range cands {
				if sub[i] != gains[c] {
					t.Errorf("seeds %v: candidate gain[%d] = %d, want %d", seeds, c, sub[i], gains[c])
				}
			}
		}
	})
}

func TestMarginalCoverageEmptySeedsIsMembershipCount(t *testing.T) {
	o := mustOracle(t, twoStarGraph(t), 500, 6)
	gains, err := o.MarginalCoverage(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < o.NumVertices(); v++ {
		want, err := o.Coverage([]graph.VertexID{graph.VertexID(v)})
		if err != nil {
			t.Fatal(err)
		}
		if gains[v] != want {
			t.Errorf("gain[%d] = %d, want membership count %d", v, gains[v], want)
		}
	}
}

func TestMarginalCoverageValidation(t *testing.T) {
	o := mustOracle(t, twoStarGraph(t), 100, 7)
	if _, err := o.MarginalCoverage([]graph.VertexID{10}, nil); !errors.Is(err, ErrSeedOutOfRange) {
		t.Errorf("bad seed err = %v", err)
	}
	if _, err := o.MarginalCoverage(nil, []graph.VertexID{10}); !errors.Is(err, ErrSeedOutOfRange) {
		t.Errorf("bad candidate err = %v", err)
	}
	if gains, err := o.MarginalCoverage(nil, []graph.VertexID{}); err != nil || len(gains) != 0 {
		t.Errorf("empty candidates = (%v, %v), want empty gains", gains, err)
	}
}

// TestMarginalGreedyReproducesGreedySeeds runs the coordinator's argmax loop —
// pick the candidate with the highest marginal count, ties to the smallest
// vertex id — against MarginalCoverage and checks it selects the exact seed
// sequence GreedySeeds returns.
func TestMarginalGreedyReproducesGreedySeeds(t *testing.T) {
	o := mustOracle(t, karateIWC(t), 4000, 8)
	bothKernels(t, o, func(t *testing.T, o *Oracle) {
		want := o.GreedySeeds(5)
		var seeds []graph.VertexID
		for len(seeds) < 5 {
			gains, err := o.MarginalCoverage(seeds, nil)
			if err != nil {
				t.Fatal(err)
			}
			best, bestGain := graph.VertexID(0), int64(-1)
			for v, g := range gains {
				if g > bestGain {
					best, bestGain = graph.VertexID(v), g
				}
			}
			seeds = append(seeds, best)
		}
		for i := range want {
			if seeds[i] != want[i] {
				t.Fatalf("marginal greedy picked %v, GreedySeeds picked %v", seeds, want)
			}
		}
	})
}

func TestShardLineage(t *testing.T) {
	o := mustOracle(t, twoStarGraph(t), 100, 9)
	if l := o.ShardLineage(); l.Sharded() {
		t.Errorf("fresh oracle sharded: %+v", l)
	}
	good := ShardLineage{Index: 1, Count: 3, TotalSets: 450}
	if err := o.SetShardLineage(good); err != nil {
		t.Fatalf("valid lineage rejected: %v", err)
	}
	if got := o.ShardLineage(); got != good {
		t.Errorf("ShardLineage() = %+v, want %+v", got, good)
	}
	if err := o.SetShardLineage(ShardLineage{}); err != nil {
		t.Fatalf("clearing lineage rejected: %v", err)
	}
	for _, bad := range []ShardLineage{
		{Index: 1, Count: 0, TotalSets: 0},     // nonzero index without count
		{Index: 0, Count: 0, TotalSets: 100},   // nonzero totals without count
		{Index: 3, Count: 3, TotalSets: 450},   // index out of range
		{Index: -1, Count: 3, TotalSets: 450},  // negative index
		{Index: 0, Count: 2, TotalSets: 50},    // fewer total sets than local
		{Index: 0, Count: 200, TotalSets: 150}, // more shards than sets
	} {
		if err := o.SetShardLineage(bad); !errors.Is(err, ErrShardLineage) {
			t.Errorf("lineage %+v err = %v, want ErrShardLineage", bad, err)
		}
	}
}
