package core

import (
	"fmt"
	"sort"

	"imdist/internal/graph"
	"imdist/internal/parallel"
)

// DefaultBatchShardSize is the number of RR sets per shard of the batch
// query engine. A shard's scratch state is one epoch mark per RR set
// (4 bytes), so 1<<16 sets keep each shard's working set at 256 KiB —
// comfortably inside a per-core L2 cache even with the membership lists
// streaming through it.
const DefaultBatchShardSize = 1 << 16

// BatchInfluence evaluates many seed sets in one pass over the oracle's RR
// sets. The RR-set index space is partitioned into cache-friendly shards of
// DefaultBatchShardSize sets each, and the shards × queries work grid is
// fanned out over a pool of workers goroutines (same knob semantics as
// everywhere else: 0 and 1 evaluate on the calling goroutine, larger values
// use that many workers, negative values one per CPU). Per-shard coverage
// counts are integers and are merged in shard order, so the returned values
// are byte-identical to looping Influence over the same seed sets — for any
// worker count.
//
// The two returned slices have len(seedSets) entries each. errs[i] is non-nil
// when seedSets[i] contains a vertex outside [0, NumVertices()); the
// corresponding values[i] is 0 and the remaining items are unaffected, so one
// bad query never fails a batch. An empty seed set is valid and evaluates
// to 0, exactly as Influence does.
func (o *Oracle) BatchInfluence(seedSets [][]graph.VertexID, workers int) (values []float64, errs []error) {
	return o.batchInfluence(seedSets, workers, DefaultBatchShardSize)
}

// BatchCoverage is BatchInfluence returning raw coverage counts instead of
// influence values: counts[i] is the exact number of RR sets intersecting
// seedSets[i]. It is the batch primitive of the distributed serving tier —
// per-shard counts are integers that merge exactly across a partitioned
// fleet, where the float division by the fleet-wide TotalSets must happen
// once, at the coordinator, to stay byte-identical to a single process.
func (o *Oracle) BatchCoverage(seedSets [][]graph.VertexID, workers int) (counts []int64, errs []error) {
	return o.batchCoverage(seedSets, workers, DefaultBatchShardSize)
}

// batchInfluence is BatchInfluence with an explicit shard size, so tests can
// force multi-shard merging on small RR pools.
func (o *Oracle) batchInfluence(seedSets [][]graph.VertexID, workers, shardSize int) ([]float64, []error) {
	counts, errs := o.batchCoverage(seedSets, workers, shardSize)
	values := make([]float64, len(seedSets))
	for q := range counts {
		if errs[q] != nil {
			continue
		}
		values[q] = float64(o.n) * float64(counts[q]) / float64(o.numSets)
	}
	return values, errs
}

// batchCoverage is BatchCoverage with an explicit shard size, so tests can
// force multi-shard merging on small RR pools.
func (o *Oracle) batchCoverage(seedSets [][]graph.VertexID, workers, shardSize int) ([]int64, []error) {
	numQueries := len(seedSets)
	values := make([]int64, numQueries)
	errs := make([]error, numQueries)
	if numQueries == 0 {
		return values, errs
	}
	if shardSize < 1 {
		shardSize = DefaultBatchShardSize
	}
	for i, seeds := range seedSets {
		if err := o.ValidateSeeds(seeds); err != nil {
			errs[i] = fmt.Errorf("seed set %d: %w", i, err)
		}
	}
	numShards := (o.numSets + shardSize - 1) / shardSize
	// The packed kernel applies when its block layout matches this call's
	// sharding (always true outside tests that force odd shard sizes): each
	// (shard, query) cell then ORs shard-local rows into an 8 KiB accumulator
	// and popcounts, instead of stamping epoch marks per element. Both paths
	// produce the same exact per-shard integers.
	var packed *bitMatrix
	if o.useBitpack() && shardSize == DefaultBatchShardSize {
		packed = o.packedMatrix()
	}
	// One work item per (shard, query) cell, laid out shard-major: a worker's
	// contiguous chunk of items then walks many queries over the same index
	// range, keeping its scratch and the touched word or membership ranges
	// warm.
	items := numShards * numQueries
	counts := make([]int64, items)
	w := parallel.Resolve(workers, items)
	scratches := make([]*batchScratch, w)
	parallel.For(w, items, func(worker, item int) {
		q := item % numQueries
		if errs[q] != nil {
			return
		}
		shard := item / numQueries
		seeds := seedSets[q]
		sc := scratches[worker]
		if sc == nil {
			sc = &batchScratch{}
			scratches[worker] = sc
		}
		// Single-seed cells always take the membership binary search in
		// shardCoverage: it reads O(log) entries where the popcount would
		// scan the whole row.
		if packed != nil && len(seeds) > 1 {
			if sc.acc == nil {
				sc.acc = make([]uint64, packed.maxBlockWords())
			}
			counts[item] = packed.blockCoverage(seeds, shard, sc.acc)
			return
		}
		lo := shard * shardSize
		hi := lo + shardSize
		if hi > o.numSets {
			hi = o.numSets
		}
		if sc.marks == nil {
			sc.marks = make([]int32, shardSize)
		}
		counts[item] = o.shardCoverage(seeds, lo, hi, sc)
	})
	for q := range seedSets {
		if errs[q] != nil {
			continue
		}
		var hits int64
		for shard := 0; shard < numShards; shard++ {
			hits += counts[shard*numQueries+q]
		}
		values[q] = hits
	}
	return values, errs
}

// batchScratch is the per-worker scratch of the batch engine, reused across
// every (shard, query) cell the worker processes: an epoch-stamped mark array
// of one shard's width for the epoch kernel, and a covered-word accumulator
// of one block's width for the bitpack kernel. Each side allocates lazily on
// the first cell that needs it.
type batchScratch struct {
	marks []int32
	epoch int32
	acc   []uint64
}

// shardCoverage counts the RR sets with index in [lo, hi) that intersect
// seeds. The count is exact, so summing it over a partition of the index
// space reproduces the serial distinct count.
func (o *Oracle) shardCoverage(seeds []graph.VertexID, lo, hi int, sc *batchScratch) int64 {
	if len(seeds) == 0 {
		return 0
	}
	if len(seeds) == 1 {
		// No dedup needed across a single membership list: each RR set holds
		// a vertex at most once, matching the serial single-seed fast path.
		m := o.memberOf[seeds[0]]
		return int64(lowerBound(m, int32(hi)) - lowerBound(m, int32(lo)))
	}
	sc.epoch++
	if sc.epoch <= 0 { // epoch wrapped: reset the stamps
		clear(sc.marks)
		sc.epoch = 1
	}
	var hits int64
	for _, v := range seeds {
		m := o.memberOf[v]
		for _, idx := range m[lowerBound(m, int32(lo)):] {
			if int(idx) >= hi {
				break
			}
			if sc.marks[int(idx)-lo] != sc.epoch {
				sc.marks[int(idx)-lo] = sc.epoch
				hits++
			}
		}
	}
	return hits
}

// lowerBound returns the first position in the ascending list m whose value
// is >= bound. Membership lists are built in RR-set order (buildMemberIndex),
// so they are always sorted.
func lowerBound(m []int32, bound int32) int {
	return sort.Search(len(m), func(i int) bool { return m[i] >= bound })
}
