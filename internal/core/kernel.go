package core

import (
	"fmt"
	"math/bits"
	"sync"

	"imdist/internal/graph"
)

// Kernel selects the coverage-counting implementation behind the oracle's
// query path — Influence, BatchInfluence, GreedySeeds and (through them)
// everything the server and the facade expose. Both kernels compute the exact
// same integer coverage counts, so every Kernel value returns byte-identical
// answers; the knob trades memory for raw scan speed:
//
//   - KernelEpoch walks the int-slice membership lists with an epoch-stamped
//     mark array — the reference implementation, O(Σ|memberOf[seed]|) random
//     accesses per query and no extra memory.
//   - KernelBitpack scans a dense bit matrix of RR-set × vertex incidence
//     ([]uint64 words, cache-blocked to the batch engine's shard size) and
//     counts coverage with popcount. A query costs |seeds|·R/64 sequential
//     word operations, so it wins whenever membership is dense (RR sets touch
//     more than ~1/64 of the vertices on average) at the price of n·R/8 bytes
//     for the packed index, built lazily on first use.
//   - KernelAuto (the default) picks bitpack exactly when the packed index
//     costs at most BitpackAutoMemFactor× the memory of the int-slice
//     adjacency it shadows — which is the same density regime where the
//     popcount scan also wins on time — and stays on epoch otherwise.
type Kernel string

// The three kernel selection policies. The zero value ("") behaves as
// KernelAuto everywhere a Kernel is consumed.
const (
	KernelAuto    Kernel = "auto"
	KernelEpoch   Kernel = "epoch"
	KernelBitpack Kernel = "bitpack"
)

// ParseKernel validates a kernel name from a flag or config field. The empty
// string parses as KernelAuto so zero-valued configs keep the default.
func ParseKernel(s string) (Kernel, error) {
	switch Kernel(s) {
	case "":
		return KernelAuto, nil
	case KernelAuto, KernelEpoch, KernelBitpack:
		return Kernel(s), nil
	}
	return "", fmt.Errorf("core: unknown kernel %q (want auto, epoch or bitpack)", s)
}

// BitpackAutoMemFactor bounds how much memory KernelAuto will spend on the
// packed index relative to the int-slice adjacency it shadows. Packed bytes
// are n·R/8 and adjacency bytes are 4·Σ|set|, so the factor-of-2 threshold is
// exactly membership density 1/64 — one set bit per accumulator word, the
// break-even point of the popcount scan against the epoch walk.
const BitpackAutoMemFactor = 2

// bitpackAutoMaxBytes caps the packed index KernelAuto will build without
// being asked (an explicit KernelBitpack builds any size). Dense regimes keep
// packed and adjacency sizes comparable, so the cap only guards genuinely
// enormous oracles from a surprise allocation.
const bitpackAutoMaxBytes = 1 << 31

// bitMatrix is the packed RR-set × vertex incidence index behind
// KernelBitpack: bit i of row v is set iff RR set i contains vertex v, so
// the RR sets covered by a seed set are the OR of its rows and the coverage
// count is a popcount. Rows are split into blocks of shardSize RR sets laid
// out block-major — all rows of block 0, then all rows of block 1 — matching
// the batch engine's sharding, so both the full-range scan and a per-shard
// scan walk one contiguous row segment per (vertex, block) and the covered-
// word accumulator for a block (shardSize/64 words, 8 KiB at the default
// shard size) stays resident in a core's L1/L2 across the whole merge.
//
// A bitMatrix is immutable after newBitMatrix returns and safe for
// concurrent readers.
type bitMatrix struct {
	n         int
	numSets   int
	shardSize int
	// blockStart[b] is the word offset of block b's rows in words;
	// blockWords[b] is the per-row word count of block b (shardSize/64 for
	// full blocks, rounded up from the remainder for the last one). Bits past
	// numSets in the last block are never set, so popcounts need no masking.
	blockStart []int
	blockWords []int
	words      []uint64
}

// packedWords returns the []uint64 length a bitMatrix over n vertices and
// numSets RR sets occupies at the given block size.
func packedWords(n, numSets, shardSize int) int {
	total := 0
	for lo := 0; lo < numSets; lo += shardSize {
		sets := min(shardSize, numSets-lo)
		total += n * ((sets + 63) / 64)
	}
	return total
}

// PackedIndexBytes returns the memory cost in bytes of the bitpack kernel's
// packed index for an oracle over n vertices and numSets RR sets — what the
// auto policy weighs against the adjacency size, exported so operators can
// budget the Kernel knob (see docs/ARCHITECTURE.md).
func PackedIndexBytes(n, numSets int) int64 {
	return 8 * int64(packedWords(n, numSets, DefaultBatchShardSize))
}

// newBitMatrix packs the oracle's membership lists. memberOf is already
// validated and sorted per vertex (buildMemberIndex), so the pack is a single
// ascending pass per vertex with no store reads — a spill-backed oracle pays
// no disk traffic here.
func newBitMatrix(n, numSets, shardSize int, memberOf [][]int32) *bitMatrix {
	numBlocks := (numSets + shardSize - 1) / shardSize
	m := &bitMatrix{
		n:          n,
		numSets:    numSets,
		shardSize:  shardSize,
		blockStart: make([]int, numBlocks+1),
		blockWords: make([]int, numBlocks),
	}
	for b := 0; b < numBlocks; b++ {
		sets := min(shardSize, numSets-b*shardSize)
		m.blockWords[b] = (sets + 63) / 64
		m.blockStart[b+1] = m.blockStart[b] + n*m.blockWords[b]
	}
	m.words = make([]uint64, m.blockStart[numBlocks])
	for v := 0; v < n; v++ {
		for _, idx := range memberOf[v] {
			b := int(idx) / shardSize
			off := int(idx) % shardSize
			m.words[m.blockStart[b]+v*m.blockWords[b]+off/64] |= 1 << (off % 64)
		}
	}
	return m
}

// numBlocks returns the number of shard-aligned blocks.
func (m *bitMatrix) numBlocks() int { return len(m.blockWords) }

// maxBlockWords returns the widest per-row word count across blocks — the
// accumulator size a full scan needs.
func (m *bitMatrix) maxBlockWords() int {
	if len(m.blockWords) == 0 {
		return 0
	}
	return m.blockWords[0]
}

// row returns vertex v's packed incidence words within block b.
func (m *bitMatrix) row(v, b int) []uint64 {
	w := m.blockWords[b]
	start := m.blockStart[b] + v*w
	return m.words[start : start+w]
}

// blockCoverage counts the RR sets in block b that intersect seeds, ORing
// the seed rows into acc (whose first blockWords[b] entries it clears and
// uses as scratch) and popcounting the merged words.
func (m *bitMatrix) blockCoverage(seeds []graph.VertexID, b int, acc []uint64) int64 {
	w := m.blockWords[b]
	if len(seeds) == 1 {
		row := m.row(int(seeds[0]), b)
		var hits int64
		for _, word := range row {
			hits += int64(bits.OnesCount64(word))
		}
		return hits
	}
	acc = acc[:w]
	clear(acc)
	for _, v := range seeds {
		row := m.row(int(v), b)
		for i, word := range row {
			acc[i] |= word
		}
	}
	var hits int64
	for _, word := range acc {
		hits += int64(bits.OnesCount64(word))
	}
	return hits
}

// coverage counts the RR sets (over the full index space) that intersect
// seeds. acc must hold at least maxBlockWords() words.
func (m *bitMatrix) coverage(seeds []graph.VertexID, acc []uint64) int64 {
	var hits int64
	for b := 0; b < m.numBlocks(); b++ {
		hits += m.blockCoverage(seeds, b, acc)
	}
	return hits
}

// kernelState is the oracle's lazily resolved kernel machinery: the
// configured policy, the auto decision (fixed at construction — it depends
// only on the snapshot's shape), and the packed index built on first use.
type kernelState struct {
	mu         sync.RWMutex
	configured Kernel
	// autoBitpack records whether KernelAuto resolves to bitpack for this
	// oracle's shape.
	autoBitpack bool

	packOnce sync.Once
	packed   *bitMatrix

	accPool sync.Pool // *[]uint64 accumulators of maxBlockWords length
}

// SetKernel selects the oracle's coverage kernel. It may be called at any
// time, including concurrently with queries: answers are byte-identical
// under every kernel, so a switch is only ever a performance event. The
// packed index is built lazily on the first query that needs it.
func (o *Oracle) SetKernel(k Kernel) error {
	k, err := ParseKernel(string(k))
	if err != nil {
		return err
	}
	o.kernels.mu.Lock()
	o.kernels.configured = k
	o.kernels.mu.Unlock()
	return nil
}

// KernelConfigured returns the kernel selection policy the oracle was given
// (KernelAuto when never set).
func (o *Oracle) KernelConfigured() Kernel {
	o.kernels.mu.RLock()
	defer o.kernels.mu.RUnlock()
	if o.kernels.configured == "" {
		return KernelAuto
	}
	return o.kernels.configured
}

// KernelResolved returns the kernel the oracle's queries actually run on:
// KernelConfigured with auto resolved against the oracle's shape. The
// resolution is deterministic, so this never forces the packed index to
// build.
func (o *Oracle) KernelResolved() Kernel {
	if o.useBitpack() {
		return KernelBitpack
	}
	return KernelEpoch
}

// useBitpack resolves the kernel policy for a query.
func (o *Oracle) useBitpack() bool {
	switch o.KernelConfigured() {
	case KernelBitpack:
		return true
	case KernelEpoch:
		return false
	}
	return o.kernels.autoBitpack
}

// decideAutoKernel fixes the auto policy's choice at construction time:
// bitpack iff the packed index costs at most BitpackAutoMemFactor× the
// adjacency it shadows (membership density ≥ 1/64 — where the popcount scan
// wins) and stays under the absolute auto cap. payloadBytes encodes each set
// as 4 bytes of length plus 4 bytes per vertex, so the adjacency (member
// index) size is payloadBytes − 4·numSets.
func (o *Oracle) decideAutoKernel() {
	packed := PackedIndexBytes(o.n, o.numSets)
	adjacency := o.payloadBytes - 4*int64(o.numSets)
	o.kernels.autoBitpack = packed <= BitpackAutoMemFactor*adjacency && packed <= bitpackAutoMaxBytes
}

// packedMatrix returns the packed index, building it on first use.
func (o *Oracle) packedMatrix() *bitMatrix {
	o.kernels.packOnce.Do(func() {
		o.kernels.packed = newBitMatrix(o.n, o.numSets, DefaultBatchShardSize, o.memberOf)
	})
	return o.kernels.packed
}

// getAcc borrows a covered-word accumulator sized for m's widest block.
func (o *Oracle) getAcc(m *bitMatrix) *[]uint64 {
	if p, _ := o.kernels.accPool.Get().(*[]uint64); p != nil && len(*p) >= m.maxBlockWords() {
		return p
	}
	acc := make([]uint64, m.maxBlockWords())
	return &acc
}

func (o *Oracle) putAcc(p *[]uint64) { o.kernels.accPool.Put(p) }

// bitpackCoverage is the packed full-range coverage count behind Influence.
func (o *Oracle) bitpackCoverage(seeds []graph.VertexID) int64 {
	m := o.packedMatrix()
	acc := o.getAcc(m)
	hits := m.coverage(seeds, *acc)
	o.putAcc(acc)
	return hits
}

// greedySeedsBitpack is GreedySeeds on the packed index: instead of stamping
// epochs per covered element, each round recomputes every candidate's
// marginal gain as popcount(row AND NOT covered) over the blocked words and
// ORs the winner's rows into the covered accumulator. The gains equal the
// epoch path's eagerly maintained coverCount values exactly (both are the
// candidate's uncovered membership count), and the argmax scans vertices in
// ascending order with a strict comparison, so ties break identically and
// the selected seed sequence is byte-identical to the epoch kernel's.
func (o *Oracle) greedySeedsBitpack(k int) []graph.VertexID {
	m := o.packedMatrix()
	covered := make([]uint64, 0, m.numBlocks()*m.maxBlockWords())
	coveredStart := make([]int, m.numBlocks()+1)
	for b := 0; b < m.numBlocks(); b++ {
		coveredStart[b+1] = coveredStart[b] + m.blockWords[b]
	}
	covered = covered[:coveredStart[m.numBlocks()]]
	chosen := make([]bool, o.n)
	seeds := make([]graph.VertexID, 0, k)
	for len(seeds) < k {
		best, bestGain := -1, int64(-1)
		for v := 0; v < o.n; v++ {
			if chosen[v] {
				continue
			}
			var gain int64
			for b := 0; b < m.numBlocks(); b++ {
				row := m.row(v, b)
				cov := covered[coveredStart[b]:coveredStart[b+1]]
				for i, word := range row {
					gain += int64(bits.OnesCount64(word &^ cov[i]))
				}
			}
			if best < 0 || gain > bestGain {
				best, bestGain = v, gain
			}
		}
		chosen[best] = true
		seeds = append(seeds, graph.VertexID(best))
		for b := 0; b < m.numBlocks(); b++ {
			row := m.row(best, b)
			cov := covered[coveredStart[b]:coveredStart[b+1]]
			for i, word := range row {
				cov[i] |= word
			}
		}
	}
	return seeds
}
