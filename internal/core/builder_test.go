package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"imdist/internal/diffusion"
	"imdist/internal/graph"
)

func mustBuilder(t testing.TB, ig *graph.InfluenceGraph, workers int, seed uint64) *SketchBuilder {
	t.Helper()
	b, err := NewSketchBuilder(ig, diffusion.IC, workers, seed)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// builderSets snapshots every RR set of b through the store-backed accessor.
func builderSets(t testing.TB, b *SketchBuilder) [][]graph.VertexID {
	t.Helper()
	sets, err := b.SetsRange(0, b.NumSets())
	if err != nil {
		t.Fatal(err)
	}
	return sets
}

// oracleSets snapshots every RR set of o.
func oracleSets(o *Oracle) [][]graph.VertexID {
	sets := make([][]graph.VertexID, o.NumSets())
	for i := range sets {
		sets[i] = o.RRSet(i)
	}
	return sets
}

// TestBuilderMatchesOneShot is the determinism core of the incremental
// builder: growing a sketch in any batch schedule, at any worker count, must
// produce exactly the RR sets of the one-shot parallel build with the same
// seed and total.
func TestBuilderMatchesOneShot(t *testing.T) {
	ig := karateIWC(t)
	const total = 5000
	const seed = 7
	want, err := NewOracleParallelSeeded(ig, diffusion.IC, total, 2, seed)
	if err != nil {
		t.Fatal(err)
	}
	schedules := [][]int{
		{total},
		{1, 2, 97, 900, 4000},
		{2500, 2500},
	}
	for _, workers := range []int{1, 4} {
		for _, schedule := range schedules {
			b := mustBuilder(t, ig, workers, seed)
			for _, m := range schedule {
				if err := b.AppendBatch(m); err != nil {
					t.Fatal(err)
				}
			}
			if b.NumSets() != total {
				t.Fatalf("workers=%d schedule=%v: %d sets, want %d", workers, schedule, b.NumSets(), total)
			}
			if !reflect.DeepEqual(builderSets(t, b), oracleSets(want)) {
				t.Errorf("workers=%d schedule=%v: RR sets differ from one-shot build", workers, schedule)
			}
			o, err := b.Oracle()
			if err != nil {
				t.Fatal(err)
			}
			if o.Model() != want.Model() || o.BuildSeed() != want.BuildSeed() || o.NumSets() != want.NumSets() {
				t.Errorf("workers=%d: oracle metadata (%v, %d, %d) != one-shot (%v, %d, %d)",
					workers, o.Model(), o.BuildSeed(), o.NumSets(),
					want.Model(), want.BuildSeed(), want.NumSets())
			}
		}
	}
}

// TestBuilderResumeMatchesUninterrupted hands a builder's sets to
// ResumeSketchBuilder (the checkpoint path) and verifies the continued
// sequence is indistinguishable from never stopping.
func TestBuilderResumeMatchesUninterrupted(t *testing.T) {
	ig := karateIWC(t)
	const seed = 11
	straight := mustBuilder(t, ig, 4, seed)
	if err := straight.AppendBatch(2000); err != nil {
		t.Fatal(err)
	}

	first := mustBuilder(t, ig, 1, seed)
	if err := first.AppendBatch(750); err != nil {
		t.Fatal(err)
	}
	// Simulate a checkpoint: copy the sets out, resume a fresh builder from
	// them (different worker count on purpose), and finish the build.
	saved := builderSets(t, first)
	resumed, err := ResumeSketchBuilder(ig, diffusion.IC, 4, seed, saved)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.NumSets() != 750 {
		t.Fatalf("resumed at %d sets, want 750", resumed.NumSets())
	}
	if err := resumed.AppendBatch(1250); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(builderSets(t, resumed), builderSets(t, straight)) {
		t.Error("resumed build differs from uninterrupted build")
	}
}

func TestResumeSketchBuilderValidates(t *testing.T) {
	ig := karateIWC(t)
	if _, err := ResumeSketchBuilder(nil, diffusion.IC, 1, 1, nil); !errors.Is(err, ErrEmptyGraph) {
		t.Errorf("nil graph: err = %v, want ErrEmptyGraph", err)
	}
	bad := [][]graph.VertexID{{0, graph.VertexID(ig.NumVertices())}}
	if _, err := ResumeSketchBuilder(ig, diffusion.IC, 1, 1, bad); err == nil {
		t.Error("out-of-range checkpointed vertex accepted")
	}
}

func TestAppendBatchRejectsNonPositive(t *testing.T) {
	b := mustBuilder(t, karateIWC(t), 1, 1)
	if err := b.AppendBatch(0); err == nil {
		t.Error("AppendBatch(0) accepted")
	}
	if err := b.AppendBatch(-5); err == nil {
		t.Error("AppendBatch(-5) accepted")
	}
}

func TestErrorBoundShrinks(t *testing.T) {
	b := mustBuilder(t, karateIWC(t), 2, 3)
	if got := b.ErrorBound(10, 0.01); !math.IsInf(got, 1) {
		t.Fatalf("empty builder bound = %v, want +Inf", got)
	}
	if err := b.AppendBatch(500); err != nil {
		t.Fatal(err)
	}
	small := b.ErrorBound(10, 0.01)
	if math.IsInf(small, 1) || small <= 0 {
		t.Fatalf("bound at 500 sets = %v, want finite positive", small)
	}
	if err := b.AppendBatch(7500); err != nil {
		t.Fatal(err)
	}
	large := b.ErrorBound(10, 0.01)
	if large >= small {
		t.Errorf("bound did not shrink: %v at 500 sets, %v at 8000", small, large)
	}
	// 16x the sets divides the Hoeffding half-width by 4; the greedy lower
	// bound moves a little, so allow slack around the exact factor.
	if large > small/2 {
		t.Errorf("bound shrank too slowly: %v -> %v over 16x sets", small, large)
	}
}

func TestBuildToTargetConverges(t *testing.T) {
	b := mustBuilder(t, karateIWC(t), 4, 7)
	var rounds int
	lastSets := 0
	res, err := b.BuildToTarget(context.Background(), BuildTarget{
		Eps:     0.2,
		Delta:   0.01,
		K:       4,
		MaxSets: 1 << 20,
		Progress: func(p BuildProgress) error {
			rounds++
			if p.Sets < lastSets {
				t.Errorf("progress went backwards: %d -> %d", lastSets, p.Sets)
			}
			if p.Fraction < 0 || p.Fraction > 1 {
				t.Errorf("fraction %v outside [0, 1]", p.Fraction)
			}
			lastSets = p.Sets
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("build did not converge: %+v", res)
	}
	if res.Bound > 0.2 {
		t.Errorf("converged with bound %v > eps 0.2", res.Bound)
	}
	if res.Sets != b.NumSets() || res.Sets < DefaultMinSets {
		t.Errorf("result sets %d inconsistent (builder %d)", res.Sets, b.NumSets())
	}
	if res.Sets >= 1<<20 {
		t.Errorf("converged build used the whole cap: %d sets", res.Sets)
	}
	if rounds == 0 {
		t.Error("progress callback never ran")
	}
}

func TestBuildToTargetHonorsCap(t *testing.T) {
	b := mustBuilder(t, karateIWC(t), 2, 7)
	res, err := b.BuildToTarget(context.Background(), BuildTarget{
		Eps:     1e-9, // unreachable
		MaxSets: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("unreachable eps reported converged")
	}
	if res.Sets != 3000 || b.NumSets() != 3000 {
		t.Errorf("capped build has %d sets (builder %d), want 3000", res.Sets, b.NumSets())
	}
}

// TestBuildToTargetFixedSize covers the Eps <= 0 mode the async build service
// uses for classic fixed-count builds: straight to MaxSets, no bound checks.
func TestBuildToTargetFixedSize(t *testing.T) {
	b := mustBuilder(t, karateIWC(t), 2, 9)
	res, err := b.BuildToTarget(context.Background(), BuildTarget{MaxSets: 2500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sets != 2500 || res.Converged || !math.IsInf(res.Bound, 1) {
		t.Errorf("fixed-size result = %+v, want 2500 sets, not converged, +Inf bound", res)
	}
	want, err := NewOracleParallelSeeded(karateIWC(t), diffusion.IC, 2500, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(builderSets(t, b), oracleSets(want)) {
		t.Error("fixed-size target build differs from one-shot build")
	}
}

func TestBuildToTargetCancel(t *testing.T) {
	b := mustBuilder(t, karateIWC(t), 1, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.BuildToTarget(ctx, BuildTarget{MaxSets: 1 << 30}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled build returned %v, want context.Canceled", err)
	}

	// Cancellation mid-build: abort from the progress hook's cancel, then
	// verify the builder is still usable (resumable) afterwards.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	_, err := b.BuildToTarget(ctx, BuildTarget{
		MaxSets: 1 << 30,
		Progress: func(p BuildProgress) error {
			if p.Sets >= 2048 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build cancel returned %v, want context.Canceled", err)
	}
	if b.NumSets() < 2048 {
		t.Fatalf("builder lost progress on cancel: %d sets", b.NumSets())
	}
	if err := b.AppendBatch(10); err != nil {
		t.Errorf("builder unusable after cancel: %v", err)
	}
}

func TestBuildToTargetValidates(t *testing.T) {
	b := mustBuilder(t, karateIWC(t), 1, 1)
	if _, err := b.BuildToTarget(context.Background(), BuildTarget{}); err == nil {
		t.Error("MaxSets 0 accepted")
	}
	sentinel := errors.New("stop")
	_, err := b.BuildToTarget(context.Background(), BuildTarget{
		MaxSets:  1 << 20,
		Progress: func(BuildProgress) error { return sentinel },
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("progress error not propagated: %v", err)
	}
}
