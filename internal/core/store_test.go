package core

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"imdist/internal/diffusion"
	"imdist/internal/graph"
)

func TestMemStoreBasics(t *testing.T) {
	s := NewMemStore(nil)
	if s.NumSets() != 0 {
		t.Fatalf("empty store holds %d sets", s.NumSets())
	}
	if err := s.Append([][]graph.VertexID{{1, 2}, {3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([][]graph.VertexID{{4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	if s.NumSets() != 3 {
		t.Fatalf("store holds %d sets, want 3", s.NumSets())
	}
	if got := s.Set(2); !reflect.DeepEqual(got, []graph.VertexID{4, 5, 6}) {
		t.Errorf("Set(2) = %v", got)
	}

	var walked []int
	err := s.ForEach(1, 3, func(i int, set []graph.VertexID) error {
		walked = append(walked, i)
		if len(set) == 0 {
			t.Errorf("empty set at %d", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(walked, []int{1, 2}) {
		t.Errorf("ForEach visited %v, want [1 2]", walked)
	}
	if err := s.ForEach(0, 4, func(int, []graph.VertexID) error { return nil }); err == nil {
		t.Error("out-of-range ForEach accepted")
	}
	sentinel := errors.New("stop")
	if err := s.ForEach(0, 3, func(int, []graph.VertexID) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("ForEach error not propagated: %v", err)
	}

	st := s.Stats()
	// 3 sets: payload = 3 record headers + 6 vertices, 4 bytes each.
	if st.Sets != 3 || st.PayloadBytes != 3*4+6*4 || st.SpillBytes != 0 || st.MemBytes <= 0 {
		t.Errorf("stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestMemStoreConcurrentReadsWithAppend pins the RRStore contract the oracle
// snapshot relies on: reads of the existing prefix race with one appender
// without torn state (run under -race).
func TestMemStoreConcurrentReadsWithAppend(t *testing.T) {
	s := NewMemStore([][]graph.VertexID{{0}, {1}, {2}})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := s.Append([][]graph.VertexID{{graph.VertexID(i)}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = s.Set(i % 3)
			_ = s.NumSets()
			_ = s.Stats()
			_ = s.ForEach(0, 3, func(_ int, set []graph.VertexID) error {
				_ = set[0]
				return nil
			})
		}
	}()
	wg.Wait()
	if s.NumSets() != 203 {
		t.Errorf("store holds %d sets, want 203", s.NumSets())
	}
}

// TestBuilderFromStoreResumes verifies the trusted-store resume path: a
// builder reconstructed over an existing store continues the deterministic
// sequence exactly where a validated resume would.
func TestBuilderFromStoreResumes(t *testing.T) {
	ig := karateIWC(t)
	const seed = 19
	straight := mustBuilder(t, ig, 2, seed)
	if err := straight.AppendBatch(1200); err != nil {
		t.Fatal(err)
	}

	first := mustBuilder(t, ig, 1, seed)
	if err := first.AppendBatch(500); err != nil {
		t.Fatal(err)
	}
	resumed, err := NewSketchBuilderFromStore(ig, diffusion.IC, 4, seed, NewMemStore(builderSets(t, first)))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.NumSets() != 500 {
		t.Fatalf("resumed at %d sets, want 500", resumed.NumSets())
	}
	if err := resumed.AppendBatch(700); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(builderSets(t, resumed), builderSets(t, straight)) {
		t.Error("store-resumed build differs from uninterrupted build")
	}
}

// TestSetsRangeDoesNotAliasBuilder is the regression test for the old Sets()
// accessor handing out the builder's internal slice: mutating what SetsRange
// returns must leave the builder's own sets untouched.
func TestSetsRangeDoesNotAliasBuilder(t *testing.T) {
	b := mustBuilder(t, karateIWC(t), 1, 3)
	if err := b.AppendBatch(50); err != nil {
		t.Fatal(err)
	}
	before := b.SetAt(7)
	snapshot := append([]graph.VertexID(nil), before...)

	got, err := b.SetsRange(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	got[7] = []graph.VertexID{99, 99, 99} // clobber the caller's copy
	if !reflect.DeepEqual(b.SetAt(7), snapshot) {
		t.Error("mutating SetsRange result changed the builder's set")
	}
	if _, err := b.SetsRange(0, 51); err == nil {
		t.Error("out-of-range SetsRange accepted")
	}
}

// TestOracleSnapshotSurvivesAppends: an oracle finalized mid-build answers
// from its prefix while the builder appends past it through the shared store.
func TestOracleSnapshotSurvivesAppends(t *testing.T) {
	b := mustBuilder(t, karateIWC(t), 2, 5)
	if err := b.AppendBatch(800); err != nil {
		t.Fatal(err)
	}
	o1, err := b.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if o1.NumSets() != 800 {
		t.Fatalf("oracle snapshot has %d sets", o1.NumSets())
	}
	inf, err := o1.Influence([]graph.VertexID{0})
	if err != nil {
		t.Fatal(err)
	}
	payload := o1.PayloadBytes()

	if err := b.AppendBatch(800); err != nil {
		t.Fatal(err)
	}
	got, err := o1.Influence([]graph.VertexID{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != inf {
		t.Errorf("snapshot influence drifted after append: %v -> %v", inf, got)
	}
	if o1.PayloadBytes() != payload {
		t.Errorf("snapshot payload drifted: %d -> %d", payload, o1.PayloadBytes())
	}
	o2, err := b.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	if o2.NumSets() != 1600 || o2.PayloadBytes() <= payload {
		t.Errorf("refreshed oracle: sets=%d payload=%d (was %d)", o2.NumSets(), o2.PayloadBytes(), payload)
	}
}
