package core

import (
	"imdist/internal/estimator"
)

// TraversalRow is one (approach) cell of Table 8: the average vertex and edge
// traversal cost of running the greedy framework at k = 1 with sample number
// 1, averaged over trials.
type TraversalRow struct {
	Approach         estimator.Approach
	VerticesExamined float64
	EdgesExamined    float64
	SampleVertices   float64
	SampleEdges      float64
}

// TraversalCost measures the per-sample traversal cost of the given approach
// on cfg.Graph: it runs cfg.Trials greedy selections with k = 1 and sample
// number 1 (overriding whatever cfg carries) and averages the counters. This
// reproduces Table 8's protocol exactly.
func TraversalCost(cfg RunConfig, approach estimator.Approach) (TraversalRow, error) {
	cfg.Approach = approach
	cfg.SampleNumber = 1
	cfg.SeedSize = 1
	d, err := RunDistribution(cfg)
	if err != nil {
		return TraversalRow{}, err
	}
	mc := d.MeanCost()
	return TraversalRow{
		Approach:         approach,
		VerticesExamined: mc.VerticesExamined,
		EdgesExamined:    mc.EdgesExamined,
		SampleVertices:   mc.SampleVertices,
		SampleEdges:      mc.SampleEdges,
	}, nil
}

// IdenticalAccuracyRow is one cell of Table 9: the traversal cost per unit γ
// when the three approaches are conditioned to have identical accuracy by
// setting β = cr1·γ, τ = γ, θ = cr2·γ, where cr1 and cr2 are the comparable
// number ratios of Oneshot and RIS to Snapshot.
type IdenticalAccuracyRow struct {
	Approach estimator.Approach
	// CostPerGamma is the expected traversal cost divided by γ: the
	// comparable number ratio times the per-sample traversal cost.
	CostPerGamma float64
	// Ratio is the comparable number ratio used (1 for Snapshot).
	Ratio float64
}

// IdenticalAccuracyCosts combines per-sample traversal costs (Table 8) with
// comparable number ratios (Tables 6 and 7) into Table 9's per-γ costs.
// oneshotRatio is the Oneshot:Snapshot comparable number ratio; risRatio is
// the RIS:Snapshot ratio. A negative ratio marks the approach as unavailable
// (e.g. Oneshot skipped on the web-scale graphs) and omits its row.
func IdenticalAccuracyCosts(rows []TraversalRow, oneshotRatio, risRatio float64) []IdenticalAccuracyRow {
	ratioFor := func(a estimator.Approach) float64 {
		switch a {
		case estimator.Oneshot:
			return oneshotRatio
		case estimator.Snapshot:
			return 1
		case estimator.RIS:
			return risRatio
		default:
			return -1
		}
	}
	var out []IdenticalAccuracyRow
	for _, r := range rows {
		ratio := ratioFor(r.Approach)
		if ratio < 0 {
			continue
		}
		perSample := r.VerticesExamined + r.EdgesExamined
		out = append(out, IdenticalAccuracyRow{
			Approach:     r.Approach,
			CostPerGamma: ratio * perSample,
			Ratio:        ratio,
		})
	}
	return out
}
