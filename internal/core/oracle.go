// Package core implements the paper's experimental methodology — its primary
// contribution. It runs an algorithmic approach (Oneshot, Snapshot or RIS)
// many times for a sweep of sample numbers, records the resulting seed sets
// and their influence spreads, and derives the quantities the paper reports:
// the Shannon entropy of the seed-set distribution (Section 5.1), the
// influence distribution and the least sample number needed for near-optimal
// solutions (Section 5.2), the comparable number and size ratios between
// approaches (Section 5.2.3), and the per-sample and identical-accuracy
// traversal costs (Sections 5.3 and 6).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/parallel"
	"imdist/internal/rng"
	"imdist/internal/stats"
)

// Oracle is the shared influence-spread estimator of Section 5.2: a single
// collection of RR sets generated once per influence graph and reused across
// every run of every algorithm, so that identical seed sets always receive
// identical influence estimates. With R RR sets the 99% confidence interval
// of an estimate is n·F(S) ± 1.29·n/√R.
//
// The query methods (Influence, GreedySeeds, TopSingleVertices) are safe for
// concurrent use: all per-call scratch state lives in pooled buffers, never
// on the oracle itself.
type Oracle struct {
	n       int
	numSets int
	// model and seed record how the RR sets were generated; they travel with
	// the oracle when it is serialized (internal/sketchio).
	model diffusion.Model
	seed  uint64
	// memberOf[v] lists the RR set indices containing vertex v.
	memberOf [][]int32
	// store holds the RR sets themselves (used for greedy coverage and
	// serialization). The oracle snapshots numSets at construction; the store
	// may keep growing underneath (SketchBuilder appends), but indices below
	// numSets are immutable, so the snapshot stays coherent. payloadBytes is
	// the snapshot's exact encoded record size.
	store        RRStore
	payloadBytes int64
	// shard records this oracle's place in a partitioned fleet (zero value
	// for whole sketches); it travels with the oracle when serialized.
	shard ShardLineage

	// influencePool holds *influenceScratch, greedyPool holds *greedyScratch.
	influencePool sync.Pool
	greedyPool    sync.Pool

	// kernels holds the coverage-kernel selection (epoch vs bitpack) and the
	// lazily built packed index; see kernel.go.
	kernels kernelState
}

// ErrEmptyGraph reports an oracle request on an empty graph.
var ErrEmptyGraph = errors.New("core: empty influence graph")

// ErrShardLineage reports an invalid shard lineage (internally inconsistent,
// or inconsistent with the oracle it is attached to).
var ErrShardLineage = errors.New("core: invalid shard lineage")

// ShardLineage identifies an oracle's place in a partitioned sketch fleet:
// this oracle holds shard Index of Count contiguous RR-set partitions of an
// original sketch carrying TotalSets RR sets in all. A coordinator
// (internal/cluster) uses the lineage to reject mis-assembled fleets —
// shards from different splits, duplicated indexes, or a missing partition —
// and to merge per-shard integer coverage counts into answers that are
// byte-identical to the unsplit sketch's: influence is n·(Σ per-shard
// hits)/TotalSets, so every shard must agree on TotalSets.
//
// The zero value (Count == 0) means "not a shard": a whole, unsplit sketch.
type ShardLineage struct {
	Index     int
	Count     int
	TotalSets int
}

// Sharded reports whether the lineage describes a partition (rather than a
// whole sketch).
func (l ShardLineage) Sharded() bool { return l.Count > 0 }

// validate checks the lineage's internal consistency against the number of
// RR sets the shard actually holds.
func (l ShardLineage) validate(numSets int) error {
	if !l.Sharded() {
		if l.Index != 0 || l.TotalSets != 0 {
			return fmt.Errorf("%w: zero Count with nonzero Index/TotalSets", ErrShardLineage)
		}
		return nil
	}
	if l.Index < 0 || l.Index >= l.Count {
		return fmt.Errorf("%w: shard index %d outside [0, %d)", ErrShardLineage, l.Index, l.Count)
	}
	if l.TotalSets < numSets {
		return fmt.Errorf("%w: total sets %d below this shard's %d", ErrShardLineage, l.TotalSets, numSets)
	}
	if l.Count > l.TotalSets {
		return fmt.Errorf("%w: %d shards cannot partition %d RR sets", ErrShardLineage, l.Count, l.TotalSets)
	}
	return nil
}

// ErrSeedOutOfRange reports a caller-supplied seed vertex outside [0, n).
var ErrSeedOutOfRange = errors.New("core: seed vertex out of range")

// NewOracle builds an oracle from numSets RR sets of ig under the Independent
// Cascade model using src for randomness. The paper uses 10^7 RR sets; the
// experiment presets scale this down (see internal/experiment).
func NewOracle(ig *graph.InfluenceGraph, numSets int, src rng.Source) (*Oracle, error) {
	return NewOracleForModel(ig, diffusion.IC, numSets, src)
}

// NewOracleForModel builds an oracle under the given diffusion model (IC as
// in the paper, or LT as an extension), generating the RR sets serially.
func NewOracleForModel(ig *graph.InfluenceGraph, model diffusion.Model, numSets int, src rng.Source) (*Oracle, error) {
	return NewOracleParallel(ig, model, numSets, 1, src)
}

// rrSampler abstracts RR-set generation over diffusion models.
type rrSampler interface {
	Sample(targetSrc, edgeSrc rng.Source, cost *diffusion.Cost) []graph.VertexID
}

func newRRSampler(ig *graph.InfluenceGraph, model diffusion.Model) rrSampler {
	if model == diffusion.LT {
		return diffusion.NewLTRRSampler(ig)
	}
	return diffusion.NewRRSampler(ig)
}

// NewOracleParallel builds an oracle under the given diffusion model,
// generating its RR sets on a pool of workers goroutines (0 and 1 generate
// on the calling goroutine; negative values use all CPUs). Every RR set
// draws from its own rng stream derived from a base seed taken once from
// src — for serial and parallel builds alike — so the oracle is
// byte-identical across runs and across every worker count, including the
// serial ones.
func NewOracleParallel(ig *graph.InfluenceGraph, model diffusion.Model, numSets, workers int, src rng.Source) (*Oracle, error) {
	if ig == nil || ig.NumVertices() == 0 {
		return nil, ErrEmptyGraph
	}
	if numSets < 1 {
		return nil, fmt.Errorf("core: oracle needs at least one RR set, got %d", numSets)
	}
	if model == diffusion.LT {
		if err := diffusion.ValidateLTWeights(ig); err != nil {
			return nil, err
		}
	}
	rrSets := make([][]graph.VertexID, numSets)
	// Per-sample derived streams (target and edge coins share one), as in
	// the RIS Build: the oracle is independent of the worker count — serial
	// included — and of scheduling.
	split := rng.SplitterFrom(rng.Xoshiro, src)
	w := parallel.Resolve(workers, numSets)
	samplers := make([]rrSampler, w)
	for i := range samplers {
		samplers[i] = newRRSampler(ig, model)
	}
	parallel.For(w, numSets, func(worker, i int) {
		s := split.Stream(uint64(i))
		rrSets[i] = samplers[worker].Sample(s, s, nil)
	})
	return NewOracleFromStore(ig.NumVertices(), model, 0, NewMemStore(rrSets))
}

// NewOracleParallelSeeded is NewOracleParallel driven by an explicit master
// seed (the randomness is rng.NewXoshiro(seed)); the seed is recorded on the
// oracle so serialized sketches carry their provenance.
func NewOracleParallelSeeded(ig *graph.InfluenceGraph, model diffusion.Model, numSets, workers int, seed uint64) (*Oracle, error) {
	o, err := NewOracleParallel(ig, model, numSets, workers, rng.NewXoshiro(seed))
	if err != nil {
		return nil, err
	}
	o.seed = seed
	return o, nil
}

// NewOracleFromRRSets reassembles an oracle from previously generated RR sets
// (the deserialization path of internal/sketchio). It validates every vertex
// id against [0, n) so that a corrupted or hostile sketch cannot induce
// out-of-bounds indexing, and takes ownership of rrSets.
func NewOracleFromRRSets(n int, model diffusion.Model, seed uint64, rrSets [][]graph.VertexID) (*Oracle, error) {
	return NewOracleFromStore(n, model, seed, NewMemStore(rrSets))
}

// NewOracleFromStore finalizes the RR sets held by store into a queryable
// oracle: the member index is built by streaming over the store in one pass,
// so a disk-backed store never has to materialize every set on the heap at
// once. The oracle snapshots the store's current size; appending to the store
// afterwards (a SketchBuilder growing past an ErrorBound check) does not
// disturb it. Every vertex id is validated against [0, n) during the
// streaming pass — stores may be rehydrated from untrusted files — and the
// oracle reads through the store for as long as it lives, so the store must
// not be closed before the oracle is done.
func NewOracleFromStore(n int, model diffusion.Model, seed uint64, store RRStore) (*Oracle, error) {
	if n < 1 {
		return nil, ErrEmptyGraph
	}
	numSets := store.NumSets()
	if numSets < 1 {
		return nil, fmt.Errorf("core: oracle needs at least one RR set, got %d", numSets)
	}
	o := &Oracle{
		n:       n,
		numSets: numSets,
		model:   model,
		seed:    seed,
		store:   store,
	}
	if err := o.buildMemberIndex(); err != nil {
		return nil, err
	}
	o.decideAutoKernel()
	return o, nil
}

// buildMemberIndex derives memberOf by streaming the store twice: a counting
// pass (which also validates every vertex id) sizes the lists exactly, then a
// fill pass populates them. Membership lists are built in RR-set order, so two
// oracles over identical RR sets answer every query identically regardless of
// how — or from which store — they were constructed.
func (o *Oracle) buildMemberIndex() error {
	counts := make([]int32, o.n)
	err := o.store.ForEach(0, o.numSets, func(i int, set []graph.VertexID) error {
		for _, v := range set {
			if v < 0 || int(v) >= o.n {
				return fmt.Errorf("core: RR set %d contains vertex %d outside [0, %d)", i, v, o.n)
			}
			counts[v]++
		}
		o.payloadBytes += 4 + 4*int64(len(set))
		return nil
	})
	if err != nil {
		return err
	}
	o.memberOf = make([][]int32, o.n)
	for v := range o.memberOf {
		if counts[v] > 0 {
			o.memberOf[v] = make([]int32, 0, counts[v])
		}
	}
	return o.store.ForEach(0, o.numSets, func(i int, set []graph.VertexID) error {
		for _, v := range set {
			o.memberOf[v] = append(o.memberOf[v], int32(i))
		}
		return nil
	})
}

// NumSets returns the number of RR sets backing the oracle.
func (o *Oracle) NumSets() int { return o.numSets }

// NumVertices returns the number of vertices of the underlying graph.
func (o *Oracle) NumVertices() int { return o.n }

// Model returns the diffusion model the RR sets were generated under.
func (o *Oracle) Model() diffusion.Model { return o.model }

// BuildSeed returns the master seed the oracle was built from, when known
// (NewOracleParallelSeeded or a loaded sketch); otherwise 0.
func (o *Oracle) BuildSeed() uint64 { return o.seed }

// RRSet returns the vertices of RR set i. The returned slice is owned by the
// oracle's store and must not be modified; a spill-backed oracle may decode
// it on demand, so prefer ascending-index access for sequential scans.
func (o *Oracle) RRSet(i int) []graph.VertexID { return o.store.Set(i) }

// PayloadBytes returns the exact encoded size in bytes of the oracle's RR
// sets in the shared record format (4-byte count plus 4 bytes per vertex,
// per set) — what serialization needs to size a sketch header without an
// extra pass over a disk-backed store. It covers exactly the oracle's
// snapshot, even when the shared store has grown past it since.
func (o *Oracle) PayloadBytes() int64 { return o.payloadBytes }

// Store returns the RR-set store backing the oracle (read-only use).
func (o *Oracle) Store() RRStore { return o.store }

// ShardLineage returns the oracle's place in a partitioned fleet; the zero
// value (Count 0) means the oracle is a whole, unsplit sketch.
func (o *Oracle) ShardLineage() ShardLineage { return o.shard }

// SetShardLineage records the oracle's shard lineage (sketchio sets it when
// loading a shard file written by SplitSketch). The lineage must be
// internally consistent and cover at least this oracle's RR sets; the zero
// value clears it.
func (o *Oracle) SetShardLineage(l ShardLineage) error {
	if err := l.validate(o.numSets); err != nil {
		return err
	}
	o.shard = l
	return nil
}

// ValidateSeeds reports whether every seed lies in [0, n).
func (o *Oracle) ValidateSeeds(seeds []graph.VertexID) error {
	for _, s := range seeds {
		if s < 0 || int(s) >= o.n {
			return fmt.Errorf("%w: vertex %d not in [0, %d)", ErrSeedOutOfRange, s, o.n)
		}
	}
	return nil
}

// influenceScratch is the pooled per-call state of Influence: an epoch-
// stamped membership array that distinct-counts covered RR sets without a
// per-call allocation.
type influenceScratch struct {
	marks []int32
	epoch int32
}

func (o *Oracle) getInfluenceScratch() *influenceScratch {
	s, _ := o.influencePool.Get().(*influenceScratch)
	if s == nil || len(s.marks) != o.numSets {
		s = &influenceScratch{marks: make([]int32, o.numSets)}
	}
	s.epoch++
	if s.epoch <= 0 { // epoch wrapped: reset the stamps
		clear(s.marks)
		s.epoch = 1
	}
	return s
}

// Influence returns the oracle estimate n·F(S) of the influence spread of the
// seed set S: the fraction of RR sets intersecting S times n. Seeds are
// validated against [0, n); an out-of-range seed returns ErrSeedOutOfRange
// (the oracle serves untrusted callers via internal/server).
func (o *Oracle) Influence(seeds []graph.VertexID) (float64, error) {
	if err := o.ValidateSeeds(seeds); err != nil {
		return 0, err
	}
	return o.influenceOf(seeds), nil
}

// influenceOf is Influence for pre-validated seed sets (internal callers
// whose seeds the oracle itself produced).
func (o *Oracle) influenceOf(seeds []graph.VertexID) float64 {
	return float64(o.n) * float64(o.coverageOf(seeds)) / float64(o.numSets)
}

// Coverage returns the raw coverage count of the seed set: the exact number
// of the oracle's RR sets that intersect S. This is the per-shard primitive
// of the distributed serving tier — coverage counts are integers, so summing
// them across the shards of a partitioned sketch reproduces the unsplit
// sketch's count exactly, and n·count/TotalSets reproduces its Influence
// byte-identically.
func (o *Oracle) Coverage(seeds []graph.VertexID) (int64, error) {
	if err := o.ValidateSeeds(seeds); err != nil {
		return 0, err
	}
	return o.coverageOf(seeds), nil
}

// coverageOf counts the RR sets intersecting a pre-validated seed set.
func (o *Oracle) coverageOf(seeds []graph.VertexID) int64 {
	if len(seeds) == 0 || o.numSets == 0 {
		return 0
	}
	if len(seeds) == 1 {
		// Fast path used heavily by Table 4 and the per-vertex rankings; both
		// kernels count a single vertex's coverage as its membership length.
		return int64(len(o.memberOf[seeds[0]]))
	}
	if o.useBitpack() {
		return o.bitpackCoverage(seeds)
	}
	s := o.getInfluenceScratch()
	var hit int64
	for _, v := range seeds {
		for _, idx := range o.memberOf[v] {
			if s.marks[idx] != s.epoch {
				s.marks[idx] = s.epoch
				hit++
			}
		}
	}
	o.influencePool.Put(s)
	return hit
}

// ConfidenceHalfWidth returns the half-width of the normal-approximation
// confidence interval of an oracle estimate at the given z value (2.576 for
// 99%), using the conservative p = 1/2 variance bound the paper quotes
// (±1.29·n/√R at 99%).
func (o *Oracle) ConfidenceHalfWidth(z float64) float64 {
	return float64(o.n) * stats.BinomialCI(0.5, o.numSets, z)
}

// greedyScratch is the pooled per-call state of GreedySeeds.
type greedyScratch struct {
	covered    []bool
	coverCount []int32
	chosen     []bool
}

func (o *Oracle) getGreedyScratch() *greedyScratch {
	s, _ := o.greedyPool.Get().(*greedyScratch)
	if s == nil || len(s.covered) != o.numSets || len(s.chosen) != o.n {
		return &greedyScratch{
			covered:    make([]bool, o.numSets),
			coverCount: make([]int32, o.n),
			chosen:     make([]bool, o.n),
		}
	}
	clear(s.covered)
	clear(s.chosen)
	return s
}

// GreedySeeds runs greedy maximum coverage directly on the oracle's RR sets
// and returns the resulting seed set. The paper uses the seed set obtained at
// entropy 0 as "Exact Greedy"; when an instance has not converged within the
// swept sample numbers this oracle-greedy solution is the natural reference,
// since it is exactly what every approach converges to as its sample number
// grows (they all become coverage maximization over an ever-better RR-set or
// snapshot pool).
func (o *Oracle) GreedySeeds(k int) []graph.VertexID {
	if k < 1 {
		return nil
	}
	if k > o.n {
		k = o.n
	}
	if o.useBitpack() {
		return o.greedySeedsBitpack(k)
	}
	s := o.getGreedyScratch()
	covered, coverCount, chosen := s.covered, s.coverCount, s.chosen
	for v := 0; v < o.n; v++ {
		coverCount[v] = int32(len(o.memberOf[v]))
	}
	seeds := make([]graph.VertexID, 0, k)
	for len(seeds) < k {
		best := -1
		for v := 0; v < o.n; v++ {
			if chosen[v] {
				continue
			}
			if best < 0 || coverCount[v] > coverCount[best] {
				best = v
			}
		}
		bv := graph.VertexID(best)
		chosen[best] = true
		seeds = append(seeds, bv)
		for _, idx := range o.memberOf[bv] {
			if covered[idx] {
				continue
			}
			covered[idx] = true
			for _, u := range o.store.Set(int(idx)) {
				coverCount[u]--
			}
		}
	}
	o.greedyPool.Put(s)
	return seeds
}

// TopSingleVertices returns the topK vertices ranked by single-vertex oracle
// influence in non-increasing order, together with their influences. This is
// the quantity Table 4 reports. topK <= 0 returns all vertices.
func (o *Oracle) TopSingleVertices(topK int) ([]graph.VertexID, []float64) {
	type pair struct {
		v   graph.VertexID
		inf float64
	}
	pairs := make([]pair, o.n)
	for v := 0; v < o.n; v++ {
		pairs[v] = pair{graph.VertexID(v), o.influenceOf([]graph.VertexID{graph.VertexID(v)})}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].inf != pairs[j].inf {
			return pairs[i].inf > pairs[j].inf
		}
		return pairs[i].v < pairs[j].v
	})
	if topK <= 0 || topK > o.n {
		topK = o.n
	}
	vs := make([]graph.VertexID, topK)
	infs := make([]float64, topK)
	for i := 0; i < topK; i++ {
		vs[i] = pairs[i].v
		infs[i] = pairs[i].inf
	}
	return vs, infs
}
