package core

import (
	"math/bits"
	"sync"

	"imdist/internal/graph"
)

// marginalScratch is the pooled per-call state of MarginalCoverage: a covered
// flag per RR set for the epoch kernel, or a covered-word accumulator per
// block for the bitpack kernel.
type marginalScratch struct {
	covered []bool
	words   []uint64
}

var marginalPool sync.Pool // *marginalScratch, shared across oracles by size check

// MarginalCoverage returns, for every candidate vertex c, the exact number of
// the oracle's RR sets that contain c and are not covered by seeds — the
// integer marginal coverage gain of adding c to the seed set. A nil
// candidates slice means every vertex in [0, n), in ascending order; with
// empty seeds the result is each candidate's raw membership count.
//
// This is the greedy primitive of the distributed serving tier: per-shard
// marginal counts are integers, so a coordinator can sum them across a
// partitioned fleet and run the exact same argmax (max gain, ties to the
// smallest vertex id) as GreedySeeds on the unsplit sketch, round by round,
// selecting a byte-identical seed sequence.
func (o *Oracle) MarginalCoverage(seeds, candidates []graph.VertexID) ([]int64, error) {
	if err := o.ValidateSeeds(seeds); err != nil {
		return nil, err
	}
	if candidates != nil {
		if err := o.ValidateSeeds(candidates); err != nil {
			return nil, err
		}
	}
	numCands := len(candidates)
	if candidates == nil {
		numCands = o.n
	}
	gains := make([]int64, numCands)
	candidate := func(i int) int {
		if candidates == nil {
			return i
		}
		return int(candidates[i])
	}
	if o.useBitpack() {
		o.marginalBitpack(seeds, gains, candidate)
		return gains, nil
	}
	s, _ := marginalPool.Get().(*marginalScratch)
	if s == nil || len(s.covered) != o.numSets {
		s = &marginalScratch{covered: make([]bool, o.numSets)}
	} else {
		clear(s.covered)
	}
	for _, v := range seeds {
		for _, idx := range o.memberOf[v] {
			s.covered[idx] = true
		}
	}
	for i := range gains {
		var gain int64
		for _, idx := range o.memberOf[candidate(i)] {
			if !s.covered[idx] {
				gain++
			}
		}
		gains[i] = gain
	}
	marginalPool.Put(s)
	return gains, nil
}

// marginalBitpack computes marginal gains on the packed index: the seeds'
// rows are ORed into a covered-word accumulator per block, and each
// candidate's gain is popcount(row AND NOT covered) — the same integers the
// epoch path counts set by set.
func (o *Oracle) marginalBitpack(seeds []graph.VertexID, gains []int64, candidate func(int) int) {
	m := o.packedMatrix()
	// The covered accumulator holds one word range per block, blockWords[b]
	// wide (the same layout greedySeedsBitpack uses).
	coveredStart := make([]int, m.numBlocks()+1)
	for b := 0; b < m.numBlocks(); b++ {
		coveredStart[b+1] = coveredStart[b] + m.blockWords[b]
	}
	total := coveredStart[m.numBlocks()]
	s, _ := marginalPool.Get().(*marginalScratch)
	if s == nil || len(s.words) != total {
		s = &marginalScratch{words: make([]uint64, total)}
	} else {
		clear(s.words)
	}
	for b := 0; b < m.numBlocks(); b++ {
		cov := s.words[coveredStart[b]:coveredStart[b+1]]
		for _, v := range seeds {
			row := m.row(int(v), b)
			for i, word := range row {
				cov[i] |= word
			}
		}
	}
	for i := range gains {
		v := candidate(i)
		var gain int64
		for b := 0; b < m.numBlocks(); b++ {
			row := m.row(v, b)
			cov := s.words[coveredStart[b]:coveredStart[b+1]]
			for j, word := range row {
				gain += int64(bits.OnesCount64(word &^ cov[j]))
			}
		}
		gains[i] = gain
	}
	marginalPool.Put(s)
}
