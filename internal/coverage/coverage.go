// Package coverage implements greedy maximum coverage over collections of
// sets. The RIS approach reduces influence maximization to stochastic maximum
// coverage over reverse-reachable sets (Section 3.5); this package provides
// that reduction's solver in a reusable form, with both the plain greedy and
// a lazy (CELF-style) variant.
package coverage

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrInvalidInput reports inconsistent problem parameters.
var ErrInvalidInput = errors.New("coverage: invalid input")

// Problem is a maximum coverage instance: a universe of Elements identified
// by 0..NumElements-1, and NumSets candidate sets identified by 0..NumSets-1.
// Membership is given from the element side: MemberOf[e] lists the sets that
// contain element e, without duplicates. This orientation matches the RIS
// data layout, where an element is an RR set and a "set" is a vertex covering
// all RR sets it belongs to.
type Problem struct {
	NumElements int
	NumSets     int
	MemberOf    [][]int32
}

// Validate checks structural consistency. It runs in time linear in the
// total membership size: duplicate detection uses one reusable stamp array
// over set ids (stamped with the element index) instead of rescanning each
// element's earlier entries, which was quadratic in the membership list
// length — ruinous on RIS instances whose elements are large RR sets.
func (p *Problem) Validate() error {
	if p.NumElements < 0 || p.NumSets < 0 {
		return fmt.Errorf("%w: negative sizes", ErrInvalidInput)
	}
	if len(p.MemberOf) != p.NumElements {
		return fmt.Errorf("%w: MemberOf has %d rows, want %d", ErrInvalidInput, len(p.MemberOf), p.NumElements)
	}
	// seen[s] == e+1 records that set s was already listed by element e.
	seen := make([]int, p.NumSets)
	for e, sets := range p.MemberOf {
		stamp := e + 1
		for _, s := range sets {
			if s < 0 || int(s) >= p.NumSets {
				return fmt.Errorf("%w: element %d references set %d of %d", ErrInvalidInput, e, s, p.NumSets)
			}
			if seen[s] == stamp {
				return fmt.Errorf("%w: element %d lists set %d twice", ErrInvalidInput, e, s)
			}
			seen[s] = stamp
		}
	}
	return nil
}

// Result is the outcome of a greedy coverage run.
type Result struct {
	// Chosen lists the selected set ids in selection order.
	Chosen []int32
	// Covered is the number of elements covered by the chosen sets.
	Covered int
	// Gains[i] is the marginal number of elements newly covered by Chosen[i].
	Gains []int
}

// Greedy selects k sets by repeatedly taking the set with the largest
// marginal coverage (the classic (1−1/e)-approximation). Ties are broken
// toward the smaller set id for determinism.
func Greedy(p *Problem, k int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k < 0 || k > p.NumSets {
		return nil, fmt.Errorf("%w: k=%d with %d sets", ErrInvalidInput, k, p.NumSets)
	}
	// setElements is the inverse view: the elements of each set.
	setElements := invert(p)
	covered := make([]bool, p.NumElements)
	gain := make([]int, p.NumSets)
	for s := range gain {
		gain[s] = len(setElements[s])
	}
	chosen := make([]int32, 0, k)
	gains := make([]int, 0, k)
	totalCovered := 0
	used := make([]bool, p.NumSets)
	for len(chosen) < k {
		best, bestGain := -1, -1
		for s := 0; s < p.NumSets; s++ {
			if used[s] {
				continue
			}
			if gain[s] > bestGain {
				best, bestGain = s, gain[s]
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		newlyCovered := 0
		for _, e := range setElements[best] {
			if covered[e] {
				continue
			}
			covered[e] = true
			newlyCovered++
			// Every other set containing e loses one unit of marginal gain.
			for _, s := range p.MemberOf[e] {
				gain[s]--
			}
		}
		chosen = append(chosen, int32(best))
		gains = append(gains, newlyCovered)
		totalCovered += newlyCovered
	}
	return &Result{Chosen: chosen, Covered: totalCovered, Gains: gains}, nil
}

// GreedyLazy is the lazy-evaluation variant of Greedy: marginal gains are
// kept in a max-heap and re-evaluated only when stale, which is equivalent in
// output (up to ties) because coverage gain is submodular.
func GreedyLazy(p *Problem, k int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k < 0 || k > p.NumSets {
		return nil, fmt.Errorf("%w: k=%d with %d sets", ErrInvalidInput, k, p.NumSets)
	}
	setElements := invert(p)
	covered := make([]bool, p.NumElements)

	pq := make(coverHeap, 0, p.NumSets)
	for s := 0; s < p.NumSets; s++ {
		pq = append(pq, coverEntry{set: int32(s), gain: len(setElements[s]), round: 0})
	}
	heap.Init(&pq)

	chosen := make([]int32, 0, k)
	gains := make([]int, 0, k)
	totalCovered := 0
	for len(chosen) < k && pq.Len() > 0 {
		top := heap.Pop(&pq).(coverEntry)
		if top.round != len(chosen) {
			// Stale: recompute the true marginal gain and reinsert.
			g := 0
			for _, e := range setElements[top.set] {
				if !covered[e] {
					g++
				}
			}
			heap.Push(&pq, coverEntry{set: top.set, gain: g, round: len(chosen)})
			continue
		}
		for _, e := range setElements[top.set] {
			if !covered[e] {
				covered[e] = true
				totalCovered++
			}
		}
		chosen = append(chosen, top.set)
		gains = append(gains, top.gain)
	}
	return &Result{Chosen: chosen, Covered: totalCovered, Gains: gains}, nil
}

// invert converts element->sets membership into set->elements lists.
func invert(p *Problem) [][]int32 {
	setElements := make([][]int32, p.NumSets)
	for e, sets := range p.MemberOf {
		for _, s := range sets {
			setElements[s] = append(setElements[s], int32(e))
		}
	}
	return setElements
}

// coverEntry is one candidate set in the lazy greedy priority queue.
type coverEntry struct {
	set   int32
	gain  int
	round int
}

// coverHeap is a max-heap on gain with smaller set id breaking ties.
type coverHeap []coverEntry

func (h coverHeap) Len() int { return len(h) }

func (h coverHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].set < h[j].set
}

func (h coverHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *coverHeap) Push(x any) { *h = append(*h, x.(coverEntry)) }

func (h *coverHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
