package coverage

import (
	"errors"
	"testing"
	"testing/quick"
)

// problemFromSets builds a Problem from set->elements lists.
func problemFromSets(numElements int, sets [][]int32) *Problem {
	p := &Problem{NumElements: numElements, NumSets: len(sets), MemberOf: make([][]int32, numElements)}
	for s, elems := range sets {
		for _, e := range elems {
			p.MemberOf[e] = append(p.MemberOf[e], int32(s))
		}
	}
	return p
}

func TestGreedySimple(t *testing.T) {
	// Sets: A={0,1,2}, B={2,3}, C={4}. Optimal 2 sets: A and B or A and C
	// (both cover 4-5 elements); greedy picks A (gain 3) then B (gain 1) or C
	// (gain 1) — B and C tie at 1; smaller id (B=1) wins.
	p := problemFromSets(5, [][]int32{{0, 1, 2}, {2, 3}, {4}})
	res, err := Greedy(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen[0] != 0 {
		t.Errorf("first chosen = %d, want 0", res.Chosen[0])
	}
	if res.Covered != 4 {
		t.Errorf("covered = %d, want 4", res.Covered)
	}
	if res.Gains[0] != 3 || res.Gains[1] != 1 {
		t.Errorf("gains = %v, want [3 1]", res.Gains)
	}
}

func TestGreedyCoversEverythingWhenKLargeEnough(t *testing.T) {
	p := problemFromSets(6, [][]int32{{0, 1}, {2, 3}, {4, 5}})
	res, err := Greedy(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != 6 {
		t.Errorf("covered = %d, want 6", res.Covered)
	}
}

func TestGreedyValidation(t *testing.T) {
	p := problemFromSets(3, [][]int32{{0, 1}})
	if _, err := Greedy(p, 5); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("k > NumSets err = %v", err)
	}
	bad := &Problem{NumElements: 2, NumSets: 1, MemberOf: [][]int32{{0}, {7}}}
	if _, err := Greedy(bad, 1); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("invalid membership err = %v", err)
	}
	short := &Problem{NumElements: 3, NumSets: 1, MemberOf: [][]int32{{0}}}
	if err := short.Validate(); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("short MemberOf err = %v", err)
	}
	neg := &Problem{NumElements: -1}
	if err := neg.Validate(); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative size err = %v", err)
	}
}

func TestValidateDuplicates(t *testing.T) {
	// A duplicate inside one element's list is invalid...
	dup := &Problem{NumElements: 2, NumSets: 3, MemberOf: [][]int32{{0, 2, 0}, {1}}}
	if err := dup.Validate(); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("duplicate membership err = %v", err)
	}
	// ...but the same set appearing under different elements is fine, even
	// when the set id matches the stamp pattern of the reusable seen array.
	ok := &Problem{NumElements: 3, NumSets: 3, MemberOf: [][]int32{{0, 1}, {0, 1}, {0, 1, 2}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("cross-element repeats rejected: %v", err)
	}
}

// BenchmarkValidateLargeElements exercises Validate on RIS-shaped input: few
// elements, each listing many sets. The pre-fix quadratic inner loop made
// this shape O(L²) per element.
func BenchmarkValidateLargeElements(b *testing.B) {
	const numSets = 4096
	row := make([]int32, numSets)
	for i := range row {
		row[i] = int32(i)
	}
	p := &Problem{NumElements: 16, NumSets: numSets, MemberOf: make([][]int32, 16)}
	for e := range p.MemberOf {
		p.MemberOf[e] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGreedyZeroK(t *testing.T) {
	p := problemFromSets(3, [][]int32{{0, 1, 2}})
	res, err := Greedy(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chosen) != 0 || res.Covered != 0 {
		t.Errorf("k=0 result = %+v", res)
	}
}

func TestLazyMatchesEagerCoverage(t *testing.T) {
	f := func(raw []uint16, numSetsRaw, numElemsRaw, kRaw uint8) bool {
		numSets := int(numSetsRaw%10) + 1
		numElems := int(numElemsRaw%30) + 1
		k := int(kRaw)%numSets + 1
		p := &Problem{NumElements: numElems, NumSets: numSets, MemberOf: make([][]int32, numElems)}
		for _, r := range raw {
			e := int(r>>8) % numElems
			s := int32(int(r&0xff) % numSets)
			dup := false
			for _, existing := range p.MemberOf[e] {
				if existing == s {
					dup = true
					break
				}
			}
			if !dup {
				p.MemberOf[e] = append(p.MemberOf[e], s)
			}
		}
		eager, err := Greedy(p, k)
		if err != nil {
			return false
		}
		lazy, err := GreedyLazy(p, k)
		if err != nil {
			return false
		}
		// The greedy value (not necessarily the chosen sets) must match: both
		// implement the same submodular greedy up to tie-breaking.
		return eager.Covered == lazy.Covered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGreedyGainsAreNonIncreasing(t *testing.T) {
	f := func(raw []uint16) bool {
		numSets, numElems := 8, 40
		p := &Problem{NumElements: numElems, NumSets: numSets, MemberOf: make([][]int32, numElems)}
		for _, r := range raw {
			e := int(r>>8) % numElems
			s := int32(int(r&0xff) % numSets)
			dup := false
			for _, existing := range p.MemberOf[e] {
				if existing == s {
					dup = true
					break
				}
			}
			if !dup {
				p.MemberOf[e] = append(p.MemberOf[e], s)
			}
		}
		res, err := Greedy(p, numSets)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Gains); i++ {
			if res.Gains[i] > res.Gains[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGreedyLazyValidation(t *testing.T) {
	p := problemFromSets(3, [][]int32{{0}})
	if _, err := GreedyLazy(p, 9); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("lazy k > NumSets err = %v", err)
	}
}

func TestGreedyAchievesApproximationOnKnownInstance(t *testing.T) {
	// Classic worst-case-ish instance: optimal 2 sets cover 8 elements;
	// greedy must cover at least (1-1/e) of the optimum (~5.06).
	p := problemFromSets(8, [][]int32{
		{0, 1, 2, 3},    // A
		{4, 5, 6, 7},    // B (A+B is optimal: 8)
		{0, 1, 4, 5, 6}, // C (greedy bait: gain 5)
	})
	res, err := Greedy(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.Covered) < (1-1/2.718281828)*8 {
		t.Errorf("greedy covered %d, below the (1-1/e) bound", res.Covered)
	}
}
