// Package cluster implements the scatter-gather coordinator of the
// distributed serving tier: one process that fronts a fleet of imserve shard
// servers, each holding one slice of a sketch split by imsketch -split, and
// serves the unchanged public /v1 query API with answers byte-identical to a
// single process serving the unsplit sketch.
//
// The identity argument is the batch engine's merge algebra taken over the
// network: every shard primitive (/v1/shard/coverage, /v1/shard/marginal)
// returns exact integer RR-set counts, integers sum exactly in any order, and
// the coordinator performs the one float division by the fleet-wide RR-set
// total itself — the same expression, on the same integers, as the unsplit
// oracle. Greedy seed selection runs a CELF-style lazy-evaluation loop over
// summed per-shard marginal counts, with the exact (max gain, then smallest
// vertex id) argmax of core.Oracle.GreedySeeds; top-k ranks the summed
// per-vertex counts with the exact sort of TopSingleVertices. The gather work
// is proportional to the answer (counts and candidate gains), never to
// shards × RR sets.
//
// The coordinator holds no state besides its target list: every response
// carries the shard's identity (build identity + lineage), and the
// coordinator re-verifies fleet assembly on every gather — duplicated or
// missing shard indexes, mixed builds or splits, and wrong fleet sizes are
// rejected as 502s naming the offending target. Shards are therefore free to
// hot-reload through their own admin API at any time; an unreachable shard
// degrades the coordinator to 503s naming the missing target until it
// returns. No coordinator-side caching: the shard servers answer from their
// own caches and the merge is cheap, so a reloaded shard is visible
// immediately.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"imdist/internal/server"
)

// Defaults for Config zero values, matching internal/server where the knob
// has a server-side counterpart.
const (
	DefaultMaxBodyBytes    = server.DefaultMaxBodyBytes
	DefaultMaxSeeds        = server.DefaultMaxSeeds
	DefaultMaxK            = server.DefaultMaxK
	DefaultMaxBatchQueries = server.DefaultMaxBatchQueries
	// DefaultGreedyBatch is how many stale CELF entries are re-evaluated per
	// scatter round: large enough to amortize the RPC, small enough that most
	// re-evaluations are not wasted on entries that stay buried in the heap.
	DefaultGreedyBatch = 128
	// DefaultMaxIdleConnsPerHost sizes the pooled transport's per-shard idle
	// connection pool. net/http's default of 2 would reopen connections on
	// every concurrent scatter.
	DefaultMaxIdleConnsPerHost = 32
	shutdownGrace              = 10 * time.Second
)

// Config configures a Coordinator. Zero values select defaults; Targets is
// required.
type Config struct {
	// Targets are the base URLs of the shard servers, one per shard
	// (e.g. http://127.0.0.1:8081). Order is irrelevant: shards are matched
	// by the lineage they report, not by position.
	Targets []string
	// Sketch is the sketch name queried on the shard servers by the unnamed
	// routes ("" = each shard's default sketch). Named routes
	// (/v1/sketches/{name}/...) always forward their own name.
	Sketch string
	// MaxBodyBytes, MaxSeeds, MaxK and MaxBatchQueries mirror the
	// server-side limits (defaults as in internal/server).
	MaxBodyBytes    int64
	MaxSeeds        int
	MaxK            int
	MaxBatchQueries int
	// GreedyBatch is the number of stale CELF heap entries re-evaluated per
	// /v1/shard/marginal scatter during seed selection (default
	// DefaultGreedyBatch).
	GreedyBatch int
	// Transport overrides the pooled HTTP transport (tests). Nil builds one
	// with DefaultMaxIdleConnsPerHost persistent connections per shard.
	Transport http.RoundTripper
}

// Coordinator fronts a shard fleet. It is stateless beyond its configuration:
// safe for concurrent use, nothing to invalidate on shard reloads.
type Coordinator struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux
	start  time.Time
}

// New validates cfg, fills in defaults and returns a ready Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Targets) == 0 {
		return nil, errors.New("cluster: Config requires at least one shard target")
	}
	for i, t := range cfg.Targets {
		cfg.Targets[i] = strings.TrimRight(t, "/")
		if !strings.HasPrefix(cfg.Targets[i], "http://") && !strings.HasPrefix(cfg.Targets[i], "https://") {
			return nil, fmt.Errorf("cluster: shard target %q is not an http(s) URL", t)
		}
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxSeeds == 0 {
		cfg.MaxSeeds = DefaultMaxSeeds
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = DefaultMaxK
	}
	if cfg.MaxBatchQueries == 0 {
		cfg.MaxBatchQueries = DefaultMaxBatchQueries
	}
	if cfg.GreedyBatch < 1 {
		cfg.GreedyBatch = DefaultGreedyBatch
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        DefaultMaxIdleConnsPerHost * len(cfg.Targets),
			MaxIdleConnsPerHost: DefaultMaxIdleConnsPerHost,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	c := &Coordinator{
		cfg:    cfg,
		client: &http.Client{Transport: transport},
		mux:    http.NewServeMux(),
		start:  time.Now(),
	}
	// The public query surface, byte-identical to internal/server.
	c.mux.HandleFunc("POST /v1/influence", c.handleInfluence)
	c.mux.HandleFunc("POST /v1/influence:batch", c.handleBatchInfluence)
	c.mux.HandleFunc("POST /v1/seeds", c.handleSeeds)
	c.mux.HandleFunc("GET /v1/top", c.handleTop)
	c.mux.HandleFunc("POST /v1/sketches/{sketch}/influence", c.handleInfluence)
	c.mux.HandleFunc("POST /v1/sketches/{sketch}/influence:batch", c.handleBatchInfluence)
	c.mux.HandleFunc("POST /v1/sketches/{sketch}/seeds", c.handleSeeds)
	c.mux.HandleFunc("GET /v1/sketches/{sketch}/top", c.handleTop)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully, draining in-flight requests for up to shutdownGrace.
func (c *Coordinator) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           c.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       server.DefaultReadTimeout,
		WriteTimeout:      server.DefaultWriteTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// ctx is already cancelled on this path: deriving the drain timeout
		// from it would make Shutdown return immediately and tear down
		// in-flight requests instead of draining them.
		//imvet:allow ctxflow — shutdown drain must outlive the cancelled serve ctx; bounded by shutdownGrace
		shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeFleetError maps a scatter failure to the degraded-mode response: an
// unreachable or erroring shard is a 503 naming the missing target, a
// misassembled fleet (wrong lineage) a 502 naming the offender.
func writeFleetError(w http.ResponseWriter, err error) {
	var se *shardError
	if errors.As(err, &se) {
		// A shard answering "sketch not loaded" is a client addressing error,
		// not a fleet failure: pass the shard's own 404 through verbatim so
		// unknown-sketch requests read exactly as on a single process.
		if se.status == http.StatusNotFound && se.shardMsg != "" {
			writeError(w, http.StatusNotFound, "%s", se.shardMsg)
			return
		}
		if se.unreachable {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}
	writeError(w, http.StatusBadGateway, "%v", err)
}

// decodeBody strictly decodes a size-limited JSON body into v, mirroring the
// shard servers' own body handling (same limits, same messages).
func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return false
	}
	return true
}

// sketchFor resolves which sketch name to query on the shard servers: the
// {sketch} path segment when present (named routes), else the configured
// fleet-wide name ("" = each shard's default).
func (c *Coordinator) sketchFor(r *http.Request) string {
	if name := r.PathValue("sketch"); name != "" {
		return name
	}
	return c.cfg.Sketch
}

type influenceRequest struct {
	Seeds []int `json:"seeds"`
}

// validateSeedShape is the fleet-independent prefix of
// server.ValidateInfluenceSeeds — the checks that need no vertex count, with
// the same messages, applied before anything is scattered. The vertex-range
// check runs on the shards, whose shared validation echoes the
// single-process message back per item (itemError).
func (c *Coordinator) validateSeedShape(seeds []int) string {
	if len(seeds) == 0 {
		return "seeds must be non-empty"
	}
	if len(seeds) > c.cfg.MaxSeeds {
		return fmt.Sprintf("too many seeds: %d > %d", len(seeds), c.cfg.MaxSeeds)
	}
	return ""
}

// extendWriteDeadline mirrors the shard servers' deadline reset: scatter
// rounds can spend a while in flight, so the response write gets a fresh
// budget instead of whatever the gather left.
func extendWriteDeadline(w http.ResponseWriter) {
	_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(server.DefaultWriteTimeout))
}

func (c *Coordinator) handleInfluence(w http.ResponseWriter, r *http.Request) {
	var req influenceRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if msg := c.validateSeedShape(req.Seeds); msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	fleet, err := c.scatterCoverage(r.Context(), c.sketchFor(r), [][]int{req.Seeds})
	if err != nil {
		writeFleetError(w, err)
		return
	}
	if msg := fleet.itemError(0); msg != "" {
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	writeJSON(w, http.StatusOK, server.InfluenceResponse{
		Influence: fleet.influence(fleet.counts[0]),
		CI99:      fleet.ci99(),
		Seeds:     len(server.CanonicalSeeds(req.Seeds)),
	})
}

func (c *Coordinator) handleBatchInfluence(w http.ResponseWriter, r *http.Request) {
	var reqs []influenceRequest
	if !c.decodeBody(w, r, &reqs) {
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, "batch must be a non-empty JSON array of influence requests")
		return
	}
	if len(reqs) > c.cfg.MaxBatchQueries {
		writeError(w, http.StatusBadRequest, "too many batch queries: %d > %d", len(reqs), c.cfg.MaxBatchQueries)
		return
	}
	// One scatter evaluates every shape-valid item. Dedup by canonical seed
	// set mirrors the single-process batch handler: repeated queries share
	// one evaluation and one response object; range-invalid items come back
	// item-flagged from the shards, so a single bad query never fails the
	// batch.
	type pendingQuery struct {
		items []int
		seeds []int
		canon int
	}
	items := make([]server.BatchItem, len(reqs))
	var pending []pendingQuery
	pendingByKey := make(map[string]int)
	for i, req := range reqs {
		if msg := c.validateSeedShape(req.Seeds); msg != "" {
			items[i].Error = msg
			continue
		}
		canon := server.CanonicalSeeds(req.Seeds)
		key := make([]byte, 0, len(canon)*4)
		for _, v := range canon {
			key = strconv.AppendInt(key, int64(v), 10)
			key = append(key, ',')
		}
		if j, ok := pendingByKey[string(key)]; ok {
			pending[j].items = append(pending[j].items, i)
			continue
		}
		pendingByKey[string(key)] = len(pending)
		pending = append(pending, pendingQuery{items: []int{i}, seeds: req.Seeds, canon: len(canon)})
	}
	if len(pending) == 0 {
		writeJSON(w, http.StatusOK, items)
		return
	}
	seedSets := make([][]int, len(pending))
	for j, p := range pending {
		seedSets[j] = p.seeds
	}
	fleet, err := c.scatterCoverage(r.Context(), c.sketchFor(r), seedSets)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	ci := fleet.ci99()
	for j, p := range pending {
		if msg := fleet.itemError(j); msg != "" {
			for _, i := range p.items {
				items[i].Error = msg
			}
			continue
		}
		resp := server.InfluenceResponse{
			Influence: fleet.influence(fleet.counts[j]),
			CI99:      ci,
			Seeds:     p.canon,
		}
		for _, i := range p.items {
			items[i].InfluenceResponse = &resp
		}
	}
	extendWriteDeadline(w)
	writeJSON(w, http.StatusOK, items)
}

func (c *Coordinator) handleSeeds(w http.ResponseWriter, r *http.Request) {
	var req struct {
		K int `json:"k"`
	}
	if !c.decodeBody(w, r, &req) {
		return
	}
	if req.K < 1 || req.K > c.cfg.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1, %d], got %d", c.cfg.MaxK, req.K)
		return
	}
	resp, err := c.greedySeeds(r.Context(), c.sketchFor(r), req.K)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleTop(w http.ResponseWriter, r *http.Request) {
	k := min(10, c.cfg.MaxK)
	if q := r.URL.Query().Get("k"); q != "" {
		parsed, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid k %q", q)
			return
		}
		k = parsed
	}
	if k < 1 || k > c.cfg.MaxK {
		writeError(w, http.StatusBadRequest, "k must be in [1, %d], got %d", c.cfg.MaxK, k)
		return
	}
	fleet, err := c.scatterMarginal(r.Context(), c.sketchFor(r), nil, nil)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, fleet.topVertices(k))
}

// healthzTarget is one shard server's slice of the coordinator healthz
// report.
type healthzTarget struct {
	Target string `json:"target"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Lineage as the shard's healthz reports it (its default sketch).
	ShardIndex *int `json:"shard_index,omitempty"`
	ShardCount int  `json:"shard_count,omitempty"`
	TotalSets  int  `json:"total_sets,omitempty"`
	Vertices   int  `json:"vertices,omitempty"`
	RRSets     int  `json:"rr_sets,omitempty"`
}

type healthzResponse struct {
	Status string `json:"status"`
	Mode   string `json:"mode"`
	Shards int    `json:"shards"`
	// Vertices and RRSets describe the assembled fleet (RRSets sums the
	// shards' slices), so load drivers can probe a coordinator exactly like
	// a single server.
	Vertices      int             `json:"vertices"`
	RRSets        int             `json:"rr_sets"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Targets       []healthzTarget `json:"targets"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:        "ok",
		Mode:          "coordinator",
		Shards:        len(c.cfg.Targets),
		UptimeSeconds: time.Since(c.start).Seconds(),
		Targets:       make([]healthzTarget, len(c.cfg.Targets)),
	}
	var wg sync.WaitGroup
	for i, target := range c.cfg.Targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ht := healthzTarget{Target: target}
			var shard struct {
				Status     string `json:"status"`
				Vertices   int    `json:"vertices"`
				RRSets     int    `json:"rr_sets"`
				ShardIndex *int   `json:"shard_index"`
				ShardCount int    `json:"shard_count"`
				TotalSets  int    `json:"total_sets"`
			}
			if err := c.getJSON(r.Context(), target+"/healthz", &shard); err != nil {
				ht.Status = "unreachable"
				ht.Error = err.Error()
			} else {
				ht.Status = shard.Status
				ht.Vertices = shard.Vertices
				ht.RRSets = shard.RRSets
				ht.ShardIndex = shard.ShardIndex
				ht.ShardCount = shard.ShardCount
				ht.TotalSets = shard.TotalSets
			}
			resp.Targets[i] = ht
		}()
	}
	wg.Wait()
	for _, ht := range resp.Targets {
		if ht.Status != "ok" {
			resp.Status = "degraded"
		}
		if ht.Vertices > resp.Vertices {
			resp.Vertices = ht.Vertices
		}
		resp.RRSets += ht.RRSets
	}
	writeJSON(w, http.StatusOK, resp)
}
