package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/server"
	"imdist/internal/sketchio"
	"imdist/internal/workload"
)

// buildSketchFile builds a Karate sketch and writes it as a v1 sketch file.
// numSets is chosen per test: SplitSketch partitions on 64Ki-set block
// boundaries, so a sketch meant to split S ways needs at least S blocks.
func buildSketchFile(t testing.TB, model diffusion.Model, numSets int, seed uint64) string {
	t.Helper()
	ig, err := workload.Assign(data.Karate(), workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.NewOracleParallelSeeded(ig, model, numSets, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), fmt.Sprintf("%s-%d.imsk", model, seed))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sketchio.Encode(f, o); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// serveSketchFile launches one shard server on the sketch file at path.
func serveSketchFile(t testing.TB, path string) *httptest.Server {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	o, err := sketchio.Decode(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Oracle: o})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts
}

// launchFleet splits the sketch at path into `shards` shard files (1 shard
// serves the unsplit file directly — the degenerate fleet) and launches one
// shard server per file, returning the coordinator target list.
func launchFleet(t testing.TB, path string, shards int) []string {
	t.Helper()
	paths := []string{path}
	if shards > 1 {
		var err error
		paths, err = sketchio.SplitSketch(path, filepath.Join(t.TempDir(), "fleet"), shards)
		if err != nil {
			t.Fatal(err)
		}
	}
	targets := make([]string, len(paths))
	for i, p := range paths {
		targets[i] = serveSketchFile(t, p).URL
	}
	return targets
}

func newCoordinator(t testing.TB, cfg Config) *httptest.Server {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func postJSON(t testing.TB, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// equivalenceQueries is the byte-identity matrix: every public query the
// coordinator serves, including invalid ones, whose status and raw response
// bytes must match a single process on the unsplit sketch exactly.
var equivalenceQueries = []struct {
	name, method, path, body string
}{
	{"influence", "POST", "/v1/influence", `{"seeds":[0]}`},
	{"influence-multi", "POST", "/v1/influence", `{"seeds":[33,0,5,9]}`},
	{"influence-dup", "POST", "/v1/influence", `{"seeds":[7,7,7]}`},
	{"influence-empty", "POST", "/v1/influence", `{"seeds":[]}`},
	{"influence-range", "POST", "/v1/influence", `{"seeds":[99]}`},
	{"influence-negative", "POST", "/v1/influence", `{"seeds":[-1]}`},
	{"batch", "POST", "/v1/influence:batch",
		`[{"seeds":[0]},{"seeds":[33]},{"seeds":[0,33]},{"seeds":[0]},{"seeds":[99]},{"seeds":[]}]`},
	{"seeds", "POST", "/v1/seeds", `{"k":5}`},
	{"seeds-clamped", "POST", "/v1/seeds", `{"k":34}`},
	{"seeds-bad-k", "POST", "/v1/seeds", `{"k":0}`},
	{"top", "GET", "/v1/top?k=10", ""},
	{"top-default", "GET", "/v1/top", ""},
	{"top-all", "GET", "/v1/top?k=34", ""},
	{"top-bad-k", "GET", "/v1/top?k=oops", ""},
}

func runQuery(t testing.TB, base string, q struct{ name, method, path, body string }) (int, []byte) {
	t.Helper()
	if q.method == "GET" {
		return get(t, base+q.path)
	}
	return postJSON(t, base+q.path, q.body)
}

// TestCoordinatorEquivalence is the acceptance gate of the distributed tier:
// a coordinator over 1-, 2- and 4-shard fleets answers every public query
// byte-identically to one process serving the unsplit sketch, for both
// diffusion models.
func TestCoordinatorEquivalence(t *testing.T) {
	cases := []struct {
		model   diffusion.Model
		numSets int
		shards  []int
	}{
		// 4 blocks: splits 1, 2 and 4 ways (2-shard split is uneven-free; the
		// 4-way split exercises one block per shard).
		{diffusion.IC, 4 * core.DefaultBatchShardSize, []int{1, 2, 4}},
		// 2 blocks under LT: a second model through the same merge path.
		{diffusion.LT, 2 * core.DefaultBatchShardSize, []int{2}},
	}
	for _, tc := range cases {
		t.Run(tc.model.String(), func(t *testing.T) {
			path := buildSketchFile(t, tc.model, tc.numSets, 7)
			single := serveSketchFile(t, path)
			for _, shards := range tc.shards {
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					coord := newCoordinator(t, Config{Targets: launchFleet(t, path, shards)})
					for _, q := range equivalenceQueries {
						wantStatus, wantBody := runQuery(t, single.URL, q)
						gotStatus, gotBody := runQuery(t, coord.URL, q)
						if gotStatus != wantStatus {
							t.Errorf("%s: status %d, single process %d (%s)", q.name, gotStatus, wantStatus, gotBody)
							continue
						}
						if string(gotBody) != string(wantBody) {
							t.Errorf("%s: coordinator answer diverges\n got: %s\nwant: %s", q.name, gotBody, wantBody)
						}
					}
				})
			}
		})
	}
}

// TestCoordinatorReloadMidFlight hot-reloads the shard servers through their
// own admin API while the coordinator keeps serving: a half-reloaded fleet
// (mixed build seeds) is rejected as misassembled, and once every shard has
// swapped, answers are byte-identical to a single process on the new sketch —
// with no coordinator restart and no coordinator-side cache to invalidate.
func TestCoordinatorReloadMidFlight(t *testing.T) {
	const shards = 2
	pathA := buildSketchFile(t, diffusion.IC, 2*core.DefaultBatchShardSize, 7)
	pathB := buildSketchFile(t, diffusion.IC, 2*core.DefaultBatchShardSize, 8)
	shardsB, err := sketchio.SplitSketch(pathB, filepath.Join(t.TempDir(), "b"), shards)
	if err != nil {
		t.Fatal(err)
	}
	targets := launchFleet(t, pathA, shards)
	coord := newCoordinator(t, Config{Targets: targets})

	const query = `{"seeds":[0,33]}`
	singleA := serveSketchFile(t, pathA)
	wantStatus, wantA := postJSON(t, singleA.URL+"/v1/influence", query)
	if gotStatus, got := postJSON(t, coord.URL+"/v1/influence", query); gotStatus != wantStatus || string(got) != string(wantA) {
		t.Fatalf("pre-reload answer diverges: %d %s, want %d %s", gotStatus, got, wantStatus, wantA)
	}

	reload := func(target, shardPath string) {
		t.Helper()
		body := fmt.Sprintf(`{"name":%q,"path":%q,"replace":true}`, server.DefaultSketchName, shardPath)
		if status, raw := postJSON(t, target+"/v1/admin/sketches", body); status != http.StatusOK {
			t.Fatalf("admin reload of %s: status %d: %s", target, status, raw)
		}
	}

	// Half-reloaded: shard 0 now serves build B, shard 1 still build A. The
	// per-query identity check must refuse to merge across builds.
	reload(targets[0], shardsB[0])
	if status, raw := postJSON(t, coord.URL+"/v1/influence", query); status != http.StatusBadGateway {
		t.Fatalf("mixed-build fleet: status %d (%s), want %d", status, raw, http.StatusBadGateway)
	} else if !strings.Contains(string(raw), "does not match") {
		t.Errorf("mixed-build fleet error does not name the mismatch: %s", raw)
	}

	// Fully reloaded: the coordinator serves build B immediately.
	reload(targets[1], shardsB[1])
	singleB := serveSketchFile(t, pathB)
	wantStatus, wantB := postJSON(t, singleB.URL+"/v1/influence", query)
	if string(wantA) == string(wantB) {
		t.Fatal("builds A and B answer identically; reload test proves nothing")
	}
	if gotStatus, got := postJSON(t, coord.URL+"/v1/influence", query); gotStatus != wantStatus || string(got) != string(wantB) {
		t.Fatalf("post-reload answer = %d %s, want %d %s", gotStatus, got, wantStatus, wantB)
	}
	for _, q := range equivalenceQueries {
		wantStatus, want := runQuery(t, singleB.URL, q)
		gotStatus, got := runQuery(t, coord.URL, q)
		if gotStatus != wantStatus || string(got) != string(want) {
			t.Errorf("%s after reload: got %d %s, want %d %s", q.name, gotStatus, got, wantStatus, want)
		}
	}
}

// TestCoordinatorDegraded kills one shard of a fleet and checks that every
// query degrades to a 503 naming the missing target, and healthz reports the
// fleet as degraded, until the shard returns.
func TestCoordinatorDegraded(t *testing.T) {
	path := buildSketchFile(t, diffusion.IC, 2*core.DefaultBatchShardSize, 7)
	paths, err := sketchio.SplitSketch(path, filepath.Join(t.TempDir(), "fleet"), 2)
	if err != nil {
		t.Fatal(err)
	}
	alive := serveSketchFile(t, paths[0])
	dead := serveSketchFile(t, paths[1])
	coord := newCoordinator(t, Config{Targets: []string{alive.URL, dead.URL}})
	dead.Close()

	for _, q := range []struct{ name, method, path, body string }{
		{"influence", "POST", "/v1/influence", `{"seeds":[0]}`},
		{"batch", "POST", "/v1/influence:batch", `[{"seeds":[0]}]`},
		{"seeds", "POST", "/v1/seeds", `{"k":2}`},
		{"top", "GET", "/v1/top?k=3", ""},
	} {
		status, raw := runQuery(t, coord.URL, q)
		if status != http.StatusServiceUnavailable {
			t.Errorf("%s on degraded fleet: status %d (%s), want 503", q.name, status, raw)
			continue
		}
		if !strings.Contains(string(raw), dead.URL) {
			t.Errorf("%s degraded error does not name the missing target %s: %s", q.name, dead.URL, raw)
		}
	}

	status, raw := get(t, coord.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	var hz healthzResponse
	if err := json.Unmarshal(raw, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.Mode != "coordinator" || hz.Shards != 2 {
		t.Errorf("healthz = %+v, want degraded coordinator over 2 shards", hz)
	}
	sawUnreachable := false
	for _, ht := range hz.Targets {
		if ht.Target == dead.URL && ht.Status == "unreachable" {
			sawUnreachable = true
		}
		if ht.Target == alive.URL && (ht.Status != "ok" || ht.ShardIndex == nil || *ht.ShardIndex != 0) {
			t.Errorf("healthy shard entry = %+v", ht)
		}
	}
	if !sawUnreachable {
		t.Errorf("healthz does not flag the dead target: %s", raw)
	}
}

// TestCoordinatorMisassembledFleet points a coordinator at wrongly assembled
// fleets — the same shard twice, and an unsplit sketch inside a 2-target
// fleet — and checks both are rejected as 502s naming the offender.
func TestCoordinatorMisassembledFleet(t *testing.T) {
	path := buildSketchFile(t, diffusion.IC, 2*core.DefaultBatchShardSize, 7)
	paths, err := sketchio.SplitSketch(path, filepath.Join(t.TempDir(), "fleet"), 2)
	if err != nil {
		t.Fatal(err)
	}

	dup0a := serveSketchFile(t, paths[0])
	dup0b := serveSketchFile(t, paths[0])
	coord := newCoordinator(t, Config{Targets: []string{dup0a.URL, dup0b.URL}})
	status, raw := postJSON(t, coord.URL+"/v1/influence", `{"seeds":[0]}`)
	if status != http.StatusBadGateway || !strings.Contains(string(raw), "already served by") {
		t.Errorf("duplicated shard: status %d: %s, want 502 naming the duplicate", status, raw)
	}

	shard0 := serveSketchFile(t, paths[0])
	unsplit := serveSketchFile(t, path)
	coord2 := newCoordinator(t, Config{Targets: []string{shard0.URL, unsplit.URL}})
	status, raw = postJSON(t, coord2.URL+"/v1/influence", `{"seeds":[0]}`)
	if status != http.StatusBadGateway || !strings.Contains(string(raw), "coordinator has 2 targets") {
		t.Errorf("unsplit sketch in fleet: status %d: %s, want 502 naming the fleet-size mismatch", status, raw)
	}
}

// TestCoordinatorNamedRoutes exercises the /v1/sketches/{name}/... variants:
// the coordinator forwards the path's sketch name to the shard fleet, and an
// unknown name passes the shards' 404 through byte-identically.
func TestCoordinatorNamedRoutes(t *testing.T) {
	path := buildSketchFile(t, diffusion.IC, 2*core.DefaultBatchShardSize, 7)
	paths, err := sketchio.SplitSketch(path, filepath.Join(t.TempDir(), "fleet"), 2)
	if err != nil {
		t.Fatal(err)
	}
	single := serveSketchFile(t, path)
	targets := make([]string, len(paths))
	for i, p := range paths {
		targets[i] = serveSketchFile(t, p).URL
	}
	coord := newCoordinator(t, Config{Targets: targets})

	// The default sketch is also reachable by its registered name.
	for _, route := range []string{"/v1/influence", "/v1/sketches/" + server.DefaultSketchName + "/influence"} {
		wantStatus, want := postJSON(t, single.URL+route, `{"seeds":[0]}`)
		gotStatus, got := postJSON(t, coord.URL+route, `{"seeds":[0]}`)
		if gotStatus != wantStatus || string(got) != string(want) {
			t.Errorf("%s: got %d %s, want %d %s", route, gotStatus, got, wantStatus, want)
		}
	}

	wantStatus, want := postJSON(t, single.URL+"/v1/sketches/nope/influence", `{"seeds":[0]}`)
	gotStatus, got := postJSON(t, coord.URL+"/v1/sketches/nope/influence", `{"seeds":[0]}`)
	if gotStatus != http.StatusNotFound || gotStatus != wantStatus || string(got) != string(want) {
		t.Errorf("unknown sketch: got %d %s, want %d %s", gotStatus, got, wantStatus, want)
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no targets should fail")
	}
	if _, err := New(Config{Targets: []string{"127.0.0.1:8080"}}); err == nil {
		t.Error("New with a schemeless target should fail")
	}
	c, err := New(Config{Targets: []string{"http://127.0.0.1:8080/"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.cfg.Targets[0]; got != "http://127.0.0.1:8080" {
		t.Errorf("target not normalized: %q", got)
	}
	if c.cfg.GreedyBatch != DefaultGreedyBatch || c.cfg.MaxK != DefaultMaxK {
		t.Errorf("defaults not applied: %+v", c.cfg)
	}
}
