package cluster

// Scatter-gather plumbing: fan a shard request out to every target over the
// pooled transport, verify from the identity echoes that the responses really
// assemble the fleet the coordinator fronts, and merge the integer counts.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"

	"imdist/internal/server"
	"imdist/internal/stats"
)

// shardError is a scatter failure attributed to one shard target.
// unreachable marks transport failures and shard-side error statuses — the
// degraded-fleet case, served as 503 until the shard returns — while
// assembly errors (wrong lineage, mixed builds) stay 502s. status and
// shardMsg hold the shard's own HTTP status and error body when there was
// one, letting not-found answers pass through verbatim.
type shardError struct {
	target      string
	err         error
	unreachable bool
	status      int
	shardMsg    string
}

func (e *shardError) Error() string { return fmt.Sprintf("shard target %s: %v", e.target, e.err) }
func (e *shardError) Unwrap() error { return e.err }

// fleetView is the verified fleet-wide identity of a gather, plus the merge
// arithmetic every handler shares.
type fleetView struct {
	vertices  int
	model     string
	buildSeed uint64
	totalSets int
}

// influence converts a fleet-wide merged RR-set count to influence units —
// the single float division of the whole distributed computation, the exact
// expression core.Oracle evaluates on the unsplit sketch. Byte-identity
// hinges on everything before this line being integer arithmetic.
func (f fleetView) influence(hits int64) float64 {
	return float64(f.vertices) * float64(hits) / float64(f.totalSets)
}

// ci99 is the fleet-wide 99% confidence half-width, as
// core.Oracle.ConfidenceHalfWidth(2.576) computes it from the RR-set total.
func (f fleetView) ci99() float64 {
	return float64(f.vertices) * stats.BinomialCI(0.5, f.totalSets, 2.576)
}

// shardPath builds the request path for a shard primitive against the named
// sketch ("" = the shard server's default sketch).
func shardPath(sketch, kind string) string {
	if sketch == "" {
		return "/v1/shard/" + kind
	}
	return "/v1/sketches/" + url.PathEscape(sketch) + "/shard/" + kind
}

// postShardJSON posts body to one shard target and decodes the 200 response
// into out. Any failure — transport, non-200 status, undecodable body — is a
// *shardError naming the target.
func (c *Coordinator) postShardJSON(ctx context.Context, target, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("cluster: encoding shard request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+path, bytes.NewReader(payload))
	if err != nil {
		return &shardError{target: target, err: err, unreachable: true}
	}
	req.Header.Set("Content-Type", "application/json")
	return c.doShard(target, req, out)
}

// getJSON fetches url from a shard target and decodes the 200 response.
func (c *Coordinator) getJSON(ctx context.Context, target string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Coordinator) doShard(target string, req *http.Request, out any) error {
	resp, err := c.client.Do(req)
	if err != nil {
		return &shardError{target: target, err: err, unreachable: true}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := fmt.Sprintf("status %d", resp.StatusCode)
		var er errorResponse
		if b, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096)); rerr == nil {
			if json.Unmarshal(b, &er) == nil && er.Error != "" {
				msg = fmt.Sprintf("status %d: %s", resp.StatusCode, er.Error)
			}
		}
		return &shardError{
			target: target, err: errors.New(msg), unreachable: true,
			status: resp.StatusCode, shardMsg: er.Error,
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &shardError{target: target, err: fmt.Errorf("decoding response: %w", err), unreachable: true}
	}
	return nil
}

// verifyFleet checks that the per-shard identity echoes assemble exactly the
// fleet this coordinator fronts: every response claims a fleet of
// len(targets) shards, the shard indexes are a permutation of 0..count-1
// (no duplicated or missing slices), every shard reports the same build
// identity, and the per-shard RR-set counts sum to the lineage total.
func verifyFleet(targets []string, ids []server.ShardIdentity) (fleetView, error) {
	want := len(targets)
	owner := make([]int, want) // 1-based target index by shard index
	setSum := 0
	for i, id := range ids {
		if id.ShardCount != want {
			return fleetView{}, &shardError{target: targets[i],
				err: fmt.Errorf("reports a %d-shard fleet, coordinator has %d targets", id.ShardCount, want)}
		}
		if id.ShardIndex < 0 || id.ShardIndex >= want {
			return fleetView{}, &shardError{target: targets[i],
				err: fmt.Errorf("reports shard index %d, out of range for a %d-shard fleet", id.ShardIndex, want)}
		}
		if prev := owner[id.ShardIndex]; prev != 0 {
			return fleetView{}, &shardError{target: targets[i],
				err: fmt.Errorf("serves shard %d already served by %s", id.ShardIndex, targets[prev-1])}
		}
		owner[id.ShardIndex] = i + 1
		if id.Vertices != ids[0].Vertices || id.Model != ids[0].Model ||
			id.BuildSeed != ids[0].BuildSeed || id.TotalSets != ids[0].TotalSets {
			return fleetView{}, &shardError{target: targets[i],
				err: fmt.Errorf("sketch identity (%d vertices, %s, seed %d, %d total sets) does not match %s (%d vertices, %s, seed %d, %d total sets)",
					id.Vertices, id.Model, id.BuildSeed, id.TotalSets,
					targets[0], ids[0].Vertices, ids[0].Model, ids[0].BuildSeed, ids[0].TotalSets)}
		}
		setSum += id.NumSets
	}
	if setSum != ids[0].TotalSets {
		return fleetView{}, fmt.Errorf("fleet holds %d RR sets, lineage expects %d", setSum, ids[0].TotalSets)
	}
	return fleetView{
		vertices:  ids[0].Vertices,
		model:     ids[0].Model,
		buildSeed: ids[0].BuildSeed,
		totalSets: ids[0].TotalSets,
	}, nil
}

// coverageGather is the merged result of one /v1/shard/coverage scatter:
// exact fleet-wide coverage counts, one per requested seed set.
type coverageGather struct {
	fleetView
	counts []int64
	errs   []string // item-parallel validation errors, nil when all valid
}

// itemError returns the validation error the shards flagged item i with, or
// "" when the item is valid. The message text is the shards' shared
// validation — identical to what a single process would have answered.
func (g *coverageGather) itemError(i int) string {
	if g.errs == nil {
		return ""
	}
	return g.errs[i]
}

func (c *Coordinator) scatterCoverage(ctx context.Context, sketch string, seedSets [][]int) (*coverageGather, error) {
	req := server.ShardCoverageRequest{SeedSets: seedSets}
	path := shardPath(sketch, "coverage")
	resps := make([]server.ShardCoverageResponse, len(c.cfg.Targets))
	errs := make([]error, len(c.cfg.Targets))
	var wg sync.WaitGroup
	for i, target := range c.cfg.Targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = c.postShardJSON(ctx, target, path, req, &resps[i])
		}()
	}
	wg.Wait()
	ids := make([]server.ShardIdentity, len(resps))
	for i := range resps {
		if errs[i] != nil {
			return nil, errs[i]
		}
		ids[i] = resps[i].ShardIdentity
	}
	fleet, err := verifyFleet(c.cfg.Targets, ids)
	if err != nil {
		return nil, err
	}
	g := &coverageGather{fleetView: fleet, counts: make([]int64, len(seedSets))}
	for i := range resps {
		if len(resps[i].Counts) != len(seedSets) {
			return nil, &shardError{target: c.cfg.Targets[i],
				err: fmt.Errorf("returned %d counts for %d seed sets", len(resps[i].Counts), len(seedSets))}
		}
		for j, n := range resps[i].Counts {
			g.counts[j] += n
		}
		if resps[i].Errors == nil {
			continue
		}
		if g.errs == nil {
			g.errs = make([]string, len(seedSets))
		}
		for j, msg := range resps[i].Errors {
			if g.errs[j] == "" {
				g.errs[j] = msg
			}
		}
	}
	return g, nil
}

// marginalGather is the merged result of one /v1/shard/marginal scatter:
// exact fleet-wide marginal gains, one per candidate (every vertex in
// ascending id order when candidates was nil).
type marginalGather struct {
	fleetView
	gains []int64
}

func (c *Coordinator) scatterMarginal(ctx context.Context, sketch string, seeds, candidates []int) (*marginalGather, error) {
	req := server.ShardMarginalRequest{Seeds: seeds, Candidates: candidates}
	path := shardPath(sketch, "marginal")
	resps := make([]server.ShardMarginalResponse, len(c.cfg.Targets))
	errs := make([]error, len(c.cfg.Targets))
	var wg sync.WaitGroup
	for i, target := range c.cfg.Targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = c.postShardJSON(ctx, target, path, req, &resps[i])
		}()
	}
	wg.Wait()
	ids := make([]server.ShardIdentity, len(resps))
	for i := range resps {
		if errs[i] != nil {
			return nil, errs[i]
		}
		ids[i] = resps[i].ShardIdentity
	}
	fleet, err := verifyFleet(c.cfg.Targets, ids)
	if err != nil {
		return nil, err
	}
	wantLen := len(candidates)
	if candidates == nil {
		wantLen = fleet.vertices
	}
	g := &marginalGather{fleetView: fleet, gains: make([]int64, wantLen)}
	for i := range resps {
		if len(resps[i].Gains) != wantLen {
			return nil, &shardError{target: c.cfg.Targets[i],
				err: fmt.Errorf("returned %d gains for %d candidates", len(resps[i].Gains), wantLen)}
		}
		for j, n := range resps[i].Gains {
			g.gains[j] += n
		}
	}
	return g, nil
}

// topVertices ranks an all-vertex gather exactly as
// core.Oracle.TopSingleVertices ranks the unsplit sketch: influence
// non-increasing, ties broken by ascending vertex id.
func (g *marginalGather) topVertices(k int) server.TopResponse {
	type pair struct {
		v   int
		inf float64
	}
	pairs := make([]pair, len(g.gains))
	for v, cnt := range g.gains {
		pairs[v] = pair{v, g.influence(cnt)}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].inf != pairs[j].inf {
			return pairs[i].inf > pairs[j].inf
		}
		return pairs[i].v < pairs[j].v
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	resp := server.TopResponse{Vertices: make([]int, k), Influences: make([]float64, k)}
	for i := 0; i < k; i++ {
		resp.Vertices[i] = pairs[i].v
		resp.Influences[i] = pairs[i].inf
	}
	return resp
}
