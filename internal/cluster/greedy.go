package cluster

// Distributed greedy seed selection: a CELF-style lazy-evaluation loop over
// fleet-wide marginal coverage counts that reproduces, vertex for vertex,
// what core.Oracle.GreedySeeds computes on the unsplit sketch.
//
// Correctness of the lazy selection: the heap orders candidates by (gain
// desc, id asc), the exact preference of GreedySeeds' argmax scan. A stale
// entry's gain is an upper bound on its true gain (submodularity: marginal
// gains only shrink as the seed set grows). So when the heap's top entry is
// fresh — evaluated against the current seed set — every other candidate's
// true gain is at most the top's gain, and any candidate whose stale bound
// ties it sits below the top only if its id is larger. Selecting a fresh top
// is therefore exactly the (max gain, min id) argmax, without re-evaluating
// the candidates that stayed buried. Stale entries are re-evaluated in
// batches of GreedyBatch per scatter, so the RPC count per round is
// O(stale/batch), not O(n).

import (
	"container/heap"
	"context"
	"fmt"

	"imdist/internal/server"
)

// celfEntry is one candidate in the lazy-greedy queue: v's fleet-wide
// marginal gain as of round (i.e. computed against the first round selected
// seeds).
type celfEntry struct {
	v     int
	gain  int64
	round int
}

// celfHeap orders by gain descending, then vertex id ascending — the
// GreedySeeds argmax preference.
type celfHeap []celfEntry

func (h celfHeap) Len() int { return len(h) }
func (h celfHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}
func (h celfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x any)   { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// greedySeeds answers /v1/seeds for the fleet: the same seed sequence and
// influence a single process computes with GreedySeeds + Influence on the
// unsplit sketch. k is clamped to the vertex count, as GreedySeeds clamps it.
func (c *Coordinator) greedySeeds(ctx context.Context, sketch string, k int) (server.SeedsResponse, error) {
	// Round 0: every vertex's membership count in one all-vertex scatter
	// (seeds empty, candidates nil).
	first, err := c.scatterMarginal(ctx, sketch, nil, nil)
	if err != nil {
		return server.SeedsResponse{}, err
	}
	if k > first.vertices {
		k = first.vertices
	}
	h := make(celfHeap, len(first.gains))
	for v, gain := range first.gains {
		h[v] = celfEntry{v: v, gain: gain, round: 0}
	}
	heap.Init(&h)

	selected := make([]int, 0, k)
	var covered int64 // telescoping: Σ selected gains == Coverage(selected)
	for len(selected) < k {
		if h[0].round == len(selected) {
			e := heap.Pop(&h).(celfEntry)
			covered += e.gain
			selected = append(selected, e.v)
			continue
		}
		// Re-evaluate up to GreedyBatch stale entries with one scatter.
		batch := make([]celfEntry, 0, c.cfg.GreedyBatch)
		for i := 0; i < c.cfg.GreedyBatch && len(h) > 0 && h[0].round != len(selected); i++ {
			batch = append(batch, heap.Pop(&h).(celfEntry))
		}
		candidates := make([]int, len(batch))
		for i, e := range batch {
			candidates[i] = e.v
		}
		mg, err := c.scatterMarginal(ctx, sketch, selected, candidates)
		if err != nil {
			return server.SeedsResponse{}, err
		}
		// A shard hot-reloaded to a different sketch mid-selection would make
		// the rounds' gains incomparable; rather than merge counts from two
		// different builds, fail the query — the client's retry starts clean.
		if mg.fleetView != first.fleetView {
			return server.SeedsResponse{}, fmt.Errorf("fleet identity changed during seed selection (sketch reloaded mid-query); retry")
		}
		for i := range batch {
			heap.Push(&h, celfEntry{v: batch[i].v, gain: mg.gains[i], round: len(selected)})
		}
	}
	return server.SeedsResponse{Seeds: selected, Influence: first.influence(covered)}, nil
}
