// Package data provides the networks the paper evaluates on: the embedded
// Zachary Karate club network, the two Barabási–Albert instances (BA_s and
// BA_d), and deterministic synthetic surrogates for the real-world datasets
// that are not redistributable (Physicians, ca-GrQc, Wiki-Vote, com-Youtube,
// soc-Pokec). See DESIGN.md §3 for the substitution rationale: each surrogate
// matches the original's vertex count, edge count and degree skew (or a
// documented scaled-down version for the two web-scale graphs), which are the
// structural properties the paper's findings depend on.
package data

import (
	"errors"
	"fmt"
	"sort"

	"imdist/internal/gen"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// Dataset identifies one of the paper's networks.
type Dataset string

// The datasets of Table 3. Names match the paper; surrogate datasets keep the
// original name so experiment output lines up with the paper's tables.
const (
	KarateSet  Dataset = "Karate"
	Physicians Dataset = "Physicians"
	CaGrQc     Dataset = "ca-GrQc"
	WikiVote   Dataset = "Wiki-Vote"
	ComYoutube Dataset = "com-Youtube"
	SocPokec   Dataset = "soc-Pokec"
	BASparse   Dataset = "BA_s"
	BADense    Dataset = "BA_d"
)

// ErrUnknownDataset reports a dataset name not in the registry.
var ErrUnknownDataset = errors.New("data: unknown dataset")

// Info describes a dataset: whether it is the original data or a surrogate,
// and the size the paper reports for the original.
type Info struct {
	Name       Dataset
	Surrogate  bool // true when the graph is a synthetic stand-in
	Scaled     bool // true when the surrogate is also scaled down in size
	PaperN     int  // vertex count reported in Table 3
	PaperM     int  // edge count reported in Table 3
	Type       string
	Generation string // how the instance is produced
}

// Catalog returns descriptions of every dataset in the registry, in the order
// Table 3 lists them.
func Catalog() []Info {
	return []Info{
		{Name: KarateSet, Surrogate: false, PaperN: 34, PaperM: 156, Type: "social",
			Generation: "embedded Zachary Karate club, both arc directions"},
		{Name: Physicians, Surrogate: true, PaperN: 241, PaperM: 1098, Type: "social",
			Generation: "scale-free directed surrogate matched on n, m"},
		{Name: CaGrQc, Surrogate: true, PaperN: 5242, PaperM: 28968, Type: "collab.",
			Generation: "core-whisker surrogate (dense BA core + tree whiskers), undirected arcs"},
		{Name: WikiVote, Surrogate: true, PaperN: 7115, PaperM: 103689, Type: "voting",
			Generation: "scale-free directed surrogate with heavy in-degree skew"},
		{Name: ComYoutube, Surrogate: true, Scaled: true, PaperN: 1134889, PaperM: 5975248, Type: "social",
			Generation: "scaled scale-free surrogate (default 1/16 of the original size, same average degree)"},
		{Name: SocPokec, Surrogate: true, Scaled: true, PaperN: 1632802, PaperM: 30622564, Type: "social",
			Generation: "scaled scale-free surrogate (default 1/16 of the original size, same average degree)"},
		{Name: BASparse, Surrogate: false, PaperN: 1000, PaperM: 999, Type: "BA",
			Generation: "Barabási–Albert n=1000 M=1, random edge directions"},
		{Name: BADense, Surrogate: false, PaperN: 1000, PaperM: 10879, Type: "BA",
			Generation: "Barabási–Albert n=1000 M=11, random edge directions"},
	}
}

// Names returns all dataset names in catalog order.
func Names() []Dataset {
	cat := Catalog()
	names := make([]Dataset, len(cat))
	for i, inf := range cat {
		names[i] = inf.Name
	}
	return names
}

// Options controls dataset materialization.
type Options struct {
	// Seed drives the deterministic generation of synthetic datasets. The
	// same seed always yields the same graph.
	Seed uint64
	// ScaleDivisor divides the size of the web-scale surrogates
	// (com-Youtube, soc-Pokec); 0 means the default of 16. A divisor of 1
	// generates the full-size surrogate.
	ScaleDivisor int
}

// DefaultOptions returns the options used by the experiment harness: a fixed
// seed so every run sees identical graphs, and a 1/16 scale for the two
// web-scale surrogates.
func DefaultOptions() Options { return Options{Seed: 20200614, ScaleDivisor: 16} }

// Load materializes the named dataset.
func Load(name Dataset, opt Options) (*graph.Graph, error) {
	if opt.ScaleDivisor <= 0 {
		opt.ScaleDivisor = 16
	}
	seed := opt.Seed
	if seed == 0 {
		seed = DefaultOptions().Seed
	}
	src := func(stream uint64) rng.Source { return rng.Split(rng.Xoshiro, seed, stream) }
	switch name {
	case KarateSet:
		return Karate(), nil
	case BASparse:
		return gen.BarabasiAlbert(1000, 1, src(1))
	case BADense:
		return gen.BarabasiAlbert(1000, 11, src(2))
	case Physicians:
		// 241 vertices, 1,098 directed edges; advice-seeking among physicians
		// has moderate skew, exponent 0.8 keeps hubs below the n.
		return gen.ScaleFreeDirected(241, 1098, 0.8, src(3))
	case CaGrQc:
		// 5,242 vertices, 28,968 arcs (undirected collaboration). The core-
		// whisker construction mirrors the structure §5.2.2 relies on. The
		// core holds ~35% of vertices with average degree ~14 so that the
		// total arc count lands near the paper's 28,968.
		return caGrQcSurrogate(src(4))
	case WikiVote:
		return gen.ScaleFreeDirected(7115, 103689, 0.9, src(5))
	case ComYoutube:
		n := 1134889 / opt.ScaleDivisor
		m := 5975248 / opt.ScaleDivisor
		return gen.ScaleFreeDirected(n, m, 1.0, src(6))
	case SocPokec:
		n := 1632802 / opt.ScaleDivisor
		m := 30622564 / opt.ScaleDivisor
		return gen.ScaleFreeDirected(n, m, 0.7, src(7))
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
}

// caGrQcSurrogate builds the ca-GrQc stand-in: a dense scale-free core plus
// tree-like whiskers, then tops up edges inside the core until the arc count
// approaches the original's 28,968.
func caGrQcSurrogate(src rng.Source) (*graph.Graph, error) {
	const (
		n       = 5242
		coreN   = 1800
		coreM   = 6
		targetM = 28968
	)
	base, err := gen.CoreWhisker(n, coreN, coreM, src)
	if err != nil {
		return nil, err
	}
	// CoreWhisker yields roughly coreN*coreM*2 + (n-coreN)*2 arcs; add random
	// undirected core-core edges until we reach the target.
	b := graph.NewBuilder(n)
	type pair struct{ u, v graph.VertexID }
	seen := make(map[pair]struct{}, targetM)
	add := func(u, v graph.VertexID) error {
		if u == v {
			return nil
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		if _, ok := seen[pair{a, c}]; ok {
			return nil
		}
		seen[pair{a, c}] = struct{}{}
		return b.AddUndirected(u, v)
	}
	for _, e := range base.Edges() {
		if e.From < e.To { // each undirected edge appears in both directions; take one
			if err := add(e.From, e.To); err != nil {
				return nil, err
			}
		}
	}
	for b.NumEdges() < targetM {
		u := graph.VertexID(src.Intn(coreN))
		v := graph.VertexID(src.Intn(coreN))
		if err := add(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Parse converts a dataset name (case-sensitive, as printed in the paper)
// into a Dataset, returning ErrUnknownDataset for unknown names.
func Parse(name string) (Dataset, error) {
	for _, d := range Names() {
		if string(d) == name {
			return d, nil
		}
	}
	return "", fmt.Errorf("%w: %q", ErrUnknownDataset, name)
}

// SmallDatasets returns the datasets small enough for the paper's T = 1,000
// trial protocol (everything except the two web-scale graphs), sorted in
// catalog order.
func SmallDatasets() []Dataset {
	var out []Dataset
	for _, inf := range Catalog() {
		if !inf.Scaled {
			out = append(out, inf.Name)
		}
	}
	return out
}

// SortedCopy returns names sorted lexicographically; useful for deterministic
// map-driven output in tools.
func SortedCopy(names []Dataset) []Dataset {
	out := append([]Dataset(nil), names...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
