package data

import "imdist/internal/graph"

// karateEdges lists the 78 undirected edges of Zachary's Karate club network
// (34 vertices). The paper's Table 3 reports the network with m = 156, i.e.
// every undirected edge counted in both directions, which is how Karate()
// materializes it.
var karateEdges = [][2]graph.VertexID{
	{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 10},
	{0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31},
	{1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30},
	{2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32},
	{3, 7}, {3, 12}, {3, 13},
	{4, 6}, {4, 10},
	{5, 6}, {5, 10}, {5, 16},
	{6, 16},
	{8, 30}, {8, 32}, {8, 33},
	{9, 33},
	{13, 33},
	{14, 32}, {14, 33},
	{15, 32}, {15, 33},
	{18, 32}, {18, 33},
	{19, 33},
	{20, 32}, {20, 33},
	{22, 32}, {22, 33},
	{23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
	{24, 25}, {24, 27}, {24, 31},
	{25, 31},
	{26, 29}, {26, 33},
	{27, 33},
	{28, 31}, {28, 33},
	{29, 32}, {29, 33},
	{30, 32}, {30, 33},
	{31, 32}, {31, 33},
	{32, 33},
}

// Karate returns Zachary's Karate club network as a directed graph with both
// arc directions present (n = 34, m = 156), exactly the instance the paper
// calls "Karate".
func Karate() *graph.Graph {
	b := graph.NewBuilder(34)
	for _, e := range karateEdges {
		if err := b.AddUndirected(e[0], e[1]); err != nil {
			// The edge list is a compile-time constant over [0, 34); an error
			// here is a programming bug, not a runtime condition.
			panic("data: invalid embedded karate edge: " + err.Error())
		}
	}
	return b.Build()
}
