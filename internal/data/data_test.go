package data

import (
	"errors"
	"testing"

	"imdist/internal/graph"
)

func TestKarateMatchesTable3(t *testing.T) {
	g := Karate()
	if g.NumVertices() != 34 {
		t.Errorf("Karate n = %d, want 34", g.NumVertices())
	}
	if g.NumEdges() != 156 {
		t.Errorf("Karate m = %d, want 156", g.NumEdges())
	}
	// Table 3: maximum in- and out-degree are both 17.
	if g.MaxOutDegree() != 17 || g.MaxInDegree() != 17 {
		t.Errorf("Karate max degrees = (%d,%d), want (17,17)", g.MaxOutDegree(), g.MaxInDegree())
	}
	// The network is undirected: every arc has its reverse.
	for _, e := range g.Edges() {
		if !g.HasEdge(e.To, e.From) {
			t.Errorf("Karate missing reverse arc of (%d,%d)", e.From, e.To)
		}
	}
	// Connected as an undirected graph.
	if graph.LargestComponentSize(g) != 34 {
		t.Errorf("Karate largest component = %d, want 34", graph.LargestComponentSize(g))
	}
}

func TestKarateClusteringCoefficient(t *testing.T) {
	// Table 3 reports a clustering coefficient of 0.26 (average distance 2.41)
	// for Karate under the paper's definitions; our per-vertex mean clustering
	// is in the same regime (the classic reported value is ~0.57 for the mean
	// local coefficient and ~0.26 for transitivity, so accept a broad range
	// and pin the distance more tightly).
	s := graph.ComputeStats(Karate(), 0)
	if s.ClusteringCoefficient <= 0.2 || s.ClusteringCoefficient >= 0.7 {
		t.Errorf("Karate clustering coefficient = %v, expected within (0.2, 0.7)", s.ClusteringCoefficient)
	}
	if s.AverageDistance < 2.0 || s.AverageDistance > 2.8 {
		t.Errorf("Karate average distance = %v, paper reports 2.41", s.AverageDistance)
	}
}

func TestLoadKnownDatasets(t *testing.T) {
	opt := DefaultOptions()
	opt.ScaleDivisor = 256 // keep the web-scale surrogates tiny in unit tests
	cases := []struct {
		name    Dataset
		n, m    int
		tolFrac float64 // allowed relative deviation on m
	}{
		{KarateSet, 34, 156, 0},
		{BASparse, 1000, 999, 0},
		{BADense, 1000, 10879, 0.06},
		{Physicians, 241, 1098, 0.05},
		{CaGrQc, 5242, 28968, 0.02},
		{WikiVote, 7115, 103689, 0.05},
	}
	for _, c := range cases {
		g, err := Load(c.name, opt)
		if err != nil {
			t.Fatalf("Load(%s): %v", c.name, err)
		}
		if g.NumVertices() != c.n {
			t.Errorf("%s: n = %d, want %d", c.name, g.NumVertices(), c.n)
		}
		lo := int(float64(c.m) * (1 - c.tolFrac))
		hi := int(float64(c.m)*(1+c.tolFrac)) + 1
		if g.NumEdges() < lo || g.NumEdges() > hi {
			t.Errorf("%s: m = %d, want within [%d,%d]", c.name, g.NumEdges(), lo, hi)
		}
	}
}

func TestLoadScaledSurrogates(t *testing.T) {
	opt := Options{Seed: 1, ScaleDivisor: 512}
	for _, name := range []Dataset{ComYoutube, SocPokec} {
		g, err := Load(name, opt)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: empty surrogate", name)
		}
		// Average degree should be preserved approximately by the scaling.
		var info Info
		for _, inf := range Catalog() {
			if inf.Name == name {
				info = inf
			}
		}
		wantAvg := float64(info.PaperM) / float64(info.PaperN)
		gotAvg := float64(g.NumEdges()) / float64(g.NumVertices())
		if gotAvg < wantAvg*0.5 || gotAvg > wantAvg*1.5 {
			t.Errorf("%s: average degree %v, want approx %v", name, gotAvg, wantAvg)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	opt := Options{Seed: 77, ScaleDivisor: 256}
	a, err := Load(Physicians, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(Physicians, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same options produced different graphs: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load(Dataset("nope"), DefaultOptions()); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("unknown dataset err = %v, want ErrUnknownDataset", err)
	}
}

func TestParse(t *testing.T) {
	for _, name := range Names() {
		d, err := Parse(string(name))
		if err != nil || d != name {
			t.Errorf("Parse(%q) = %v, %v", name, d, err)
		}
	}
	if _, err := Parse("bogus"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("Parse(bogus) err = %v", err)
	}
}

func TestCatalogAndSmallDatasets(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d entries, want 8 (Table 3 rows)", len(cat))
	}
	small := SmallDatasets()
	for _, d := range small {
		if d == ComYoutube || d == SocPokec {
			t.Errorf("SmallDatasets includes web-scale dataset %s", d)
		}
	}
	if len(small) != 6 {
		t.Errorf("SmallDatasets has %d entries, want 6", len(small))
	}
}

func TestSortedCopy(t *testing.T) {
	in := []Dataset{WikiVote, KarateSet, BADense}
	out := SortedCopy(in)
	if out[0] != BADense || out[1] != KarateSet || out[2] != WikiVote {
		t.Errorf("SortedCopy = %v", out)
	}
	// Input untouched.
	if in[0] != WikiVote {
		t.Error("SortedCopy mutated its input")
	}
}
