// Package gen provides synthetic network generators. The paper evaluates on
// two Barabási–Albert graphs (BA_s and BA_d) and on real social networks; the
// generators here produce the former exactly and produce structured
// surrogates standing in for the latter (see internal/data and DESIGN.md for
// the substitution rationale).
package gen

import (
	"fmt"
	"math"

	"imdist/internal/graph"
	"imdist/internal/rng"
)

// BarabasiAlbert generates an undirected scale-free graph with n vertices by
// preferential attachment: every new vertex attaches to m existing vertices
// chosen with probability proportional to their degree. Each undirected edge
// is then assigned a uniformly random direction, matching the construction of
// BA_s (m=1) and BA_d (m=11) in Section 4.2.2 of the paper.
func BarabasiAlbert(n, m int, src rng.Source) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs n > 0, got %d", n)
	}
	if m <= 0 || m >= n {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs 0 < m < n, got m=%d n=%d", m, n)
	}
	// repeatedNodes implements preferential attachment by sampling uniformly
	// from the multiset of edge endpoints (each vertex appears once per unit
	// of degree).
	repeatedNodes := make([]graph.VertexID, 0, 2*n*m)
	type undirected struct{ u, v graph.VertexID }
	edges := make([]undirected, 0, n*m)

	// Start from a small seed clique of m+1 vertices so every new vertex can
	// find m distinct targets.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			edges = append(edges, undirected{graph.VertexID(u), graph.VertexID(v)})
			repeatedNodes = append(repeatedNodes, graph.VertexID(u), graph.VertexID(v))
		}
	}
	// Targets are kept in a slice (not a map) so that iteration order, and
	// hence the generated graph, is deterministic for a given Source.
	targets := make([]graph.VertexID, 0, m)
	contains := func(x graph.VertexID) bool {
		for _, t := range targets {
			if t == x {
				return true
			}
		}
		return false
	}
	for v := m + 1; v < n; v++ {
		targets = targets[:0]
		for len(targets) < m {
			t := repeatedNodes[src.Intn(len(repeatedNodes))]
			if !contains(t) {
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			edges = append(edges, undirected{graph.VertexID(v), t})
			repeatedNodes = append(repeatedNodes, graph.VertexID(v), t)
		}
	}

	b := graph.NewBuilder(n)
	for _, e := range edges {
		from, to := e.u, e.v
		if src.Float64() < 0.5 {
			from, to = to, from
		}
		if err := b.AddEdge(from, to); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// BarabasiAlbertUndirected generates the Barabási–Albert graph with both
// directions of every undirected edge present (2 arcs per edge). This variant
// is used when a workload calls for an undirected network, e.g. collaboration
// graphs such as the ca-GrQc surrogate.
func BarabasiAlbertUndirected(n, m int, src rng.Source) (*graph.Graph, error) {
	g, err := BarabasiAlbert(n, m, src)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	seen := make(map[int64]struct{}, g.NumEdges())
	for _, e := range g.Edges() {
		u, v := e.From, e.To
		if u == v {
			continue
		}
		a, c := u, v
		if a > c {
			a, c = c, a
		}
		key := int64(a)<<32 | int64(uint32(c))
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		if err := b.AddUndirected(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// ErdosRenyiGNM generates a directed graph with exactly m edges drawn
// uniformly at random without replacement from all ordered pairs (u, v),
// u != v.
func ErdosRenyiGNM(n, m int, src rng.Source) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: ErdosRenyiGNM needs n > 0, got %d", n)
	}
	maxEdges := n * (n - 1)
	if m < 0 || m > maxEdges {
		return nil, fmt.Errorf("gen: ErdosRenyiGNM needs 0 <= m <= n(n-1), got m=%d n=%d", m, n)
	}
	b := graph.NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	for b.NumEdges() < m {
		u := graph.VertexID(src.Intn(n))
		v := graph.VertexID(src.Intn(n))
		if u == v {
			continue
		}
		key := int64(u)<<32 | int64(uint32(v))
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		if err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// WattsStrogatz generates a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbours (k even), with each edge
// rewired with probability beta. The result is returned as a directed graph
// with both arc directions present.
func WattsStrogatz(n, k int, beta float64, src rng.Source) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: WattsStrogatz needs n > 0, got %d", n)
	}
	if k <= 0 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz needs even 0 < k < n, got k=%d n=%d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz needs beta in [0,1], got %v", beta)
	}
	type undirected struct{ u, v graph.VertexID }
	edgeSet := make(map[undirected]struct{}, n*k/2)
	normalize := func(u, v graph.VertexID) undirected {
		if u > v {
			u, v = v, u
		}
		return undirected{u, v}
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			edgeSet[normalize(graph.VertexID(i), graph.VertexID((i+j)%n))] = struct{}{}
		}
	}
	// Rewire.
	edges := make([]undirected, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	for _, e := range edges {
		if src.Float64() >= beta {
			continue
		}
		delete(edgeSet, e)
		for {
			w := graph.VertexID(src.Intn(n))
			if w == e.u {
				continue
			}
			cand := normalize(e.u, w)
			if _, exists := edgeSet[cand]; exists {
				continue
			}
			edgeSet[cand] = struct{}{}
			break
		}
	}
	b := graph.NewBuilder(n)
	for e := range edgeSet {
		if err := b.AddUndirected(e.u, e.v); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// CoreWhisker generates a graph with the core–whisker structure the paper
// uses to explain ca-GrQc's behaviour (Section 5.2.2): a densely connected
// scale-free "core" of coreN vertices (Barabási–Albert with coreM attachments)
// and tree-like "whiskers" hanging off core vertices until the total vertex
// count reaches n. Both arc directions are present, as in a collaboration
// network.
func CoreWhisker(n, coreN, coreM int, src rng.Source) (*graph.Graph, error) {
	if coreN <= coreM || coreN > n {
		return nil, fmt.Errorf("gen: CoreWhisker needs coreM < coreN <= n, got coreM=%d coreN=%d n=%d", coreM, coreN, n)
	}
	core, err := BarabasiAlbertUndirected(coreN, coreM, src)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(n)
	for _, e := range core.Edges() {
		if err := b.AddEdge(e.From, e.To); err != nil {
			return nil, err
		}
	}
	// Whisker vertices attach in short chains to randomly chosen existing
	// vertices, producing the tree-like periphery.
	for v := coreN; v < n; v++ {
		parent := graph.VertexID(src.Intn(v))
		if err := b.AddUndirected(graph.VertexID(v), parent); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// ScaleFreeDirected generates a directed scale-free graph with approximately
// m edges over n vertices where both in- and out-degree follow a power law.
// It is used for the Wiki-Vote, com-Youtube and soc-Pokec surrogates: edges
// are drawn by sampling endpoints from Zipf-like weights so that a small
// number of vertices acquire very high degree, matching the Δ+ / Δ− skew in
// Table 3.
func ScaleFreeDirected(n, m int, exponent float64, src rng.Source) (*graph.Graph, error) {
	if n <= 1 {
		return nil, fmt.Errorf("gen: ScaleFreeDirected needs n > 1, got %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("gen: ScaleFreeDirected needs m >= 0, got %d", m)
	}
	if exponent <= 0 {
		return nil, fmt.Errorf("gen: ScaleFreeDirected needs exponent > 0, got %v", exponent)
	}
	// Build a cumulative Zipf weight table over ranks 1..n; the i-th vertex
	// gets weight (i+1)^-exponent. Two independent random permutations decide
	// which vertex receives which rank for in- and out-degree so hubs differ.
	weights := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(i+1), exponent)
		weights[i] = w
		total += w
	}
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc / total
	}
	permOut := randomPermutation(n, src)
	permIn := randomPermutation(n, src)
	sample := func(perm []graph.VertexID) graph.VertexID {
		x := src.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return perm[lo]
	}
	b := graph.NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	attempts := 0
	maxAttempts := 20*m + 1000
	for b.NumEdges() < m && attempts < maxAttempts {
		attempts++
		u := sample(permOut)
		v := sample(permIn)
		if u == v {
			continue
		}
		key := int64(u)<<32 | int64(uint32(v))
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		if err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

func randomPermutation(n int, src rng.Source) []graph.VertexID {
	p := make([]graph.VertexID, n)
	for i := range p {
		p[i] = graph.VertexID(i)
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
