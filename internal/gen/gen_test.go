package gen

import (
	"testing"

	"imdist/internal/graph"
	"imdist/internal/rng"
)

func src(seed uint64) rng.Source { return rng.NewXoshiro(seed) }

func TestBarabasiAlbertSparse(t *testing.T) {
	g, err := BarabasiAlbert(1000, 1, src(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Errorf("n = %d, want 1000", g.NumVertices())
	}
	// m=1: seed clique contributes 0 edges for m+1=2 vertices (1 edge), then
	// n-m-1 vertices each add 1 edge: total = 1 + 998 = 999, matching BA_s.
	if g.NumEdges() != 999 {
		t.Errorf("m = %d, want 999 (BA_s)", g.NumEdges())
	}
}

func TestBarabasiAlbertDense(t *testing.T) {
	g, err := BarabasiAlbert(1000, 11, src(2))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Errorf("n = %d, want 1000", g.NumVertices())
	}
	// Seed clique of 12 vertices has 66 edges; remaining 988 vertices add 11
	// each: 66 + 10868 = 10934, close to the paper's 10,879 for BA_d (the
	// paper's generator differs slightly in seeding).
	if g.NumEdges() < 10000 || g.NumEdges() > 11500 {
		t.Errorf("m = %d, want approx 10,879 (BA_d)", g.NumEdges())
	}
}

func TestBarabasiAlbertScaleFreeSkew(t *testing.T) {
	g, err := BarabasiAlbert(2000, 2, src(3))
	if err != nil {
		t.Fatal(err)
	}
	// Preferential attachment must produce hubs: the maximum total degree
	// should far exceed the average degree (2m = 4).
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		d := g.OutDegree(graph.VertexID(v)) + g.InDegree(graph.VertexID(v))
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 20 {
		t.Errorf("max total degree = %d, expected a hub with degree >> 4", maxDeg)
	}
}

func TestBarabasiAlbertArgumentValidation(t *testing.T) {
	if _, err := BarabasiAlbert(0, 1, src(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BarabasiAlbert(10, 0, src(1)); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(10, 10, src(1)); err == nil {
		t.Error("m=n accepted")
	}
}

func TestBarabasiAlbertReproducible(t *testing.T) {
	a, err := BarabasiAlbert(500, 2, src(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(500, 2, src(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed produced different edge %d: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestBarabasiAlbertUndirected(t *testing.T) {
	g, err := BarabasiAlbertUndirected(300, 2, src(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if !g.HasEdge(e.To, e.From) {
			t.Fatalf("edge (%d,%d) has no reverse arc", e.From, e.To)
		}
	}
	if g.NumEdges()%2 != 0 {
		t.Errorf("undirected graph has odd arc count %d", g.NumEdges())
	}
}

func TestErdosRenyiGNM(t *testing.T) {
	g, err := ErdosRenyiGNM(100, 500, src(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 100 || g.NumEdges() != 500 {
		t.Errorf("size = (%d,%d), want (100,500)", g.NumVertices(), g.NumEdges())
	}
	// No self loops and no duplicate edges.
	seen := make(map[graph.Edge]bool)
	for _, e := range g.Edges() {
		if e.From == e.To {
			t.Errorf("self loop %v", e)
		}
		if seen[e] {
			t.Errorf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestErdosRenyiGNMValidation(t *testing.T) {
	if _, err := ErdosRenyiGNM(0, 1, src(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ErdosRenyiGNM(3, 100, src(1)); err == nil {
		t.Error("m > n(n-1) accepted")
	}
	if _, err := ErdosRenyiGNM(3, -1, src(1)); err == nil {
		t.Error("negative m accepted")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz(200, 4, 0.1, src(9))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 200 {
		t.Errorf("n = %d, want 200", g.NumVertices())
	}
	// The ring lattice has n*k/2 = 400 undirected edges = 800 arcs; rewiring
	// preserves the count.
	if g.NumEdges() != 800 {
		t.Errorf("arcs = %d, want 800", g.NumEdges())
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	if _, err := WattsStrogatz(10, 3, 0.1, src(1)); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := WattsStrogatz(10, 4, 1.5, src(1)); err == nil {
		t.Error("beta > 1 accepted")
	}
	if _, err := WattsStrogatz(0, 4, 0.5, src(1)); err == nil {
		t.Error("n = 0 accepted")
	}
}

func TestCoreWhisker(t *testing.T) {
	g, err := CoreWhisker(1000, 300, 3, src(11))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Errorf("n = %d, want 1000", g.NumVertices())
	}
	// The whole graph must be weakly connected: whiskers attach to existing
	// vertices and the BA core is connected.
	if got := graph.LargestComponentSize(g); got != 1000 {
		t.Errorf("largest component = %d, want 1000", got)
	}
}

func TestCoreWhiskerValidation(t *testing.T) {
	if _, err := CoreWhisker(100, 200, 3, src(1)); err == nil {
		t.Error("coreN > n accepted")
	}
	if _, err := CoreWhisker(100, 3, 3, src(1)); err == nil {
		t.Error("coreN <= coreM accepted")
	}
}

func TestScaleFreeDirected(t *testing.T) {
	g, err := ScaleFreeDirected(2000, 20000, 1.0, src(13))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Errorf("n = %d, want 2000", g.NumVertices())
	}
	if g.NumEdges() < 18000 {
		t.Errorf("m = %d, want close to 20000", g.NumEdges())
	}
	// Degree skew: the maximum in-degree should be far above the mean (~10).
	if g.MaxInDegree() < 50 {
		t.Errorf("MaxInDegree = %d, expected heavy skew", g.MaxInDegree())
	}
}

func TestScaleFreeDirectedValidation(t *testing.T) {
	if _, err := ScaleFreeDirected(1, 5, 1, src(1)); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ScaleFreeDirected(10, -1, 1, src(1)); err == nil {
		t.Error("m=-1 accepted")
	}
	if _, err := ScaleFreeDirected(10, 5, 0, src(1)); err == nil {
		t.Error("exponent=0 accepted")
	}
}
