package estimator

import (
	"errors"
	"math"
	"testing"

	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// ltChain returns 0 -> 1 -> 2 -> 3 with weight w on every edge (valid LT
// weights because every vertex has a single in-edge). The exact LT influence
// of vertex 0 is 1 + w + w^2 + w^3.
func ltChain(t testing.TB, w float64) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(4)
	for v := 0; v < 3; v++ {
		if err := b.AddEdge(graph.VertexID(v), graph.VertexID(v+1)); err != nil {
			t.Fatal(err)
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return w })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func TestLTEstimatorsUnbiasedOnChain(t *testing.T) {
	w := 0.5
	want := 1 + w + w*w + w*w*w
	ig := ltChain(t, w)
	cases := []struct {
		a       Approach
		samples int
	}{
		{Oneshot, 20000},
		{Snapshot, 20000},
		{RIS, 200000},
	}
	for _, c := range cases {
		est, err := New(c.a, Config{
			Graph:        ig,
			SampleNumber: c.samples,
			Source:       rng.NewXoshiro(7),
			Model:        diffusion.LT,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := est.Estimate(0)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%v LT estimate = %v, want approx %v", c.a, got, want)
		}
	}
}

func TestLTEstimatorRejectsInvalidWeights(t *testing.T) {
	// Three in-edges of weight 0.9 each sum to 2.7 > 1.
	b := graph.NewBuilder(4)
	for u := 0; u < 3; u++ {
		if err := b.AddEdge(graph.VertexID(u), 3); err != nil {
			t.Fatal(err)
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return 0.9 })
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Snapshot, Config{Graph: ig, SampleNumber: 4, Source: rng.NewXoshiro(1), Model: diffusion.LT})
	if !errors.Is(err, diffusion.ErrInvalidLTWeights) {
		t.Errorf("invalid LT weights err = %v", err)
	}
}

func TestLTGreedyBehaviourOnWeightedGraph(t *testing.T) {
	// On a weighted ring-with-chords graph the LT estimators must agree on
	// the marginal ranking of a hub versus a peripheral vertex, and
	// committing the hub must reduce its own marginal for the submodular
	// estimators. Weights are set to 1/(2·d⁻(v)) so that, unlike the iwc
	// extreme where every vertex always activates, propagation can die out.
	b := graph.NewBuilder(30)
	// Hub 0 points to many vertices; the rest form a sparse ring.
	for v := 1; v <= 10; v++ {
		if err := b.AddEdge(0, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < 30; v++ {
		if err := b.AddEdge(graph.VertexID(v), graph.VertexID((v+1)%30)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ig, err := graph.NewInfluenceGraph(g, func(_, v graph.VertexID) float64 {
		return 0.5 / float64(g.InDegree(v))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		a       Approach
		samples int
	}{{Snapshot, 2000}, {RIS, 50000}} {
		est, err := New(c.a, Config{Graph: ig, SampleNumber: c.samples, Source: rng.NewXoshiro(3), Model: diffusion.LT})
		if err != nil {
			t.Fatal(err)
		}
		hub := est.Estimate(0)
		leaf := est.Estimate(20)
		if hub <= leaf {
			t.Errorf("%v (LT): hub marginal %v <= leaf marginal %v", c.a, hub, leaf)
		}
		est.Update(0)
		if after := est.Estimate(0); after > hub/2 {
			t.Errorf("%v (LT): committed hub marginal did not drop: %v -> %v", c.a, hub, after)
		}
	}
}

func TestICAndLTDifferOnSharedInfluenceGraph(t *testing.T) {
	// IC and LT generally give different spreads for the same weighted graph
	// (IC tries every in-edge independently, LT at most one); verify the
	// estimators actually switch behaviour with the Model flag. Vertex 3 has
	// two in-edges of weight 0.5: IC activates it with probability 0.75 when
	// both parents are active, LT with probability 1.
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(u, _ graph.VertexID) float64 {
		if u == 0 {
			return 1.0
		}
		return 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	icEst, err := New(Oneshot, Config{Graph: ig, SampleNumber: 40000, Source: rng.NewXoshiro(5)})
	if err != nil {
		t.Fatal(err)
	}
	ltEst, err := New(Oneshot, Config{Graph: ig, SampleNumber: 40000, Source: rng.NewXoshiro(5), Model: diffusion.LT})
	if err != nil {
		t.Fatal(err)
	}
	ic := icEst.Estimate(0)
	lt := ltEst.Estimate(0)
	// IC: 1 + 1 + 1 + 0.75 = 3.75; LT: 1 + 1 + 1 + 1 = 4.
	if math.Abs(ic-3.75) > 0.05 {
		t.Errorf("IC estimate = %v, want approx 3.75", ic)
	}
	if math.Abs(lt-4.0) > 0.05 {
		t.Errorf("LT estimate = %v, want approx 4.0", lt)
	}
}
