package estimator

import (
	"testing"

	"imdist/internal/diffusion"
	"imdist/internal/gen"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// parallelTestGraph returns a 300-vertex Barabási–Albert influence graph.
// Under IC every edge has probability 0.1; under LT every in-edge of v has
// weight 0.9/indeg(v), which always sums to at most 1.
func parallelTestGraph(t testing.TB, model diffusion.Model) *graph.InfluenceGraph {
	t.Helper()
	g, err := gen.BarabasiAlbert(300, 3, rng.NewXoshiro(13))
	if err != nil {
		t.Fatal(err)
	}
	assign := func(_, _ graph.VertexID) float64 { return 0.1 }
	if model == diffusion.LT {
		assign = func(_, v graph.VertexID) float64 {
			return 0.9 / float64(len(g.InNeighbors(v)))
		}
	}
	ig, err := graph.NewInfluenceGraph(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func parallelSampleNumber(a Approach) int {
	if a == Oneshot {
		return 64 // β: simulations per Estimate call
	}
	return 256 // τ / θ: samples drawn in Build
}

// buildFingerprint builds an estimator with the given worker knob and returns
// its estimates over a fixed probe sequence (interleaved with Updates) plus
// its final cost. Two identical fingerprints mean the runs were
// byte-equivalent from the caller's point of view.
func buildFingerprint(t *testing.T, a Approach, model diffusion.Model, ig *graph.InfluenceGraph, workers int) ([]float64, diffusion.Cost) {
	t.Helper()
	est, err := New(a, Config{
		Graph:        ig,
		SampleNumber: parallelSampleNumber(a),
		Source:       rng.NewXoshiro(42),
		Model:        model,
		Workers:      workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for _, seed := range []graph.VertexID{0, 7, 31} {
		for v := 0; v < 16; v++ {
			out = append(out, est.Estimate(graph.VertexID(v)))
		}
		est.Update(seed)
	}
	return out, est.Cost()
}

// TestParallelBuildDeterministic asserts the tentpole's determinism guarantee
// at the estimator layer: with a fixed seed, a parallel build (Workers > 1)
// reproduces identical estimates and an identical merged cost across repeated
// runs AND across different parallel worker counts (2, 4, all CPUs), for all
// three approaches under both IC and LT. Running it under -race also
// exercises the concurrent Build paths.
func TestParallelBuildDeterministic(t *testing.T) {
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		ig := parallelTestGraph(t, model)
		for _, a := range All() {
			ref, refCost := buildFingerprint(t, a, model, ig, 4)
			for run, workers := range map[string]int{"repeat4": 4, "workers2": 2, "allCPUs": -1} {
				got, gotCost := buildFingerprint(t, a, model, ig, workers)
				if gotCost != refCost {
					t.Errorf("%v/%v %s: cost %+v != reference %+v", model, a, run, gotCost, refCost)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Errorf("%v/%v %s: estimate[%d] = %v != reference %v", model, a, run, i, got[i], ref[i])
						break
					}
				}
			}
		}
	}
}

// TestParallelCostMatchesSerialTotals checks exact cost accounting: the
// merged per-worker accumulators of a parallel Snapshot/RIS build must count
// the same sample-size totals a serial build of the same samples would (the
// snapshots/RR sets differ — parallel mode draws different random numbers —
// but for Snapshot the stored vertex count is τ·n regardless).
func TestParallelCostMatchesSerialTotals(t *testing.T) {
	ig := parallelTestGraph(t, diffusion.IC)
	est, err := New(Snapshot, Config{
		Graph:        ig,
		SampleNumber: 128,
		Source:       rng.NewXoshiro(5),
		Workers:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantVertices := int64(128 * ig.NumVertices())
	if got := est.Cost().SampleVertices; got != wantVertices {
		t.Errorf("parallel Snapshot build stored %d sample vertices, want %d", got, wantVertices)
	}
}

// TestRISPoolIndependentOfWorkers pins the unified RIS stream derivation:
// because every RR set draws from its own per-sample stream regardless of
// mode, a fixed seed must yield byte-identical estimates and costs across
// serial (0, 1) AND parallel (2, -1) worker counts. This is the guarantee
// the serving stack leans on — a sketch built at any Workers value answers
// identically.
func TestRISPoolIndependentOfWorkers(t *testing.T) {
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		ig := parallelTestGraph(t, model)
		ref, refCost := buildFingerprint(t, RIS, model, ig, 0)
		for _, workers := range []int{1, 2, 4, -1} {
			got, gotCost := buildFingerprint(t, RIS, model, ig, workers)
			if gotCost != refCost {
				t.Errorf("%v workers=%d: cost %+v != serial cost %+v", model, workers, gotCost, refCost)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("%v workers=%d: estimate[%d] = %v != serial %v", model, workers, i, got[i], ref[i])
					break
				}
			}
		}
	}
}

// TestSerialPathUnchanged pins the Workers knob's serial equivalence:
// Workers 0 and 1 must produce identical estimates and cost (for RIS both
// now run the unified per-sample stream derivation; for Oneshot and Snapshot
// both run the paper's sequential draws).
func TestSerialPathUnchanged(t *testing.T) {
	ig := parallelTestGraph(t, diffusion.IC)
	for _, a := range All() {
		ref, refCost := buildFingerprint(t, a, diffusion.IC, ig, 0)
		got, gotCost := buildFingerprint(t, a, diffusion.IC, ig, 1)
		if gotCost != refCost {
			t.Errorf("%v: Workers=1 cost %+v != Workers=0 cost %+v", a, gotCost, refCost)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("%v: Workers=1 estimate[%d] differs from Workers=0", a, i)
				break
			}
		}
	}
}
