package estimator

import (
	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/parallel"
	"imdist/internal/rng"
)

// snapshotEstimator implements Algorithm 3.3: Build samples τ live-edge
// graphs G(1..τ); Estimate returns the average marginal reachability
// (1/τ)·Σ_i [r_{G(i)}(S+v) − r_{G(i)}(S)]; Update applies the graph-reduction
// technique of Section 3.4.3, permanently marking the vertices reachable from
// the new seed as covered so later estimates traverse only the reduced
// subgraphs H(i). Because the snapshots are fixed, the estimator is monotone
// and submodular.
type snapshotEstimator struct {
	cfg       Config
	snapshots []*diffusion.Snapshot
	// covered[i] is a bitset over vertices: bit v is set when v is reachable
	// from the current seed set in snapshot i, i.e. v has been removed from
	// the reduced subgraph H(i).
	covered [][]uint64

	seeds []graph.VertexID

	// BFS scratch shared by Estimate/Update across snapshots.
	visited []uint32
	epoch   uint32
	queue   []graph.VertexID

	cost diffusion.Cost
}

func newSnapshot(cfg Config) *snapshotEstimator {
	n := cfg.Graph.NumVertices()
	words := (n + 63) / 64
	s := &snapshotEstimator{
		cfg:       cfg,
		snapshots: make([]*diffusion.Snapshot, cfg.SampleNumber),
		covered:   make([][]uint64, cfg.SampleNumber),
		visited:   make([]uint32, n),
		queue:     make([]graph.VertexID, 0, 64),
	}
	// Build: generate τ random graphs from G (Algorithm 3.3 line 2). Under
	// the LT model the random graphs come from the at-most-one-in-edge
	// live-edge characterization instead of independent edge coins.
	if cfg.parallelEnabled() {
		split := rng.SplitterFrom(rng.Xoshiro, cfg.Source)
		workers := parallel.Resolve(cfg.Workers, cfg.SampleNumber)
		parallel.ForCost(workers, cfg.SampleNumber, &s.cost, func(_, i int, cost *diffusion.Cost) {
			s.snapshots[i] = sampleSnapshot(cfg, split.Stream(uint64(i)), cost)
		})
		for i := range s.covered {
			s.covered[i] = make([]uint64, words)
		}
		return s
	}
	for i := 0; i < cfg.SampleNumber; i++ {
		s.snapshots[i] = sampleSnapshot(cfg, cfg.Source, &s.cost)
		s.covered[i] = make([]uint64, words)
	}
	return s
}

func (s *snapshotEstimator) Approach() Approach { return Snapshot }

func (s *snapshotEstimator) SampleNumber() int { return s.cfg.SampleNumber }

func (s *snapshotEstimator) isCovered(i int, v graph.VertexID) bool {
	return s.covered[i][v>>6]&(1<<(uint(v)&63)) != 0
}

func (s *snapshotEstimator) setCovered(i int, v graph.VertexID) {
	s.covered[i][v>>6] |= 1 << (uint(v) & 63)
}

func (s *snapshotEstimator) nextEpoch() uint32 {
	s.epoch++
	if s.epoch == 0 {
		for j := range s.visited {
			s.visited[j] = 0
		}
		s.epoch = 1
	}
	return s.epoch
}

// Estimate returns the average over snapshots of the number of vertices
// reachable from v that are not already reachable from the current seed set.
func (s *snapshotEstimator) Estimate(v graph.VertexID) float64 {
	total := 0
	seed := []graph.VertexID{v}
	for i, snap := range s.snapshots {
		epoch := s.nextEpoch()
		blocked := func(w graph.VertexID) bool { return s.isCovered(i, w) }
		total += snap.Reachable(seed, blocked, nil, s.visited, epoch, s.queue, &s.cost)
	}
	return float64(total) / float64(len(s.snapshots))
}

// Update marks, in every snapshot, the vertices reachable from the new seed
// as covered, reducing the subgraph traversed by subsequent estimates.
func (s *snapshotEstimator) Update(v graph.VertexID) {
	seed := []graph.VertexID{v}
	for i, snap := range s.snapshots {
		epoch := s.nextEpoch()
		blocked := func(w graph.VertexID) bool { return s.isCovered(i, w) }
		visit := func(w graph.VertexID) { s.setCovered(i, w) }
		snap.Reachable(seed, blocked, visit, s.visited, epoch, s.queue, &s.cost)
	}
	s.seeds = append(s.seeds, v)
}

func (s *snapshotEstimator) Seeds() []graph.VertexID { return s.seeds }

func (s *snapshotEstimator) Cost() diffusion.Cost { return s.cost }
