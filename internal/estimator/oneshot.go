package estimator

import (
	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// oneshotEstimator implements Algorithm 3.2: Build and Update do nothing;
// Estimate simulates the diffusion process β times from S+v and returns the
// average number of activated vertices. The estimate is unbiased but the
// estimator is neither monotone nor submodular because successive Estimate
// calls use independent randomness.
type oneshotEstimator struct {
	cfg   Config
	sim   simulator
	seeds []graph.VertexID
	// scratch holds seeds plus the candidate vertex to avoid reallocating on
	// every Estimate call.
	scratch []graph.VertexID
	cost    diffusion.Cost
	src     rng.Source
}

func newOneshot(cfg Config) *oneshotEstimator {
	return &oneshotEstimator{
		cfg:     cfg,
		sim:     newSimulator(cfg),
		scratch: make([]graph.VertexID, 0, 16),
		src:     cfg.Source,
	}
}

func (o *oneshotEstimator) Approach() Approach { return Oneshot }

func (o *oneshotEstimator) SampleNumber() int { return o.cfg.SampleNumber }

func (o *oneshotEstimator) Estimate(v graph.VertexID) float64 {
	o.scratch = append(o.scratch[:0], o.seeds...)
	o.scratch = append(o.scratch, v)
	return o.sim.EstimateInfluence(o.scratch, o.cfg.SampleNumber, o.src, &o.cost)
}

func (o *oneshotEstimator) Update(v graph.VertexID) {
	o.seeds = append(o.seeds, v)
}

func (o *oneshotEstimator) Seeds() []graph.VertexID { return o.seeds }

func (o *oneshotEstimator) Cost() diffusion.Cost { return o.cost }
