package estimator

import (
	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/parallel"
	"imdist/internal/rng"
)

// oneshotEstimator implements Algorithm 3.2: Build and Update do nothing;
// Estimate simulates the diffusion process β times from S+v and returns the
// average number of activated vertices. The estimate is unbiased but the
// estimator is neither monotone nor submodular because successive Estimate
// calls use independent randomness.
type oneshotEstimator struct {
	cfg   Config
	seeds []graph.VertexID
	// scratch holds seeds plus the candidate vertex to avoid reallocating on
	// every Estimate call.
	scratch []graph.VertexID
	cost    diffusion.Cost
	src     rng.Source

	// Exactly one of sim (serial mode) and sims (parallel mode: one
	// simulator's scratch buffers per worker) is allocated; both are set up
	// once because Estimate is called n times per greedy round.
	sim     simulator
	workers int
	sims    []simulator
	// totals and costs are per-worker accumulators reused across Estimate
	// calls so the hot path does not allocate.
	totals []int64
	costs  []diffusion.Cost
}

func newOneshot(cfg Config) *oneshotEstimator {
	o := &oneshotEstimator{
		cfg:     cfg,
		scratch: make([]graph.VertexID, 0, 16),
		src:     cfg.Source,
	}
	if cfg.parallelEnabled() {
		o.workers = parallel.Resolve(cfg.Workers, cfg.SampleNumber)
		o.sims = make([]simulator, o.workers)
		for w := range o.sims {
			o.sims[w] = newSimulator(cfg)
		}
		o.totals = make([]int64, o.workers)
		o.costs = make([]diffusion.Cost, o.workers)
	} else {
		o.sim = newSimulator(cfg)
	}
	return o
}

func (o *oneshotEstimator) Approach() Approach { return Oneshot }

func (o *oneshotEstimator) SampleNumber() int { return o.cfg.SampleNumber }

func (o *oneshotEstimator) Estimate(v graph.VertexID) float64 {
	o.scratch = append(o.scratch[:0], o.seeds...)
	o.scratch = append(o.scratch, v)
	if o.cfg.parallelEnabled() {
		return o.estimateParallel()
	}
	return o.sim.EstimateInfluence(o.scratch, o.cfg.SampleNumber, o.src, &o.cost)
}

// estimateParallel splits the β simulations of one estimate across the worker
// pool. Simulation i draws from its own stream derived from a base seed taken
// sequentially from the estimator's source, so the set of simulations — and
// the integer activation total they sum to — is independent of the worker
// count and of scheduling. Per-worker costs and totals are merged after the
// join in worker order.
func (o *oneshotEstimator) estimateParallel() float64 {
	split := rng.SplitterFrom(rng.Xoshiro, o.src)
	for w := 0; w < o.workers; w++ {
		o.totals[w] = 0
	}
	// Unlike the one-off Builds, Estimate is the greedy hot path (~n·k calls
	// per selection), so the per-worker accumulators are cached on the
	// estimator instead of going through parallel.ForCost's per-call slice.
	parallel.For(o.workers, o.cfg.SampleNumber, func(w, i int) {
		o.totals[w] += int64(o.sims[w].Run(o.scratch, split.Stream(uint64(i)), &o.costs[w]))
	})
	total := int64(0)
	for w := 0; w < o.workers; w++ {
		total += o.totals[w]
		o.cost.Add(o.costs[w])
		o.costs[w] = diffusion.Cost{}
	}
	return float64(total) / float64(o.cfg.SampleNumber)
}

func (o *oneshotEstimator) Update(v graph.VertexID) {
	o.seeds = append(o.seeds, v)
}

func (o *oneshotEstimator) Seeds() []graph.VertexID { return o.seeds }

func (o *oneshotEstimator) Cost() diffusion.Cost { return o.cost }
