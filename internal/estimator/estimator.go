// Package estimator implements the paper's unified greedy framework
// procedures Build / Estimate / Update (Algorithm 3.1) for the three
// algorithmic approaches: Oneshot (Algorithm 3.2), Snapshot (Algorithm 3.3,
// including the H(i) graph-reduction Update) and Reverse Influence Sampling
// (Algorithm 3.4). Every estimator accounts for the traversal cost and sample
// size it incurs, which is how the paper measures efficiency.
package estimator

import (
	"errors"
	"fmt"

	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/rng"
)

// Approach identifies one of the three algorithmic approaches.
type Approach int

const (
	// Oneshot runs Monte-Carlo simulations on the spot whenever an estimate
	// is needed; its sample number β is the number of simulations.
	Oneshot Approach = iota
	// Snapshot pre-samples live-edge random graphs in Build and shares them
	// across the greedy run; its sample number τ is the number of graphs.
	Snapshot
	// RIS pre-samples reverse-reachable sets in Build and reduces seed
	// selection to maximum coverage; its sample number θ is the number of
	// RR sets.
	RIS
)

// ErrUnknownApproach reports an unrecognised approach name or value.
var ErrUnknownApproach = errors.New("estimator: unknown approach")

// String returns the approach name as used in the paper.
func (a Approach) String() string {
	switch a {
	case Oneshot:
		return "Oneshot"
	case Snapshot:
		return "Snapshot"
	case RIS:
		return "RIS"
	default:
		return "unknown"
	}
}

// ParseApproach converts a case-exact approach name into an Approach.
func ParseApproach(s string) (Approach, error) {
	switch s {
	case "Oneshot", "oneshot":
		return Oneshot, nil
	case "Snapshot", "snapshot":
		return Snapshot, nil
	case "RIS", "ris":
		return RIS, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownApproach, s)
	}
}

// All returns the three approaches in the order the paper lists them.
func All() []Approach { return []Approach{Oneshot, Snapshot, RIS} }

// SampleSymbol returns the symbol the paper uses for the approach's sample
// number: β for Oneshot, τ for Snapshot, θ for RIS.
func (a Approach) SampleSymbol() string {
	switch a {
	case Oneshot:
		return "beta"
	case Snapshot:
		return "tau"
	case RIS:
		return "theta"
	default:
		return "s"
	}
}

// Estimator is the influence estimator abstraction of Algorithm 3.1. A fresh
// Estimator starts with an empty seed set; Estimate reports the (marginal)
// influence of adding one more vertex and Update commits a chosen seed.
//
// Estimators are not safe for concurrent use.
type Estimator interface {
	// Approach returns which of the three approaches this estimator
	// implements.
	Approach() Approach
	// SampleNumber returns the sample number the estimator was built with
	// (β, τ or θ).
	SampleNumber() int
	// Estimate returns an estimate used to rank vertex v as the next seed:
	// Oneshot returns an estimate of Inf(S+v); Snapshot and RIS return an
	// estimate of the marginal influence Inf(S+v) − Inf(S). Greedy seed
	// selection is identical under either convention (Section 3.2).
	Estimate(v graph.VertexID) float64
	// Update commits v as the next seed, so subsequent Estimate calls are
	// relative to the enlarged seed set.
	Update(v graph.VertexID)
	// Seeds returns the committed seed set in selection order. The returned
	// slice must not be modified.
	Seeds() []graph.VertexID
	// Cost returns the traversal cost and sample size accumulated so far
	// (building included).
	Cost() diffusion.Cost
}

// Config carries the inputs common to all estimator constructions.
type Config struct {
	// Graph is the influence graph to operate on.
	Graph *graph.InfluenceGraph
	// SampleNumber is β, τ or θ depending on the approach. It must be >= 1.
	SampleNumber int
	// Source provides the randomness for the estimator. RIS derives one
	// stream per RR set from this one (collapsing the paper's two-PRNG
	// discipline onto per-sample streams), so a single seed reproduces the
	// run at any worker count.
	Source rng.Source
	// Model selects the diffusion model; the zero value is the Independent
	// Cascade model used throughout the paper. Under the Linear Threshold
	// model the graph's edge probabilities are interpreted as LT weights and
	// must sum to at most 1 over each vertex's in-edges.
	Model diffusion.Model
	// Workers is the parallelism of the sampling engine. 0 and 1 run on the
	// calling goroutine; values greater than 1 fan the sampling work
	// (Snapshot's τ live-edge graphs, RIS's θ RR sets, Oneshot's β
	// simulations per estimate) out over that many worker goroutines;
	// negative values use one worker per available CPU.
	//
	// In parallel mode each sample draws from its own rng stream derived
	// from a base seed taken once from Source (see rng.Splitter), so runs
	// are byte-identical across repetitions and across different parallel
	// worker counts. RIS uses the per-sample stream derivation at every
	// worker count, so its RR pool does not depend on Workers at all;
	// Oneshot and Snapshot keep the paper's serial algorithms at Workers 0
	// and 1, drawing every random number sequentially from Source, and for
	// them only the serial/parallel mode switch changes which random numbers
	// a sample sees. Per-worker cost accumulators are merged after the join,
	// keeping cost accounting exact.
	Workers int
}

// parallelEnabled reports whether the config requests the parallel sampling
// discipline (per-sample derived streams). It depends only on the Workers
// knob's serial/parallel mode, not on the effective goroutine count, so the
// sampled randomness is machine-independent.
func (cfg Config) parallelEnabled() bool {
	return cfg.Workers < 0 || cfg.Workers > 1
}

// simulator abstracts forward Monte-Carlo simulation over diffusion models
// (diffusion.Simulator for IC, diffusion.LTSimulator for LT).
type simulator interface {
	Run(seeds []graph.VertexID, src rng.Source, cost *diffusion.Cost) int
	EstimateInfluence(seeds []graph.VertexID, count int, src rng.Source, cost *diffusion.Cost) float64
}

// reverseSampler abstracts reverse-reachable-set generation over diffusion
// models (diffusion.RRSampler for IC, diffusion.LTRRSampler for LT).
type reverseSampler interface {
	Sample(targetSrc, edgeSrc rng.Source, cost *diffusion.Cost) []graph.VertexID
}

func newSimulator(cfg Config) simulator {
	if cfg.Model == diffusion.LT {
		return diffusion.NewLTSimulator(cfg.Graph)
	}
	return diffusion.NewSimulator(cfg.Graph)
}

func newReverseSampler(cfg Config) reverseSampler {
	if cfg.Model == diffusion.LT {
		return diffusion.NewLTRRSampler(cfg.Graph)
	}
	return diffusion.NewRRSampler(cfg.Graph)
}

func sampleSnapshot(cfg Config, src rng.Source, cost *diffusion.Cost) *diffusion.Snapshot {
	if cfg.Model == diffusion.LT {
		return diffusion.SampleLTSnapshot(cfg.Graph, src, cost)
	}
	return diffusion.SampleSnapshot(cfg.Graph, src, cost)
}

// New builds an estimator of the requested approach. Building a Snapshot or
// RIS estimator performs the sampling work of the paper's Build procedure and
// charges it to the estimator's cost; building a Oneshot estimator does
// nothing beyond allocation.
func New(a Approach, cfg Config) (Estimator, error) {
	if cfg.Graph == nil {
		return nil, errors.New("estimator: nil influence graph")
	}
	if cfg.SampleNumber < 1 {
		return nil, fmt.Errorf("estimator: sample number must be >= 1, got %d", cfg.SampleNumber)
	}
	if cfg.Source == nil {
		return nil, errors.New("estimator: nil random source")
	}
	if cfg.Model == diffusion.LT {
		if err := diffusion.ValidateLTWeights(cfg.Graph); err != nil {
			return nil, err
		}
	}
	switch a {
	case Oneshot:
		return newOneshot(cfg), nil
	case Snapshot:
		return newSnapshot(cfg), nil
	case RIS:
		return newRIS(cfg), nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownApproach, int(a))
	}
}
