package estimator

import (
	"errors"
	"math"
	"testing"

	"imdist/internal/graph"
	"imdist/internal/rng"
)

// starGraph returns a star: vertex 0 points to vertices 1..n-1 with
// probability p; Inf(0) = 1 + (n-1)p and Inf(v) = 1 for leaves.
func starGraph(t testing.TB, n int, p float64) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return p })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

// twoStarGraph returns two disjoint stars: 0 -> {2..6} and 1 -> {7..11},
// all with probability 1, so Inf(0) = Inf(1) = 6 and the optimal 2-seed set
// is {0, 1} with influence 12.
func twoStarGraph(t testing.TB) *graph.InfluenceGraph {
	t.Helper()
	b := graph.NewBuilder(12)
	for v := 2; v <= 6; v++ {
		if err := b.AddEdge(0, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	for v := 7; v <= 11; v++ {
		if err := b.AddEdge(1, graph.VertexID(v)); err != nil {
			t.Fatal(err)
		}
	}
	ig, err := graph.NewInfluenceGraph(b.Build(), func(_, _ graph.VertexID) float64 { return 1.0 })
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func newEst(t testing.TB, a Approach, ig *graph.InfluenceGraph, samples int, seed uint64) Estimator {
	t.Helper()
	est, err := New(a, Config{Graph: ig, SampleNumber: samples, Source: rng.NewXoshiro(seed)})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestNewValidation(t *testing.T) {
	ig := starGraph(t, 5, 0.5)
	if _, err := New(Oneshot, Config{Graph: nil, SampleNumber: 1, Source: rng.NewXoshiro(1)}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(Oneshot, Config{Graph: ig, SampleNumber: 0, Source: rng.NewXoshiro(1)}); err == nil {
		t.Error("sample number 0 accepted")
	}
	if _, err := New(Oneshot, Config{Graph: ig, SampleNumber: 1, Source: nil}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(Approach(42), Config{Graph: ig, SampleNumber: 1, Source: rng.NewXoshiro(1)}); !errors.Is(err, ErrUnknownApproach) {
		t.Error("unknown approach accepted")
	}
}

func TestApproachStringAndParse(t *testing.T) {
	for _, a := range All() {
		parsed, err := ParseApproach(a.String())
		if err != nil || parsed != a {
			t.Errorf("round trip of %v failed", a)
		}
	}
	if _, err := ParseApproach("bogus"); !errors.Is(err, ErrUnknownApproach) {
		t.Error("bogus approach parsed")
	}
	if Oneshot.SampleSymbol() != "beta" || Snapshot.SampleSymbol() != "tau" || RIS.SampleSymbol() != "theta" {
		t.Error("sample symbols do not match the paper")
	}
	if Approach(9).String() != "unknown" || Approach(9).SampleSymbol() != "s" {
		t.Error("unknown approach formatting")
	}
}

func TestEstimateUnbiasedOnStar(t *testing.T) {
	// Star with 20 leaves, p = 0.25: Inf(0) = 1 + 5 = 6; leaves have Inf 1.
	ig := starGraph(t, 21, 0.25)
	want := 6.0
	tolerance := 0.4
	cases := []struct {
		a       Approach
		samples int
	}{
		{Oneshot, 4000},
		{Snapshot, 4000},
		{RIS, 200000},
	}
	for _, c := range cases {
		est := newEst(t, c.a, ig, c.samples, 99)
		got := est.Estimate(0)
		if math.Abs(got-want) > tolerance {
			t.Errorf("%v.Estimate(hub) = %v, want approx %v", c.a, got, want)
		}
		leaf := est.Estimate(5)
		if math.Abs(leaf-1.0) > 0.3 {
			t.Errorf("%v.Estimate(leaf) = %v, want approx 1", c.a, leaf)
		}
	}
}

func TestSampleNumberAndApproachAccessors(t *testing.T) {
	ig := starGraph(t, 5, 0.5)
	for _, a := range All() {
		est := newEst(t, a, ig, 7, 1)
		if est.Approach() != a {
			t.Errorf("Approach() = %v, want %v", est.Approach(), a)
		}
		if est.SampleNumber() != 7 {
			t.Errorf("%v SampleNumber() = %d, want 7", a, est.SampleNumber())
		}
		if len(est.Seeds()) != 0 {
			t.Errorf("%v fresh estimator has seeds %v", a, est.Seeds())
		}
	}
}

func TestUpdateTracksSeeds(t *testing.T) {
	ig := starGraph(t, 5, 0.5)
	for _, a := range All() {
		est := newEst(t, a, ig, 4, 2)
		est.Update(0)
		est.Update(3)
		seeds := est.Seeds()
		if len(seeds) != 2 || seeds[0] != 0 || seeds[1] != 3 {
			t.Errorf("%v Seeds() = %v, want [0 3]", a, seeds)
		}
	}
}

func TestMarginalGainDropsAfterUpdate(t *testing.T) {
	// On the two-star graph, after committing hub 0 the marginal value of hub
	// 0 itself must drop (to ~0 for Snapshot/RIS) while hub 1 stays high.
	ig := twoStarGraph(t)
	for _, c := range []struct {
		a       Approach
		samples int
	}{{Snapshot, 64}, {RIS, 5000}} {
		est := newEst(t, c.a, ig, c.samples, 5)
		before := est.Estimate(0)
		est.Update(0)
		after := est.Estimate(0)
		if after > before/2 {
			t.Errorf("%v: marginal of committed seed did not drop: before=%v after=%v", c.a, before, after)
		}
		other := est.Estimate(1)
		if other < before*0.5 {
			t.Errorf("%v: marginal of the other hub collapsed: %v", c.a, other)
		}
	}
}

func TestSnapshotSubmodularityProperty(t *testing.T) {
	// For fixed snapshots the marginal gain of any vertex must not increase
	// as the seed set grows (submodularity, Section 3.4.1).
	ig := twoStarGraph(t)
	est := newEst(t, Snapshot, ig, 32, 11)
	for v := graph.VertexID(0); v < 12; v++ {
		before := est.Estimate(v)
		func() {
			est2 := newEst(t, Snapshot, ig, 32, 11)
			est2.Update(0)
			after := est2.Estimate(v)
			if after > before+1e-9 {
				t.Errorf("Snapshot marginal of %d increased after adding a seed: %v -> %v", v, before, after)
			}
		}()
	}
}

func TestRISSubmodularityProperty(t *testing.T) {
	ig := twoStarGraph(t)
	base := newEst(t, RIS, ig, 2000, 13)
	grown := newEst(t, RIS, ig, 2000, 13)
	grown.Update(0)
	for v := graph.VertexID(0); v < 12; v++ {
		if grown.Estimate(v) > base.Estimate(v)+1e-9 {
			t.Errorf("RIS marginal of %d increased after adding a seed", v)
		}
	}
}

func TestRISCoveredFraction(t *testing.T) {
	ig := twoStarGraph(t)
	est := newEst(t, RIS, ig, 1000, 17)
	ris := est.(*risEstimator)
	if ris.CoveredFraction() != 0 {
		t.Errorf("fresh estimator covered fraction = %v, want 0", ris.CoveredFraction())
	}
	est.Update(0)
	est.Update(1)
	// Hubs 0 and 1 cover every RR set targeted at vertices 0..11 except...
	// actually every vertex is reachable from one of the hubs, so coverage
	// must be 1.
	if got := ris.CoveredFraction(); got != 1 {
		t.Errorf("covered fraction after choosing both hubs = %v, want 1", got)
	}
}

func TestCostAccountingMonotone(t *testing.T) {
	ig := starGraph(t, 30, 0.2)
	for _, a := range All() {
		est := newEst(t, a, ig, 50, 3)
		c0 := est.Cost()
		_ = est.Estimate(0)
		c1 := est.Cost()
		if c1.Traversal() < c0.Traversal() {
			t.Errorf("%v: traversal cost decreased after Estimate", a)
		}
		switch a {
		case Oneshot:
			if c0.Traversal() != 0 {
				t.Errorf("Oneshot Build should cost nothing, got %+v", c0)
			}
			if c1.SampleSize() != 0 {
				t.Errorf("Oneshot stores no samples, got %+v", c1)
			}
		case Snapshot, RIS:
			if c0.SampleSize() == 0 {
				t.Errorf("%v Build should store samples, got %+v", a, c0)
			}
		}
	}
}

func TestSnapshotSampleSizeMatchesExpectation(t *testing.T) {
	// Expected sample size per snapshot is m̃ = Σ p(e) live edges plus n
	// stored vertices. With p = 1 the count is deterministic.
	ig := starGraph(t, 10, 1.0)
	est := newEst(t, Snapshot, ig, 8, 1)
	cost := est.Cost()
	if cost.SampleVertices != 8*10 {
		t.Errorf("SampleVertices = %d, want 80", cost.SampleVertices)
	}
	if cost.SampleEdges != 8*9 {
		t.Errorf("SampleEdges = %d, want 72", cost.SampleEdges)
	}
}

func TestRISSampleSizeIsTotalRRSetSize(t *testing.T) {
	ig := starGraph(t, 10, 1.0)
	est := newEst(t, RIS, ig, 100, 1)
	ris := est.(*risEstimator)
	total := 0
	for _, set := range ris.rrSets {
		total += len(set)
	}
	if est.Cost().SampleVertices != int64(total) {
		t.Errorf("SampleVertices = %d, want %d", est.Cost().SampleVertices, total)
	}
	if est.Cost().SampleEdges != 0 {
		t.Errorf("RIS stores vertices only, SampleEdges = %d", est.Cost().SampleEdges)
	}
}

func TestRISEstimateIsConstantTime(t *testing.T) {
	// Estimate must not change the cost counters for RIS (all work is done in
	// Build/Update), matching the paper's accounting where RIS traversal cost
	// is charged to RR-set generation.
	ig := starGraph(t, 10, 0.5)
	est := newEst(t, RIS, ig, 100, 1)
	before := est.Cost()
	for v := graph.VertexID(0); v < 10; v++ {
		_ = est.Estimate(v)
	}
	if est.Cost() != before {
		t.Errorf("RIS Estimate changed cost: %+v -> %+v", before, est.Cost())
	}
}

func TestEstimatorsReproducibleWithSameSeed(t *testing.T) {
	ig := twoStarGraph(t)
	for _, a := range All() {
		e1 := newEst(t, a, ig, 64, 42)
		e2 := newEst(t, a, ig, 64, 42)
		for v := graph.VertexID(0); v < 12; v++ {
			if e1.Estimate(v) != e2.Estimate(v) {
				t.Errorf("%v: same seed produced different estimates for %d", a, v)
			}
		}
	}
}
