package estimator

import (
	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/parallel"
	"imdist/internal/rng"
)

// risEstimator implements Algorithm 3.4: Build draws θ reverse-reachable sets
// R; Estimate(v) returns n·F_R(v), where F_R(v) is the fraction of RR sets
// not yet covered by the current seed set that contain v (the marginal
// coverage); Update removes the RR sets containing the new seed from further
// consideration. The estimator is the stochastic-maximum-coverage reduction
// of Borgs et al. and is monotone and submodular.
type risEstimator struct {
	cfg Config

	// rrSets holds the sampled RR sets.
	rrSets [][]graph.VertexID
	// memberOf[v] lists the indices of RR sets containing v.
	memberOf [][]int32
	// coveredSet[i] is true once an RR set has been covered by a chosen seed.
	coveredSet []bool
	// coveredCount is the number of true entries in coveredSet, kept
	// incrementally so CoveredFraction is O(1).
	coveredCount int
	// coverCount[v] is the number of not-yet-covered RR sets containing v,
	// kept incrementally so Estimate is O(1).
	coverCount []int32

	seeds []graph.VertexID
	cost  diffusion.Cost
}

func newRIS(cfg Config) *risEstimator {
	n := cfg.Graph.NumVertices()
	r := &risEstimator{
		cfg:        cfg,
		rrSets:     make([][]graph.VertexID, cfg.SampleNumber),
		memberOf:   make([][]int32, n),
		coveredSet: make([]bool, cfg.SampleNumber),
		coverCount: make([]int32, n),
	}
	r.build()
	// Index the RR sets in sample order; the membership lists and coverage
	// counts are therefore identical however the sets were generated.
	for i, set := range r.rrSets {
		for _, v := range set {
			r.memberOf[v] = append(r.memberOf[v], int32(i))
			r.coverCount[v]++
		}
	}
	return r
}

// build draws the θ RR sets. Sample i draws both its random target and its
// edge coin flips from its own stream derived from a splitter seeded once
// from the configured source (Section 4.1's two-PRNG discipline collapsed
// onto per-sample streams), so the pool of RR sets — and hence every later
// estimate — is identical for every Workers value: serial and parallel runs
// of the same seed produce byte-identical RR pools. Workers 0 and 1 run the
// loop on the calling goroutine; larger values fan the samples out over a
// worker pool, each worker owning one sampler (scratch buffers) and one cost
// accumulator, merged exactly after the join.
func (r *risEstimator) build() {
	split := rng.SplitterFrom(rng.Xoshiro, r.cfg.Source)
	workers := parallel.Resolve(r.cfg.Workers, r.cfg.SampleNumber)
	samplers := make([]reverseSampler, workers)
	for w := range samplers {
		samplers[w] = newReverseSampler(r.cfg)
	}
	parallel.ForCost(workers, r.cfg.SampleNumber, &r.cost, func(w, i int, cost *diffusion.Cost) {
		src := split.Stream(uint64(i))
		r.rrSets[i] = samplers[w].Sample(src, src, cost)
	})
}

func (r *risEstimator) Approach() Approach { return RIS }

func (r *risEstimator) SampleNumber() int { return r.cfg.SampleNumber }

// Estimate returns n · (marginal coverage of v) / θ, an unbiased estimate of
// the marginal influence of v with respect to the current seed set.
func (r *risEstimator) Estimate(v graph.VertexID) float64 {
	n := float64(r.cfg.Graph.NumVertices())
	return n * float64(r.coverCount[v]) / float64(r.cfg.SampleNumber)
}

// Update removes every RR set containing the new seed from the collection
// (Algorithm 3.4 line 8), decrementing the coverage counts of their members.
func (r *risEstimator) Update(v graph.VertexID) {
	for _, idx := range r.memberOf[v] {
		if r.coveredSet[idx] {
			continue
		}
		r.coveredSet[idx] = true
		r.coveredCount++
		for _, u := range r.rrSets[idx] {
			r.coverCount[u]--
		}
	}
	r.seeds = append(r.seeds, v)
}

func (r *risEstimator) Seeds() []graph.VertexID { return r.seeds }

func (r *risEstimator) Cost() diffusion.Cost { return r.cost }

// CoveredFraction returns the fraction of RR sets covered by the current seed
// set, i.e. F_R(S); n times this value is the running influence estimate of
// the selected seeds. It is exposed for the influence-oracle reuse described
// in Section 5.2. The covered count is maintained by Update, so the call is
// O(1).
func (r *risEstimator) CoveredFraction() float64 {
	return float64(r.coveredCount) / float64(len(r.coveredSet))
}
