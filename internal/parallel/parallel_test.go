package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct {
		workers, n, want int
	}{
		{0, 100, 1},
		{1, 100, 1},
		{4, 100, 4},
		{4, 2, 2},
		{4, 0, 1},
		{8, 8, 8},
	}
	for _, c := range cases {
		if got := Resolve(c.workers, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
	if got := Resolve(-1, 1<<30); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-1, big) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestForCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		const n = 1000
		var hits [n]atomic.Int32
		For(workers, n, func(_, i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d processed %d times", workers, i, got)
			}
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const workers, n = 4, 256
	var perWorker [workers]atomic.Int32
	For(workers, n, func(w, _ int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
			return
		}
		perWorker[w].Add(1)
	})
	total := int32(0)
	for w := range perWorker {
		total += perWorker[w].Load()
	}
	if total != n {
		t.Fatalf("processed %d items, want %d", total, n)
	}
}

func TestForZeroItems(t *testing.T) {
	called := false
	For(4, 0, func(_, _ int) { called = true })
	if called {
		t.Fatal("body called for n = 0")
	}
}
