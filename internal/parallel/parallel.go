// Package parallel provides the small worker-pool primitive the sampling
// engines fan out on: a bounded set of goroutines pulling sample indices from
// a shared counter. Work is identified purely by its index, so callers that
// derive their randomness per index (see rng.Splitter) and write results into
// per-index slots produce output independent of scheduling and of the exact
// worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"imdist/internal/diffusion"
)

// Resolve normalizes a Workers knob into an effective goroutine count for n
// independent work items: values of 0 or 1 mean serial execution, negative
// values mean one worker per available CPU (GOMAXPROCS), and the result is
// never larger than n or smaller than 1.
func Resolve(workers, n int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if n < 1 {
		n = 1
	}
	if workers > n {
		workers = n
	}
	return workers
}

// For runs body(worker, index) for every index in [0, n) across the given
// number of worker goroutines (already normalized by Resolve). Indices are
// handed out dynamically in small contiguous chunks from a shared atomic
// counter, so workloads with skewed per-index cost balance automatically
// while cheap per-index workloads (tiny RR sets) do not contend on the
// counter. body receives the worker id in [0, workers) so callers can keep
// per-worker accumulators (cost counters, scratch samplers) without locking.
// For returns after every index has been processed.
//
// With workers == 1 the loop runs on the calling goroutine with no
// synchronization overhead.
func For(workers, n int, body func(worker, index int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	// Aim for ~16 chunks per worker: enough granularity to balance skew,
	// few enough atomic operations to be invisible next to the work itself.
	chunk := n / (workers * 16)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					body(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ForCost runs body like For, additionally giving each worker its own
// diffusion.Cost accumulator and merging them into total (in worker order)
// after the join. Because the counters are int64, the merged totals are exact
// and independent of how indices were distributed — this is the shared cost
// discipline of every parallel sampling engine.
func ForCost(workers, n int, total *diffusion.Cost, body func(worker, index int, cost *diffusion.Cost)) {
	costs := make([]diffusion.Cost, workers)
	For(workers, n, func(w, i int) { body(w, i, &costs[w]) })
	for w := range costs {
		total.Add(costs[w])
	}
}
