package sketchio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"imdist/internal/core"
	"imdist/internal/data"
	"imdist/internal/diffusion"
	"imdist/internal/graph"
	"imdist/internal/rng"
	"imdist/internal/workload"
)

func karateOracle(t testing.TB, sets int, seed uint64) *core.Oracle {
	t.Helper()
	ig, err := workload.Assign(data.Karate(), workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.NewOracleParallelSeeded(ig, diffusion.IC, sets, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func encode(t testing.TB, o *core.Oracle) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, o); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	o := karateOracle(t, 5000, 42)
	raw := encode(t, o)
	if got, want := int64(len(raw)), EncodedSize(o); got != want {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", got, want)
	}
	loaded, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	assertOraclesEqual(t, o, loaded)
	if loaded.BuildSeed() != 42 {
		t.Errorf("BuildSeed = %d, want 42", loaded.BuildSeed())
	}
	if loaded.Model() != diffusion.IC {
		t.Errorf("Model = %v, want IC", loaded.Model())
	}
}

// assertOraclesEqual checks the acceptance bar: a loaded sketch must answer
// byte-identically to the oracle it was saved from.
func assertOraclesEqual(t *testing.T, want, got *core.Oracle) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumSets() != want.NumSets() {
		t.Fatalf("shape: got n=%d R=%d, want n=%d R=%d",
			got.NumVertices(), got.NumSets(), want.NumVertices(), want.NumSets())
	}
	for _, k := range []int{1, 2, 4, 8} {
		if !reflect.DeepEqual(got.GreedySeeds(k), want.GreedySeeds(k)) {
			t.Fatalf("GreedySeeds(%d) diverged after round trip", k)
		}
	}
	seedSets := [][]graph.VertexID{{0}, {1, 2, 3}, {0, 33}, {5, 6, 7, 8, 9}}
	for _, seeds := range seedSets {
		a, err1 := want.Influence(seeds)
		b, err2 := got.Influence(seeds)
		if err1 != nil || err2 != nil {
			t.Fatalf("Influence errors: %v, %v", err1, err2)
		}
		if a != b {
			t.Fatalf("Influence(%v): %v != %v", seeds, a, b)
		}
	}
	wv, wi := want.TopSingleVertices(5)
	gv, gi := got.TopSingleVertices(5)
	if !reflect.DeepEqual(wv, gv) || !reflect.DeepEqual(wi, gi) {
		t.Fatal("TopSingleVertices diverged after round trip")
	}
}

func TestRoundTripLT(t *testing.T) {
	ig, err := workload.Assign(data.Karate(), workload.IWC, nil)
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.NewOracleForModel(ig, diffusion.LT, 2000, rng.NewXoshiro(7))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(bytes.NewReader(encode(t, o)))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Model() != diffusion.LT {
		t.Errorf("Model = %v, want LT", loaded.Model())
	}
	assertOraclesEqual(t, o, loaded)
}

func TestWriteFileReadFile(t *testing.T) {
	o := karateOracle(t, 3000, 9)
	path := filepath.Join(t.TempDir(), "karate.sketch")
	if err := WriteFile(path, o); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertOraclesEqual(t, o, loaded)
	// No stray temp files left behind by the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("expected only the sketch in the temp dir, found %d entries", len(entries))
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	o := karateOracle(t, 200, 3)
	raw := encode(t, o)
	// Every proper prefix must fail with an error, never panic.
	for cut := 0; cut < len(raw); cut++ {
		if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(raw))
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	o := karateOracle(t, 100, 5)
	raw := encode(t, o)
	for pos := 0; pos < len(raw); pos++ {
		for bit := 0; bit < 8; bit += 3 {
			mut := bytes.Clone(raw)
			mut[pos] ^= 1 << bit
			if _, err := Decode(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", pos, bit)
			}
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	// Garbage after the checksum is ignored by Decode (streams may carry
	// framing), but garbage inside the declared payload is not: stretch the
	// payload length and verify rejection.
	o := karateOracle(t, 50, 1)
	raw := encode(t, o)
	mut := bytes.Clone(raw)
	binary.LittleEndian.PutUint64(mut[32:], binary.LittleEndian.Uint64(mut[32:])+4)
	if _, err := Decode(bytes.NewReader(mut)); err == nil {
		t.Fatal("stretched payload accepted")
	}
}

func TestDecodeRejectsBadHeaders(t *testing.T) {
	o := karateOracle(t, 50, 1)
	raw := encode(t, o)
	cases := []struct {
		name    string
		mutate  func(b []byte)
		wantErr error
	}{
		{"magic", func(b []byte) { b[0] = 'X' }, ErrBadMagic},
		{"version", func(b []byte) { binary.LittleEndian.PutUint16(b[4:], 99) }, ErrVersion},
		{"model", func(b []byte) { b[6] = 7 }, ErrCorrupt},
		{"reserved", func(b []byte) { b[7] = 1 }, ErrCorrupt},
		{"zero-n", func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 0) }, ErrCorrupt},
		{"huge-n", func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) }, ErrCorrupt},
		{"zero-sets", func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 0) }, ErrCorrupt},
		{"payload-too-small", func(b []byte) { binary.LittleEndian.PutUint64(b[32:], 3) }, ErrCorrupt},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mut := bytes.Clone(raw)
			c.mutate(mut)
			_, err := Decode(bytes.NewReader(mut))
			if !errors.Is(err, c.wantErr) {
				t.Errorf("err = %v, want %v", err, c.wantErr)
			}
		})
	}
}

func TestDecodeRejectsOutOfRangeVertex(t *testing.T) {
	// Hand-build a structurally valid sketch whose record references vertex
	// 9 on a 3-vertex graph, with a correct checksum, so only the bounds
	// check can catch it.
	var payload bytes.Buffer
	binary.Write(&payload, binary.LittleEndian, uint32(1))
	binary.Write(&payload, binary.LittleEndian, uint32(9))
	raw := buildSketch(t, 3, 1, payload.Bytes())
	_, err := Decode(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsOversizedRecordCount(t *testing.T) {
	// count > n is impossible for a set of distinct vertices.
	var payload bytes.Buffer
	binary.Write(&payload, binary.LittleEndian, uint32(4))
	for i := 0; i < 4; i++ {
		binary.Write(&payload, binary.LittleEndian, uint32(0))
	}
	raw := buildSketch(t, 3, 1, payload.Bytes())
	_, err := Decode(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

// buildSketch assembles a syntactically well-formed sketch with a valid
// trailing checksum around an arbitrary payload.
func buildSketch(t *testing.T, n, numSets uint64, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	hdr := make([]byte, headerLen)
	copy(hdr, magic)
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	binary.LittleEndian.PutUint64(hdr[16:], n)
	binary.LittleEndian.PutUint64(hdr[24:], numSets)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(payload)))
	buf.Write(hdr)
	buf.Write(payload)
	sum := crc32.Checksum(buf.Bytes(), castagnoliTab)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	buf.Write(tail[:])
	return buf.Bytes()
}

func FuzzDecode(f *testing.F) {
	o := karateOracle(f, 20, 2)
	var buf bytes.Buffer
	if err := Encode(&buf, o); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoding hostile bytes must never panic; errors are expected.
		o, err := DecodeBytes(data)
		if err == nil && o == nil {
			t.Error("nil oracle without error")
		}
	})
}

func BenchmarkEncode(b *testing.B) {
	o := karateOracle(b, 100000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	o := karateOracle(b, 100000, 1)
	var buf bytes.Buffer
	if err := Encode(&buf, o); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBytes(raw); err != nil {
			b.Fatal(err)
		}
	}
}
