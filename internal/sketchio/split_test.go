package sketchio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"imdist/internal/core"
	"imdist/internal/graph"
)

func TestLineageRoundTrip(t *testing.T) {
	o := karateOracle(t, 300, 11)
	lineage := core.ShardLineage{Index: 2, Count: 5, TotalSets: 2000}
	if err := o.SetShardLineage(lineage); err != nil {
		t.Fatal(err)
	}
	raw := encode(t, o)
	if got, want := int64(len(raw)), EncodedSize(o); got != want {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", got, want)
	}
	loaded, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.ShardLineage(); got != lineage {
		t.Errorf("decoded lineage %+v, want %+v", got, lineage)
	}
	assertOraclesEqual(t, o, loaded)

	// The mapped loader must surface the same lineage.
	path := filepath.Join(t.TempDir(), "shard.sketch")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.Oracle().ShardLineage(); got != lineage {
		t.Errorf("mapped lineage %+v, want %+v", got, lineage)
	}

	// Inspect reports the lineage section and survives the shifted offsets.
	fi, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Corrupt {
		t.Fatalf("sharded sketch reported corrupt: %+v", fi.Sections)
	}
	if fi.Shard != lineage {
		t.Errorf("Inspect lineage %+v, want %+v", fi.Shard, lineage)
	}
	if len(fi.Sections) != 4 || fi.Sections[1].Name != "lineage" {
		t.Errorf("sections = %+v, want header/lineage/payload/checksum", fi.Sections)
	}
}

func TestDecodeRejectsBadLineage(t *testing.T) {
	o := karateOracle(t, 300, 11)
	if err := o.SetShardLineage(core.ShardLineage{Index: 0, Count: 2, TotalSets: 600}); err != nil {
		t.Fatal(err)
	}
	raw := encode(t, o)
	corrupt := func(mutate func([]byte)) error {
		c := bytes.Clone(raw)
		mutate(c)
		// Refresh the trailing CRC so only the lineage check can fire.
		fixCRC(c)
		_, err := Decode(bytes.NewReader(c))
		return err
	}
	// Index >= count.
	if err := corrupt(func(c []byte) { c[40] = 9 }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("index>=count err = %v", err)
	}
	// Zero shard count.
	if err := corrupt(func(c []byte) { c[48] = 0 }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("zero count err = %v", err)
	}
	// Fleet total below the shard's own set count.
	if err := corrupt(func(c []byte) { c[56], c[57] = 10, 0 }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("small total err = %v", err)
	}
	// Unknown flag bits are rejected even with a valid extension.
	if err := corrupt(func(c []byte) { c[7] |= 0x80 }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown flag err = %v", err)
	}
}

// fixCRC recomputes the trailing CRC-32C over everything before it.
func fixCRC(c []byte) {
	sum := crc32.Checksum(c[:len(c)-4], castagnoliTab)
	binary.LittleEndian.PutUint32(c[len(c)-4:], sum)
}

func TestSplitSketchRoundTrip(t *testing.T) {
	o := karateOracle(t, 1000, 7)
	dir := t.TempDir()
	in := filepath.Join(dir, "whole.sketch")
	if err := WriteFile(in, o); err != nil {
		t.Fatal(err)
	}
	const blockSize = 128 // 1000 sets -> 8 blocks
	for _, shards := range []int{1, 2, 4, 7} {
		paths, err := splitSketch(in, filepath.Join(dir, "part"), shards, blockSize)
		if err != nil {
			t.Fatalf("split into %d: %v", shards, err)
		}
		if len(paths) != shards {
			t.Fatalf("split into %d returned %d paths", shards, len(paths))
		}
		totalSets := 0
		for i, p := range paths {
			shard, err := ReadFile(p)
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
			l := shard.ShardLineage()
			want := core.ShardLineage{Index: i, Count: shards, TotalSets: 1000}
			if l != want {
				t.Errorf("shard %d lineage %+v, want %+v", i, l, want)
			}
			if shard.NumVertices() != o.NumVertices() || shard.Model() != o.Model() || shard.BuildSeed() != o.BuildSeed() {
				t.Errorf("shard %d identity drifted", i)
			}
			// Shard i's sets are the contiguous slice of the original pool,
			// record for record.
			for j := 0; j < shard.NumSets(); j++ {
				wantSet := o.RRSet(totalSets + j)
				gotSet := shard.RRSet(j)
				if len(gotSet) != len(wantSet) {
					t.Fatalf("shard %d set %d: %d members, want %d", i, j, len(gotSet), len(wantSet))
				}
				for k := range wantSet {
					if gotSet[k] != wantSet[k] {
						t.Fatalf("shard %d set %d member %d: %d, want %d", i, j, k, gotSet[k], wantSet[k])
					}
				}
			}
			totalSets += shard.NumSets()
		}
		if totalSets != 1000 {
			t.Errorf("split into %d covers %d sets, want 1000", shards, totalSets)
		}
	}
}

// TestSplitCoverageMergesExactly is the distribution contract in miniature:
// summing per-shard coverage counts and dividing once by the fleet total
// reproduces the unsplit oracle's influence bit for bit.
func TestSplitCoverageMergesExactly(t *testing.T) {
	o := karateOracle(t, 1000, 13)
	dir := t.TempDir()
	in := filepath.Join(dir, "whole.sketch")
	if err := WriteFile(in, o); err != nil {
		t.Fatal(err)
	}
	paths, err := splitSketch(in, filepath.Join(dir, "part"), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []graph.VertexID{0, 33, 5}
	var hits int64
	for _, p := range paths {
		shard, err := ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := shard.Coverage(seeds)
		if err != nil {
			t.Fatal(err)
		}
		hits += c
	}
	merged := float64(o.NumVertices()) * float64(hits) / float64(1000)
	want, err := o.Influence(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if merged != want {
		t.Errorf("merged influence %v, want %v", merged, want)
	}
}

func TestSplitSketchErrors(t *testing.T) {
	o := karateOracle(t, 256, 3)
	dir := t.TempDir()
	in := filepath.Join(dir, "whole.sketch")
	if err := WriteFile(in, o); err != nil {
		t.Fatal(err)
	}
	// More shards than blocks.
	if _, err := splitSketch(in, filepath.Join(dir, "p"), 5, 64); !errors.Is(err, ErrTooManyShards) {
		t.Errorf("overslice err = %v", err)
	}
	// Nonsense shard count.
	if _, err := splitSketch(in, filepath.Join(dir, "p"), 0, 64); err == nil {
		t.Error("0 shards accepted")
	}
	// Splitting a shard again is refused.
	paths, err := splitSketch(in, filepath.Join(dir, "p"), 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := splitSketch(paths[0], filepath.Join(dir, "q"), 2, 64); !errors.Is(err, ErrAlreadySharded) {
		t.Errorf("re-split err = %v", err)
	}
	// A corrupt input yields no outputs.
	raw, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	bad := filepath.Join(dir, "bad.sketch")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := splitSketch(bad, filepath.Join(dir, "r"), 2, 64); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt input err = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "r.shard0-of-2")); !os.IsNotExist(err) {
		t.Error("corrupt split left shard 0 behind")
	}
}

// TestSplitDefaultBlockAlignment exercises the exported entry point: with
// fewer sets than one default block only a single shard is possible.
func TestSplitDefaultBlockAlignment(t *testing.T) {
	o := karateOracle(t, 100, 2)
	dir := t.TempDir()
	in := filepath.Join(dir, "whole.sketch")
	if err := WriteFile(in, o); err != nil {
		t.Fatal(err)
	}
	if _, err := SplitSketch(in, filepath.Join(dir, "p"), 2); !errors.Is(err, ErrTooManyShards) {
		t.Errorf("2 shards of a sub-block sketch err = %v", err)
	}
	paths, err := SplitSketch(in, filepath.Join(dir, "p"), 1)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := shard.ShardLineage(); got != (core.ShardLineage{Index: 0, Count: 1, TotalSets: 100}) {
		t.Errorf("1-shard lineage = %+v", got)
	}
	assertOraclesEqual(t, o, shard)
}
