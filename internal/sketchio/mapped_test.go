package sketchio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func writeSketchFile(t *testing.T, raw []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.sketch")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenMappedMatchesStreamingDecode(t *testing.T) {
	o := karateOracle(t, 5000, 42)
	raw := encode(t, o)
	m, err := OpenMapped(writeSketchFile(t, raw))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	assertOraclesEqual(t, o, m.Oracle())
	if m.Oracle().BuildSeed() != 42 {
		t.Errorf("BuildSeed = %d, want 42", m.Oracle().BuildSeed())
	}
	// Re-encoding the mapped oracle must reproduce the file byte for byte:
	// the aliased RR sets are the file's own records.
	var buf bytes.Buffer
	if err := Encode(&buf, m.Oracle()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Error("re-encoded mapped sketch differs from the original file")
	}
}

// TestMappedRefcountDefersUnmap pins the copy-on-swap contract: Close with a
// query reference outstanding must not unmap; the last Release must.
func TestMappedRefcountDefersUnmap(t *testing.T) {
	o := karateOracle(t, 500, 3)
	m, err := OpenMapped(writeSketchFile(t, encode(t, o)))
	if err != nil {
		t.Fatal(err)
	}
	if !m.ZeroCopy() {
		t.Skip("platform does not support zero-copy mapping")
	}
	if !m.Acquire() {
		t.Fatal("Acquire before Close failed")
	}
	m.Close()
	if m.unmapped() {
		t.Fatal("Close unmapped while a query reference was held")
	}
	// The mapping is still valid: queries through the held reference succeed.
	if _, err := m.Oracle().Influence([]int32{0, 33}); err != nil {
		t.Fatal(err)
	}
	if m.Acquire() {
		t.Error("Acquire after Close succeeded")
	}
	m.Release()
	if !m.unmapped() {
		t.Error("last Release did not unmap")
	}
}

func TestMappedRefcountConcurrent(t *testing.T) {
	o := karateOracle(t, 2000, 9)
	m, err := OpenMapped(writeSketchFile(t, encode(t, o)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := o.Influence([]int32{0, 33})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !m.Acquire() {
					return // closed mid-run: stop querying
				}
				got, err := m.Oracle().Influence([]int32{0, 33})
				if err != nil || got != want {
					t.Errorf("Influence = %v, %v; want %v", got, err, want)
				}
				m.Release()
			}
		}()
	}
	m.Close()
	wg.Wait()
}

// TestOpenMappedRejectsCorruption checks the aliasing decoder enforces the
// same strictness as the streaming one: truncation, bit flips and trailing
// garbage are all errors, never panics.
func TestOpenMappedRejectsCorruption(t *testing.T) {
	o := karateOracle(t, 100, 5)
	raw := encode(t, o)
	dir := t.TempDir()
	write := func(b []byte) string {
		path := filepath.Join(dir, "mut.sketch")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	for _, cut := range []int{0, 1, headerLen - 1, headerLen, len(raw) / 2, len(raw) - 1} {
		if m, err := OpenMapped(write(raw[:cut])); err == nil {
			m.Close()
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(raw))
		}
	}
	for pos := 0; pos < len(raw); pos += 7 {
		mut := bytes.Clone(raw)
		mut[pos] ^= 1
		if m, err := OpenMapped(write(mut)); err == nil {
			m.Close()
			t.Fatalf("bit flip at byte %d accepted", pos)
		}
	}
	if m, err := OpenMapped(write(append(bytes.Clone(raw), 0xEE))); err == nil {
		m.Close()
		t.Fatal("trailing garbage accepted by the aliasing decoder")
	} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrChecksum) {
		t.Errorf("trailing garbage: err = %v, want corruption", err)
	}
	if _, err := OpenMapped(filepath.Join(dir, "missing.sketch")); err == nil {
		t.Error("missing file accepted")
	}
}
