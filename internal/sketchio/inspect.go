package sketchio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"imdist/internal/core"
)

// SectionInfo describes one physical section of a sketch or checkpoint file:
// its extent, how many RR sets it carries, and whether its integrity checks
// (structure and CRC-32C) passed.
type SectionInfo struct {
	Name   string
	Offset int64
	Size   int64
	// Sets is the number of RR-set records the section carries (0 for the
	// header).
	Sets int
	// CRC is the stored CRC-32C guarding the section, when it has one: the
	// file-trailing checksum for a v1 payload, the per-segment checksum for a
	// v2 segment.
	CRC uint32
	// OK reports whether the section decoded cleanly and its checksum (if
	// any) matched the bytes on disk.
	OK bool
	// Detail explains a failed check ("" when OK).
	Detail string
}

// FileInfo is the full Inspect report of a sketch or checkpoint file.
type FileInfo struct {
	Path    string
	Size    int64
	Version int
	Meta    CheckpointMeta // model, build seed, vertex count
	NumSets int            // total RR sets across all intact sections
	// Shard is the file's shard lineage (zero value for unsharded sketches
	// and checkpoints).
	Shard core.ShardLineage
	// Sections lists every physical section in file order.
	Sections []SectionInfo
	// Corrupt reports whether any section failed its checks.
	Corrupt bool
}

// Inspect verifies the file at path section by section — structure and
// CRC-32C both — and reports per-section extents without materializing an
// oracle. It understands v1 sketches (header, payload, trailing checksum) and
// v2 checkpoints (header plus CRC-framed segments). Damage is reported in the
// returned FileInfo, not as an error: only an unopenable file or one whose
// header is too broken to classify (wrong magic, unknown version, short
// header) returns an error.
func Inspect(path string) (*FileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	info := &FileInfo{Path: path, Size: st.Size()}

	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, readErr(err)
	}
	if string(hdr[:4]) != magic {
		return nil, ErrBadMagic
	}
	info.Version = int(binary.LittleEndian.Uint16(hdr[4:]))
	switch info.Version {
	case Version:
		err = inspectV1(br, hdr, info)
	case CheckpointVersion:
		err = inspectV2(br, hdr, info)
	default:
		return nil, fmt.Errorf("%w: got %d, support %d (sketch) and %d (checkpoint)",
			ErrVersion, info.Version, Version, CheckpointVersion)
	}
	if err != nil {
		return nil, err
	}
	for _, s := range info.Sections {
		if !s.OK {
			info.Corrupt = true
		}
	}
	return info, nil
}

// inspectV1 walks a v1 sketch: one payload of records covered, together with
// the header, by a single trailing CRC-32C.
func inspectV1(br *bufio.Reader, hdr []byte, info *FileInfo) error {
	crc := crc32.New(castagnoliTab)
	crc.Write(hdr)

	headerSection := SectionInfo{Name: "header", Offset: 0, Size: headerLen, OK: true}
	h, err := parseHeader(hdr)
	if err != nil {
		headerSection.OK = false
		headerSection.Detail = err.Error()
		info.Sections = append(info.Sections, headerSection)
		return nil
	}
	info.Meta = CheckpointMeta{Model: h.model, Seed: h.seed, N: h.n}
	info.Sections = append(info.Sections, headerSection)

	payloadOff := int64(headerLen)
	if h.sharded {
		sec := SectionInfo{Name: "lineage", Offset: headerLen, Size: lineageLen}
		ext := make([]byte, lineageLen)
		if _, err := io.ReadFull(io.TeeReader(br, crc), ext); err != nil {
			sec.Detail = readErr(err).Error()
			info.Sections = append(info.Sections, sec)
			return nil
		}
		shard, err := parseLineage(ext)
		if err != nil {
			sec.Detail = err.Error()
			info.Sections = append(info.Sections, sec)
			return nil
		}
		info.Shard = shard
		sec.OK = true
		info.Sections = append(info.Sections, sec)
		payloadOff += lineageLen
	}

	payload := SectionInfo{Name: "payload", Offset: payloadOff, Size: int64(h.payloadLen)}
	// Validate-and-discard (nil arena): -info must verify multi-GB sketches
	// without materializing their RR sets.
	if _, err := readRecords(io.TeeReader(br, crc), h.n, h.numSets, h.payloadLen, nil); err != nil {
		payload.Detail = err.Error()
		info.Sections = append(info.Sections, payload)
		return nil
	}
	payload.OK = true
	payload.Sets = h.numSets
	info.NumSets = h.numSets
	info.Sections = append(info.Sections, payload)

	sum := SectionInfo{Name: "checksum", Offset: payloadOff + int64(h.payloadLen), Size: 4}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		sum.Detail = readErr(err).Error()
	} else {
		sum.CRC = binary.LittleEndian.Uint32(tail[:])
		switch {
		case sum.CRC != crc.Sum32():
			sum.Detail = ErrChecksum.Error()
		case mustPeekEOF(br):
			sum.OK = true
		default:
			sum.Detail = "trailing bytes after checksum"
		}
	}
	info.Sections = append(info.Sections, sum)
	return nil
}

// inspectV2 walks a v2 checkpoint: independent CRC-framed segments until EOF.
func inspectV2(br *bufio.Reader, hdr []byte, info *FileInfo) error {
	headerSection := SectionInfo{Name: "header", Offset: 0, Size: headerLen, OK: true}
	meta, err := parseCheckpointHeader(hdr)
	if err != nil {
		headerSection.OK = false
		headerSection.Detail = err.Error()
		info.Sections = append(info.Sections, headerSection)
		return nil
	}
	info.Meta = meta
	info.Sections = append(info.Sections, headerSection)

	off := int64(headerLen)
	for i := 0; ; i++ {
		_, count, size, crc, err := readSegment(br, meta.N, info.NumSets, nil)
		if err == io.EOF {
			return nil
		}
		sec := SectionInfo{Name: fmt.Sprintf("segment[%d]", i), Offset: off}
		if err != nil {
			// The segment boundary is lost with the framing, so this is the
			// last section Inspect can delimit: report the remainder as its
			// extent and stop.
			sec.Size = info.Size - off
			sec.Detail = err.Error()
			info.Sections = append(info.Sections, sec)
			return nil
		}
		sec.Size = size
		sec.Sets = count
		sec.OK = true
		sec.CRC = crc
		info.Sections = append(info.Sections, sec)
		info.NumSets += count
		off += size
	}
}

// mustPeekEOF reports whether br is exactly at EOF.
func mustPeekEOF(br *bufio.Reader) bool {
	_, err := br.Peek(1)
	return errors.Is(err, io.EOF)
}
