package sketchio

import "imdist/internal/graph"

// arenaChunkVertices is the allocation granularity of a vertexArena: chunks of
// 2^20 vertices (4 MiB) amortize allocator pressure without holding much more
// memory than the sets actually decoded.
const arenaChunkVertices = 1 << 20

// vertexArena carves RR-set backing storage out of large chunks instead of
// one allocation per set. Decoding a checkpoint with millions of small sets
// through an arena does one large allocation per ~4 MiB of payload rather
// than one per record, and the chunks are never reallocated, so every slice
// handed out stays valid for the arena's lifetime. Growth is demand-driven —
// a chunk is only allocated once earlier decoding succeeded — which keeps a
// hostile length field from requesting huge buffers up front.
type vertexArena struct {
	chunk []graph.VertexID
}

// alloc returns a zeroed slice of n vertices carved from the arena.
func (a *vertexArena) alloc(n int) []graph.VertexID {
	if n == 0 {
		return nil
	}
	if len(a.chunk) < n {
		size := arenaChunkVertices
		if n > size {
			size = n
		}
		a.chunk = make([]graph.VertexID, size)
	}
	out := a.chunk[:n:n]
	a.chunk = a.chunk[n:]
	return out
}
